//! Umbrella crate for the CPPC (Correctable Parity Protected Cache)
//! reproduction — re-exports every subsystem under one roof.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use cppc_cache_sim as cache_sim;
pub use cppc_campaign as campaign;
pub use cppc_coherence as coherence;
pub use cppc_core as core;
pub use cppc_ecc as ecc;
pub use cppc_energy as energy;
pub use cppc_explore as explore;
pub use cppc_fault as fault;
pub use cppc_obs as obs;
pub use cppc_reliability as reliability;
pub use cppc_repro as repro;
pub use cppc_serve as serve;
pub use cppc_timing as timing;
pub use cppc_workloads as workloads;
