//! Tag-array protection (the paper's §7 closing direction): the CPPC
//! idea applied to tags and state bits — no dirty/clean split, no
//! read-before-write, one register pair correcting any single faulty
//! entry.
//!
//! Run with `cargo run --release --example tag_protection`.

use cppc::core::tags::{pack_entry, unpack_entry, TagCppc};
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

fn main() {
    // A 32KB 2-way cache has 1024 tag entries.
    let mut tags = TagCppc::new(1024, 8);
    let mut rng = StdRng::seed_from_u64(42);

    // Fill every slot, as a warm cache would be.
    let mut truth = Vec::new();
    for slot in 0..1024 {
        let entry = pack_entry(rng.random_range(0..1u64 << 56), rng.random());
        tags.allocate(slot, entry);
        truth.push(entry);
    }
    println!(
        "tag array filled: 1024 entries, invariant holds = {}",
        tags.verify_invariant()
    );

    // Strike a tag: without protection this could produce a false hit —
    // the cache would serve another address's data. With CPPC-for-tags,
    // parity detects and the register pair reconstructs.
    let victim = 321;
    tags.flip_bit(victim, 17);
    let recovered = tags.read(victim).expect("valid").expect("correctable");
    assert_eq!(recovered, truth[victim]);
    let (tag, state) = unpack_entry(recovered);
    println!("slot {victim}: corrected tag {tag:#x}, state {state:#04b}");

    // State bits (valid/dirty/coherence) live in the same entry and are
    // protected identically.
    tags.flip_bit(victim, 60);
    assert_eq!(tags.read(victim), Some(Ok(truth[victim])));
    println!("state-bit strike on slot {victim}: corrected");

    // Churn: replacements and invalidations keep R1/R2 consistent.
    for slot in (0..1024).step_by(3) {
        let entry = pack_entry(rng.random_range(0..1u64 << 56), rng.random());
        tags.replace(slot, entry).expect("no faults pending");
    }
    for slot in (0..1024).step_by(7) {
        tags.invalidate(slot).expect("no faults pending");
    }
    println!("after churn: invariant holds = {}", tags.verify_invariant());
    println!(
        "stats: {} detections, {} corrected, {} DUEs",
        tags.stats().detections,
        tags.stats().corrected,
        tags.stats().dues
    );
}
