//! Design-space explorer: the paper's central trade-off (§3.4, §4.10) —
//! reliability scales with parity interleave degree at a sliver of area
//! and energy. Sweeps a custom grid through [`cppc::explore`], peels
//! the Pareto frontier over (MTTF↑, energy↓, CPI↓, area↓) and prints
//! every point with its dominance rank, next to the scheme zoo.
//!
//! Run with `cargo run --release --example design_space`.

use cppc::core::SchemeKind;
use cppc::explore::pareto::{ranks, MAXIMIZE};
use cppc::explore::{run_sweep, SweepOptions, SweepOutcome, SweepSpec};
use cppc::reliability::mttf::{aliasing_vulnerable_bits, mttf_aliasing_years};
use cppc::reliability::ReliabilityParams;

fn main() {
    // A custom spec: every scheme at the paper's 32KB L1 point, with
    // the CPPC interleave degree as the swept design knob and an
    // optional 200k-cycle scrub. The tiers (`SweepSpec::quick_tier`,
    // `full_tier`) are just bigger versions of this.
    let mut spec = SweepSpec::quick_tier();
    spec.tier = "example".to_string();
    spec.schemes = SchemeKind::ALL.to_vec();
    spec.cache_kib = vec![32];
    spec.interleave_k = vec![1, 2, 4, 8];
    spec.trials = 24;

    let opts = SweepOptions::default();
    let points = match run_sweep(&spec, &opts, None) {
        Ok(SweepOutcome::Complete(points)) => points,
        Ok(SweepOutcome::Interrupted { .. }) => unreachable!("no interrupt flag"),
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let objectives: Vec<Vec<f64>> = points.iter().map(|p| p.objectives()).collect();
    let rank = ranks(&objectives, &MAXIMIZE);

    println!("CPPC design space at the paper's L1 point (32KB, Table 2 inputs)\n");
    println!(
        "{:<34} {:>12} {:>9} {:>8} {:>8}  rank",
        "configuration", "MTTF (y)", "energy", "CPI +%", "area %"
    );
    println!("{}", "-".repeat(84));
    for (p, r) in points.iter().zip(&rank) {
        println!(
            "{:<34} {:>12.2e} {:>8.3}x {:>8.3} {:>7.2}%  {}{}",
            p.config.label(),
            p.mttf_years,
            p.energy_ratio,
            p.cpi_inflation_pct,
            p.area_overhead_pct,
            r,
            if *r == 0 { "  <- frontier" } else { "" }
        );
    }

    // The explorer fixes one register pair per functional unit; the
    // pairs axis matters for *aliasing*, which the closed-form model
    // covers directly (§3.4).
    let params = ReliabilityParams::paper_l1();
    println!("\naliasing MTTF vs register pairs (independent of the sweep axes):");
    for pairs in [1usize, 2, 4, 8] {
        let alias = mttf_aliasing_years(&params, aliasing_vulnerable_bits(pairs));
        let shown = if alias.is_infinite() {
            "eliminated".to_string()
        } else {
            format!("{alias:.2e} y")
        };
        println!("  {pairs} pair(s): {shown}");
    }

    println!();
    println!("observations (the paper's §3.4/§4.10 claims):");
    println!(" * correction capability scales with parity bits — 8x the MTTF for 8x the bits;");
    println!(" * register pairs cost ~nothing in area yet remove the aliasing window;");
    println!(" * every non-dominated (rank 0) point is a defensible design; the rest are not.");
}
