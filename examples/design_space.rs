//! Design-space explorer: the paper's central trade-off (§3.4, §4.10) —
//! reliability scales with register pairs and parity bits, at a sliver
//! of area. Sweeps the CPPC design space and prints MTTF, aliasing MTTF
//! and storage overhead for each point, next to SECDED.
//!
//! Run with `cargo run --release --example design_space`.

use cppc::energy::AreaModel;
use cppc::reliability::mttf::{
    aliasing_vulnerable_bits, mttf_aliasing_years, mttf_cppc_years, mttf_one_dim_parity_years,
    mttf_secded_years,
};
use cppc::reliability::ReliabilityParams;

fn main() {
    let l1_bytes = 32 * 1024;
    let params = ReliabilityParams::paper_l1();

    println!("CPPC design space at the paper's L1 point (32KB, Table 2 inputs)\n");
    println!(
        "{:<30} {:>12} {:>14} {:>12}",
        "configuration", "MTTF (y)", "alias MTTF (y)", "area ovh"
    );
    println!("{}", "-".repeat(72));

    println!(
        "{:<30} {:>12.0} {:>14} {:>11.2}%",
        "1D parity (8b/word)",
        mttf_one_dim_parity_years(&params),
        "-",
        AreaModel::one_dim_parity(l1_bytes, 8).overhead_fraction() * 100.0
    );

    for parity_ways in [1u32, 8] {
        for pairs in [1usize, 2, 4, 8] {
            let mttf = mttf_cppc_years(&params, parity_ways);
            let alias = mttf_aliasing_years(&params, aliasing_vulnerable_bits(pairs));
            let area = AreaModel::cppc(l1_bytes, parity_ways, pairs, 64);
            let alias_str = if alias.is_infinite() {
                "eliminated".to_string()
            } else {
                format!("{alias:.2e}")
            };
            println!(
                "{:<30} {:>12.2e} {:>14} {:>11.2}%",
                format!("CPPC {parity_ways}b parity, {pairs} pair(s)"),
                mttf,
                alias_str,
                area.overhead_fraction() * 100.0
            );
        }
    }

    println!(
        "{:<30} {:>12.2e} {:>14} {:>11.2}%",
        "SECDED (72,64)",
        mttf_secded_years(&params, 64.0),
        "-",
        AreaModel::secded(l1_bytes).overhead_fraction() * 100.0
    );

    println!();
    println!("observations (the paper's §3.4/§4.10 claims):");
    println!(" * correction capability scales with parity bits — 8x the MTTF for 8x the bits;");
    println!(" * register pairs cost ~nothing in area yet remove the aliasing window;");
    println!(" * CPPC reaches within ~100x of SECDED's MTTF at a fraction of its 12.5% area.");
}
