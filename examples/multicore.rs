//! Multiprocessor CPPC (§7): CPPC-protected private L1s under an MSI
//! write-invalidate protocol — faults in dirty data are corrected even
//! when a *remote* core's access forces the data out, and the
//! invalidation traffic measurably reduces the read-before-write rate.
//!
//! Run with `cargo run --release --example multicore`.

use cppc::cache_sim::{CacheGeometry, ReplacementPolicy};
use cppc::coherence::{CoreOp, CppcCoherentSystem, SharedTraceGenerator};
use cppc::core::CppcConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = CppcCoherentSystem::new(
        2,
        CacheGeometry::new(4 * 1024, 2, 32)?,
        CacheGeometry::new(64 * 1024, 4, 32)?,
        CppcConfig::paper(),
        ReplacementPolicy::Lru,
    );

    // Core 0 produces; a particle strikes its dirty data; core 1
    // consumes — the downgrade's parity check corrects on the way out.
    sys.step(CoreOp::Store {
        core: 0,
        addr: 0x1000,
        value: 0xCAFE_F00D,
    })?;
    sys.core_mut(0).flip_data_bit_at(0x1000, 21);
    println!("core 0 stored 0xCAFEF00D; a bit of its dirty copy was flipped");
    let got = sys.step(CoreOp::Load {
        core: 1,
        addr: 0x1000,
    })?;
    assert_eq!(got, 0xCAFE_F00D);
    println!("core 1 loaded 0x{got:08X} — corrected during the coherence downgrade");
    println!(
        "core 0 corrections: {}, downgrades: {}\n",
        sys.core(0).stats().corrected_dirty,
        sys.stats().downgrades
    );

    // The §7 hypothesis: more sharing → more dirty invalidations →
    // fewer read-before-writes.
    println!("{:>10} {:>12} {:>12}", "sharing", "rbw/store", "dirty-inv");
    for sharing in [0.0, 0.25, 0.5, 0.75] {
        let mut sys = CppcCoherentSystem::new(
            2,
            CacheGeometry::new(4 * 1024, 2, 32)?,
            CacheGeometry::new(64 * 1024, 4, 32)?,
            CppcConfig::paper(),
            ReplacementPolicy::Lru,
        );
        let mut stores = 0u64;
        for op in SharedTraceGenerator::new(2, 2048, 512, sharing, 0.4, 7).take(40_000) {
            if matches!(op, CoreOp::Store { .. }) {
                stores += 1;
            }
            sys.step(op)?;
        }
        println!(
            "{:>9.0}% {:>12.4} {:>12}",
            sharing * 100.0,
            sys.total_read_before_writes() as f64 / stores as f64,
            sys.stats().dirty_invalidations
        );
        assert!(sys.verify_invariants());
    }
    println!("\nall register invariants held throughout — the multiprocessor CPPC works.");
    Ok(())
}
