//! Quickstart: build an L1 CPPC, write data, take a particle strike on
//! dirty data, and watch parity + the XOR registers repair it.
//!
//! Run with `cargo run --example quickstart`.

use cppc::cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::core::{CppcCache, CppcConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's L1D: 32KB, 2-way, 32-byte blocks (Table 1), protected
    // by the evaluated CPPC configuration: 8-way interleaved parity per
    // word, one (R1, R2) register pair, byte shifting (§6).
    let geometry = CacheGeometry::new(32 * 1024, 2, 32)?;
    let mut memory = MainMemory::new();
    let mut cache = CppcCache::new_l1(geometry, CppcConfig::paper(), ReplacementPolicy::Lru)?;

    // Write some dirty data — this data exists nowhere else, which is
    // exactly why write-back caches need correction, not just detection.
    cache.store_word(0x1000, 0xDEAD_BEEF_CAFE_F00D, &mut memory)?;
    cache.store_word(0x1008, 0x0123_4567_89AB_CDEF, &mut memory)?;
    println!(
        "stored two dirty words; dirty count = {}",
        cache.dirty_word_count()
    );

    // The defining invariant: R1 ^ R2 equals the XOR of the (rotated)
    // dirty words currently in the cache.
    assert!(cache.verify_invariant());

    // A single-event upset flips a bit of the first dirty word.
    cache.flip_data_bit_at(0x1000, 42);
    println!("flipped bit 42 of 0x1000 (dirty data!)");

    // The next load checks parity, detects the fault and reconstructs
    // the word from R1 ^ R2 ^ (all other dirty words).
    let value = cache.load_word(0x1000, &mut memory)?;
    assert_eq!(value, 0xDEAD_BEEF_CAFE_F00D);
    println!("loaded 0x{value:016X} — corrected!");
    println!(
        "stats: {} detections, {} dirty words corrected, {} DUEs",
        cache.stats().detections,
        cache.stats().corrected_dirty,
        cache.stats().dues
    );

    // A vertical 2-bit strike (same column, adjacent rows) would defeat
    // the basic CPPC; byte shifting makes it correctable (§4).
    cache.flip_data_bit_at(0x1000, 0);
    cache.flip_data_bit_at(0x1008, 0);
    println!("injected a vertical 2-bit spatial fault");
    assert_eq!(cache.load_word(0x1000, &mut memory)?, 0xDEAD_BEEF_CAFE_F00D);
    assert_eq!(cache.load_word(0x1008, &mut memory)?, 0x0123_4567_89AB_CDEF);
    println!("both words corrected via the byte-shifting locator");
    println!(
        "locator corrections: {}",
        cache.stats().corrected_via_locator
    );

    Ok(())
}
