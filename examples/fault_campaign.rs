//! Fault-injection campaign: compare how CPPC configurations and the
//! baseline schemes dispose of random spatial multi-bit errors.
//!
//! Run with `cargo run --release --example fault_campaign [trials]`.

use cppc::cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::core::baselines::OneDimParityCache;
use cppc::core::{CppcCache, CppcConfig};
use cppc::fault::campaign::{Campaign, Outcome, OutcomeTally};
use cppc::fault::model::{FaultGenerator, FaultModel};
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

fn geometry() -> CacheGeometry {
    CacheGeometry::new(4096, 2, 32).expect("valid geometry")
}

/// Fills way 0 with dirty random data and returns the ground truth.
fn fill_dirty(cache: &mut CppcCache, mem: &mut MainMemory, seed: u64) -> Vec<(u64, u64)> {
    let geo = *cache.geometry();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut truth = Vec::new();
    for set in 0..geo.num_sets() {
        for word in 0..geo.words_per_block() {
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            let v: u64 = rng.random();
            cache.store_word(addr, v, mem).expect("no faults yet");
            truth.push((addr, v));
        }
    }
    truth
}

fn campaign_cppc(config: CppcConfig, model: FaultModel, trials: u64) -> OutcomeTally {
    Campaign::new(0xFA11).run(trials, |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache =
            CppcCache::new_l1(geometry(), config, ReplacementPolicy::Lru).expect("valid config");
        let truth = fill_dirty(&mut cache, &mut mem, trial);
        let mut generator = FaultGenerator::new(cache.layout().num_rows() / 2, rng.random());
        if cache.inject(&generator.sample(model)) == 0 {
            return Outcome::Masked;
        }
        match cache.recover_all(&mut mem) {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(_) => {
                if truth.iter().all(|&(a, v)| cache.peek_word(a) == Some(v)) {
                    Outcome::Corrected
                } else {
                    Outcome::SilentCorruption
                }
            }
        }
    })
}

fn campaign_parity(model: FaultModel, trials: u64) -> OutcomeTally {
    Campaign::new(0xFA11).run(trials, |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = OneDimParityCache::new(geometry(), 8, ReplacementPolicy::Lru);
        let mut rng_fill = StdRng::seed_from_u64(trial);
        let geo = geometry();
        let mut truth = Vec::new();
        for set in 0..geo.num_sets() {
            for word in 0..geo.words_per_block() {
                let addr = geo.address_of(0, set) + (word * 8) as u64;
                let v: u64 = rng_fill.random();
                cache.store_word(addr, v, &mut mem);
                truth.push((addr, v));
            }
        }
        let mut generator = FaultGenerator::new(cache.layout().num_rows() / 2, rng.random());
        if cache.inject(&generator.sample(model)) == 0 {
            return Outcome::Masked;
        }
        for &(a, v) in &truth {
            match cache.load_word(a, &mut mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        Outcome::Masked
    })
}

fn report(label: &str, tally: &OutcomeTally) {
    println!(
        "  {label:<24} corrected {:>5.1}%   DUE {:>5.1}%   SDC {:>5.1}%",
        tally.corrected as f64 / tally.total() as f64 * 100.0,
        tally.due as f64 / tally.total() as f64 * 100.0,
        tally.sdc as f64 / tally.total() as f64 * 100.0,
    );
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    println!("spatial-MBE campaign: {trials} trials per configuration\n");

    for (name, model) in [
        ("single-bit SEU", FaultModel::TemporalSingleBit),
        (
            "3x3 solid square",
            FaultModel::SpatialSquare {
                rows: 3,
                cols: 3,
                density: 1.0,
            },
        ),
        (
            "8x8 solid square",
            FaultModel::SpatialSquare {
                rows: 8,
                cols: 8,
                density: 1.0,
            },
        ),
    ] {
        println!("{name}:");
        report("1D parity", &campaign_parity(model, trials));
        report(
            "CPPC basic (1b parity)",
            &campaign_cppc(CppcConfig::basic(), model, trials),
        );
        report(
            "CPPC paper (1 pair)",
            &campaign_cppc(CppcConfig::paper(), model, trials),
        );
        report(
            "CPPC 2 pairs",
            &campaign_cppc(CppcConfig::two_pairs(), model, trials),
        );
        report(
            "CPPC 8 pairs",
            &campaign_cppc(CppcConfig::eight_pairs(), model, trials),
        );
        println!();
    }
    println!("notes:");
    println!(" * schemes with 8-way interleaved parity never silently corrupt —");
    println!("   they refuse (DUE) when a fault is outside their envelope;");
    println!(" * the basic CPPC's single parity bit cannot even *detect* an even");
    println!("   number of flips per word (the 8x8 square flips 8), which is why");
    println!("   the paper pairs CPPC with interleaved parity for spatial faults.");
}
