//! Hierarchy explorer: run one SPEC2000-like profile through the full
//! Table 1 machine and print everything the paper's evaluation measures
//! for it — hit rates and dirty residency from the shared functional
//! run, then MTTF / energy / CPI / area for every protection scheme via
//! one [`cppc::explore`] sweep over the scheme axis.
//!
//! Run with `cargo run --release --example hierarchy_explorer [benchmark]`
//! (default: gcc; try `mcf` to see the L2-thrashing pathology).

use cppc::core::SchemeKind;
use cppc::explore::eval::baseline;
use cppc::explore::{run_sweep, SweepOptions, SweepOutcome, SweepSpec};
use cppc::workloads::spec2000_profiles;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let profiles = spec2000_profiles();
    if !profiles.iter().any(|p| p.name == which) {
        eprintln!(
            "unknown benchmark {which}; available: {}",
            profiles
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }

    // One geometry (the Table 1 L1), every scheme, the chosen workload.
    let mut spec = SweepSpec::quick_tier();
    spec.tier = "example".to_string();
    spec.schemes = SchemeKind::ALL.to_vec();
    spec.cache_kib = vec![32];
    spec.interleave_k = vec![8];
    spec.scrub_intervals = vec![None];
    spec.benchmark = which.clone();
    spec.workload_ops = 200_000;
    spec.trials = 24;

    println!(
        "benchmark {which} — {} memory ops on the Table 1 machine\n",
        spec.workload_ops
    );

    // The sweep shares one functional run per geometry; surface the
    // same run here for the hit-rate/dirtiness picture.
    let base = baseline(&spec, 32, 2, 32).expect("benchmark exists");
    println!("functional behaviour:");
    println!(
        "  L1: {:>9} accesses, miss rate {:>5.2}%, stores-to-dirty {:>6}",
        base.l1_stats.accesses(),
        base.l1_stats.miss_rate() * 100.0,
        base.l1_stats.stores_to_dirty
    );
    println!(
        "  L2: {:>9} accesses, miss rate {:>5.2}%, write-backs {:>9}",
        base.l2_stats.accesses(),
        base.l2_stats.miss_rate() * 100.0,
        base.l2_stats.writebacks
    );

    let points = match run_sweep(&spec, &SweepOptions::default(), None) {
        Ok(SweepOutcome::Complete(points)) => points,
        Ok(SweepOutcome::Interrupted { .. }) => unreachable!("no interrupt flag"),
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };

    println!("\nevery protection scheme at this workload (vs 1D parity):");
    println!(
        "  {:<22} {:>12} {:>9} {:>8} {:>8} {:>7}",
        "scheme", "MTTF (y)", "energy", "CPI +%", "area %", "SDC %"
    );
    for p in &points {
        let total = p.tally.total() as f64;
        let sdc_pct = if total > 0.0 {
            p.tally.sdc as f64 / total * 100.0
        } else {
            0.0
        };
        println!(
            "  {:<22} {:>12.2e} {:>8.3}x {:>8.3} {:>7.2}% {:>6.1}%",
            p.config.scheme.name(),
            p.mttf_years,
            p.energy_ratio,
            p.cpi_inflation_pct,
            p.area_overhead_pct,
            sdc_pct
        );
    }
}
