//! Hierarchy explorer: run one SPEC2000-like profile through the full
//! Table 1 machine and print everything the paper's evaluation measures
//! for it — hit rates, dirty residency, CPI under each L1 scheme, and
//! normalised dynamic energy at both levels.
//!
//! Run with `cargo run --release --example hierarchy_explorer [benchmark]`
//! (default: gcc; try `mcf` to see the L2-thrashing pathology).

use cppc::energy::scheme::{ProtectionKind, SchemeEnergy};
use cppc::energy::TechnologyNode;
use cppc::timing::{counts_from_stats, L1Scheme, MachineConfig, TimingModel};
use cppc::workloads::spec2000_profiles;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let profiles = spec2000_profiles();
    let Some(profile) = profiles.iter().find(|p| p.name == which) else {
        eprintln!(
            "unknown benchmark {which}; available: {}",
            profiles
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    const OPS: usize = 200_000;
    let machine = MachineConfig::table1();
    let model = TimingModel::new(machine);

    println!(
        "benchmark {} — {OPS} memory ops on the Table 1 machine\n",
        profile.name
    );

    let base = model.simulate(profile, L1Scheme::OneDimParity, OPS, 42);
    println!("functional behaviour:");
    println!(
        "  L1: {:>9} accesses, miss rate {:>5.2}%, stores-to-dirty {:>6}",
        base.l1_stats.accesses(),
        base.l1_stats.miss_rate() * 100.0,
        base.l1_stats.stores_to_dirty
    );
    println!(
        "  L2: {:>9} accesses, miss rate {:>5.2}%, write-backs {:>9}",
        base.l2_stats.accesses(),
        base.l2_stats.miss_rate() * 100.0,
        base.l2_stats.writebacks
    );

    println!("\nCPI under each L1 protection scheme:");
    for (name, scheme) in [
        ("1D parity", L1Scheme::OneDimParity),
        ("CPPC", L1Scheme::Cppc),
        ("SECDED", L1Scheme::Secded),
        ("2D parity", L1Scheme::TwoDimParity),
    ] {
        let b = model.breakdown_from_stats(profile, scheme, OPS, base.l1_stats, base.l2_stats);
        println!(
            "  {name:<12} CPI {:.4}  (base {:.3} + memory {:.3} + contention {:.5})",
            b.cpi(),
            b.base_cpi,
            b.memory_cpi,
            b.contention_cpi
        );
    }

    let node = TechnologyNode::Nm32;
    println!("\nnormalised dynamic energy:");
    for (level, stats, size, assoc, block) in [
        (
            "L1",
            base.l1_stats,
            machine.l1d.size_bytes,
            machine.l1d.associativity,
            machine.l1d.block_bytes,
        ),
        (
            "L2",
            base.l2_stats,
            machine.l2.size_bytes,
            machine.l2.associativity,
            machine.l2.block_bytes,
        ),
    ] {
        let counts = counts_from_stats(&stats, (block / 8) as u32);
        let parity = SchemeEnergy::new(
            size,
            assoc,
            block,
            ProtectionKind::OneDimParity { ways: 8 },
            node,
        );
        let reference = parity.total_pj(&counts);
        print!("  {level}: ");
        for (name, kind) in [
            ("CPPC", ProtectionKind::Cppc { ways: 8 }),
            ("SECDED", ProtectionKind::Secded { interleaved: true }),
            ("2D", ProtectionKind::TwoDimParity { ways: 8 }),
        ] {
            let e = SchemeEnergy::new(size, assoc, block, kind, node);
            print!("{name} {:.3}x  ", e.total_pj(&counts) / reference);
        }
        println!("(vs 1D parity)");
    }
}
