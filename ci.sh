#!/usr/bin/env bash
# Offline CI gate for the CPPC reproduction. The workspace has zero
# external dependencies (PRNGs, JSON and the campaign engine are all
# in-tree), so every step below must succeed with no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== perf smoke (microbench suite, one iteration each)"
# Bench targets use harness = false; without --bench the in-tree
# harness runs every benchmark once as a smoke test (compile + run,
# no timing assertions).
for bench in codecs hierarchy recovery scheme_ops; do
    cargo test -q --release -p cppc-bench --bench "$bench" > /dev/null
done

echo "== hot-path throughput gate (vs BENCH_hotpath.json baseline)"
# Measures the sequential mbe_coverage campaign against the committed
# baseline's trials/sec and fails below 0.9x (CI noise allowance).
cargo run -q -p cppc-bench --release --bin hotpath -- --gate BENCH_hotpath.json

echo "== repro golden gates (fast tier)"
# Re-runs the fast-tier paper artifacts and fails if any gated metric
# leaves its tolerance band around the committed goldens in
# docs/results/ (see docs/RESULTS.md).
cargo run -q --release -p cppc-cli --bin cppc-cli -- repro --check

echo "== docs/RESULTS.md freshness"
# The book is a pure function of the committed docs/results/*.json, so
# re-rendering (no simulation) must be a no-op on a clean tree.
cargo run -q --release -p cppc-cli --bin cppc-cli -- repro --render > /dev/null
git diff --exit-code -- docs/RESULTS.md || {
    echo "docs/RESULTS.md is stale: regenerate with" \
         "'cargo run --release -p cppc-cli -- repro --render'" \
         "(or 'repro --all --threads 1' after changing results)" >&2
    exit 1
}

echo "== docs/METRICS.md freshness"
cargo run -q -p cppc-cli --bin metrics-md > docs/METRICS.md
git diff --exit-code -- docs/METRICS.md || {
    echo "docs/METRICS.md is stale: regenerate with" \
         "'cargo run -p cppc-cli --bin metrics-md > docs/METRICS.md'" >&2
    exit 1
}

echo "CI OK"
