#!/usr/bin/env bash
# Offline CI gate for the CPPC reproduction. The workspace has zero
# external dependencies (PRNGs, JSON and the campaign engine are all
# in-tree), so every step below must succeed with no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "CI OK"
