#!/usr/bin/env bash
# Offline CI gate for the CPPC reproduction. The workspace has zero
# external dependencies (PRNGs, JSON and the campaign engine are all
# in-tree), so every step below must succeed with no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== cargo test without SIMD (scalar/SWAR kernels pinned)"
# The simd feature is default-on; the scalar universe must stay green
# too. The differential tests inside pin SIMD == SWAR == naive scalar
# and batched == sequential, so both universes prove the same results.
cargo test -q -p cppc-ecc --no-default-features
cargo test -q -p cppc-bench --no-default-features --features obs

echo "== kernel + batch differential tests (release codegen)"
# Production campaigns run optimized code; re-pin the kernel and batch
# equivalences under the release profile.
cargo test -q --release -p cppc-ecc kernels
cargo test -q --release -p cppc-bench --test batch_differential

echo "== cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== perf smoke (microbench suite, one iteration each)"
# Bench targets use harness = false; without --bench the in-tree
# harness runs every benchmark once as a smoke test (compile + run,
# no timing assertions).
for bench in codecs hierarchy recovery scheme_ops; do
    cargo test -q --release -p cppc-bench --bench "$bench" > /dev/null
done

echo "== campaign scaling (thread determinism; advisory speedup)"
# The binary asserts tally identity across thread counts itself. The
# speedup assertion only applies where the host could actually run the
# parallel leg: on single-core or thread-limited hosts the baseline
# records "speedup": null and the check is skipped, not failed.
SCALING_JSON="$(mktemp)"
cargo run -q --release -p cppc-bench --bin campaign_scaling -- \
    --trials 20000 --out "$SCALING_JSON" > /dev/null
if grep -q '"speedup":null' "$SCALING_JSON"; then
    echo "  speedup check skipped: $(grep -o '"note":"[^"]*"' "$SCALING_JSON")"
else
    SPEEDUP=$(grep -o '"speedup":[0-9.]*' "$SCALING_JSON" | cut -d: -f2)
    awk -v s="$SPEEDUP" 'BEGIN { exit !(s > 1.0) }' || {
        echo "parallel campaign leg slower than sequential (speedup $SPEEDUP)" >&2
        exit 1
    }
fi
rm -f "$SCALING_JSON"

echo "== hot-path throughput gate (vs BENCH_hotpath.json baseline)"
# Measures the mbe_coverage campaign both ways: the sequential leg
# fails below 0.9x the committed baseline trials/sec (CI noise
# allowance); the batched leg fails below the committed
# target_trials_per_sec floor (1M trials/sec).
cargo run -q -p cppc-bench --release --bin hotpath -- --gate BENCH_hotpath.json

echo "== trace pipeline gate (vs BENCH_timing.json baseline)"
# Measures all three trace ingestion legs (sequential text replay,
# binary materialize + batch, streaming chunked reader): each fails
# below 0.9x its committed ops/sec, and the streaming leg must hold the
# recorded speedup target over the sequential baseline. The binary also
# asserts the final hierarchy digests are identical across legs.
cargo run -q -p cppc-bench --release --bin timing -- --gate BENCH_timing.json

echo "== trace round-trip byte identity (text -> bin -> text)"
# The text and binary trace encodings must be lossless inverses: a
# recorded text trace converted to the binary format and back must be
# byte-identical to the original file.
TRACE_TMP="$(mktemp -d)"
TRACE_CLI=target/release/cppc-cli
"$TRACE_CLI" trace record --ops 50000 --seed 7 --format text \
    --out "$TRACE_TMP/a.txt" > /dev/null
"$TRACE_CLI" trace convert --in "$TRACE_TMP/a.txt" --to bin \
    --out "$TRACE_TMP/a.cppct" > /dev/null
"$TRACE_CLI" trace convert --in "$TRACE_TMP/a.cppct" --to text \
    --out "$TRACE_TMP/b.txt" > /dev/null
cmp "$TRACE_TMP/a.txt" "$TRACE_TMP/b.txt" || {
    echo "text -> bin -> text trace round trip is not byte-identical" >&2
    exit 1
}
rm -rf "$TRACE_TMP"

echo "== repro golden gates (fast tier)"
# Re-runs the fast-tier paper artifacts and fails if any gated metric
# leaves its tolerance band around the committed goldens in
# docs/results/ (see docs/RESULTS.md).
cargo run -q --release -p cppc-cli --bin cppc-cli -- repro --check

echo "== docs/RESULTS.md freshness"
# The book is a pure function of the committed docs/results/*.json, so
# re-rendering (no simulation) must be a no-op on a clean tree.
cargo run -q --release -p cppc-cli --bin cppc-cli -- repro --render > /dev/null
git diff --exit-code -- docs/RESULTS.md || {
    echo "docs/RESULTS.md is stale: regenerate with" \
         "'cargo run --release -p cppc-cli -- repro --render'" \
         "(or 'repro --all --threads 1' after changing results)" >&2
    exit 1
}

echo "== docs/SCHEMES.md freshness"
# The scheme catalog is a pure function of the SchemeDescriptors in
# code plus the committed scheme_comparison document, so regenerating
# (no simulation) must be a no-op on a clean tree.
cargo run -q -p cppc-cli --bin schemes-md > docs/SCHEMES.md
git diff --exit-code -- docs/SCHEMES.md || {
    echo "docs/SCHEMES.md is stale: regenerate with" \
         "'cargo run -p cppc-cli --bin schemes-md > docs/SCHEMES.md'" >&2
    exit 1
}

echo "== explore quick-tier gate (committed frontier matches the code)"
# Re-runs the quick-tier design-space sweep and fails if the committed
# docs/results/explore_quick.json differs byte-for-byte from what the
# models produce (or if the frontier degenerates to CPPC-only points).
cargo run -q --release -p cppc-cli --bin cppc-cli -- explore --quick --check

echo "== docs/EXPLORER.md freshness"
# The explorer book is a pure function of the committed
# docs/results/explore_*.json documents, so re-rendering (no
# simulation) must be a no-op on a clean tree.
cargo run -q --release -p cppc-cli --bin explorer-md > docs/EXPLORER.md
git diff --exit-code -- docs/EXPLORER.md || {
    echo "docs/EXPLORER.md is stale: regenerate with" \
         "'cargo run --release -p cppc-cli --bin explorer-md > docs/EXPLORER.md'" >&2
    exit 1
}

echo "== docs/METRICS.md freshness"
cargo run -q -p cppc-cli --bin metrics-md > docs/METRICS.md
git diff --exit-code -- docs/METRICS.md || {
    echo "docs/METRICS.md is stale: regenerate with" \
         "'cargo run -p cppc-cli --bin metrics-md > docs/METRICS.md'" >&2
    exit 1
}

echo "== serve smoke (daemon round-trip + kill-and-restart resume)"
# Exercises the job service across a real process boundary: submit an
# mbe campaign, watch it to completion, and require the result document
# to be byte-identical to a direct `campaign --json` run of the same
# spec. Then interrupt a second job with a graceful shutdown, restart
# the daemon on the same data dir, and require the resumed job to merge
# to the same bytes as its own direct run.
CLI=target/release/cppc-cli
SERVE_TMP="$(mktemp -d)"
SOCK="$SERVE_TMP/d.sock"
trap 'rm -rf "$SERVE_TMP"' EXIT
"$CLI" serve --data-dir "$SERVE_TMP/data" --socket "$SOCK" --max-threads 2 \
    > "$SERVE_TMP/serve1.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "serve daemon never bound $SOCK" >&2; exit 1; }
JOB=$("$CLI" submit --socket "$SOCK" --kind mbe \
    --trials 400 --seed 49374 --shard-size 32 2> /dev/null)
"$CLI" watch --socket "$SOCK" --id "$JOB" > "$SERVE_TMP/served.json" 2> /dev/null
"$CLI" campaign --kind mbe --trials 400 --seed 49374 --shard-size 32 --json \
    > "$SERVE_TMP/direct.json" 2> /dev/null
cmp "$SERVE_TMP/served.json" "$SERVE_TMP/direct.json" || {
    echo "service result diverged from direct campaign run" >&2; exit 1
}
# Kill-and-restart: a slow job suspended by a graceful shutdown must
# resume on restart and still match its direct run bit for bit.
JOB2=$("$CLI" submit --socket "$SOCK" --kind sleep --sleep-ms 20 \
    --trials 100 --seed 777 --shard-size 4 2> /dev/null)
sleep 1
"$CLI" shutdown --socket "$SOCK" 2> /dev/null
wait "$SERVE_PID"
"$CLI" serve --data-dir "$SERVE_TMP/data" --socket "$SOCK" --max-threads 2 \
    > "$SERVE_TMP/serve2.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
"$CLI" watch --socket "$SOCK" --id "$JOB2" > "$SERVE_TMP/resumed.json" 2> /dev/null
"$CLI" campaign --kind sleep --sleep-ms 20 --trials 100 --seed 777 \
    --shard-size 4 --json > "$SERVE_TMP/direct2.json" 2> /dev/null
cmp "$SERVE_TMP/resumed.json" "$SERVE_TMP/direct2.json" || {
    echo "resumed job diverged from direct campaign run" >&2; exit 1
}
"$CLI" shutdown --socket "$SOCK" 2> /dev/null
wait "$SERVE_PID"

echo "CI OK"
