//! Golden identity across the whole trace pipeline: the same operation
//! stream must produce **bit-identical** hierarchy statistics and
//! timing cycle counts whether it is driven straight from the
//! generator, replayed from a text trace file, replayed from a binary
//! trace file, or streamed through the chunked binary reader — and a
//! trace-driven campaign must tally identically at any thread count.
//! Any divergence means one of the ingestion paths is simulating a
//! different machine, which would silently invalidate every archived
//! trace result.

use cppc_bench::experiments::{load_trace, trace_digest, trace_experiment, trace_hierarchy};
use cppc_cache_sim::hierarchy::{MemOp, TwoLevelHierarchy};
use cppc_campaign::CampaignConfig;
use cppc_fault::campaign::OutcomeTally;
use cppc_timing::{L1Scheme, MachineConfig, TimingModel};
use cppc_workloads::{
    binfmt, spec2000_profiles, write_trace, BinTraceReader, OpBatch, SharedTrace, TraceGenerator,
};

const OPS: usize = 30_000;
const SEED: u64 = 0x007A_CE1D;

/// The generated op stream and its two on-disk encodings, in a
/// process-private temp directory.
struct Fixture {
    ops: Vec<MemOp>,
    dir: std::path::PathBuf,
    text_path: std::path::PathBuf,
    bin_path: std::path::PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let profiles = spec2000_profiles();
        let profile = profiles.iter().find(|p| p.name == "gcc").unwrap();
        let ops: Vec<MemOp> = TraceGenerator::new(profile, SEED).take(OPS).collect();
        let dir =
            std::env::temp_dir().join(format!("cppc-trace-identity-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("trace.txt");
        let bin_path = dir.join("trace.cppct");
        let mut text = std::io::BufWriter::new(std::fs::File::create(&text_path).unwrap());
        write_trace(&mut text, ops.iter().copied()).unwrap();
        drop(text);
        binfmt::write_bin_trace_file(&bin_path, &ops).unwrap();
        Fixture {
            ops,
            dir,
            text_path,
            bin_path,
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Everything the hierarchy measures, in one comparable bundle.
fn observe(
    h: &TwoLevelHierarchy,
) -> (
    u64,
    cppc_cache_sim::stats::CacheStats,
    cppc_cache_sim::stats::CacheStats,
    u64,
) {
    let (l1, l2) = h.stats();
    (h.cycle(), l1, l2, trace_digest(h))
}

#[test]
fn four_drive_paths_produce_identical_hierarchy_state() {
    let fx = Fixture::new("drives");

    // 1. Straight from the generator, per-op step path.
    let mut direct = trace_hierarchy();
    direct.run(fx.ops.iter().copied());
    let golden = observe(&direct);

    // 2. Text trace file, materialized, per-op step path.
    let text_trace = load_trace(fx.text_path.to_str().unwrap()).unwrap();
    assert_eq!(text_trace.ops(), &fx.ops[..], "text round trip");
    let mut text_h = trace_hierarchy();
    text_h.run(text_trace.replay());
    assert_eq!(observe(&text_h), golden, "text-trace drive diverged");

    // 3. Binary trace file, materialized, batched fast path.
    let bin_trace = load_trace(fx.bin_path.to_str().unwrap()).unwrap();
    assert_eq!(bin_trace.ops(), &fx.ops[..], "binary round trip");
    let mut bin_h = trace_hierarchy();
    bin_h.run_batch(&bin_trace.batch());
    assert_eq!(observe(&bin_h), golden, "binary-trace drive diverged");

    // 4. Streaming chunked reader, batched fast path, O(1) memory.
    let mut reader = BinTraceReader::open(&fx.bin_path).unwrap();
    let mut stream_h = trace_hierarchy();
    let mut batch = OpBatch::new();
    let driven = binfmt::drive(&mut reader, &mut stream_h, &mut batch).unwrap();
    assert_eq!(driven, OPS as u64, "streamed op count");
    assert_eq!(observe(&stream_h), golden, "streaming drive diverged");
}

#[test]
fn timing_cycle_counts_are_identical_across_trace_sources() {
    let profiles = spec2000_profiles();
    let profile = profiles.iter().find(|p| p.name == "gcc").unwrap();
    let memops = 20_000;
    // simulate_trace needs warm + measured ops.
    let len = memops * 2;
    let ops: Vec<MemOp> = TraceGenerator::new(profile, 42).take(len).collect();

    let dir =
        std::env::temp_dir().join(format!("cppc-trace-identity-timing-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("t.cppct");
    binfmt::write_bin_trace_file(&bin_path, &ops).unwrap();

    let model = TimingModel::new(MachineConfig::table1());
    for scheme in [
        L1Scheme::OneDimParity,
        L1Scheme::Cppc,
        L1Scheme::TwoDimParity,
    ] {
        let direct = model.simulate(profile, scheme, memops, 42);
        let materialized = SharedTrace::from_ops(ops.clone());
        let from_ops = model.simulate_trace(profile, scheme, &materialized, memops);
        let from_file = SharedTrace::from_binary_file(&bin_path).unwrap();
        let from_bin = model.simulate_trace(profile, scheme, &from_file, memops);
        assert_eq!(direct, from_ops, "{scheme:?}: materialized drive diverged");
        assert_eq!(direct, from_bin, "{scheme:?}: binary-file drive diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_campaign_tallies_are_thread_invariant() {
    let fx = Fixture::new("campaign");
    let trace = SharedTrace::from_binary_file(&fx.bin_path).unwrap();

    let single = CampaignConfig::new(0xBEE5, 240).threads(1).shard_size(16);
    let quad = CampaignConfig::new(0xBEE5, 240).threads(4).shard_size(16);
    let a: OutcomeTally = cppc_campaign::run(&single, trace_experiment(&trace)).result;
    let b: OutcomeTally = cppc_campaign::run(&quad, trace_experiment(&trace)).result;
    assert_eq!(a, b, "trace campaign tallies differ across thread counts");
    assert_eq!(a.total(), 240);
}
