//! HashMap-oracle differential tests for the flat (SoA) cache storage.
//!
//! The cache arena rework changed how blocks are stored (one contiguous
//! tags/dirty/words arena instead of per-block `Vec`s) and how they move
//! between levels (`fetch_block_into` into reused buffers instead of
//! allocated ones). These tests drive long randomised load/store/byte
//! traffic through the deepest composition paths — a three-level
//! hierarchy, and a cache backed through a victim buffer — and check
//! every loaded value against a flat `HashMap` memory oracle.

use std::collections::HashMap;

use cppc_cache_sim::cache::{Backing, Cache};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::hierarchy::MemOp;
use cppc_cache_sim::hierarchy3::ThreeLevelHierarchy;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::victim::VictimBuffer;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

/// Applies a byte store to the oracle's word map.
fn oracle_store_byte(oracle: &mut HashMap<u64, u64>, addr: u64, value: u8) {
    let word = addr & !7;
    let shift = 8 * (addr % 8);
    let old = *oracle.get(&word).unwrap_or(&0);
    oracle.insert(
        word,
        (old & !(0xFFu64 << shift)) | (u64::from(value) << shift),
    );
}

#[test]
fn three_level_hierarchy_matches_oracle() {
    // Small, differently-shaped levels so blocks migrate through all
    // three on a working set ~4x the L3.
    let l1 = CacheGeometry::new(2 * 1024, 2, 32).unwrap();
    let l2 = CacheGeometry::new(8 * 1024, 4, 32).unwrap();
    let l3 = CacheGeometry::new(16 * 1024, 8, 32).unwrap();
    let mut h = ThreeLevelHierarchy::new(l1, l2, l3, ReplacementPolicy::Lru);
    let mut rng = StdRng::seed_from_u64(0xF1A7);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for _ in 0..60_000 {
        let addr = rng.random_range(0..64 * 1024u64);
        let roll: f64 = rng.random();
        if roll < 0.30 {
            let v: u64 = rng.random();
            h.step(MemOp::Store(addr & !7, v));
            oracle.insert(addr & !7, v);
        } else if roll < 0.40 {
            let v: u8 = rng.random();
            h.step(MemOp::StoreByte(addr, v));
            oracle_store_byte(&mut oracle, addr, v);
        } else {
            let got = h.step(MemOp::Load(addr & !7));
            assert_eq!(
                got,
                *oracle.get(&(addr & !7)).unwrap_or(&0),
                "addr {addr:#x}"
            );
        }
    }
    // The working set must actually have thrashed every level.
    assert!(h.l3().stats().writebacks > 0, "L3 never evicted dirty data");
    assert!(h.memory().reads() > 0);
}

/// A backing store that stages write-backs in a victim buffer and
/// services fetches from it before falling through to memory — the
/// composition `VictimBuffer` is built for.
struct VictimBacked {
    vb: VictimBuffer,
    mem: MainMemory,
}

impl Backing for VictimBacked {
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]) {
        // A hit re-fills from the staged copy (dirty words and all);
        // memory supplies the rest of the block's words only when the
        // staged copy was partial — here entries always hold full blocks.
        if let Some((words, mask)) = self.vb.take(base) {
            buf.copy_from_slice(&words);
            // Dirty words still owed to memory must not be lost: the
            // cache will treat the refill as clean, so flush them now.
            if mask != 0 {
                self.mem.write_back_dirty(base, &words, mask);
            }
        } else {
            self.mem.fetch_block_into(base, buf);
        }
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        let mem = &mut self.mem;
        // Borrow juggling: push drains into `mem` when the buffer is full.
        self.vb.push(base, data, dirty_mask, mem);
    }
}

#[test]
fn victim_buffer_path_matches_oracle() {
    let geo = CacheGeometry::new(1024, 2, 32).unwrap();
    let mut cache = Cache::new(geo, ReplacementPolicy::Lru);
    let mut backing = VictimBacked {
        vb: VictimBuffer::new(8),
        mem: MainMemory::new(),
    };
    let mut rng = StdRng::seed_from_u64(0xB0FF);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for i in 0..50_000u64 {
        let addr = rng.random_range(0..8 * 1024u64);
        let roll: f64 = rng.random();
        if roll < 0.35 {
            let v: u64 = rng.random();
            cache.store_word(addr & !7, v, &mut backing);
            oracle.insert(addr & !7, v);
        } else if roll < 0.45 {
            let v: u8 = rng.random();
            cache.store_byte(addr, v, &mut backing);
            oracle_store_byte(&mut oracle, addr, v);
        } else {
            let got = cache.load_word(addr & !7, &mut backing);
            assert_eq!(
                got,
                *oracle.get(&(addr & !7)).unwrap_or(&0),
                "addr {addr:#x}"
            );
        }
        // Background drain slot every few ops, like a real controller.
        if i % 4 == 3 {
            let mem = &mut backing.mem;
            backing.vb.drain_one(mem);
        }
    }
    assert!(backing.vb.hits() > 0, "victim path never serviced a refill");
    assert!(backing.vb.drains() > 0, "victim buffer never drained");
    // Settle everything and audit memory against the oracle.
    let mem = &mut backing.mem;
    backing.vb.drain_all(mem);
    cache.flush(&mut backing.mem);
    for (&addr, &v) in &oracle {
        assert_eq!(backing.mem.peek_word(addr), v, "addr {addr:#x} after flush");
    }
}
