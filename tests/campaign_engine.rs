//! Cross-crate guarantees of the campaign engine: bit-identical merged
//! reports at any thread count, and checkpoint/resume transparency.

use cppc::campaign::json::Json;
use cppc::campaign::rng::{rngs::StdRng, RngExt};
use cppc::campaign::{run_resumable, Accumulator, CampaignConfig, CheckpointPolicy, Persist};
use cppc::fault::campaign::{Campaign, Outcome, OutcomeTally};
use cppc::reliability::montecarlo::{simulate_double_fault_mttf_parallel, MonteCarloConfig};

/// A fault-free stand-in for a real injection experiment whose outcome
/// depends on the trial's RNG stream and index, so any divergence in
/// stream derivation, shard layout or merge order changes the report.
fn stream_sensitive(rng: &mut StdRng, trial: u64) -> Outcome {
    let draw = rng.random::<u64>() ^ trial.rotate_left(17);
    match draw % 4 {
        0 => Outcome::Masked,
        1 => Outcome::Corrected,
        2 => Outcome::DetectedUnrecoverable,
        _ => Outcome::SilentCorruption,
    }
}

fn serialized_tally(tally: &OutcomeTally) -> String {
    tally.to_json().to_string_compact()
}

#[test]
fn merged_reports_are_byte_identical_at_1_2_8_threads() {
    // 999 trials: not a multiple of the shard size, so the last shard is
    // ragged — the layout edge case most likely to diverge.
    let campaign = Campaign::new(0xD37E_2011);
    let baseline = serialized_tally(&campaign.run_parallel(999, 1, stream_sensitive));
    for threads in [2usize, 8] {
        let report = serialized_tally(&campaign.run_parallel(999, threads, stream_sensitive));
        assert_eq!(report, baseline, "diverged at {threads} threads");
    }
    // And the sequential (non-engine) path derives the same streams.
    assert_eq!(
        serialized_tally(&campaign.run(999, stream_sensitive)),
        baseline
    );
}

#[test]
fn montecarlo_floats_are_bit_identical_at_1_2_8_threads() {
    let cfg = MonteCarloConfig {
        faults_per_hour: 30.0,
        domains: 4,
        tavg_hours: 0.002,
        trials: 1000,
    };
    let one = simulate_double_fault_mttf_parallel(&cfg, 0xF00D, 1);
    for threads in [2usize, 8] {
        let par = simulate_double_fault_mttf_parallel(&cfg, 0xF00D, threads);
        assert_eq!(
            one.mttf_hours.to_bits(),
            par.mttf_hours.to_bits(),
            "mean diverged at {threads} threads"
        );
        assert_eq!(
            one.std_error_hours.to_bits(),
            par.std_error_hours.to_bits(),
            "stderr diverged at {threads} threads"
        );
        assert_eq!(
            one.mean_faults_to_failure.to_bits(),
            par.mean_faults_to_failure.to_bits(),
            "fault count diverged at {threads} threads"
        );
    }
}

#[test]
fn interrupted_campaign_resumes_to_the_uninterrupted_report() {
    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = tmp.join("campaign_engine_resume.ckpt");
    let _ = std::fs::remove_file(&path);

    let experiment = |rng: &mut StdRng, trial: u64| stream_sensitive(rng, trial);
    let base_cfg = CampaignConfig::new(0x00AB_5E17, 500).threads(2);
    let mut policy = CheckpointPolicy::new(&path);
    policy.every_shards = 1; // checkpoint after every shard

    // Uninterrupted reference.
    let full: OutcomeTally = cppc::campaign::run(&base_cfg, experiment).result;

    // Interrupt after 3 shards...
    let partial_cfg = base_cfg.clone().stop_after_shards(3);
    let partial: OutcomeTally = run_resumable(&partial_cfg, &policy, experiment, |_| {})
        .expect("checkpointed run")
        .result;
    assert!(partial.total() < full.total(), "stop budget must interrupt");
    assert!(path.exists(), "checkpoint file must be written");

    // ...then resume to completion.
    let resumed = run_resumable::<OutcomeTally, _, _>(&base_cfg, &policy, experiment, |_| {})
        .expect("resumed run");
    assert!(
        resumed.resumed_shards >= 3,
        "must restore checkpointed shards"
    );
    assert!(resumed.is_complete());
    assert_eq!(
        serialized_tally(&resumed.result),
        serialized_tally(&full),
        "resumed report must equal the uninterrupted one"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_rejects_mismatched_campaign() {
    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = tmp.join("campaign_engine_identity.ckpt");
    let _ = std::fs::remove_file(&path);

    let experiment = |rng: &mut StdRng, trial: u64| stream_sensitive(rng, trial);
    let policy = CheckpointPolicy::new(&path);
    let cfg = CampaignConfig::new(1, 200).threads(1).stop_after_shards(1);
    run_resumable::<OutcomeTally, _, _>(&cfg, &policy, experiment, |_| {}).expect("first run");

    // A different seed is a different campaign: the stale checkpoint
    // must be rejected, not silently merged.
    let other = CampaignConfig::new(2, 200).threads(1);
    let err = run_resumable::<OutcomeTally, _, _>(&other, &policy, experiment, |_| {});
    assert!(err.is_err(), "identity mismatch must be an error");
    let _ = std::fs::remove_file(&path);
}

/// Writes a valid one-shard checkpoint and returns (path, its bytes).
fn valid_checkpoint(name: &str) -> (std::path::PathBuf, Vec<u8>) {
    let tmp = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = tmp.join(name);
    let _ = std::fs::remove_file(&path);
    let experiment = |rng: &mut StdRng, trial: u64| stream_sensitive(rng, trial);
    let policy = CheckpointPolicy::new(&path);
    let cfg = CampaignConfig::new(0xBAD_F00D, 200)
        .threads(1)
        .stop_after_shards(1);
    run_resumable::<OutcomeTally, _, _>(&cfg, &policy, experiment, |_| {}).expect("seed run");
    let bytes = std::fs::read(&path).expect("checkpoint on disk");
    (path, bytes)
}

fn resume_with(path: &std::path::Path) -> Result<(), String> {
    let experiment = |rng: &mut StdRng, trial: u64| stream_sensitive(rng, trial);
    let policy = CheckpointPolicy::new(path);
    let cfg = CampaignConfig::new(0xBAD_F00D, 200).threads(1);
    run_resumable::<OutcomeTally, _, _>(&cfg, &policy, experiment, |_| {})
        .map(|_| ())
        .map_err(|e| e.to_string())
}

#[test]
fn truncated_checkpoint_is_a_clean_diagnostic_not_a_panic() {
    let (path, bytes) = valid_checkpoint("campaign_engine_truncated.ckpt");
    // Every truncation point must fail cleanly — a partial write (torn
    // shutdown) can stop anywhere.
    for keep in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let err = resume_with(&path).expect_err("truncated checkpoint must be rejected");
        assert!(
            err.contains("malformed checkpoint"),
            "truncation at {keep} bytes: {err}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_checkpoint_is_a_clean_diagnostic_not_a_panic() {
    let (path, bytes) = valid_checkpoint("campaign_engine_bitflip.ckpt");
    // Corrupt a structural byte: the opening brace becomes garbage.
    let mut flipped = bytes.clone();
    flipped[0] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let err = resume_with(&path).expect_err("corrupt JSON must be rejected");
    assert!(err.contains("malformed checkpoint"), "{err}");

    // Corrupt the recorded seed instead: the document still parses but
    // now names a different campaign — identity mismatch, not a merge.
    let text = String::from_utf8(bytes).unwrap();
    let field = format!("\"seed\":{}", 0xBAD_F00Du64);
    assert!(text.contains(&field), "checkpoint must record the seed");
    let other = text.replace(&field, &format!("\"seed\":{}", 0xBAD_F00Eu64));
    std::fs::write(&path, other).unwrap();
    let err = resume_with(&path).expect_err("foreign checkpoint must be rejected");
    assert!(err.contains("different campaign"), "{err}");
    let _ = std::fs::remove_file(&path);
}

/// The `Persist` JSON used above must round-trip exactly, otherwise the
/// byte-comparisons compare lossy serializations.
#[test]
fn tally_roundtrips_through_checkpoint_json() {
    let t = OutcomeTally {
        masked: u64::MAX,
        corrected: 1,
        due: 0,
        sdc: 42,
    };
    let parsed = Json::parse(&t.to_json().to_string_compact()).expect("parses");
    assert_eq!(OutcomeTally::from_json(&parsed), Some(t));
    // `counters()` drives the live metrics labels.
    assert_eq!(
        Accumulator::counters(&t)
            .iter()
            .map(|(label, _)| *label)
            .collect::<Vec<_>>(),
        ["Masked", "Corrected", "DUE", "SDC"]
    );
}
