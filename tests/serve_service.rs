//! End-to-end tests of the campaign job service (`crates/serve`)
//! across the real socket boundary: an in-process daemon, the typed
//! client, and the determinism / backpressure guarantees from
//! `ISSUE` acceptance — a restart-interrupted job merges to the
//! bit-identical tally of a direct engine run, and a full queue
//! rejects new work without disturbing running jobs.

use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use cppc::campaign::json::Json;
use cppc::serve::runner::tally_result_json;
use cppc::serve::{serve, Client, JobKind, JobSpec, Priority, ServerConfig};
use cppc_bench::experiments::sleep_experiment;

/// A unique, socket-length-safe scratch directory.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cppc_serve_it").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One daemon lifetime: spawned thread + connect-retry + shutdown help.
struct Daemon {
    socket: PathBuf,
    handle: thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    fn start(dir: &std::path::Path, queue_cap: usize, max_threads: usize) -> Self {
        let socket = dir.join("d.sock");
        let mut cfg = ServerConfig::new(dir.join("data"), &socket);
        cfg.queue_cap = queue_cap;
        cfg.max_threads = max_threads;
        cfg.checkpoint_every_shards = 1;
        let handle = thread::spawn(move || serve(cfg));
        Daemon { socket, handle }
    }

    fn client(&self) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Client::connect_unix(&self.socket) {
                Ok(c) => return c,
                Err(e) => {
                    assert!(Instant::now() < deadline, "daemon never came up: {e}");
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    fn stop(self) {
        let _ = self.client().shutdown();
        self.handle.join().unwrap().unwrap();
    }
}

fn sleep_spec(millis: u64, trials: u64, seed: u64, shard_size: u64) -> JobSpec {
    JobSpec {
        shard_size,
        ..JobSpec::new(JobKind::Sleep { millis }, trials, seed)
    }
}

/// Polls `status` until the job leaves `queued`.
fn wait_running(client: &mut Client, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let state = client
            .status(id)
            .unwrap()
            .get("state")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if state != "queued" {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never started");
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn submitted_job_matches_direct_engine_run() {
    let dir = scratch("submit_equality");
    let daemon = Daemon::start(&dir, 8, 2);
    let mut client = daemon.client();

    let spec = sleep_spec(0, 96, 0xFEED, 8);
    let id = client
        .submit("alice", Priority::Normal, spec.clone())
        .unwrap();
    let end = client.watch(id, |_| {}).unwrap();
    assert_eq!(end.get("state").and_then(Json::as_str), Some("done"));

    let direct = cppc::campaign::run::<cppc::fault::campaign::OutcomeTally, _>(
        &spec.campaign_config(1),
        sleep_experiment(0),
    )
    .result;
    assert_eq!(end.get("result"), Some(&tally_result_json(&direct)));
    // `result` agrees with the watch end event.
    assert_eq!(client.result(id).unwrap(), tally_result_json(&direct));
    daemon.stop();
}

#[test]
fn full_queue_rejects_without_disturbing_running_jobs() {
    let dir = scratch("backpressure");
    // One worker thread and a queue of exactly one.
    let daemon = Daemon::start(&dir, 1, 1);
    let mut client = daemon.client();

    // Occupies the governor for its whole life (~50ms/trial).
    let running = client
        .submit("alice", Priority::Normal, sleep_spec(50, 40, 1, 4))
        .unwrap();
    wait_running(&mut client, running);
    // Fills the queue.
    let queued = client
        .submit("bob", Priority::Normal, sleep_spec(0, 8, 2, 4))
        .unwrap();
    // The N+1th submission bounces with a retry hint.
    let err = client
        .submit("carol", Priority::Normal, sleep_spec(0, 8, 3, 4))
        .unwrap_err();
    match err {
        cppc::serve::ClientError::Remote {
            message,
            retry_after_ms,
        } => {
            assert!(message.contains("queue full"), "{message}");
            assert!(retry_after_ms.is_some(), "rejection must carry a hint");
        }
        other => panic!("expected a remote queue-full rejection, got {other}"),
    }
    // The running job was not affected: cancel it cleanly, and the
    // queued one still completes.
    client.cancel(running).unwrap();
    let end = client.watch(queued, |_| {}).unwrap();
    assert_eq!(end.get("state").and_then(Json::as_str), Some("done"));
    let cancelled_end = client.watch(running, |_| {}).unwrap();
    assert_eq!(
        cancelled_end.get("state").and_then(Json::as_str),
        Some("cancelled")
    );
    daemon.stop();
}

#[test]
fn shutdown_suspends_and_restart_resumes_bit_identically() {
    let dir = scratch("suspend_resume");
    let spec = sleep_spec(10, 120, 0xD00D, 4);

    // First daemon: start the job, let it make some progress, shut
    // down mid-run (graceful shutdown checkpoints and suspends).
    let first = Daemon::start(&dir, 8, 1);
    let mut client = first.client();
    let id = client
        .submit("alice", Priority::High, spec.clone())
        .unwrap();
    wait_running(&mut client, id);
    thread::sleep(Duration::from_millis(200));
    let before = client.status(id).unwrap();
    assert_eq!(before.get("state").and_then(Json::as_str), Some("running"));
    first.stop();

    // Second daemon on the same data dir: the suspended job requeues
    // and resumes from its checkpoint.
    let second = Daemon::start(&dir, 8, 1);
    let mut client = second.client();
    let end = client.watch(id, |_| {}).unwrap();
    assert_eq!(end.get("state").and_then(Json::as_str), Some("done"));

    let direct = cppc::campaign::run::<cppc::fault::campaign::OutcomeTally, _>(
        &spec.campaign_config(1),
        sleep_experiment(10),
    )
    .result;
    assert_eq!(end.get("result"), Some(&tally_result_json(&direct)));
    second.stop();
}

#[test]
fn high_priority_overtakes_normal_backlog() {
    let dir = scratch("priority");
    let daemon = Daemon::start(&dir, 8, 1);
    let mut client = daemon.client();

    // A running job pins the single worker while we shape the queue.
    let running = client
        .submit("alice", Priority::Normal, sleep_spec(50, 40, 1, 4))
        .unwrap();
    wait_running(&mut client, running);
    let normal = client
        .submit("alice", Priority::Normal, sleep_spec(0, 8, 2, 4))
        .unwrap();
    let high = client
        .submit("bob", Priority::High, sleep_spec(0, 8, 3, 4))
        .unwrap();
    client.cancel(running).unwrap();

    // The high-lane job finishes; at the moment it was dispatched the
    // normal job must still have been waiting behind it.
    let end = client.watch(high, |_| {}).unwrap();
    assert_eq!(end.get("state").and_then(Json::as_str), Some("done"));
    let end = client.watch(normal, |_| {}).unwrap();
    assert_eq!(end.get("state").and_then(Json::as_str), Some("done"));

    // Journal survives: a fresh list shows all three jobs terminal.
    let rows = client.list(None).unwrap();
    assert_eq!(rows.len(), 3);
    for row in &rows {
        let state = row.get("state").and_then(Json::as_str).unwrap();
        assert!(
            state == "done" || state == "cancelled",
            "unexpected state {state}"
        );
    }
    daemon.stop();
}
