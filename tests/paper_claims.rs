//! Integration tests pinning the paper's headline quantitative claims —
//! the "shape" every figure and table must reproduce.

use cppc::energy::scheme::{AccessCounts, ProtectionKind, SchemeEnergy};
use cppc::energy::{AreaModel, TechnologyNode};
use cppc::reliability::mttf::{mttf_cppc_years, mttf_one_dim_parity_years, mttf_secded_years};
use cppc::reliability::ReliabilityParams;
use cppc::timing::{counts_from_stats, L1Scheme, MachineConfig, TimingModel};
use cppc::workloads::spec2000_profiles;

const OPS: usize = 60_000;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

/// Figure 10's shape: CPPC CPI overhead well under 1% average; 2D
/// parity several times larger; both non-negative everywhere.
#[test]
fn figure10_cpi_shape() {
    let model = TimingModel::new(MachineConfig::table1());
    let mut cppc = Vec::new();
    let mut twodim = Vec::new();
    for p in spec2000_profiles() {
        let base = model.simulate(&p, L1Scheme::OneDimParity, OPS, 0x15CA);
        let c = model
            .breakdown_from_stats(&p, L1Scheme::Cppc, OPS, base.l1_stats, base.l2_stats)
            .cpi();
        let t = model
            .breakdown_from_stats(
                &p,
                L1Scheme::TwoDimParity,
                OPS,
                base.l1_stats,
                base.l2_stats,
            )
            .cpi();
        cppc.push(c / base.cpi() - 1.0);
        twodim.push(t / base.cpi() - 1.0);
    }
    let (ac, at) = (mean(&cppc), mean(&twodim));
    assert!(
        (0.0..0.01).contains(&ac),
        "CPPC avg CPI overhead {ac} (paper 0.3%)"
    );
    assert!(at > 2.0 * ac, "2D overhead {at} must dwarf CPPC's {ac}");
    assert!(at < 0.08, "2D avg CPI overhead {at} (paper 1.7%)");
}

/// Figures 11/12's shape: at both levels the energy order is
/// parity < CPPC < SECDED < 2D-parity on the benchmark average, CPPC's
/// L2 overhead smaller than its L1 overhead, and mcf's 2D-parity L2
/// energy several times CPPC's.
#[test]
fn figures11_12_energy_shape() {
    let machine = MachineConfig::table1();
    let model = TimingModel::new(machine);
    let node = TechnologyNode::Nm32;

    let schemes = |size: usize, assoc: usize, block: usize| {
        (
            SchemeEnergy::new(
                size,
                assoc,
                block,
                ProtectionKind::OneDimParity { ways: 8 },
                node,
            ),
            SchemeEnergy::new(size, assoc, block, ProtectionKind::Cppc { ways: 8 }, node),
            SchemeEnergy::new(
                size,
                assoc,
                block,
                ProtectionKind::Secded { interleaved: true },
                node,
            ),
            SchemeEnergy::new(
                size,
                assoc,
                block,
                ProtectionKind::TwoDimParity { ways: 8 },
                node,
            ),
        )
    };
    let (l1_par, l1_cppc, l1_sec, l1_2d) = schemes(
        machine.l1d.size_bytes,
        machine.l1d.associativity,
        machine.l1d.block_bytes,
    );
    let (l2_par, l2_cppc, l2_sec, l2_2d) = schemes(
        machine.l2.size_bytes,
        machine.l2.associativity,
        machine.l2.block_bytes,
    );

    let mut l1_ratios = Vec::new();
    let mut l2_ratios = Vec::new();
    let mut mcf_l2: Option<(f64, f64)> = None;
    for p in spec2000_profiles() {
        let run = model.simulate(&p, L1Scheme::OneDimParity, OPS, 0x15CA);
        let c1 = counts_from_stats(&run.l1_stats, 4);
        let c2 = counts_from_stats(&run.l2_stats, 4);
        l1_ratios.push([
            l1_cppc.total_pj(&c1) / l1_par.total_pj(&c1),
            l1_sec.total_pj(&c1) / l1_par.total_pj(&c1),
            l1_2d.total_pj(&c1) / l1_par.total_pj(&c1),
        ]);
        l2_ratios.push([
            l2_cppc.total_pj(&c2) / l2_par.total_pj(&c2),
            l2_sec.total_pj(&c2) / l2_par.total_pj(&c2),
            l2_2d.total_pj(&c2) / l2_par.total_pj(&c2),
        ]);
        if p.name == "mcf" {
            mcf_l2 = Some((l2_cppc.total_pj(&c2), l2_2d.total_pj(&c2)));
        }
    }
    let avg = |i: usize, v: &[[f64; 3]]| mean(&v.iter().map(|r| r[i]).collect::<Vec<_>>());
    let (l1c, l1s, l1t) = (avg(0, &l1_ratios), avg(1, &l1_ratios), avg(2, &l1_ratios));
    let (l2c, l2s, l2t) = (avg(0, &l2_ratios), avg(1, &l2_ratios), avg(2, &l2_ratios));

    // L1 (Figure 11): paper +14% / +42% / +70%.
    assert!(l1c > 1.0 && l1c < 1.25, "L1 CPPC {l1c}");
    assert!(l1s > l1c && l1s < 1.6, "L1 SECDED {l1s}");
    assert!(l1t > l1s, "L1 2D {l1t} must exceed SECDED {l1s}");

    // L2 (Figure 12): paper +7% / +68% / +75%; CPPC cheaper at L2.
    assert!(l2c > 1.0 && l2c < 1.2, "L2 CPPC {l2c}");
    assert!(
        l2c < l1c,
        "CPPC is relatively cheaper at L2 ({l2c} vs {l1c})"
    );
    assert!(l2s > l2c, "L2 SECDED {l2s}");
    assert!(l2t > 1.4, "L2 2D {l2t}");

    // mcf: 2D several times CPPC (paper: "several times").
    let (mcf_cppc, mcf_2d) = mcf_l2.expect("mcf profile present");
    assert!(mcf_2d / mcf_cppc > 2.0, "mcf blow-up {}", mcf_2d / mcf_cppc);
}

/// Table 3's shape: parity ≪ CPPC < SECDED at both levels, with CPPC
/// within a few orders of SECDED but astronomically above parity.
#[test]
fn table3_mttf_shape() {
    for (p, secded_domain) in [
        (ReliabilityParams::paper_l1(), 64.0),
        (ReliabilityParams::paper_l2(), 256.0),
    ] {
        let parity = mttf_one_dim_parity_years(&p);
        let cppc = mttf_cppc_years(&p, 8);
        let secded = mttf_secded_years(&p, secded_domain);
        assert!(cppc / parity > 1e10, "CPPC {cppc:e} vs parity {parity:e}");
        assert!(secded > cppc, "SECDED {secded:e} vs CPPC {cppc:e}");
        assert!(secded / cppc < 1e5, "CPPC within a few orders of SECDED");
    }
}

/// §5.1's area claim: adding CPPC correction to a parity cache costs a
/// negligible increment, while SECDED costs 12.5%.
#[test]
fn area_claim() {
    let size = 32 * 1024;
    let parity = AreaModel::one_dim_parity(size, 1);
    let cppc = AreaModel::cppc(size, 1, 1, 64);
    let secded = AreaModel::secded(size);
    let increment = cppc.overhead_bits() - parity.overhead_bits();
    let secded_increment = secded.overhead_bits() - parity.overhead_bits();
    assert!(increment < secded_increment / 50.0);
}

/// The energy model must respect the paper's SECDED counting rule:
/// interleaving multiplies only the bitline component by 8.
#[test]
fn secded_bitline_rule() {
    let node = TechnologyNode::Nm32;
    let plain = SchemeEnergy::new(
        32 * 1024,
        2,
        32,
        ProtectionKind::Secded { interleaved: false },
        node,
    );
    let inter = SchemeEnergy::new(
        32 * 1024,
        2,
        32,
        ProtectionKind::Secded { interleaved: true },
        node,
    );
    let counts = AccessCounts {
        reads: 1000,
        writes: 500,
        stores_to_dirty: 100,
        miss_fills: 50,
        words_per_line: 4,
        silent_writes: 0,
    };
    let ratio = inter.total_pj(&counts) / plain.total_pj(&counts);
    assert!(ratio > 1.2 && ratio < 1.7, "interleave ratio {ratio}");
}
