//! Integration: the fully protected cache (data CPPC + tag CPPC) under
//! combined data/tag fault campaigns, and trace-replay determinism
//! through the whole stack.

use cppc::cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::core::full::FullyProtectedCache;
use cppc::core::CppcConfig;
use cppc::workloads::{read_trace, spec2000_profiles, write_trace, TraceGenerator};
use cppc_cache_sim::hierarchy::{MemOp, TwoLevelHierarchy};
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use std::collections::HashMap;

#[test]
fn full_assembly_survives_alternating_data_and_tag_strikes() {
    let geo = CacheGeometry::new(4 * 1024, 2, 32).unwrap();
    let mut cache =
        FullyProtectedCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let mut mem = MainMemory::new();
    let mut rng = StdRng::seed_from_u64(0xFA_7A6);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    let mut resident: Vec<u64> = Vec::new();

    for i in 0..10_000u64 {
        let addr = (rng.random_range(0..16 * 1024u64)) & !7;
        if rng.random_bool(0.4) {
            let v: u64 = rng.random();
            cache.store_word(addr, v, &mut mem).unwrap();
            oracle.insert(addr, v);
            resident.push(addr);
        } else {
            let got = cache.load_word(addr, &mut mem).unwrap();
            assert_eq!(got, *oracle.get(&addr).unwrap_or(&0), "op {i}");
        }
        // Every ~97 ops, strike either a tag or a data bit of some
        // recently stored (still possibly resident) address.
        if i % 97 == 96 && !resident.is_empty() {
            let target = resident[rng.random_range(0..resident.len())];
            if cache.peek_word(target).is_some() {
                if rng.random_bool(0.5) {
                    cache.flip_tag_bit_at(target, rng.random_range(0..64));
                } else {
                    // Reuse the data CPPC's addressed-flip helper via the
                    // data() accessor path: inject through pattern.
                    let (set, way) = cache.data().probe(target).unwrap();
                    let w = cache.data().geometry().word_index(target);
                    let row = cache.data().layout().row_of(set, way, w);
                    cache.inject_data(&cppc::fault::model::FaultPattern::new(vec![
                        cppc::fault::model::BitFlip {
                            row,
                            col: rng.random_range(0..64),
                        },
                    ]));
                }
            }
        }
    }
    cache.flush(&mut mem).unwrap();
    assert!(cache.verify_invariants());
    for (addr, v) in oracle {
        assert_eq!(mem.peek_word(addr), v, "final memory at {addr:#x}");
    }
}

#[test]
fn recorded_trace_replays_identically() {
    // Record a trace, replay it through a fresh hierarchy, and compare
    // every statistic with a direct run — the archival path is exact.
    let profile = spec2000_profiles()[2];
    let ops: Vec<MemOp> = TraceGenerator::new(&profile, 99).take(30_000).collect();

    let mut buf = Vec::new();
    write_trace(&mut buf, ops.iter().copied()).unwrap();
    let replayed = read_trace(std::io::BufReader::new(&buf[..])).unwrap();
    assert_eq!(replayed, ops);

    let run = |trace: &[MemOp]| {
        let l1 = CacheGeometry::new(32 * 1024, 2, 32).unwrap();
        let l2 = CacheGeometry::new(256 * 1024, 4, 32).unwrap();
        let mut h = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
        h.run(trace.iter().copied());
        h.stats()
    };
    let (a1, a2) = run(&ops);
    let (b1, b2) = run(&replayed);
    assert_eq!(a1, b1);
    assert_eq!(a2, b2);
}

#[test]
fn byte_stores_flow_through_the_whole_stack() {
    // A profile with byte stores runs through hierarchy + CPPC with the
    // same final memory image as an unprotected run.
    let profile = *spec2000_profiles()
        .iter()
        .find(|p| p.name == "gzip")
        .unwrap();
    assert!(profile.byte_store_fraction > 0.0);

    let geo = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
    let mut protected =
        cppc::core::CppcCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let mut mem_p = MainMemory::new();
    let mut plain = cppc::cache_sim::Cache::new(geo, ReplacementPolicy::Lru);
    let mut mem_u = MainMemory::new();

    let mut byte_ops = 0;
    for op in TraceGenerator::new(&profile, 3).take(40_000) {
        match op {
            MemOp::Load(a) => {
                let x = protected.load_word(a, &mut mem_p).unwrap();
                let y = plain.load_word(a, &mut mem_u);
                assert_eq!(x, y);
            }
            MemOp::Store(a, v) => {
                protected.store_word(a, v, &mut mem_p).unwrap();
                plain.store_word(a, v, &mut mem_u);
            }
            MemOp::StoreByte(a, v) => {
                byte_ops += 1;
                protected.store_byte(a, v, &mut mem_p).unwrap();
                plain.store_byte(a, v, &mut mem_u);
            }
        }
    }
    assert!(byte_ops > 100, "byte stores exercised: {byte_ops}");
    assert!(protected.verify_invariant());
    protected.flush(&mut mem_p).unwrap();
    plain.flush(&mut mem_u);
    assert_eq!(mem_p, mem_u, "identical final memory images");
}
