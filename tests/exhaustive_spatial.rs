//! Exhaustive spatial-fault verification: every solid RxC square, at
//! every row position and a dense grid of column positions, injected
//! into a fully dirty CPPC — the strongest form of the §4.3–§4.6
//! claims:
//!
//! * with the paper configuration (one register pair), every square
//!   with R ≤ 7 is corrected exactly, and R = 8 squares either correct
//!   exactly or refuse (DUE);
//! * with two register pairs, *everything* up to 8x8 is corrected;
//! * silent corruption never occurs, anywhere.

use cppc::cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::core::{CppcCache, CppcConfig};
use cppc::fault::model::{BitFlip, FaultPattern};
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

/// 512-byte cache: 8 sets x 2 ways x 4 words = 32 way-0 rows.
fn build(config: CppcConfig) -> (CppcCache, MainMemory, Vec<u64>) {
    let geo = CacheGeometry::new(512, 2, 32).unwrap();
    let mut cache = CppcCache::new_l1(geo, config, ReplacementPolicy::Lru).unwrap();
    let mut mem = MainMemory::new();
    let mut rng = StdRng::seed_from_u64(0xE4A);
    let mut values = Vec::new();
    for row in 0..16 {
        let (set, way, word) = cache.layout().location_of(row);
        assert_eq!(way, 0);
        let addr = geo.address_of(0, set) + (word * 8) as u64;
        let v = rng.random();
        cache.store_word(addr, v, &mut mem).unwrap();
        values.push(v);
    }
    (cache, mem, values)
}

fn addr_of_row(cache: &CppcCache, row: usize) -> u64 {
    let (set, _, word) = cache.layout().location_of(row);
    cache.geometry().address_of(0, set) + (word * 8) as u64
}

fn square(row0: usize, col0: u32, rows: usize, cols: u32) -> FaultPattern {
    let mut flips = Vec::new();
    for dr in 0..rows {
        for dc in 0..cols {
            flips.push(BitFlip {
                row: row0 + dr,
                col: col0 + dc,
            });
        }
    }
    FaultPattern::new(flips)
}

fn sweep(config: CppcConfig, max_rows: usize) -> (u64, u64, u64) {
    let (mut corrected, mut dues, mut sdc) = (0u64, 0u64, 0u64);
    for rows in 1..=max_rows {
        for cols in 1..=8u32 {
            for row0 in 0..=(16 - rows) {
                for col0 in (0..=(64 - cols)).step_by(3) {
                    let (mut cache, mut mem, values) = build(config);
                    cache.inject(&square(row0, col0, rows, cols));
                    match cache.recover_all(&mut mem) {
                        Err(_) => dues += 1,
                        Ok(_) => {
                            let clean = values
                                .iter()
                                .enumerate()
                                .all(|(r, &v)| cache.peek_word(addr_of_row(&cache, r)) == Some(v));
                            if clean {
                                corrected += 1;
                            } else {
                                sdc += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    (corrected, dues, sdc)
}

#[test]
fn paper_config_corrects_every_square_up_to_seven_rows() {
    let (corrected, dues, sdc) = sweep(CppcConfig::paper(), 7);
    assert_eq!(sdc, 0, "silent corruption is forbidden");
    assert_eq!(dues, 0, "squares of <= 7 rows are always locatable");
    assert!(corrected > 5_000, "cases covered: {corrected}");
}

#[test]
fn paper_config_eight_row_squares_never_corrupt() {
    // R = 8 hits the §4.6 ambiguities: DUE is legal, corruption is not.
    let (mut corrected, mut dues, mut sdc) = (0u64, 0u64, 0u64);
    for cols in 1..=8u32 {
        for row0 in 0..=8usize {
            for col0 in (0..=(64 - cols)).step_by(3) {
                let (mut cache, mut mem, values) = build(CppcConfig::paper());
                cache.inject(&square(row0, col0, 8, cols));
                match cache.recover_all(&mut mem) {
                    Err(_) => dues += 1,
                    Ok(_) => {
                        let clean = values
                            .iter()
                            .enumerate()
                            .all(|(r, &v)| cache.peek_word(addr_of_row(&cache, r)) == Some(v));
                        if clean {
                            corrected += 1;
                        } else {
                            sdc += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(sdc, 0, "silent corruption is forbidden");
    assert!(dues > 0, "the solid 8x8 family must refuse with one pair");
    let _ = corrected;
}

#[test]
fn two_pairs_correct_every_square_up_to_eight_rows() {
    let (corrected, dues, sdc) = sweep(CppcConfig::two_pairs(), 8);
    assert_eq!(sdc, 0, "silent corruption is forbidden");
    assert_eq!(dues, 0, "two pairs close the section 4.6 gaps");
    assert!(corrected > 6_000, "cases covered: {corrected}");
}

#[test]
fn eight_pairs_correct_every_square_up_to_eight_rows() {
    let (corrected, dues, sdc) = sweep(CppcConfig::eight_pairs(), 8);
    assert_eq!(sdc, 0);
    assert_eq!(dues, 0);
    assert!(corrected > 6_000);
}
