//! Cross-crate gates for the design-space explorer: the sweep document
//! must be a pure function of the spec — byte-identical at any worker
//! count, and byte-identical whether a sweep ran straight through or
//! was interrupted and resumed from its per-config checkpoints.

use std::sync::atomic::{AtomicBool, Ordering};

use cppc::explore::doc::{pretty, sweep_doc};
use cppc::explore::{run_sweep, SweepOptions, SweepOutcome, SweepSpec};

/// A sweep small enough to run in a test but wide enough to exercise
/// every axis: two schemes, two cache sizes, two interleave degrees,
/// scrubbing on and off.
fn tiny_spec() -> SweepSpec {
    let mut spec = SweepSpec::quick_tier();
    spec.tier = "test".to_string();
    spec.trials = 8;
    spec.workload_ops = 4_000;
    spec
}

fn doc_bytes(spec: &SweepSpec, opts: &SweepOptions) -> String {
    match run_sweep(spec, opts, None).expect("sweep runs") {
        SweepOutcome::Complete(points) => pretty(&sweep_doc(spec, &points)),
        SweepOutcome::Interrupted { .. } => unreachable!("no interrupt flag"),
    }
}

#[test]
fn sweep_doc_is_byte_identical_across_thread_counts() {
    let spec = tiny_spec();
    let reference = doc_bytes(
        &spec,
        &SweepOptions {
            threads: 1,
            checkpoint_dir: None,
        },
    );
    for threads in [2usize, 8] {
        let got = doc_bytes(
            &spec,
            &SweepOptions {
                threads,
                checkpoint_dir: None,
            },
        );
        assert_eq!(got, reference, "threads={threads} changed the document");
    }
    // The document is also non-trivial: every quick-tier config shows.
    assert!(reference.contains("\"configs\": 28"), "{reference}");
}

#[test]
fn pre_raised_interrupt_stops_before_any_config() {
    let spec = tiny_spec();
    let flag = AtomicBool::new(true);
    let opts = SweepOptions {
        threads: 4,
        checkpoint_dir: None,
    };
    match run_sweep(&spec, &opts, Some(&flag)).expect("sweep starts") {
        SweepOutcome::Interrupted { completed, total } => {
            assert_eq!(completed, 0);
            assert_eq!(total, 28);
        }
        SweepOutcome::Complete(_) => panic!("a raised flag must interrupt the sweep"),
    }
    assert!(flag.load(Ordering::Acquire), "flag is never cleared");
}

#[test]
fn resumed_sweep_matches_uninterrupted_run() {
    let dir = std::env::temp_dir().join("cppc_explore_resume_test");
    let _ = std::fs::remove_dir_all(&dir);

    // Warm the checkpoint store with only the cppc half of the grid
    // (an include filter), as an interrupted sweep would leave behind.
    let mut partial = tiny_spec();
    partial.include = vec!["cppc/".to_string()];
    let opts = SweepOptions {
        threads: 2,
        checkpoint_dir: Some(dir.clone()),
    };
    match run_sweep(&partial, &opts, None).expect("partial sweep runs") {
        SweepOutcome::Complete(points) => assert_eq!(points.len(), 8),
        SweepOutcome::Interrupted { .. } => unreachable!("no interrupt flag"),
    }

    // The full sweep reuses those checkpoints (the digest ignores
    // filters) and must produce the same bytes as a fresh run.
    let spec = tiny_spec();
    let resumed = doc_bytes(&spec, &opts);
    let fresh = doc_bytes(
        &spec,
        &SweepOptions {
            threads: 2,
            checkpoint_dir: None,
        },
    );
    assert_eq!(resumed, fresh, "checkpoint restore changed the document");

    let _ = std::fs::remove_dir_all(&dir);
}
