//! The metrics a deterministic campaign publishes must not depend on
//! how many worker threads executed it: counters are derived only from
//! the trial work itself, and the engine's shard decomposition is fixed
//! by the config, not the schedule.
//!
//! Timers are excluded — span durations are wall-clock and so is their
//! histogram — but span *counts* are checked, since one shard records
//! exactly one latency span regardless of which thread ran it.

use cppc::cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::campaign::{run, CampaignConfig};
use cppc::core::{CppcCache, CppcConfig};
use cppc::fault::campaign::{Outcome, OutcomeTally};
use cppc::fault::model::{FaultGenerator, FaultModel};
use cppc::obs::{GroupSnapshot, SnapshotValue};
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

const SEED: u64 = 0x0B5_DE7;
const TRIALS: u64 = 96;

/// The same strike-and-recover experiment `cppc-cli stats` runs,
/// shrunk: it exercises cppc-core counters (R1/R2 updates, recovery
/// walks, corrections) and campaign counters in one pass.
fn experiment(rng: &mut StdRng, trial: u64) -> Outcome {
    let geo = CacheGeometry::new(1024, 2, 32).expect("valid geometry");
    let mut mem = MainMemory::new();
    let mut cache = CppcCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru)
        .expect("validated config");
    let mut fill = StdRng::seed_from_u64(trial);
    for set in 0..geo.num_sets() {
        let addr = geo.address_of(0, set);
        let v: u64 = fill.random();
        cache.store_word(addr, v, &mut mem).expect("no faults yet");
    }
    let fault = FaultModel::SpatialSquare {
        rows: 4,
        cols: 4,
        density: 1.0,
    };
    let mut generator = FaultGenerator::new(cache.layout().num_rows() / 2, rng.random());
    if cache.inject(&generator.sample(fault)) == 0 {
        return Outcome::Masked;
    }
    match cache.recover_all(&mut mem) {
        Err(_) => Outcome::DetectedUnrecoverable,
        Ok(_) => Outcome::Corrected,
    }
}

/// Runs the campaign on `threads` workers and returns every
/// deterministic metric value: counters, gauges, and timer counts
/// (timer durations are wall-clock and excluded).
fn deterministic_metrics(threads: usize) -> Vec<(String, u64)> {
    cppc::obs::reset_all();
    let cfg = CampaignConfig::new(SEED, TRIALS).threads(threads);
    let report: cppc::campaign::CampaignReport<OutcomeTally> = run(&cfg, experiment);
    assert_eq!(report.trials_merged, TRIALS);

    let groups: Vec<GroupSnapshot> = cppc::obs::snapshot();
    let mut out = Vec::new();
    for g in &groups {
        for m in &g.metrics {
            let v = match &m.value {
                SnapshotValue::Counter(v) => *v,
                SnapshotValue::Gauge(v) => u64::try_from(*v).expect("gauges stay non-negative"),
                SnapshotValue::Timer(t) => t.count,
            };
            out.push((m.name.to_string(), v));
        }
    }
    out
}

#[test]
fn metrics_identical_across_thread_counts() {
    let single = deterministic_metrics(1);
    let multi = deterministic_metrics(4);
    assert_eq!(
        single, multi,
        "metrics snapshot must not depend on thread count"
    );
    if cfg!(feature = "obs") {
        assert!(
            single
                .iter()
                .any(|(name, v)| name == "cppc.r1_updates" && *v > 0),
            "experiment exercised the instrumented paths: {single:?}"
        );
        assert!(
            single
                .iter()
                .any(|(name, v)| name == "campaign.trials_executed" && *v == TRIALS),
            "all trials counted once: {single:?}"
        );
    }
}
