//! Golden equivalence for the `ProtectionScheme` refactor: the four
//! ported schemes (`cppc`, `parity1d`, `secded-interleaved`,
//! `parity2d`) must reproduce the historical baked-in campaign
//! closures **bit for bit** — same tallies, same checkpoint bytes — at
//! 1, 2 and 8 threads.
//!
//! The "legacy" closures below are the pre-refactor campaign bodies,
//! kept inline here as the frozen reference: each drives the concrete
//! cache type directly (no trait), fills way 0 from the trial-seeded
//! RNG, strikes with the model's historical draw order (one `u64`
//! strike seed — or interleaved SECDED's two physical-range draws) and
//! classifies with the historical rules. If a scheme wrapper ever
//! consumes the RNG stream differently or reorders a classification
//! branch, these tests fail.

use std::path::PathBuf;

use cppc_bench::experiments::{inject_geometry, scheme_experiment};
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_campaign::{run, run_resumable, CampaignConfig, CheckpointPolicy};
use cppc_core::baselines::{OneDimParityCache, SecdedCache, TwoDimParityCache};
use cppc_core::{CppcCache, CppcConfig, SchemeKind};
use cppc_fault::campaign::{Outcome, OutcomeTally};
use cppc_fault::model::{FaultGenerator, FaultModel};

const SEED: u64 = 0xE0_17A1;
const TRIALS: u64 = 96;
const SHARD: u64 = 16;
const FAULT: FaultModel = FaultModel::SpatialSquare {
    rows: 4,
    cols: 4,
    density: 1.0,
};

/// The shared warm-up: fill way 0 with trial-seeded values through
/// `store`, returning ground truth. Identical to the fill loops of the
/// historical closures and of `scheme_experiment`.
fn fill(trial: u64, mut store: impl FnMut(u64, u64)) -> Vec<(u64, u64)> {
    let geo = inject_geometry();
    let mut rng = StdRng::seed_from_u64(trial);
    let mut truth = Vec::new();
    for set in 0..geo.num_sets() {
        for word in 0..geo.words_per_block() {
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            let v: u64 = rng.random();
            store(addr, v);
            truth.push((addr, v));
        }
    }
    truth
}

/// Pre-refactor CPPC campaign body (`inject_experiment`'s protocol).
fn legacy_cppc(rng: &mut StdRng, trial: u64) -> Outcome {
    let mut mem = MainMemory::new();
    let mut cache = CppcCache::new_l1(
        inject_geometry(),
        CppcConfig::paper(),
        ReplacementPolicy::Lru,
    )
    .unwrap();
    let truth = fill(trial, |a, v| cache.store_word(a, v, &mut mem).unwrap());
    let mut generator = FaultGenerator::new(cache.layout().num_rows() / 2, rng.random());
    if cache.inject(&generator.sample(FAULT)) == 0 {
        return Outcome::Masked;
    }
    match cache.recover_all(&mut mem) {
        Err(_) => Outcome::DetectedUnrecoverable,
        Ok(_) => {
            if truth.iter().all(|&(a, v)| cache.peek_word(a) == Some(v)) {
                Outcome::Corrected
            } else {
                Outcome::SilentCorruption
            }
        }
    }
}

/// Pre-refactor 1D-parity campaign body (coverage-matrix protocol:
/// all loads surviving means the flips were parity-masked).
fn legacy_parity1d(rng: &mut StdRng, trial: u64) -> Outcome {
    let mut mem = MainMemory::new();
    let mut cache = OneDimParityCache::new(inject_geometry(), 8, ReplacementPolicy::Lru);
    let truth = fill(trial, |a, v| cache.store_word(a, v, &mut mem));
    let mut generator = FaultGenerator::new(cache.layout().num_rows() / 2, rng.random());
    if cache.inject(&generator.sample(FAULT)) == 0 {
        return Outcome::Masked;
    }
    for &(addr, v) in &truth {
        match cache.load_word(addr, &mut mem) {
            Err(_) => return Outcome::DetectedUnrecoverable,
            Ok(got) if got != v => return Outcome::SilentCorruption,
            Ok(_) => {}
        }
    }
    Outcome::Masked
}

/// Pre-refactor interleaved-SECDED campaign body, including the
/// physical-strike translation and its two-range RNG draw order.
fn legacy_secded(rng: &mut StdRng, trial: u64) -> Outcome {
    let mut mem = MainMemory::new();
    let mut cache = SecdedCache::new(inject_geometry(), true, ReplacementPolicy::Lru);
    let truth = fill(trial, |a, v| cache.store_word(a, v, &mut mem));
    let logical_rows = cache.layout().num_rows() / 2;
    let (rows, cols) = match FAULT {
        FaultModel::TemporalSingleBit | FaultModel::TemporalMultiBit { .. } => (1, 1),
        FaultModel::VerticalStripe { rows } => (rows, 1),
        FaultModel::HorizontalBurst { cols } => (1, cols),
        FaultModel::SpatialSquare { rows, cols, .. } => (rows, cols),
    };
    let physical_rows = logical_rows / 8;
    let prows = rows.div_ceil(8).max(1).min(physical_rows);
    let row0 = rng.random_range(0..=(physical_rows - prows));
    let col0 = rng.random_range(0..=(512 - cols));
    if cache.inject_spatial(row0, col0, prows, cols).is_empty() {
        return Outcome::Masked;
    }
    for &(addr, v) in &truth {
        match cache.load_word(addr, &mut mem) {
            Err(_) => return Outcome::DetectedUnrecoverable,
            Ok(got) if got != v => return Outcome::SilentCorruption,
            Ok(_) => {}
        }
    }
    Outcome::Corrected
}

/// Pre-refactor 2D-parity campaign body (one vertical row).
fn legacy_parity2d(rng: &mut StdRng, trial: u64) -> Outcome {
    let mut mem = MainMemory::new();
    let mut cache = TwoDimParityCache::new(inject_geometry(), 1, ReplacementPolicy::Lru);
    let truth = fill(trial, |a, v| cache.store_word(a, v, &mut mem));
    let mut generator = FaultGenerator::new(cache.layout().num_rows() / 2, rng.random());
    if cache.inject(&generator.sample(FAULT)) == 0 {
        return Outcome::Masked;
    }
    match cache.recover_all() {
        Err(_) => Outcome::DetectedUnrecoverable,
        Ok(()) => {
            if truth.iter().all(|&(a, v)| cache.peek_word(a) == Some(v)) {
                Outcome::Corrected
            } else {
                Outcome::SilentCorruption
            }
        }
    }
}

fn legacy_of(kind: SchemeKind) -> fn(&mut StdRng, u64) -> Outcome {
    match kind {
        SchemeKind::Cppc => legacy_cppc,
        SchemeKind::Parity1d => legacy_parity1d,
        SchemeKind::SecdedInterleaved => legacy_secded,
        SchemeKind::Parity2d => legacy_parity2d,
        other => panic!("{other} has no pre-refactor path"),
    }
}

const PORTED: [SchemeKind; 4] = [
    SchemeKind::Cppc,
    SchemeKind::Parity1d,
    SchemeKind::SecdedInterleaved,
    SchemeKind::Parity2d,
];

fn cfg(threads: usize) -> CampaignConfig {
    CampaignConfig::new(SEED, TRIALS)
        .threads(threads)
        .shard_size(SHARD)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cppc_scheme_equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs one experiment body through `run_resumable` (fresh checkpoint
/// file) and returns the tally plus the final checkpoint bytes.
fn run_checkpointed<F>(label: &str, threads: usize, experiment: F) -> (OutcomeTally, Vec<u8>)
where
    F: Fn(&mut StdRng, u64) -> Outcome + Sync,
{
    let path = tmp(&format!("{label}_{threads}.json"));
    let _ = std::fs::remove_file(&path);
    let policy = CheckpointPolicy {
        path: path.clone(),
        every_shards: 1,
        resume: false,
    };
    let report = run_resumable::<OutcomeTally, _, _>(&cfg(threads), &policy, experiment, |_| {})
        .expect("campaign completes");
    assert!(report.is_complete());
    let bytes = std::fs::read(&path).expect("final checkpoint written");
    let _ = std::fs::remove_file(&path);
    (report.result, bytes)
}

#[test]
fn ported_schemes_match_legacy_tallies_and_checkpoint_bytes() {
    for kind in PORTED {
        let legacy = legacy_of(kind);
        for threads in [1usize, 2, 8] {
            let (legacy_tally, legacy_bytes) =
                run_checkpointed(&format!("legacy_{kind}"), threads, legacy);
            let (scheme_tally, scheme_bytes) = run_checkpointed(
                &format!("scheme_{kind}"),
                threads,
                scheme_experiment(kind, CppcConfig::paper(), FAULT),
            );
            assert_eq!(
                scheme_tally, legacy_tally,
                "{kind} tally diverged at {threads} threads"
            );
            assert_eq!(
                scheme_bytes, legacy_bytes,
                "{kind} checkpoint bytes diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn tallies_are_thread_invariant_for_every_scheme() {
    // The zoo additions have no legacy path; pin their determinism the
    // same way the engine guarantees it for the ported four.
    for kind in SchemeKind::ALL {
        let base: OutcomeTally =
            run(&cfg(1), scheme_experiment(kind, CppcConfig::paper(), FAULT)).result;
        assert_eq!(base.total(), TRIALS);
        for threads in [2usize, 8] {
            let t: OutcomeTally = run(
                &cfg(threads),
                scheme_experiment(kind, CppcConfig::paper(), FAULT),
            )
            .result;
            assert_eq!(t, base, "{kind} tally varies at {threads} threads");
        }
    }
}

#[test]
fn legacy_reference_is_exercised() {
    // Guard against the frozen reference decaying into dead code that
    // masks everything: the 4x4 solid strike must actually separate
    // the schemes (CPPC and interleaved SECDED correct it, 1D parity
    // and single-row 2D parity end in DUE).
    let (cppc, _) = run_checkpointed("probe_cppc", 1, legacy_cppc);
    let (parity, _) = run_checkpointed("probe_parity", 1, legacy_parity1d);
    assert!(cppc.corrected > 0, "CPPC corrects the 4x4 strike");
    assert_eq!(cppc.sdc, 0);
    assert!(parity.due > 0, "1D parity cannot correct dirty faults");
    assert_eq!(parity.corrected, 0);
}
