//! End-to-end integration: realistic traces running on a CPPC while
//! faults strike mid-execution, with a golden (fault-free) memory model
//! as the oracle. No scheme interaction may ever return wrong data.

use cppc::cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::core::{CppcCache, CppcConfig};
use cppc::fault::model::{FaultGenerator, FaultModel};
use cppc::workloads::{spec2000_profiles, TraceGenerator};
use cppc_cache_sim::hierarchy::MemOp;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Runs `ops` operations of a SPEC-like trace on an L1 CPPC backed by
/// main memory, injecting a fault every `fault_every` operations, and
/// checks every load against a software oracle.
fn run_with_faults(config: CppcConfig, model: FaultModel, fault_every: usize, seed: u64) {
    let geo = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
    let mut cache = CppcCache::new_l1(geo, config, ReplacementPolicy::Lru).unwrap();
    let mut mem = MainMemory::new();
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = spec2000_profiles()[0]; // gzip-like

    let mut generator = FaultGenerator::new(cache.layout().num_rows(), seed ^ 0xF417);
    let mut dues = 0usize;
    for (i, op) in TraceGenerator::new(&profile, seed).take(6_000).enumerate() {
        // Keep addresses inside a modest footprint so the fault generator
        // hits live data often.
        let addr = op.addr() % (64 * 1024);
        let result = match op {
            MemOp::Load(_) => cache.load_word(addr, &mut mem).map(|got| {
                assert_eq!(
                    got,
                    *oracle.get(&addr).unwrap_or(&0),
                    "SDC at op {i}, addr {addr:#x}"
                );
            }),
            MemOp::Store(_, v) => {
                let v = rng.random::<u64>() ^ v;
                let r = cache.store_word(addr, v, &mut mem);
                if r.is_ok() {
                    oracle.insert(addr, v);
                }
                r.map(|_| ())
            }
            MemOp::StoreByte(_, v) => {
                let word_addr = addr & !7;
                let lane = (addr % 8) as u32;
                let r = cache.store_byte(addr, v, &mut mem);
                if r.is_ok() {
                    let old = *oracle.get(&word_addr).unwrap_or(&0);
                    let merged = (old & !(0xFFu64 << (8 * lane))) | (u64::from(v) << (8 * lane));
                    oracle.insert(word_addr, merged);
                }
                r.map(|_| ())
            }
        };
        if result.is_err() {
            // A DUE halts the machine; end this run.
            dues += 1;
            break;
        }
        if i % fault_every == fault_every - 1 {
            cache.inject(&generator.sample(model));
        }
    }
    // DUEs are legal (detected, refused); corruption is not — the
    // assert inside the loop already guarantees that.
    let _ = dues;
}

#[test]
fn single_bit_faults_never_corrupt_paper_config() {
    for seed in 0..8 {
        run_with_faults(CppcConfig::paper(), FaultModel::TemporalSingleBit, 97, seed);
    }
}

#[test]
fn single_bit_faults_never_corrupt_basic_config() {
    for seed in 0..8 {
        run_with_faults(
            CppcConfig::basic(),
            FaultModel::TemporalSingleBit,
            211,
            seed,
        );
    }
}

#[test]
fn small_spatial_squares_never_corrupt() {
    let model = FaultModel::SpatialSquare {
        rows: 3,
        cols: 3,
        density: 1.0,
    };
    for seed in 0..8 {
        run_with_faults(CppcConfig::paper(), model, 151, seed);
    }
}

#[test]
fn vertical_stripes_never_corrupt_two_pairs() {
    let model = FaultModel::VerticalStripe { rows: 4 };
    for seed in 0..8 {
        run_with_faults(CppcConfig::two_pairs(), model, 131, seed);
    }
}

#[test]
fn eight_pairs_handle_dense_squares() {
    let model = FaultModel::SpatialSquare {
        rows: 8,
        cols: 8,
        density: 0.7,
    };
    for seed in 0..8 {
        run_with_faults(CppcConfig::eight_pairs(), model, 173, seed);
    }
}

#[test]
fn flush_after_faulty_run_reaches_memory_correctly() {
    // Store a working set, inject + recover, flush, and compare memory
    // against the oracle — the end-to-end write-back path.
    let geo = CacheGeometry::new(4 * 1024, 2, 32).unwrap();
    let mut cache = CppcCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let mut mem = MainMemory::new();
    let mut oracle = HashMap::new();
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..2_000 {
        let addr = (rng.random_range(0..16 * 1024u64)) & !7;
        let v: u64 = rng.random();
        cache.store_word(addr, v, &mut mem).unwrap();
        oracle.insert(addr, v);
    }
    let mut generator = FaultGenerator::new(cache.layout().num_rows(), 5);
    for _ in 0..10 {
        cache.inject(&generator.sample(FaultModel::TemporalSingleBit));
        cache.recover_all(&mut mem).unwrap();
    }
    cache.flush(&mut mem).unwrap();
    for (addr, v) in oracle {
        assert_eq!(mem.peek_word(addr), v, "addr {addr:#x}");
    }
}
