//! Differential oracle for the warm-state snapshot hot path.
//!
//! The snapshot subsystem replaces per-trial warmup replay with a
//! restore from a captured warm state. These tests pin the claim that
//! the substitution is invisible: trial by trial, tally by tally and
//! checkpoint byte by checkpoint byte, the snapshot-backed
//! [`cppc_bench::mbe::experiment`] must be indistinguishable from the
//! replay-from-cold reference path — including across an
//! interrupt/resume cycle.

use cppc::cache_sim::memory::MainMemory;
use cppc::cache_sim::replacement::ReplacementPolicy;
use cppc::core::{CppcCache, CppcConfig};
use cppc::fault::campaign::{Campaign, Outcome, OutcomeTally};
use cppc_bench::mbe::{
    experiment, experiment_cold, experiment_model, geometry, oracle, SEED, SOLID_MODEL,
    SPARSE_MODEL,
};
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::{run_resumable, trial_rng, CheckpointPolicy};
use cppc_fault::model::FaultModel;

/// Trial-by-trial equality: for every campaign trial index, the warm
/// restore path and the cold replay path must classify the injected
/// fault identically, for both the solid strike and the sparse strike
/// that exercises the locator and DUE branches.
#[test]
fn warm_and_cold_paths_agree_trial_by_trial() {
    for (name, model, trials) in [
        ("solid", SOLID_MODEL, 400u64),
        ("sparse", SPARSE_MODEL, 400u64),
    ] {
        let mut outcomes = [0u64; 2];
        for trial in 0..trials {
            let warm = experiment_model(model, &mut trial_rng(SEED, trial));
            let cold = cold_model(model, &mut trial_rng(SEED, trial), trial);
            assert_eq!(
                warm, cold,
                "{name} trial {trial}: warm path classified {warm:?}, cold path {cold:?}"
            );
            outcomes[usize::from(warm == Outcome::Corrected)] += 1;
        }
        // The comparison must not be vacuous: both branch families fire.
        assert!(
            outcomes.iter().all(|&n| n > 0) || name == "solid",
            "{name} campaign exercised only one outcome class"
        );
    }
}

fn cold_model(model: FaultModel, rng: &mut StdRng, trial: u64) -> Outcome {
    cppc_bench::mbe::experiment_model_cold(model, rng, trial)
}

/// Campaign tallies through the warm pool must match the golden values
/// captured on the replay-from-cold tree (see `hotpath_identity.rs`),
/// at every thread count.
#[test]
fn warm_campaign_tallies_match_cold_goldens() {
    for threads in [1usize, 2, 8] {
        let t = Campaign::new(SEED).run_parallel(2000, threads, experiment);
        assert_eq!(
            (t.masked, t.corrected, t.due, t.sdc),
            (0, 2000, 0, 0),
            "solid warm tally diverged at {threads} threads"
        );
        let sparse = |rng: &mut StdRng, _trial: u64| experiment_model(SPARSE_MODEL, rng);
        let t = Campaign::new(SEED).run_parallel(600, threads, sparse);
        assert_eq!(
            (t.masked, t.corrected, t.due, t.sdc),
            (0, 166, 434, 0),
            "sparse warm tally diverged at {threads} threads"
        );
    }
}

fn checkpoint_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cppc_snapshot_oracle");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Checkpoint files written by a warm-pool campaign must be
/// byte-identical to those written by the cold reference campaign —
/// the snapshot path may not perturb a single serialised counter.
#[test]
fn warm_checkpoint_bytes_match_cold_checkpoint_bytes() {
    let cfg = Campaign::new(SEED).config(500).threads(2);
    let mut policy = CheckpointPolicy::new(checkpoint_path("warm.ckpt"));
    policy.every_shards = 1;
    let report = run_resumable::<OutcomeTally, _, _>(&cfg, &policy, experiment, |_| {}).unwrap();
    assert!(report.is_complete());
    let warm_bytes = std::fs::read(&policy.path).unwrap();

    let mut cold_policy = CheckpointPolicy::new(checkpoint_path("cold.ckpt"));
    cold_policy.every_shards = 1;
    let report =
        run_resumable::<OutcomeTally, _, _>(&cfg, &cold_policy, experiment_cold, |_| {}).unwrap();
    assert!(report.is_complete());
    let cold_bytes = std::fs::read(&cold_policy.path).unwrap();

    assert_eq!(
        warm_bytes, cold_bytes,
        "snapshot path changed the checkpoint serialisation"
    );
    let _ = std::fs::remove_file(&policy.path);
    let _ = std::fs::remove_file(&cold_policy.path);
}

/// Interrupting a warm-pool campaign mid-flight and resuming it from
/// the checkpoint must converge on the same final checkpoint bytes and
/// tally as the uninterrupted cold campaign.
#[test]
fn interrupted_warm_campaign_resumes_to_cold_result() {
    let cfg = Campaign::new(SEED).config(500).threads(2);

    // Reference: one uninterrupted cold run.
    let mut cold_policy = CheckpointPolicy::new(checkpoint_path("resume_cold.ckpt"));
    cold_policy.every_shards = 1;
    let cold_report =
        run_resumable::<OutcomeTally, _, _>(&cfg, &cold_policy, experiment_cold, |_| {}).unwrap();
    assert!(cold_report.is_complete());
    let cold_bytes = std::fs::read(&cold_policy.path).unwrap();

    // Warm run, interrupted after 3 shards...
    let mut policy = CheckpointPolicy::new(checkpoint_path("resume_warm.ckpt"));
    policy.every_shards = 1;
    let partial = run_resumable::<OutcomeTally, _, _>(
        &cfg.clone().stop_after_shards(3),
        &policy,
        experiment,
        |_| {},
    )
    .unwrap();
    assert!(
        !partial.is_complete(),
        "campaign should have been interrupted"
    );

    // ...then resumed to completion (policy.resume defaults to true).
    let resumed = run_resumable::<OutcomeTally, _, _>(&cfg, &policy, experiment, |_| {}).unwrap();
    assert!(resumed.is_complete());
    let warm_bytes = std::fs::read(&policy.path).unwrap();

    assert_eq!(
        warm_bytes, cold_bytes,
        "interrupt/resume through the warm pool changed the final checkpoint"
    );
    assert_eq!(
        (
            resumed.result.masked,
            resumed.result.corrected,
            resumed.result.due,
            resumed.result.sdc
        ),
        (
            cold_report.result.masked,
            cold_report.result.corrected,
            cold_report.result.due,
            cold_report.result.sdc
        ),
        "interrupt/resume through the warm pool changed the merged tally"
    );
    let _ = std::fs::remove_file(&policy.path);
    let _ = std::fs::remove_file(&cold_policy.path);
}

/// Restoring a snapshot after a destructive trial (inject + recover)
/// reproduces the captured simulator state exactly: stats, register
/// state and every data word match a freshly warmed twin.
#[test]
fn restore_reproduces_warm_state_after_destructive_trial() {
    let mut mem = MainMemory::new();
    let mut cache =
        CppcCache::new_l1(geometry(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let truth = oracle(SEED);
    for &(addr, v) in &truth {
        cache.store_word(addr, v, &mut mem).unwrap();
    }
    let cache_snap = cache.snapshot();
    let mem_snap = mem.snapshot();

    // A twin warmed identically, never touched afterwards.
    let mut twin_mem = MainMemory::new();
    let mut twin =
        CppcCache::new_l1(geometry(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    for &(addr, v) in &truth {
        twin.store_word(addr, v, &mut twin_mem).unwrap();
    }

    // Run a destructive trial, then restore.
    let rows = cache.layout().num_rows() / 2;
    let mut generator = cppc_fault::model::FaultGenerator::new(rows, 0xDEAD_BEEF);
    let pattern = generator.sample(SOLID_MODEL);
    assert!(cache.inject(&pattern) > 0, "strike must land");
    cache.recover_all(&mut mem).unwrap();
    cache.restore_snapshot(&cache_snap);
    mem.restore_snapshot(&mem_snap);

    assert_eq!(cache.stats(), twin.stats(), "restored stats diverged");
    for &(addr, v) in &truth {
        assert_eq!(cache.peek_word(addr), Some(v), "restored word at {addr:#x}");
        assert_eq!(twin.peek_word(addr), Some(v));
    }
    // A second snapshot of the restored cache is identical to the first.
    assert_eq!(
        cache.snapshot(),
        cache_snap,
        "re-capture after restore differs"
    );
}
