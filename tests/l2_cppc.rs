//! Integration tests for the L2 CPPC (§3.5): an L1 write-back stream
//! drives an L2 CPPC at block granularity, with faults striking dirty
//! L2 data.

use cppc::cache_sim::{Cache, CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::core::{CppcCache, CppcConfig};
use cppc_cache_sim::cache::Backing;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Adapter: an L2 CPPC + memory acting as the backing store of a plain
/// L1 cache — write-backs become `write_block`s, fetches `read_block`s.
struct L2CppcBacking<'a> {
    l2: &'a mut CppcCache,
    mem: &'a mut MainMemory,
}

impl Backing for L2CppcBacking<'_> {
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]) {
        debug_assert_eq!(buf.len(), self.l2.geometry().words_per_block());
        self.l2
            .read_block_into(base, self.mem, buf)
            .expect("L2 DUE during fetch");
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        self.l2
            .write_block(base, data, dirty_mask, self.mem)
            .expect("L2 DUE during write-back");
    }
}

fn build() -> (Cache, CppcCache, MainMemory) {
    let l1_geo = CacheGeometry::new(1024, 2, 32).unwrap();
    let l2_geo = CacheGeometry::new(8 * 1024, 4, 32).unwrap();
    (
        Cache::new(l1_geo, ReplacementPolicy::Lru),
        CppcCache::new_l2(l2_geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap(),
        MainMemory::new(),
    )
}

#[test]
fn l1_traffic_keeps_l2_invariant() {
    let (mut l1, mut l2, mut mem) = build();
    let mut rng = StdRng::seed_from_u64(1);
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for _ in 0..20_000 {
        let addr = (rng.random_range(0..32 * 1024u64)) & !7;
        let mut backing = L2CppcBacking {
            l2: &mut l2,
            mem: &mut mem,
        };
        if rng.random_bool(0.4) {
            let v: u64 = rng.random();
            l1.store_word(addr, v, &mut backing);
            oracle.insert(addr, v);
        } else {
            let got = l1.load_word(addr, &mut backing);
            assert_eq!(got, *oracle.get(&addr).unwrap_or(&0));
        }
    }
    assert!(l2.verify_invariant(), "L2 CPPC invariant after L1 traffic");
    // L2 saw block-granularity read-before-writes.
    assert!(
        l2.stats().rbw_block_reads > 0,
        "write-backs hit dirty L2 blocks"
    );
}

#[test]
fn fault_in_dirty_l2_block_corrected() {
    let (mut l1, mut l2, mut mem) = build();
    // Dirty a block in L2 by storing through L1 and evicting.
    {
        let mut backing = L2CppcBacking {
            l2: &mut l2,
            mem: &mut mem,
        };
        l1.store_word(0x100, 0xFEED_F00D, &mut backing);
        // Two conflicting L1 blocks evict it (L1 has 8 sets x 32B: +256).
        l1.load_word(0x100 + 1024, &mut backing);
        l1.load_word(0x100 + 2048, &mut backing);
    }
    assert!(l2.dirty_word_count() > 0, "L2 holds the dirty data");

    // Strike the dirty word inside L2.
    l2.flip_data_bit_at(0x100, 21);

    // The next L1 miss re-reads the block from L2: detection + recovery.
    let mut backing = L2CppcBacking {
        l2: &mut l2,
        mem: &mut mem,
    };
    assert_eq!(l1.load_word(0x100, &mut backing), 0xFEED_F00D);
    assert!(l2.stats().corrected_dirty >= 1);
}

#[test]
fn l2_flush_propagates_corrected_data() {
    let (mut l1, mut l2, mut mem) = build();
    {
        let mut backing = L2CppcBacking {
            l2: &mut l2,
            mem: &mut mem,
        };
        l1.store_word(0x200, 42, &mut backing);
        l1.flush(&mut backing);
    }
    l2.flip_data_bit_at(0x200, 7);
    l2.flush(&mut mem).expect("flush recovers the fault first");
    assert_eq!(mem.peek_word(0x200), 42, "memory received corrected data");
}

#[test]
fn spatial_fault_across_l2_blocks_corrected() {
    let (mut l1, mut l2, mut mem) = build();
    {
        let mut backing = L2CppcBacking {
            l2: &mut l2,
            mem: &mut mem,
        };
        // Dirty several adjacent L2 rows via L1 write-backs.
        for i in 0..16u64 {
            l1.store_word(i * 8, 0x1111_0000 + i, &mut backing);
        }
        l1.flush(&mut backing);
    }
    assert!(l2.dirty_word_count() >= 16);
    // Vertical 2-bit strike on two adjacent rows of L2.
    use cppc::fault::model::{BitFlip, FaultPattern};
    let rows: Vec<usize> = {
        let layout = *l2.layout();
        let geo = *l2.geometry();
        let set0 = geo.set_index(0);
        vec![layout.row_of(set0, 0, 0), layout.row_of(set0, 0, 1)]
    };
    l2.inject(&FaultPattern::new(
        rows.iter().map(|&row| BitFlip { row, col: 3 }).collect(),
    ));
    l2.recover_all(&mut mem)
        .expect("byte shifting corrects the stripe");
    let mut backing = L2CppcBacking {
        l2: &mut l2,
        mem: &mut mem,
    };
    for i in 0..16u64 {
        assert_eq!(l1.load_word(i * 8, &mut backing), 0x1111_0000 + i);
    }
}
