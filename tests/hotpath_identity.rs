//! Bit-identity guard for the allocation-free hot path.
//!
//! The golden values below were captured on the pre-flattening tree
//! (nested `Vec<Vec<CacheBlock>>` storage, word-keyed `MainMemory`,
//! allocating `Backing::fetch_block`). The storage refactor must not
//! change a single counter, dirty-fraction bit, campaign tally or
//! checkpoint byte — on any thread count.

use cppc::cache_sim::geometry::CacheGeometry;
use cppc::cache_sim::hierarchy::TwoLevelHierarchy;
use cppc::cache_sim::hierarchy3::ThreeLevelHierarchy;
use cppc::cache_sim::memory::MainMemory;
use cppc::cache_sim::replacement::ReplacementPolicy;
use cppc::cache_sim::stats::CacheStats;
use cppc::core::{CppcCache, CppcConfig};
use cppc::fault::campaign::{Campaign, Outcome};
use cppc::fault::model::{FaultGenerator, FaultModel};
use cppc::timing::MachineConfig;
use cppc::workloads::BenchmarkProfile;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_campaign::{run_resumable, CheckpointPolicy};
use cppc_fault::campaign::OutcomeTally;
use cppc_workloads::{spec2000_profiles, TraceGenerator};

const EVAL_SEED: u64 = 0x15CA_2011;

fn run_profile(profile: &BenchmarkProfile, ops: usize, seed: u64) -> TwoLevelHierarchy {
    let machine = MachineConfig::table1();
    let l1 = machine.l1d.geometry().expect("valid L1");
    let l2 = machine.l2.geometry().expect("valid L2");
    let mut h = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
    h.set_cycles_per_op(profile.instructions_per_memop().round().max(1.0) as u64);
    h.set_sample_interval(2048);
    let mut generator = TraceGenerator::new(profile, seed);
    h.run(generator.by_ref().take(ops / 2));
    h.reset_stats();
    h.run(generator.take(ops));
    h
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn geometry() -> CacheGeometry {
    CacheGeometry::new(2048, 2, 32).unwrap()
}

fn oracle(seed: u64) -> Vec<(u64, u64)> {
    let geo = geometry();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = geo.num_sets() * geo.words_per_block();
    (0..rows)
        .map(|row| {
            let set = row / geo.words_per_block();
            let word = row % geo.words_per_block();
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            (addr, rng.random())
        })
        .collect()
}

fn mbe_experiment(model: FaultModel) -> impl Fn(&mut StdRng, u64) -> Outcome + Sync {
    move |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache =
            CppcCache::new_l1(geometry(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem).unwrap();
        }
        let rows = cache.layout().num_rows() / 2;
        let mut generator = FaultGenerator::new(rows, rng.random());
        let pattern = generator.sample(model);
        if cache.inject(&pattern) == 0 {
            return Outcome::Masked;
        }
        match cache.recover_all(&mut mem) {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(_) => {
                for &(addr, v) in &truth {
                    if cache.peek_word(addr) != Some(v) {
                        return Outcome::SilentCorruption;
                    }
                }
                Outcome::Corrected
            }
        }
    }
}

fn solid_square() -> FaultModel {
    FaultModel::SpatialSquare {
        rows: 4,
        cols: 4,
        density: 1.0,
    }
}

fn sparse_square() -> FaultModel {
    FaultModel::SpatialSquare {
        rows: 8,
        cols: 8,
        density: 0.4,
    }
}

#[test]
fn two_level_stats_match_golden_gzip() {
    let p = &spec2000_profiles()[0];
    assert_eq!(p.name, "gzip");
    let h = run_profile(p, 60_000, EVAL_SEED);
    let (l1, l2) = h.stats();
    let golden_l1 = CacheStats {
        load_hits: 36829,
        load_misses: 2709,
        store_hits: 17727,
        store_misses: 2735,
        stores_to_dirty: 9681,
        writebacks: 3006,
        writeback_words: 11538,
        clean_evictions: 2438,
        fills: 5444,
        dirty_word_samples_sum: 63720,
        dirty_word_samples: 29,
    };
    let golden_l2 = CacheStats {
        load_hits: 2624,
        load_misses: 2820,
        store_hits: 3006,
        store_misses: 0,
        stores_to_dirty: 167,
        writebacks: 0,
        writeback_words: 0,
        clean_evictions: 0,
        fills: 2820,
        dirty_word_samples_sum: 244077,
        dirty_word_samples: 29,
    };
    assert_eq!(l1, golden_l1);
    assert_eq!(l2, golden_l2);
    assert_eq!(h.l1_dirty_fraction().to_bits(), 0x3fe12a7b9611a7b9);
    assert_eq!(h.l2_dirty_fraction().to_bits(), 0x3fb07039611a7b96);
    assert_eq!(h.l1_tavg().unwrap().to_bits(), 0x40b9136d9c8bd854);
    assert_eq!(h.l2_tavg().unwrap().to_bits(), 0x40df28aaee22b403);
}

#[test]
fn two_level_stats_match_golden_mcf() {
    let p = &spec2000_profiles()[3];
    assert_eq!(p.name, "mcf");
    let h = run_profile(p, 60_000, EVAL_SEED);
    let (l1, l2) = h.stats();
    let golden_l1 = CacheStats {
        load_hits: 14141,
        load_misses: 33620,
        store_hits: 6225,
        store_misses: 6014,
        stores_to_dirty: 1747,
        writebacks: 7664,
        writeback_words: 10511,
        clean_evictions: 31970,
        fills: 39634,
        dirty_word_samples_sum: 8336,
        dirty_word_samples: 29,
    };
    let golden_l2 = CacheStats {
        load_hits: 13371,
        load_misses: 26263,
        store_hits: 7664,
        store_misses: 0,
        stores_to_dirty: 992,
        writebacks: 2244,
        writeback_words: 2558,
        clean_evictions: 10128,
        fills: 26263,
        dirty_word_samples_sum: 243797,
        dirty_word_samples: 29,
    };
    assert_eq!(l1, golden_l1);
    assert_eq!(l2, golden_l2);
    assert_eq!(h.l1_dirty_fraction().to_bits(), 0x3fb1f72c234f72c2);
    assert_eq!(h.l2_dirty_fraction().to_bits(), 0x3fb06b658469ee58);
    assert_eq!(h.l1_tavg().unwrap().to_bits(), 0x40ba029b9ee133a8);
    assert_eq!(h.l2_tavg().unwrap().to_bits(), 0x40d820789b4e8f5d);
}

#[test]
fn three_level_stats_match_golden() {
    let p = &spec2000_profiles()[0];
    let mut h = ThreeLevelHierarchy::new(
        CacheGeometry::new(8 * 1024, 2, 32).unwrap(),
        CacheGeometry::new(64 * 1024, 4, 32).unwrap(),
        CacheGeometry::new(256 * 1024, 8, 32).unwrap(),
        ReplacementPolicy::Lru,
    );
    h.run(TraceGenerator::new(p, 0xA5).take(50_000));
    let (l1, l2, l3) = h.stats();
    let golden_l1 = CacheStats {
        load_hits: 23493,
        load_misses: 9203,
        store_hits: 14277,
        store_misses: 3027,
        stores_to_dirty: 5608,
        writebacks: 3583,
        writeback_words: 11389,
        clean_evictions: 8391,
        fills: 12230,
        dirty_word_samples_sum: 12910,
        dirty_word_samples: 48,
    };
    let golden_l2 = CacheStats {
        load_hits: 9650,
        load_misses: 2580,
        store_hits: 3583,
        store_misses: 0,
        stores_to_dirty: 1394,
        writebacks: 320,
        writeback_words: 1112,
        clean_evictions: 212,
        fills: 2580,
        dirty_word_samples_sum: 192520,
        dirty_word_samples: 48,
    };
    let golden_l3 = CacheStats {
        load_hits: 24,
        load_misses: 2556,
        store_hits: 320,
        store_misses: 0,
        stores_to_dirty: 0,
        writebacks: 0,
        writeback_words: 0,
        clean_evictions: 0,
        fills: 2556,
        dirty_word_samples_sum: 5559,
        dirty_word_samples: 48,
    };
    assert_eq!(l1, golden_l1);
    assert_eq!(l2, golden_l2);
    assert_eq!(l3, golden_l3);
    assert_eq!(h.memory().reads(), 10224);
    assert_eq!(h.memory().writes(), 0);
    assert_eq!(h.memory().footprint_words(), 0);
}

#[test]
fn campaign_tallies_match_golden_at_every_thread_count() {
    let solid = mbe_experiment(solid_square());
    let sparse = mbe_experiment(sparse_square());
    for threads in [1usize, 2, 8] {
        let t = Campaign::new(0xC0DE).run_parallel(2000, threads, &solid);
        assert_eq!(
            (t.masked, t.corrected, t.due, t.sdc),
            (0, 2000, 0, 0),
            "solid tally diverged at {threads} threads"
        );
        let t = Campaign::new(0xC0DE).run_parallel(600, threads, &sparse);
        assert_eq!(
            (t.masked, t.corrected, t.due, t.sdc),
            (0, 166, 434, 0),
            "sparse tally diverged at {threads} threads"
        );
    }
}

#[test]
fn checkpoint_bytes_match_golden() {
    let dir = std::env::temp_dir().join("cppc_hotpath_identity");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("golden.ckpt");
    let _ = std::fs::remove_file(&path);
    let cfg = Campaign::new(0xC0DE).config(500).threads(2);
    let mut policy = CheckpointPolicy::new(&path);
    policy.every_shards = 1;
    let experiment = mbe_experiment(solid_square());
    let report = run_resumable::<OutcomeTally, _, _>(&cfg, &policy, experiment, |_| {}).unwrap();
    assert!(report.is_complete());
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.len(), 450);
    assert_eq!(fnv1a(&bytes), 0x10d0c5a986123cc0);
    let _ = std::fs::remove_file(&path);
}
