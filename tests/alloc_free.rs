//! Proof that the simulator hot paths are allocation-free in steady
//! state: the hierarchy trace-replay loop, and the snapshot-backed
//! fault-injection trial cycle (restore + inject + recovery).
//!
//! A counting global allocator wraps the system allocator; after a
//! generous warmup (which fills the SoA cache arenas, allocates every
//! backing-memory page the trace can touch and grows the Tavg interval
//! maps to their final size), replaying the identical trace again must
//! perform **zero** heap allocations: every fill lands in an arena slot,
//! every fetch goes through a reused scratch buffer, and the shared
//! trace is iterated without regeneration.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cppc_bench::mbe::{experiment_model, SEED, SOLID_MODEL, SPARSE_MODEL};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::hierarchy::{MemOp, TwoLevelHierarchy};
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::trial_rng;
use cppc_workloads::SharedTrace;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The two steady-state tests share one process-wide allocation
/// counter, so their measured windows must not overlap: each takes
/// this lock for the duration of its measurement.
static MEASURE: Mutex<()> = Mutex::new(());

/// Counts every allocation request (alloc, zeroed alloc, realloc);
/// deallocations are free of charge.
struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`; the counter
// update is a lock-free atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A deterministic mixed trace over a 64 KiB working set — twice the L2
/// below, so steady state keeps evicting, writing back and refilling
/// across all three levels of storage.
fn trace(len: usize) -> SharedTrace {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let addr = state % (64 * 1024);
        ops.push(match state & 0x700 {
            0x000 | 0x100 | 0x200 => MemOp::Store(addr & !7, state),
            0x300 => MemOp::StoreByte(addr, state as u8),
            _ => MemOp::Load(addr & !7),
        });
    }
    SharedTrace::from_ops(ops)
}

#[test]
fn steady_state_hierarchy_run_allocates_nothing() {
    let _serial = MEASURE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let l1 = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
    let l2 = CacheGeometry::new(32 * 1024, 4, 32).unwrap();
    let mut h = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
    let trace = trace(200_000);

    // Warmup: two full replays allocate everything the trace can ever
    // need — arena storage, backing-memory pages, interval-map capacity,
    // the observability registry.
    h.run(trace.replay());
    h.run(trace.replay());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    h.run(trace.replay());
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;

    let accesses = h.l1().stats().accesses();
    assert!(accesses >= 400_000, "warmup + measured runs recorded");
    assert_eq!(
        during, 0,
        "steady-state replay of 200000 ops performed {during} heap allocations"
    );
}

/// The streaming binary-trace drive loop — chunked refills of the
/// reader's fixed buffer, record decode into recycled `OpBatch` lanes,
/// batched hierarchy stepping — is allocation-free once the reader and
/// batch exist and the hierarchy has seen the trace once. Constructing
/// a reader allocates its chunk buffer by design; steady state is the
/// loop, so the measured window drives a pre-built reader end to end.
#[test]
fn steady_state_streaming_binary_drive_allocates_nothing() {
    let _serial = MEASURE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let trace = trace(200_000);
    let dir = std::env::temp_dir().join(format!("cppc-alloc-free-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.cppct");
    cppc_workloads::binfmt::write_bin_trace_file(&path, trace.ops()).unwrap();

    let l1 = CacheGeometry::new(8 * 1024, 2, 32).unwrap();
    let l2 = CacheGeometry::new(32 * 1024, 4, 32).unwrap();
    let mut h = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
    let mut batch = cppc_workloads::OpBatch::new();

    // Warmup: two full streamed drives allocate the cache arenas, the
    // backing-memory pages, the interval-map capacity and the batch's
    // lane capacity.
    for _ in 0..2 {
        let mut reader = cppc_workloads::BinTraceReader::open(&path).unwrap();
        cppc_workloads::binfmt::drive(&mut reader, &mut h, &mut batch).unwrap();
    }

    let mut reader = cppc_workloads::BinTraceReader::open(&path).unwrap();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let driven = cppc_workloads::binfmt::drive(&mut reader, &mut h, &mut batch).unwrap();
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;

    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(driven, 200_000, "whole trace streamed");
    assert_eq!(
        during, 0,
        "steady-state streaming drive of 200000 ops performed {during} heap allocations"
    );
}

/// The full snapshot trial cycle — restore warm state, generate and
/// inject a fault pattern, run recovery (including the locator), and
/// classify — is allocation-free once the warm pool holds a captured
/// context and every scratch buffer has grown to its high-water mark.
#[test]
fn steady_state_snapshot_trial_cycle_allocates_nothing() {
    let _serial = MEASURE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Span timers and ring events record through allocating closures;
    // they are instrumentation, not the hot path under test.
    cppc_obs::set_enabled(false);

    // Warmup: the first trial captures the snapshot; the rest grow the
    // fault-pattern buffer and the recovery/locator scratch to their
    // steady-state capacity on both the solid (all-corrected) and
    // sparse (locator + DUE) paths.
    for trial in 0..256 {
        experiment_model(SOLID_MODEL, &mut trial_rng(SEED, trial));
        experiment_model(SPARSE_MODEL, &mut trial_rng(SEED, trial));
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for trial in 256..384 {
        experiment_model(SOLID_MODEL, &mut trial_rng(SEED, trial));
        experiment_model(SPARSE_MODEL, &mut trial_rng(SEED, trial));
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;

    cppc_obs::set_enabled(true);
    assert_eq!(
        during, 0,
        "steady-state restore+inject+recovery cycle performed {during} heap allocations"
    );
}
