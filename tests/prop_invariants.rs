//! Cross-crate property tests: the CPPC invariants under arbitrary
//! operation programs with single-event upsets interleaved.
//!
//! The discipline: at most one injected flip is outstanding at a time —
//! a single flip is always detectable (one bit ⇒ odd parity in its
//! group) and must always be corrected, so the oracle is binding at
//! every step. Multi-fault behaviour (including legitimate DUEs and
//! parity-blind patterns) is covered by the unit tests and the
//! fault-injection campaigns.

use cppc::cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::core::{CppcCache, CppcConfig};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Load(u16),
    Store(u16, u64),
    StoreByte(u16, u8),
    FlipBit { addr: u16, bit: u8 },
    Recover,
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u16>().prop_map(Op::Load),
        4 => (any::<u16>(), any::<u64>()).prop_map(|(a, v)| Op::Store(a, v)),
        1 => (any::<u16>(), any::<u8>()).prop_map(|(a, v)| Op::StoreByte(a, v)),
        2 => (any::<u16>(), 0u8..64).prop_map(|(addr, bit)| Op::FlipBit { addr, bit }),
        1 => Just(Op::Recover),
        1 => Just(Op::Flush),
    ]
}

fn run_program(config: CppcConfig, ops: Vec<Op>) {
    let geo = CacheGeometry::new(1024, 2, 32).unwrap();
    let mut cache = CppcCache::new_l1(geo, config, ReplacementPolicy::Lru).unwrap();
    let mut mem = MainMemory::new();
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    // Address (word-aligned) of the one outstanding injected flip, if any.
    let mut outstanding: Option<u64> = None;

    for op in ops {
        let recoveries_before = cache.stats().recoveries;
        match op {
            Op::Load(a) => {
                let addr = u64::from(a) & !7;
                let got = cache
                    .load_word(addr, &mut mem)
                    .expect("single faults are always correctable");
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0), "load {addr:#x}");
                if addr == outstanding.unwrap_or(u64::MAX) {
                    // The faulty word was read: parity fired, recovery ran.
                    outstanding = None;
                }
            }
            Op::Store(a, v) => {
                let addr = u64::from(a) & !7;
                cache
                    .store_word(addr, v, &mut mem)
                    .expect("single faults are always correctable");
                oracle.insert(addr, v);
                if addr == outstanding.unwrap_or(u64::MAX) {
                    // Either recovered (dirty path) or overwritten whole.
                    outstanding = None;
                }
            }
            Op::StoreByte(a, v) => {
                let addr = u64::from(a);
                cache
                    .store_byte(addr, v, &mut mem)
                    .expect("single faults are always correctable");
                let word_addr = addr & !7;
                let old = *oracle.get(&word_addr).unwrap_or(&0);
                let byte = (addr % 8) as u32;
                let merged = (old & !(0xFFu64 << (8 * byte))) | (u64::from(v) << (8 * byte));
                oracle.insert(word_addr, merged);
                if word_addr == outstanding.unwrap_or(u64::MAX) {
                    // Byte stores read the word first — parity checked.
                    outstanding = None;
                }
            }
            Op::FlipBit { addr, bit } => {
                let addr = u64::from(addr) & !7;
                if outstanding.is_none() && cache.peek_word(addr).is_some() {
                    cache.flip_data_bit_at(addr, u32::from(bit));
                    outstanding = Some(addr);
                }
            }
            Op::Recover => {
                cache
                    .recover_all(&mut mem)
                    .expect("single faults are always correctable");
                outstanding = None;
            }
            Op::Flush => {
                cache
                    .flush(&mut mem)
                    .expect("single faults are always correctable");
                // Flush parity-checks dirty words; a fault on a clean
                // word may survive it (and is harmless — memory is
                // authoritative for clean data).
            }
        }
        // Any recovery pass clears the outstanding fault (global scan).
        if cache.stats().recoveries > recoveries_before {
            outstanding = None;
        }
        // The register invariant must hold whenever no fault is pending.
        if outstanding.is_none() {
            assert!(cache.verify_invariant(), "register invariant violated");
        }
    }

    // Final consistency: repair anything pending, flush, compare memory
    // with the oracle.
    cache.recover_all(&mut mem).expect("final recovery");
    cache.flush(&mut mem).expect("final flush");
    for (addr, v) in oracle {
        assert_eq!(mem.peek_word(addr), v, "final memory mismatch at {addr:#x}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn basic_config_program(ops in prop::collection::vec(op_strategy(), 1..120)) {
        run_program(CppcConfig::basic(), ops);
    }

    #[test]
    fn paper_config_program(ops in prop::collection::vec(op_strategy(), 1..120)) {
        run_program(CppcConfig::paper(), ops);
    }

    #[test]
    fn two_pair_config_program(ops in prop::collection::vec(op_strategy(), 1..120)) {
        run_program(CppcConfig::two_pairs(), ops);
    }

    #[test]
    fn eight_pair_config_program(ops in prop::collection::vec(op_strategy(), 1..120)) {
        run_program(CppcConfig::eight_pairs(), ops);
    }
}
