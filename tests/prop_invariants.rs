//! Cross-crate property tests: the CPPC invariants under arbitrary
//! operation programs with single-event upsets interleaved.
//!
//! The discipline: at most one injected flip is outstanding at a time —
//! a single flip is always detectable (one bit ⇒ odd parity in its
//! group) and must always be corrected, so the oracle is binding at
//! every step. Multi-fault behaviour (including legitimate DUEs and
//! parity-blind patterns) is covered by the unit tests and the
//! fault-injection campaigns.

use cppc::cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
use cppc::campaign::rng::{rngs::StdRng, RngExt, SeedableRng};
use cppc::core::{CppcCache, CppcConfig};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Load(u16),
    Store(u16, u64),
    StoreByte(u16, u8),
    FlipBit { addr: u16, bit: u8 },
    Recover,
    Flush,
}

/// Draws one op with the same weights the proptest strategy used:
/// Load 4, Store 4, StoreByte 1, FlipBit 2, Recover 1, Flush 1.
fn random_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0u32..13) {
        0..=3 => Op::Load(rng.random::<u64>() as u16),
        4..=7 => Op::Store(rng.random::<u64>() as u16, rng.random::<u64>()),
        8 => Op::StoreByte(rng.random::<u64>() as u16, rng.random::<u64>() as u8),
        9 | 10 => Op::FlipBit {
            addr: rng.random::<u64>() as u16,
            bit: rng.random_range(0u32..64) as u8,
        },
        11 => Op::Recover,
        _ => Op::Flush,
    }
}

fn random_program(rng: &mut StdRng) -> Vec<Op> {
    let len = rng.random_range(1usize..120);
    (0..len).map(|_| random_op(rng)).collect()
}

fn run_program(config: CppcConfig, ops: Vec<Op>) {
    let geo = CacheGeometry::new(1024, 2, 32).unwrap();
    let mut cache = CppcCache::new_l1(geo, config, ReplacementPolicy::Lru).unwrap();
    let mut mem = MainMemory::new();
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    // Address (word-aligned) of the one outstanding injected flip, if any.
    let mut outstanding: Option<u64> = None;

    for op in ops {
        let recoveries_before = cache.stats().recoveries;
        match op {
            Op::Load(a) => {
                let addr = u64::from(a) & !7;
                let got = cache
                    .load_word(addr, &mut mem)
                    .expect("single faults are always correctable");
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0), "load {addr:#x}");
                if addr == outstanding.unwrap_or(u64::MAX) {
                    // The faulty word was read: parity fired, recovery ran.
                    outstanding = None;
                }
            }
            Op::Store(a, v) => {
                let addr = u64::from(a) & !7;
                cache
                    .store_word(addr, v, &mut mem)
                    .expect("single faults are always correctable");
                oracle.insert(addr, v);
                if addr == outstanding.unwrap_or(u64::MAX) {
                    // Either recovered (dirty path) or overwritten whole.
                    outstanding = None;
                }
            }
            Op::StoreByte(a, v) => {
                let addr = u64::from(a);
                cache
                    .store_byte(addr, v, &mut mem)
                    .expect("single faults are always correctable");
                let word_addr = addr & !7;
                let old = *oracle.get(&word_addr).unwrap_or(&0);
                let byte = (addr % 8) as u32;
                let merged = (old & !(0xFFu64 << (8 * byte))) | (u64::from(v) << (8 * byte));
                oracle.insert(word_addr, merged);
                if word_addr == outstanding.unwrap_or(u64::MAX) {
                    // Byte stores read the word first — parity checked.
                    outstanding = None;
                }
            }
            Op::FlipBit { addr, bit } => {
                let addr = u64::from(addr) & !7;
                if outstanding.is_none() && cache.peek_word(addr).is_some() {
                    cache.flip_data_bit_at(addr, u32::from(bit));
                    outstanding = Some(addr);
                }
            }
            Op::Recover => {
                cache
                    .recover_all(&mut mem)
                    .expect("single faults are always correctable");
                outstanding = None;
            }
            Op::Flush => {
                cache
                    .flush(&mut mem)
                    .expect("single faults are always correctable");
                // Flush parity-checks dirty words; a fault on a clean
                // word may survive it (and is harmless — memory is
                // authoritative for clean data).
            }
        }
        // Any recovery pass clears the outstanding fault (global scan).
        if cache.stats().recoveries > recoveries_before {
            outstanding = None;
        }
        // The register invariant must hold whenever no fault is pending.
        if outstanding.is_none() {
            assert!(cache.verify_invariant(), "register invariant violated");
        }
    }

    // Final consistency: repair anything pending, flush, compare memory
    // with the oracle.
    cache.recover_all(&mut mem).expect("final recovery");
    cache.flush(&mut mem).expect("final flush");
    for (addr, v) in oracle {
        assert_eq!(mem.peek_word(addr), v, "final memory mismatch at {addr:#x}");
    }
}

fn run_many(config_of: fn() -> CppcConfig, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..96 {
        run_program(config_of(), random_program(&mut rng));
    }
}

#[test]
fn basic_config_program() {
    run_many(CppcConfig::basic, 0x0901);
}

#[test]
fn paper_config_program() {
    run_many(CppcConfig::paper, 0x0902);
}

#[test]
fn two_pair_config_program() {
    run_many(CppcConfig::two_pairs, 0x0903);
}

#[test]
fn eight_pair_config_program() {
    run_many(CppcConfig::eight_pairs, 0x0904);
}
