//! The Correctable Parity Protected Cache itself.
//!
//! [`CppcCache`] wraps the bit-accurate write-back cache from
//! `cppc-cache-sim` with:
//!
//! * a parity code array (`k`-way interleaved parity per word, §3.6),
//! * the R1/R2 XOR register file with 1–8 pairs (§3, §3.4, §4.11),
//! * the barrel byte-shifter rotating data by rotation class before it
//!   is XORed into the registers (§4.3),
//! * the recovery engine (§4.4) and fault locator (§4.5).
//!
//! The same type implements both the L1 CPPC (word write granularity,
//! word-sized registers) and the L2 CPPC (§3.5: block write granularity,
//! block-sized registers) — see [`CppcCache::new_l1`] and
//! [`CppcCache::new_l2`].
//!
//! # The invariant
//!
//! At any quiescent point, for every register pair `p` and lane `l`:
//! `R1 ^ R2 == XOR of rotate(value, class) over all dirty words in
//! domain (p, l)`. Every mutation below preserves it:
//!
//! * store of `new` over clean data: `R1 ^= rot(new)` — word joins the
//!   dirty set with value `new`;
//! * store of `new` over dirty `old`: additionally `R2 ^= rot(old)` —
//!   the read-before-write (§3.1);
//! * write-back / eviction of a dirty word `v`: `R2 ^= rot(v)` — word
//!   leaves the dirty set.

use cppc_cache_sim::cache::{Backing, Cache};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::snapshot::CacheSnapshot;
use cppc_cache_sim::stats::CacheStats;
use cppc_ecc::interleaved::InterleavedParity;
use cppc_fault::layout::PhysicalLayout;
use cppc_fault::model::FaultPattern;

use crate::config::{ConfigError, CppcConfig, ROTATION_CLASSES};
use crate::locator::{locate_spatial_into, LocateError, Suspect};
use crate::registers::RegisterFile;
use crate::rotate::{rotate_left_bytes, rotate_right_bytes};

use std::fmt;

/// A faulty dirty word during recovery: `(set, way, word, row, syndrome)`.
type FaultyWord = (usize, usize, usize, usize, u64);

/// A dirty word of a protection domain during recovery:
/// `(set, way, word, row, current value)`.
type DomainWord = (usize, usize, usize, usize, u64);

/// Reusable working buffers for [`CppcCache::recover_all`], so steady-state
/// recovery performs no heap allocation. Taken out of the cache with
/// `mem::take` for the duration of a pass (sidestepping `&mut self`
/// aliasing) and put back afterwards.
#[derive(Debug, Clone, Default)]
struct RecoveryScratch {
    /// Faulty clean words `(set, way, word)` found by the scan.
    faulty_clean: Vec<(usize, usize, usize)>,
    /// Faulty dirty words found by the scan.
    faulty_dirty: Vec<FaultyWord>,
    /// The faulty words of the domain currently being recovered.
    group: Vec<FaultyWord>,
    /// All dirty words of the domain currently being recovered.
    domain_words: Vec<DomainWord>,
    /// Locator inputs for the domain currently being recovered.
    suspects: Vec<Suspect>,
    /// Locator outputs (per-suspect error masks).
    masks: Vec<u64>,
}

/// Complete warm state of a [`CppcCache`]: the inner cache arenas, the
/// parity code array, the R1/R2 register file and the CPPC counters.
///
/// Produced by [`CppcCache::snapshot`] / [`CppcCache::capture_snapshot`],
/// consumed by [`CppcCache::restore_snapshot`]. A snapshot is only valid
/// for a cache of the identical geometry and configuration (enforced by
/// the restore asserts), which makes every restore a set of in-place
/// `memcpy`s — no allocation in steady state.
///
/// # Why one snapshot serves trials with different data values
///
/// Fault campaigns capture the warm state once and reuse it even though
/// each trial conceptually works on different data. This is sound
/// because every protection invariant in a CPPC is **XOR-linear**:
/// a parity bit is the XOR of the bits it covers, and each checkpoint
/// register holds the running XOR of the words committed to (R1) or
/// currently dirty in (R2) its domain. XOR forms a group, so the state
/// after restoring a snapshot and then storing new values through the
/// normal write path (`r ^= old ^ new`) satisfies exactly the same
/// invariants as a cold simulation that stored those values directly —
/// the contribution of the snapshot's fill values cancels term by term.
/// Likewise a fault flips bits, and its syndrome contribution separates
/// from the data by the same linearity, so detection and the R1^R2
/// recovery outcome depend only on fault geometry and on which words
/// are dirty, never on the particular values captured in the snapshot.
/// The campaign-facing consequence is spelled out in `cppc-bench`'s
/// `mbe` module: warm-pool replays are outcome-equivalent to
/// replay-from-cold, trial by trial.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    cache: CacheSnapshot,
    parity: Vec<u64>,
    regs: RegisterFile,
    stats: CppcStats,
}

impl SimSnapshot {
    /// Approximate heap bytes held by this snapshot (feeds the
    /// `snapshot.bytes` campaign gauge).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        // Each register lane holds R1 + R2 (8 bytes each) + 2 parity bytes.
        let reg_bytes = (self.regs.pairs() * self.regs.lanes() * 18) as u64;
        self.cache.bytes() + (self.parity.len() * 8) as u64 + reg_bytes
    }
}

/// Write granularity of a CPPC: words (L1) or whole L1 blocks (L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneMode {
    /// L1: the processor writes words; registers are one word wide.
    Word,
    /// L2: L1 writes back blocks; registers are one L1 block wide, one
    /// lane per word of the block (§3.5).
    BlockWord,
}

/// A detected-but-unrecoverable error: the CPPC raises a machine-check
/// exception (paper §4.4 step 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Due {
    /// Why recovery failed.
    pub reason: DueReason,
}

/// The ways recovery can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DueReason {
    /// Multiple faulty dirty words share parity groups and the locator
    /// could not pin the error down.
    Locator(LocateError),
    /// Faulty words share parity groups but the configuration lacks
    /// byte-level parity, so the locator cannot run at all.
    SharedGroupsNoLocator,
    /// A register-file parity fault coincided with dirty-data faults —
    /// the registers cannot be rebuilt from the dirty words (§4.9's
    /// recovery precondition: "provided there is no fault in the dirty
    /// words of the cache").
    RegisterFault,
    /// A word still failed its parity check after reconstruction —
    /// inconsistent state (e.g. a fault arrived mid-recovery).
    PostRecoveryMismatch,
}

impl fmt::Display for Due {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            DueReason::Locator(e) => write!(f, "unrecoverable error: {e}"),
            DueReason::SharedGroupsNoLocator => {
                write!(
                    f,
                    "unrecoverable error: shared parity groups without byte parity"
                )
            }
            DueReason::PostRecoveryMismatch => {
                write!(
                    f,
                    "unrecoverable error: parity mismatch after reconstruction"
                )
            }
            DueReason::RegisterFault => {
                write!(
                    f,
                    "unrecoverable error: register fault with faulty dirty data"
                )
            }
        }
    }
}

impl std::error::Error for Due {}

/// What a recovery pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Faulty clean words repaired by re-fetch from the next level.
    pub corrected_clean: usize,
    /// Faulty dirty words repaired by register reconstruction.
    pub corrected_dirty: usize,
    /// Of those, how many needed the spatial fault locator.
    pub via_locator: usize,
}

/// CPPC-specific event counters (the inner cache keeps the generic ones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CppcStats {
    /// Word-granularity read-before-write events (stores to dirty words,
    /// §3.1) — the paper's key L1 energy overhead.
    pub read_before_writes: u64,
    /// Block-granularity read-before-write events (L2 CPPC, §3.5).
    pub rbw_block_reads: u64,
    /// Reads merged for byte stores to clean words (partial-store fills).
    pub byte_store_merges: u64,
    /// Words whose parity check fired.
    pub detections: u64,
    /// Recovery passes run.
    pub recoveries: u64,
    /// Clean words corrected by re-fetch.
    pub corrected_clean: u64,
    /// Dirty words corrected by reconstruction (incl. locator cases).
    pub corrected_dirty: u64,
    /// Dirty words corrected via the spatial locator.
    pub corrected_via_locator: u64,
    /// Unrecoverable errors declared.
    pub dues: u64,
}

/// The Correctable Parity Protected Cache.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
/// use cppc_core::cache::CppcCache;
/// use cppc_core::config::CppcConfig;
///
/// let geo = CacheGeometry::new(1024, 2, 32)?;
/// let mut mem = MainMemory::new();
/// let mut cppc = CppcCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru)?;
///
/// cppc.store_word(0x100, 0xDEAD_BEEF, &mut mem).unwrap();
/// // Flip a bit in the stored (dirty!) data:
/// cppc.flip_data_bit_at(0x100, 17);
/// // The load detects the fault via parity and repairs it from R1/R2:
/// assert_eq!(cppc.load_word(0x100, &mut mem).unwrap(), 0xDEAD_BEEF);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CppcCache {
    inner: Cache,
    parity: Vec<u64>,
    code: InterleavedParity,
    layout: PhysicalLayout,
    config: CppcConfig,
    regs: RegisterFile,
    lane_mode: LaneMode,
    stats: CppcStats,
    /// One-block scratch reused by recovery re-fetches, so the repair
    /// path never allocates.
    fetch_scratch: Vec<u64>,
    /// Working buffers reused across recovery passes.
    recovery_scratch: RecoveryScratch,
    /// Per-rotation-class register pair, precomputed from the config:
    /// `pair_of_class` divides by a runtime value, which the store path
    /// cannot afford once per access.
    pair_of: [usize; ROTATION_CLASSES],
    /// Per-rotation-class byte rotation, precomputed likewise.
    rot_of: [u32; ROTATION_CLASSES],
}

impl CppcCache {
    fn build(
        geo: CacheGeometry,
        config: CppcConfig,
        policy: ReplacementPolicy,
        lane_mode: LaneMode,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let layout =
            PhysicalLayout::new(geo.num_sets(), geo.associativity(), geo.words_per_block());
        let lanes = match lane_mode {
            LaneMode::Word => 1,
            LaneMode::BlockWord => geo.words_per_block(),
        };
        Ok(CppcCache {
            inner: Cache::new(geo, policy),
            parity: vec![0; layout.num_rows()],
            code: InterleavedParity::new(config.parity_ways),
            layout,
            config,
            regs: RegisterFile::new(config.register_pairs, lanes),
            lane_mode,
            stats: CppcStats::default(),
            fetch_scratch: vec![0; geo.words_per_block()],
            recovery_scratch: RecoveryScratch::default(),
            pair_of: core::array::from_fn(|class| config.pair_of_class(class)),
            rot_of: core::array::from_fn(|class| config.rotation_of_class(class)),
        })
    }

    /// Creates an L1 CPPC: word write granularity, word-sized registers.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid configurations.
    pub fn new_l1(
        geo: CacheGeometry,
        config: CppcConfig,
        policy: ReplacementPolicy,
    ) -> Result<Self, ConfigError> {
        Self::build(geo, config, policy, LaneMode::Word)
    }

    /// Creates an L2 CPPC (§3.5): block write granularity, registers one
    /// L1-block wide (one lane per word of the block).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid configurations.
    pub fn new_l2(
        geo: CacheGeometry,
        config: CppcConfig,
        policy: ReplacementPolicy,
    ) -> Result<Self, ConfigError> {
        Self::build(geo, config, policy, LaneMode::BlockWord)
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &CppcConfig {
        &self.config
    }

    /// CPPC-specific counters.
    #[must_use]
    pub fn stats(&self) -> &CppcStats {
        &self.stats
    }

    /// Generic cache counters (hits, misses, write-backs, …).
    #[must_use]
    pub fn cache_stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// The physical data-array layout (for fault targeting).
    #[must_use]
    pub fn layout(&self) -> &PhysicalLayout {
        &self.layout
    }

    /// The inner cache geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        self.inner.geometry()
    }

    /// Number of dirty words currently resident.
    #[must_use]
    pub fn dirty_word_count(&self) -> u64 {
        self.inner.dirty_word_count()
    }

    /// Reads the word at `addr` without side effects, if resident.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    /// Looks up `addr` without side effects, returning `(set, way)` on
    /// a hit.
    #[must_use]
    pub fn probe(&self, addr: u64) -> Option<(usize, usize)> {
        self.inner.probe(addr)
    }

    /// Ground-truth `(tag, dirty_mask)` of the block at `(set, way)`,
    /// or `None` for an invalid way — the tag-shadow's source of truth.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn tag_state_of(&self, set: usize, way: usize) -> Option<(u64, u8)> {
        let block = self.inner.block(set, way);
        block
            .is_valid()
            .then(|| (block.tag(), block.dirty_mask() as u8))
    }

    fn class_of_row(&self, row: usize) -> usize {
        self.layout.rotation_class(row, ROTATION_CLASSES)
    }

    fn lane_of_word(&self, word: usize) -> usize {
        match self.lane_mode {
            LaneMode::Word => 0,
            LaneMode::BlockWord => word,
        }
    }

    /// `(pair, lane, rotation)` of the word at `(set, way, word)`.
    fn domain_of(&self, set: usize, way: usize, word: usize) -> (usize, usize, u32) {
        self.domain_of_row(self.layout.row_of(set, way, word), word)
    }

    /// [`CppcCache::domain_of`] for a caller that already knows the
    /// physical row — the hot paths compute the row once and reuse it
    /// for the parity array, the domain and the rotation.
    #[inline]
    fn domain_of_row(&self, row: usize, word: usize) -> (usize, usize, u32) {
        let class = self.class_of_row(row);
        (
            self.pair_of[class],
            self.lane_of_word(word),
            self.rot_of[class],
        )
    }

    fn syndrome_at(&self, set: usize, way: usize, word: usize) -> u64 {
        let row = self.layout.row_of(set, way, word);
        let value = self.inner.word_at(set, way, word);
        self.code.syndrome(value, self.parity[row])
    }

    fn refresh_parity(&mut self, set: usize, way: usize, word: usize) {
        let row = self.layout.row_of(set, way, word);
        let value = self.inner.word_at(set, way, word);
        self.parity[row] = self.code.encode(value);
    }

    /// Makes the block containing `addr` resident, classifying the access
    /// and handling the CPPC side of any eviction (parity-check + XOR of
    /// outgoing dirty words into R2).
    fn ensure_resident<B: Backing>(
        &mut self,
        addr: u64,
        is_store: bool,
        backing: &mut B,
    ) -> Result<(usize, usize), Due> {
        if let Some((set, way)) = self.inner.probe(addr) {
            self.inner.record_access(is_store, true);
            self.inner.touch(set, way);
            return Ok((set, way));
        }
        self.inner.record_access(is_store, false);
        let set = self.inner.geometry().set_index(addr);
        let way = self.inner.choose_way_for_fill(set);

        // Pre-eviction: the outgoing block's dirty words are *read* (to
        // be written back), so their parity is checked; then they leave
        // the dirty set and must be XORed into R2. Rows of one block are
        // contiguous, so `row0 + w` addresses word `w`'s parity.
        let row0 = self.layout.row_of(set, way, 0);
        if self.inner.is_valid_at(set, way) && self.inner.dirty_mask_at(set, way) != 0 {
            let wpb = self.inner.geometry().words_per_block();
            let mask = self.inner.dirty_mask_at(set, way);
            let needs_recovery = (0..wpb).any(|w| {
                mask >> w & 1 == 1
                    && self
                        .code
                        .syndrome(self.inner.word_at(set, way, w), self.parity[row0 + w])
                        != 0
            });
            if needs_recovery {
                self.recover_all(backing)?;
            }
            let mask = self.inner.dirty_mask_at(set, way);
            for w in 0..wpb {
                if mask >> w & 1 == 1 {
                    let (pair, lane, rot) = self.domain_of_row(row0 + w, w);
                    let value = self.inner.word_at(set, way, w);
                    self.regs.absorb_removal(pair, lane, value, rot);
                }
            }
        }

        let _evicted = self.inner.fill_into(addr, way, backing);
        for w in 0..self.inner.geometry().words_per_block() {
            self.parity[row0 + w] = self.code.encode(self.inner.word_at(set, way, w));
        }
        Ok((set, way))
    }

    /// Loads the 64-bit word at `addr`, checking parity and recovering
    /// transparently.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when a detected error cannot be corrected — the
    /// hardware equivalent of a machine-check exception.
    pub fn load_word<B: Backing>(&mut self, addr: u64, backing: &mut B) -> Result<u64, Due> {
        let (set, way) = self.ensure_resident(addr, false, backing)?;
        let w = self.inner.geometry().word_index(addr);
        let row = self.layout.row_of(set, way, w);
        let value = self.inner.word_at(set, way, w);
        if self.code.syndrome(value, self.parity[row]) != 0 {
            self.recover_all(backing)?;
            return Ok(self.inner.word_at(set, way, w));
        }
        Ok(value)
    }

    /// Stores `value` at `addr` (write-allocate), performing the CPPC
    /// write path of Figure 2: XOR new data into R1; if the target word
    /// is dirty, read it first (read-before-write) and XOR it into R2.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when a fault discovered along the way is
    /// uncorrectable.
    pub fn store_word<B: Backing>(
        &mut self,
        addr: u64,
        value: u64,
        backing: &mut B,
    ) -> Result<(), Due> {
        let (set, way) = self.ensure_resident(addr, true, backing)?;
        let w = self.inner.geometry().word_index(addr);
        let row = self.layout.row_of(set, way, w);
        let (pair, lane, rot) = self.domain_of_row(row, w);

        if self.inner.dirty_mask_at(set, way) >> w & 1 == 1 {
            // Read-before-write: the old data is read, so parity is
            // checked — a corrupted old value must not poison R2.
            let mut old = self.inner.word_at(set, way, w);
            if self.code.syndrome(old, self.parity[row]) != 0 {
                self.recover_all(backing)?;
                old = self.inner.word_at(set, way, w);
            }
            self.regs.absorb_removal(pair, lane, old, rot);
            self.stats.read_before_writes += 1;
        }
        self.inner.store_word_in_place(set, way, w, value);
        self.regs.absorb_store(pair, lane, value, rot);
        self.parity[row] = self.code.encode(value);
        Ok(())
    }

    /// Stores one byte at `addr` (§3.1's byte-store path): the new byte
    /// is XORed into the corresponding byte of R1; the old byte goes
    /// into R2 if the word was dirty. A byte store to a *clean* word
    /// needs the rest of the word (a merge read) so that the full new
    /// word value enters R1.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when a fault discovered along the way is
    /// uncorrectable.
    pub fn store_byte<B: Backing>(
        &mut self,
        addr: u64,
        value: u8,
        backing: &mut B,
    ) -> Result<(), Due> {
        let (set, way) = self.ensure_resident(addr, true, backing)?;
        let geo = *self.inner.geometry();
        let w = geo.word_index(addr);
        let byte = geo.byte_in_word(addr);
        let row = self.layout.row_of(set, way, w);
        let (pair, lane, rot) = self.domain_of_row(row, w);

        let was_dirty = self.inner.dirty_mask_at(set, way) >> w & 1 == 1;
        // Either path reads the old word first, so parity is checked.
        let mut old = self.inner.word_at(set, way, w);
        if self.code.syndrome(old, self.parity[row]) != 0 {
            self.recover_all(backing)?;
            old = self.inner.word_at(set, way, w);
        }
        if was_dirty {
            let old_byte = (old >> (8 * byte)) & 0xFF;
            self.regs
                .absorb_removal(pair, lane, old_byte << (8 * byte), rot);
            self.regs
                .absorb_store(pair, lane, u64::from(value) << (8 * byte), rot);
            self.stats.read_before_writes += 1;
        } else {
            // Clean word: merge-read so the whole resulting word enters R1.
            let merged = (old & !(0xFFu64 << (8 * byte))) | (u64::from(value) << (8 * byte));
            self.regs.absorb_store(pair, lane, merged, rot);
            self.stats.byte_store_merges += 1;
        }
        self.inner.store_byte_in_place(set, way, w, byte, value);
        self.refresh_parity(set, way, w);
        Ok(())
    }

    /// Accepts a block-granularity write (the L2 CPPC path, §3.5):
    /// words selected by `mask` are written. One read-before-write block
    /// read is charged if any target word was dirty.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when a fault discovered along the way is
    /// uncorrectable.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block wide.
    pub fn write_block<B: Backing>(
        &mut self,
        addr: u64,
        data: &[u64],
        mask: u64,
        backing: &mut B,
    ) -> Result<(), Due> {
        let wpb = self.inner.geometry().words_per_block();
        assert_eq!(data.len(), wpb, "block width");
        let (set, way) = self.ensure_resident(addr, true, backing)?;

        let any_dirty =
            (0..wpb).any(|w| mask >> w & 1 == 1 && self.inner.block(set, way).is_word_dirty(w));
        if any_dirty {
            let needs_recovery = (0..wpb).any(|w| {
                mask >> w & 1 == 1
                    && self.inner.block(set, way).is_word_dirty(w)
                    && self.syndrome_at(set, way, w) != 0
            });
            if needs_recovery {
                self.recover_all(backing)?;
            }
            self.stats.rbw_block_reads += 1;
            for w in 0..wpb {
                if mask >> w & 1 == 1 && self.inner.block(set, way).is_word_dirty(w) {
                    let (pair, lane, rot) = self.domain_of(set, way, w);
                    let old = self.inner.block(set, way).word(w);
                    self.regs.absorb_removal(pair, lane, old, rot);
                }
            }
        }
        for (w, &value) in data.iter().enumerate() {
            if mask >> w & 1 == 1 {
                let (pair, lane, rot) = self.domain_of(set, way, w);
                self.inner.store_word_in_place(set, way, w, value);
                self.regs.absorb_store(pair, lane, value, rot);
                self.refresh_parity(set, way, w);
            }
        }
        Ok(())
    }

    /// Reads the whole block containing `addr` (the L2 CPPC read path),
    /// parity-checking every word.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when a detected error cannot be corrected.
    pub fn read_block<B: Backing>(&mut self, addr: u64, backing: &mut B) -> Result<Vec<u64>, Due> {
        let mut buf = vec![0; self.inner.geometry().words_per_block()];
        self.read_block_into(addr, backing, &mut buf)?;
        Ok(buf)
    }

    /// Reads the whole block containing `addr` into `buf` without
    /// allocating — the hot-path variant of [`CppcCache::read_block`]
    /// used by upper levels that reuse a per-cache scratch buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when a detected error cannot be corrected.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly one block wide.
    pub fn read_block_into<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
        buf: &mut [u64],
    ) -> Result<(), Due> {
        let (set, way) = self.ensure_resident(addr, false, backing)?;
        let wpb = self.inner.geometry().words_per_block();
        // Rows of a block are contiguous, so the whole block's parity sits
        // at `row0..row0 + wpb` and the OR-folded block syndrome kernel
        // answers "any word faulty?" in one pass.
        let row0 = self.layout.row_of(set, way, 0);
        if self.code.block_syndrome_or(
            self.inner.words_at(set, way),
            &self.parity[row0..row0 + wpb],
        ) != 0
        {
            self.recover_all(backing)?;
        }
        buf.copy_from_slice(self.inner.block(set, way).words());
        Ok(())
    }

    /// Writes every dirty block back (parity-checking outgoing data and
    /// moving it from the dirty set into R2), leaving contents resident.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when outgoing data is corrupt beyond recovery.
    pub fn flush<B: Backing>(&mut self, backing: &mut B) -> Result<(), Due> {
        let geo = *self.inner.geometry();
        let needs_recovery = self
            .inner
            .iter_dirty_words()
            .any(|(s, w, i, _)| self.syndrome_at(s, w, i) != 0);
        if needs_recovery {
            self.recover_all(backing)?;
        }
        for set in 0..geo.num_sets() {
            for way in 0..geo.associativity() {
                if !self.inner.block(set, way).is_valid() || !self.inner.block(set, way).is_dirty()
                {
                    continue;
                }
                for w in 0..geo.words_per_block() {
                    if self.inner.block(set, way).is_word_dirty(w) {
                        let (pair, lane, rot) = self.domain_of(set, way, w);
                        let value = self.inner.block(set, way).word(w);
                        self.regs.absorb_removal(pair, lane, value, rot);
                    }
                }
                self.inner.writeback_block(set, way, backing);
            }
        }
        Ok(())
    }

    /// Invalidates the block containing `addr` (a coherence action —
    /// §7's write-invalidate protocols): dirty words are parity-checked,
    /// written back to `backing` and XORed into R2 as they leave the
    /// dirty set, then the block is dropped. No-op if not resident.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] if the outgoing dirty data is corrupt beyond
    /// recovery.
    pub fn invalidate_block<B: Backing>(&mut self, addr: u64, backing: &mut B) -> Result<(), Due> {
        let Some((set, way)) = self.inner.probe(addr) else {
            return Ok(());
        };
        let wpb = self.inner.geometry().words_per_block();
        if self.inner.block(set, way).is_dirty() {
            let needs_recovery = (0..wpb).any(|w| {
                self.inner.block(set, way).is_word_dirty(w) && self.syndrome_at(set, way, w) != 0
            });
            if needs_recovery {
                self.recover_all(backing)?;
            }
            for w in 0..wpb {
                if self.inner.block(set, way).is_word_dirty(w) {
                    let (pair, lane, rot) = self.domain_of(set, way, w);
                    let value = self.inner.block(set, way).word(w);
                    self.regs.absorb_removal(pair, lane, value, rot);
                }
            }
            self.inner.writeback_block(set, way, backing);
        }
        self.inner.invalidate_way(set, way);
        Ok(())
    }

    /// Writes the block containing `addr` back (parity-checked, dirty
    /// words moved into R2) but keeps it resident and clean — the M→S
    /// downgrade of a write-invalidate protocol (§7). No-op if not
    /// resident or already clean.
    ///
    /// # Errors
    ///
    /// Returns [`Due`] if the outgoing dirty data is corrupt beyond
    /// recovery.
    pub fn clean_block<B: Backing>(&mut self, addr: u64, backing: &mut B) -> Result<(), Due> {
        let Some((set, way)) = self.inner.probe(addr) else {
            return Ok(());
        };
        if !self.inner.block(set, way).is_dirty() {
            return Ok(());
        }
        let wpb = self.inner.geometry().words_per_block();
        let needs_recovery = (0..wpb).any(|w| {
            self.inner.block(set, way).is_word_dirty(w) && self.syndrome_at(set, way, w) != 0
        });
        if needs_recovery {
            self.recover_all(backing)?;
        }
        for w in 0..wpb {
            if self.inner.block(set, way).is_word_dirty(w) {
                let (pair, lane, rot) = self.domain_of(set, way, w);
                let value = self.inner.block(set, way).word(w);
                self.regs.absorb_removal(pair, lane, value, rot);
            }
        }
        self.inner.writeback_block(set, way, backing);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Applies a physical fault pattern to the data array. Flips into
    /// invalid ways are dropped (nothing is stored there). Returns the
    /// number of bits actually flipped.
    pub fn inject(&mut self, pattern: &FaultPattern) -> usize {
        let mut applied = 0;
        for flip in pattern.flips() {
            let (set, way, word) = self.layout.location_of(flip.row);
            if self.inner.block(set, way).is_valid() {
                self.inner.block_mut(set, way).flip_bit(word, flip.col);
                applied += 1;
            }
        }
        crate::obs::register_metrics();
        crate::obs::FAULTS_INJECTED.add(applied as u64);
        cppc_obs::record_event("cppc.inject", || {
            format!(
                "{applied} of {} flips landed on valid blocks",
                pattern.flips().len()
            )
        });
        applied
    }

    /// Flips one data bit of the (resident) word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is not resident or `bit >= 64`.
    pub fn flip_data_bit_at(&mut self, addr: u64, bit: u32) {
        let (set, way) = self.inner.probe(addr).expect("address must be resident");
        let w = self.inner.geometry().word_index(addr);
        self.inner.block_mut(set, way).flip_bit(w, bit);
    }

    /// Flips one stored parity bit (code-array fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `group >= parity_ways`.
    pub fn flip_parity_bit(&mut self, row: usize, group: u32) {
        assert!(row < self.parity.len(), "row {row} out of range");
        assert!(
            group < self.config.parity_ways,
            "group {group} out of range"
        );
        self.parity[row] ^= 1u64 << group;
    }

    // ------------------------------------------------------------------
    // Recovery (§4.4)
    // ------------------------------------------------------------------

    /// Scans the whole cache for parity violations and repairs them:
    /// clean words by re-fetch, dirty words by register reconstruction,
    /// multi-word spatial faults via the locator. This is the §4.4
    /// procedure (invoked automatically by loads/stores that detect a
    /// fault; public so campaigns and scrubbers can trigger it).
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when any fault is unrecoverable.
    pub fn recover_all<B: Backing>(&mut self, backing: &mut B) -> Result<RecoveryReport, Due> {
        crate::obs::register_metrics();
        crate::obs::RECOVERY_WALKS.inc();
        let _walk = crate::obs::RECOVERY_WALK.start();
        let detections_before = self.stats.detections;
        let result = self.recover_all_inner(backing);
        crate::obs::DETECTIONS.add(self.stats.detections - detections_before);
        match &result {
            Ok(report) => {
                crate::obs::CORRECTED_CLEAN.add(report.corrected_clean as u64);
                crate::obs::CORRECTED_DIRTY.add(report.corrected_dirty as u64);
                crate::obs::VIA_LOCATOR.add(report.via_locator as u64);
                if report.corrected_clean + report.corrected_dirty > 0 {
                    cppc_obs::record_event("cppc.recovery", || {
                        format!(
                            "corrected clean={} dirty={} via_locator={}",
                            report.corrected_clean, report.corrected_dirty, report.via_locator
                        )
                    });
                }
            }
            Err(due) => {
                crate::obs::DUES.inc();
                cppc_obs::record_event("cppc.due", || format!("{:?}", due.reason));
            }
        }
        result
    }

    fn recover_all_inner<B: Backing>(&mut self, backing: &mut B) -> Result<RecoveryReport, Due> {
        // Detach the scratch buffers for the duration of the pass so the
        // helpers below can borrow `self` mutably alongside them; put them
        // back afterwards (also on the error paths) so the next pass
        // reuses their capacity.
        let mut scratch = std::mem::take(&mut self.recovery_scratch);
        let result = self.recover_all_with_scratch(backing, &mut scratch);
        self.recovery_scratch = scratch;
        result
    }

    fn recover_all_with_scratch<B: Backing>(
        &mut self,
        backing: &mut B,
        scratch: &mut RecoveryScratch,
    ) -> Result<RecoveryReport, Due> {
        self.stats.recoveries += 1;
        let mut report = RecoveryReport::default();
        let geo = *self.inner.geometry();

        scratch.faulty_clean.clear();
        // (set, way, word, row, syndrome) grouped later by (pair, lane).
        scratch.faulty_dirty.clear();
        for set in 0..geo.num_sets() {
            for way in 0..geo.associativity() {
                if !self.inner.is_valid_at(set, way) {
                    continue;
                }
                let dirty = self.inner.dirty_mask_at(set, way);
                let row0 = self.layout.row_of(set, way, 0);
                let words = self.inner.words_at(set, way);
                // OR-folded block syndrome: one wide pass answers "any
                // word faulty?" so fault-free blocks (the overwhelming
                // majority) skip the per-word classification entirely.
                if self
                    .code
                    .block_syndrome_or(words, &self.parity[row0..row0 + words.len()])
                    == 0
                {
                    continue;
                }
                for (w, &value) in words.iter().enumerate() {
                    let syn = self.code.syndrome(value, self.parity[row0 + w]);
                    if syn != 0 {
                        self.stats.detections += 1;
                        if dirty >> w & 1 == 1 {
                            scratch.faulty_dirty.push((set, way, w, row0 + w, syn));
                        } else {
                            scratch.faulty_clean.push((set, way, w));
                        }
                    }
                }
            }
        }

        // Register-file parity check (§4.9): a corrupted register is
        // rebuilt from the dirty words — but only if they are all sound.
        if !self.regs.check_parity() {
            if scratch.faulty_dirty.is_empty() {
                self.repair_registers();
            } else {
                self.stats.dues += 1;
                return Err(Due {
                    reason: DueReason::RegisterFault,
                });
            }
        }

        // Clean faults: re-fetch from the next level (§3.2).
        for i in 0..scratch.faulty_clean.len() {
            let (set, way, w) = scratch.faulty_clean[i];
            let base = self.inner.block_address(set, way);
            backing.fetch_block_into(base, &mut self.fetch_scratch);
            let value = self.fetch_scratch[w];
            self.inner.block_mut(set, way).patch_word(w, value);
            self.refresh_parity(set, way, w);
            self.stats.corrected_clean += 1;
            report.corrected_clean += 1;
        }

        // Dirty faults: group by protection domain (pair, lane), in
        // first-encounter order of the keys. With at most a handful of
        // faulty words per pass the quadratic key scan beats building a
        // keyed map — and it allocates nothing.
        for i in 0..scratch.faulty_dirty.len() {
            let (_, _, wi, rowi, _) = scratch.faulty_dirty[i];
            let (pair, lane, _) = self.domain_of_row(rowi, wi);
            let seen = scratch.faulty_dirty[..i]
                .iter()
                .any(|&(_, _, w2, row2, _)| {
                    let (p2, l2, _) = self.domain_of_row(row2, w2);
                    (p2, l2) == (pair, lane)
                });
            if seen {
                continue;
            }
            scratch.group.clear();
            for j in i..scratch.faulty_dirty.len() {
                let entry = scratch.faulty_dirty[j];
                let (_, _, w2, row2, _) = entry;
                let (p2, l2, _) = self.domain_of_row(row2, w2);
                if (p2, l2) == (pair, lane) {
                    scratch.group.push(entry);
                }
            }
            let fixed = self.recover_domain(pair, lane, scratch)?;
            report.corrected_dirty += scratch.group.len();
            report.via_locator += fixed;
        }

        // Post-condition: every resident word must now pass parity.
        for set in 0..geo.num_sets() {
            for way in 0..geo.associativity() {
                if !self.inner.is_valid_at(set, way) {
                    continue;
                }
                let row0 = self.layout.row_of(set, way, 0);
                let words = self.inner.words_at(set, way);
                for (w, &value) in words.iter().enumerate() {
                    if self.code.syndrome(value, self.parity[row0 + w]) != 0 {
                        self.stats.dues += 1;
                        return Err(Due {
                            reason: DueReason::PostRecoveryMismatch,
                        });
                    }
                }
            }
        }
        Ok(report)
    }

    /// Collects all dirty words of protection domain `(pair, lane)` into
    /// `out` (cleared first), as `(set, way, word, row, current value)`.
    fn collect_dirty_words_of_domain(&self, pair: usize, lane: usize, out: &mut Vec<DomainWord>) {
        out.clear();
        let geo = self.inner.geometry();
        for set in 0..geo.num_sets() {
            for way in 0..geo.associativity() {
                if !self.inner.is_valid_at(set, way) {
                    continue;
                }
                let mut mask = self.inner.dirty_mask_at(set, way);
                if mask == 0 {
                    continue;
                }
                let row0 = self.layout.row_of(set, way, 0);
                while mask != 0 {
                    let w = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let (p, l, _) = self.domain_of_row(row0 + w, w);
                    if (p, l) == (pair, lane) {
                        out.push((set, way, w, row0 + w, self.inner.word_at(set, way, w)));
                    }
                }
            }
        }
    }

    /// Repairs the faulty dirty words of one domain (`scratch.group`).
    /// Returns how many needed the spatial locator.
    fn recover_domain(
        &mut self,
        pair: usize,
        lane: usize,
        scratch: &mut RecoveryScratch,
    ) -> Result<usize, Due> {
        debug_assert!(!scratch.group.is_empty());

        // One snapshot of the domain's dirty words serves every
        // reconstruction below; entries are refreshed as words are
        // repaired so later reconstructions see corrected values, exactly
        // as if each one re-walked the cache.
        self.collect_dirty_words_of_domain(pair, lane, &mut scratch.domain_words);

        if scratch.group.len() == 1 {
            let (set, way, w, row, _) = scratch.group[0];
            self.reconstruct_word(pair, lane, set, way, w, row, &scratch.domain_words);
            self.stats.corrected_dirty += 1;
            return Ok(0);
        }

        // Multiple faulty words: disjoint syndromes → group-masked
        // reconstruction (§4.4 step 4); shared syndromes → locator.
        let disjoint = scratch
            .group
            .iter()
            .enumerate()
            .all(|(i, a)| scratch.group[i + 1..].iter().all(|b| a.4 & b.4 == 0));
        if disjoint {
            for i in 0..scratch.group.len() {
                let (set, way, w, row, syn) = scratch.group[i];
                self.reconstruct_word_masked(
                    pair,
                    lane,
                    set,
                    way,
                    w,
                    row,
                    syn,
                    &scratch.domain_words,
                );
                self.stats.corrected_dirty += 1;
                let fixed = self.inner.word_at(set, way, w);
                if let Some(e) = scratch
                    .domain_words
                    .iter_mut()
                    .find(|e| (e.0, e.1, e.2) == (set, way, w))
                {
                    e.4 = fixed;
                }
            }
            return Ok(0);
        }

        // The locator's arithmetic relies on byte shifting (rotation ==
        // class) and byte-granularity parity. Without them, aliased
        // contributions cannot be separated — the fault is a DUE (this is
        // exactly the basic CPPC's limitation the paper motivates §4 with).
        if self.config.parity_ways != 8 || !self.config.byte_shifting {
            self.stats.dues += 1;
            return Err(Due {
                reason: DueReason::SharedGroupsNoLocator,
            });
        }

        // Spatial locator path (§4.5). R3 = (R1^R2) ^ XOR of rotated
        // current values of all dirty words in the domain = XOR of the
        // rotated error masks.
        let mut r3 = self.regs.dirty_xor(pair, lane);
        for &(_, _, _, row, value) in &scratch.domain_words {
            let rot = self.config.rotation_of_class(self.class_of_row(row));
            r3 ^= rotate_left_bytes(value, rot);
        }
        scratch.suspects.clear();
        for &(_, _, _, row, syn) in &scratch.group {
            scratch.suspects.push(Suspect {
                row,
                class: self.class_of_row(row),
                syndrome: syn as u8,
            });
        }
        match locate_spatial_into(r3, &scratch.suspects, &mut scratch.masks) {
            Ok(()) => {
                for (&(set, way, w, _, _), &mask) in scratch.group.iter().zip(&scratch.masks) {
                    let fixed = self.inner.block(set, way).word(w) ^ mask;
                    self.inner.block_mut(set, way).patch_word(w, fixed);
                    self.refresh_parity(set, way, w);
                    self.stats.corrected_dirty += 1;
                    self.stats.corrected_via_locator += 1;
                }
                Ok(scratch.group.len())
            }
            Err(e) => {
                self.stats.dues += 1;
                Err(Due {
                    reason: DueReason::Locator(e),
                })
            }
        }
    }

    /// Single-faulty-word reconstruction (§4.4 steps 1–2): XOR R1, R2
    /// and every other dirty word of the domain (rotated, from the
    /// caller's `domain_words` snapshot), then rotate the result back
    /// and write it over the faulty word.
    #[allow(clippy::too_many_arguments)]
    fn reconstruct_word(
        &mut self,
        pair: usize,
        lane: usize,
        set: usize,
        way: usize,
        w: usize,
        row: usize,
        domain_words: &[(usize, usize, usize, usize, u64)],
    ) {
        let mut acc = self.regs.dirty_xor(pair, lane);
        for &(s2, w2, i2, row2, value) in domain_words {
            if (s2, w2, i2) == (set, way, w) {
                continue;
            }
            let rot = self.config.rotation_of_class(self.class_of_row(row2));
            acc ^= rotate_left_bytes(value, rot);
        }
        let rot = self.config.rotation_of_class(self.class_of_row(row));
        let corrected = rotate_right_bytes(acc, rot);
        self.inner.block_mut(set, way).patch_word(w, corrected);
        self.refresh_parity(set, way, w);
    }

    /// Group-masked reconstruction for multiple faulty words with
    /// disjoint syndromes (§4.4 step 4): only the bits in the word's own
    /// fired parity groups are taken from the reconstruction; pollution
    /// from the other faulty words lies in *their* groups, which are
    /// disjoint.
    #[allow(clippy::too_many_arguments)]
    fn reconstruct_word_masked(
        &mut self,
        pair: usize,
        lane: usize,
        set: usize,
        way: usize,
        w: usize,
        row: usize,
        syndrome: u64,
        domain_words: &[(usize, usize, usize, usize, u64)],
    ) {
        let mut acc = self.regs.dirty_xor(pair, lane);
        for &(s2, w2, i2, row2, value) in domain_words {
            if (s2, w2, i2) == (set, way, w) {
                continue;
            }
            let rot = self.config.rotation_of_class(self.class_of_row(row2));
            acc ^= rotate_left_bytes(value, rot);
        }
        let rot = self.config.rotation_of_class(self.class_of_row(row));
        let recon = rotate_right_bytes(acc, rot);

        // Column mask of the fired parity groups (byte rotation preserves
        // groups, so the mask is rotation-independent).
        let ways = self.config.parity_ways;
        let mut mask = 0u64;
        for g in 0..ways {
            if syndrome >> g & 1 == 1 {
                let mut col = g;
                while col < 64 {
                    mask |= 1u64 << col;
                    col += ways;
                }
            }
        }
        let stored = self.inner.block(set, way).word(w);
        let corrected = (stored & !mask) | (recon & mask);
        self.inner.block_mut(set, way).patch_word(w, corrected);
        self.refresh_parity(set, way, w);
    }

    // ------------------------------------------------------------------
    // Invariant checking & register maintenance (§4.9)
    // ------------------------------------------------------------------

    /// Recomputes, by scanning the data array, what every pair/lane's
    /// `R1 ^ R2` should be.
    #[must_use]
    pub fn expected_register_state(&self) -> Vec<Vec<u64>> {
        let mut expect = vec![vec![0u64; self.regs.lanes()]; self.regs.pairs()];
        for (set, way, w, value) in self.inner.iter_dirty_words() {
            let (pair, lane, rot) = self.domain_of(set, way, w);
            expect[pair][lane] ^= rotate_left_bytes(value, rot);
        }
        expect
    }

    /// `true` iff `R1 ^ R2` matches the XOR of rotated dirty words for
    /// every pair and lane — the CPPC's defining invariant.
    #[must_use]
    pub fn verify_invariant(&self) -> bool {
        self.expected_register_state() == self.regs.checkpoint()
    }

    /// Repairs a corrupted register file by re-deriving it from the
    /// (assumed fault-free) dirty words, per §4.9's recovery option.
    pub fn repair_registers(&mut self) {
        let expect = self.expected_register_state();
        self.regs.reset_to(&expect);
    }

    /// Direct register-file access for fault injection on R1/R2 (§4.9).
    pub fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Builds a [`crate::batch::BatchSim`] — the value-independent
    /// batch trial evaluator — from this cache's *warm* state.
    ///
    /// Returns `None` unless the state is certifiably fault-free
    /// (register parity good, R1^R2 invariant holds, every resident
    /// word's parity syndrome is zero): the batch algebra's
    /// `f(warm ^ err) = f(warm) ^ f(err)` cancellation is only valid
    /// from a clean baseline, so a caller holding a dirty/struck cache
    /// must take the ordinary per-trial path.
    #[must_use]
    pub fn batch_sim(&self) -> Option<crate::batch::BatchSim> {
        if !self.regs.check_parity() || !self.verify_invariant() {
            return None;
        }
        let geo = self.inner.geometry();
        let (sets, assoc, wpb) = (geo.num_sets(), geo.associativity(), geo.words_per_block());
        let rows = self.layout.num_rows();
        let mut sim = crate::batch::BatchSim {
            rows,
            valid: vec![false; rows],
            dirty: vec![false; rows],
            pair: vec![0; rows],
            lane: vec![0; rows],
            rot: vec![0; rows],
            class: vec![0; rows],
            scan_rank: vec![0; rows],
            code: self.code,
            locator_ok: self.config.parity_ways == 8 && self.config.byte_shifting,
        };
        let mut rank = 0u32;
        for set in 0..sets {
            for way in 0..assoc {
                let block = self.inner.block(set, way);
                let (valid, dirty_mask) = (block.is_valid(), block.dirty_mask());
                for w in 0..wpb {
                    let row = self.layout.row_of(set, way, w);
                    if valid && self.syndrome_at(set, way, w) != 0 {
                        return None; // latent fault: not a warm baseline
                    }
                    let (pair, lane, rot) = self.domain_of_row(row, w);
                    sim.valid[row] = valid;
                    sim.dirty[row] = valid && dirty_mask >> w & 1 == 1;
                    sim.pair[row] = u16::try_from(pair).expect("pair fits u16");
                    sim.lane[row] = u16::try_from(lane).expect("lane fits u16");
                    sim.rot[row] = u8::try_from(rot).expect("rotation fits u8");
                    sim.class[row] = u8::try_from(self.class_of_row(row)).expect("class fits u8");
                    sim.scan_rank[row] = rank;
                    rank += 1;
                }
            }
        }
        Some(sim)
    }

    // ------------------------------------------------------------------
    // Warm-state snapshot / restore
    // ------------------------------------------------------------------

    /// Captures the complete mutable state — inner cache arenas, parity
    /// array, register file, CPPC counters — into a fresh [`SimSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            cache: self.inner.snapshot(),
            parity: self.parity.clone(),
            regs: self.regs.clone(),
            stats: self.stats,
        }
    }

    /// Re-captures into an existing snapshot of the same shape without
    /// reallocating its buffers.
    ///
    /// # Panics
    ///
    /// Panics if `snap` came from a cache of a different geometry or
    /// configuration.
    pub fn capture_snapshot(&self, snap: &mut SimSnapshot) {
        self.inner.capture_snapshot(&mut snap.cache);
        assert_eq!(
            snap.parity.len(),
            self.parity.len(),
            "snapshot from a different layout"
        );
        snap.parity.copy_from_slice(&self.parity);
        snap.regs.copy_state_from(&self.regs);
        snap.stats = self.stats;
    }

    /// Restores the cache to the snapshotted warm state. Every buffer is
    /// overwritten in place (`copy_from_slice`), so the steady-state
    /// restore performs no heap allocation — this is what lets a fault
    /// campaign replay the warmup prefix once and reuse it per trial.
    ///
    /// # Panics
    ///
    /// Panics if `snap` came from a cache of a different geometry or
    /// configuration.
    pub fn restore_snapshot(&mut self, snap: &SimSnapshot) {
        self.inner.restore_snapshot(&snap.cache);
        assert_eq!(
            self.parity.len(),
            snap.parity.len(),
            "snapshot from a different layout"
        );
        self.parity.copy_from_slice(&snap.parity);
        self.regs.copy_state_from(&snap.regs);
        self.stats = snap.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_cache_sim::memory::MainMemory;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};
    use cppc_fault::model::BitFlip;

    fn geo() -> CacheGeometry {
        CacheGeometry::new(1024, 2, 32).unwrap() // 16 sets, 4 words/block
    }

    fn l1(config: CppcConfig) -> (CppcCache, MainMemory) {
        (
            CppcCache::new_l1(geo(), config, ReplacementPolicy::Lru).unwrap(),
            MainMemory::new(),
        )
    }

    #[test]
    fn transparent_without_faults() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        let mut rng = StdRng::seed_from_u64(1);
        let mut oracle = std::collections::HashMap::new();
        for _ in 0..10_000 {
            let addr = (rng.random_range(0..4096u64)) & !7;
            if rng.random_bool(0.4) {
                let v: u64 = rng.random();
                c.store_word(addr, v, &mut m).unwrap();
                oracle.insert(addr, v);
            } else {
                let got = c.load_word(addr, &mut m).unwrap();
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0));
            }
        }
        assert!(c.verify_invariant());
        assert_eq!(c.stats().detections, 0);
    }

    #[test]
    fn invariant_holds_under_traffic_all_configs() {
        for config in [
            CppcConfig::basic(),
            CppcConfig::paper(),
            CppcConfig::two_pairs(),
            CppcConfig::eight_pairs(),
        ] {
            let (mut c, mut m) = l1(config);
            let mut rng = StdRng::seed_from_u64(7);
            for i in 0..5_000 {
                let addr = (rng.random_range(0..8192u64)) & !7;
                if rng.random_bool(0.5) {
                    c.store_word(addr, rng.random(), &mut m).unwrap();
                } else {
                    c.load_word(addr, &mut m).unwrap();
                }
                if i % 500 == 0 {
                    assert!(c.verify_invariant(), "config {config:?} step {i}");
                }
            }
            c.flush(&mut m).unwrap();
            assert!(c.verify_invariant());
            assert_eq!(c.dirty_word_count(), 0);
        }
    }

    #[test]
    fn corrects_single_bit_in_dirty_word_basic() {
        let (mut c, mut m) = l1(CppcConfig::basic());
        c.store_word(0x100, 0xDEAD_BEEF_CAFE_F00D, &mut m).unwrap();
        c.store_word(0x400, 0x1111_2222_3333_4444, &mut m).unwrap();
        c.flip_data_bit_at(0x100, 63);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(c.stats().corrected_dirty, 1);
        assert!(c.verify_invariant());
    }

    #[test]
    fn corrects_odd_burst_in_one_dirty_word() {
        // 3 flips in one word: basic CPPC corrects any detected fault
        // confined to one dirty word via full reconstruction.
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 42, &mut m).unwrap();
        for bit in [3, 11, 40] {
            c.flip_data_bit_at(0x100, bit);
        }
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 42);
    }

    #[test]
    fn clean_fault_refetched() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        m.write_word(0x200, 777);
        assert_eq!(c.load_word(0x200, &mut m).unwrap(), 777);
        c.flip_data_bit_at(0x200, 5);
        assert_eq!(c.load_word(0x200, &mut m).unwrap(), 777);
        assert_eq!(c.stats().corrected_clean, 1);
    }

    #[test]
    fn parity_array_fault_corrected() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 9, &mut m).unwrap();
        let (set, way) = c.inner.probe(0x100).unwrap();
        let row = c.layout.row_of(set, way, 0);
        c.flip_parity_bit(row, 2);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 9);
        assert!(c.verify_invariant());
    }

    #[test]
    fn read_before_write_counted_only_for_dirty_stores() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 1, &mut m).unwrap(); // clean → dirty: no RBW
        assert_eq!(c.stats().read_before_writes, 0);
        c.store_word(0x100, 2, &mut m).unwrap(); // dirty: RBW
        assert_eq!(c.stats().read_before_writes, 1);
        c.store_word(0x108, 3, &mut m).unwrap(); // different word: no RBW
        assert_eq!(c.stats().read_before_writes, 1);
    }

    #[test]
    fn byte_store_preserves_invariant() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        m.write_word(0x100, 0xAAAA_BBBB_CCCC_DDDD);
        // byte store to clean word:
        c.store_byte(0x103, 0x42, &mut m).unwrap();
        assert!(c.verify_invariant());
        assert_eq!(c.peek_word(0x100), Some(0xAAAA_BBBB_42CC_DDDD));
        // byte store to dirty word:
        c.store_byte(0x105, 0x77, &mut m).unwrap();
        assert!(c.verify_invariant());
        assert_eq!(c.stats().read_before_writes, 1);
        assert_eq!(c.stats().byte_store_merges, 1);
        // and recovery still works afterwards:
        c.flip_data_bit_at(0x100, 60);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 0xAAAA_77BB_42CC_DDDD);
    }

    #[test]
    fn eviction_moves_dirty_words_to_r2() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x40, 0xAB, &mut m).unwrap();
        // Evict set 2's block by loading two more blocks into it
        // (16 sets x 32B = 512B stride).
        c.load_word(0x40 + 512, &mut m).unwrap();
        c.load_word(0x40 + 1024, &mut m).unwrap();
        assert_eq!(m.peek_word(0x40), 0xAB, "written back");
        assert!(c.verify_invariant(), "R2 absorbed the evicted dirty word");
        assert_eq!(c.dirty_word_count(), 0);
    }

    #[test]
    fn paper_figure_3_example() {
        // §3.3: store 0x0000 to word0, 0x8000 to word1, flip MSB-of-16
        // of word0, recover.
        let (mut c, mut m) = l1(CppcConfig::basic());
        c.store_word(0x100, 0x0000, &mut m).unwrap();
        c.store_word(0x108, 0x8000, &mut m).unwrap();
        c.flip_data_bit_at(0x100, 15);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 0x0000);
    }

    #[test]
    fn vertical_two_bit_needs_byte_shifting() {
        // §4.1/§4.2: a vertical 2-bit fault (bit 0 of two vertically
        // adjacent dirty words).
        // With byte shifting (paper config): corrected.
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 0xF0, &mut m).unwrap(); // word 0 (row r)
        c.store_word(0x108, 0x0F, &mut m).unwrap(); // word 1 (row r+1)
        c.flip_data_bit_at(0x100, 0);
        c.flip_data_bit_at(0x108, 0);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 0xF0);
        assert_eq!(c.load_word(0x108, &mut m).unwrap(), 0x0F);
        assert!(c.stats().corrected_via_locator >= 2);

        // Without byte shifting (basic): DUE.
        let (mut c, mut m) = l1(CppcConfig::basic());
        c.store_word(0x100, 0xF0, &mut m).unwrap();
        c.store_word(0x108, 0x0F, &mut m).unwrap();
        c.flip_data_bit_at(0x100, 0);
        c.flip_data_bit_at(0x108, 0);
        assert!(c.load_word(0x100, &mut m).is_err());
    }

    #[test]
    fn temporal_faults_in_disjoint_groups_corrected() {
        // Two dirty words far apart with faults in different parity
        // groups: §4.4 step 4 (no locator needed).
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 0x1234_5678_9ABC_DEF0, &mut m).unwrap();
        c.store_word(0x900, 0x0FED_CBA9_8765_4321, &mut m).unwrap();
        c.flip_data_bit_at(0x100, 0); // group 0
        c.flip_data_bit_at(0x900, 3); // group 3
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 0x1234_5678_9ABC_DEF0);
        assert_eq!(c.load_word(0x900, &mut m).unwrap(), 0x0FED_CBA9_8765_4321);
        assert_eq!(
            c.stats().corrected_via_locator,
            0,
            "step-4 path, no locator"
        );
    }

    /// Fills way 0 of the first `rows` physical rows with dirty data so
    /// spatial faults land on dirty words.
    fn dirty_fill_rows(c: &mut CppcCache, m: &mut MainMemory, rows: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::new();
        for row in 0..rows {
            let (set, way, word) = c.layout().location_of(row);
            assert_eq!(way, 0, "row {row} must be way 0");
            let addr = c.geometry().address_of(0, set) + (word * 8) as u64;
            let v: u64 = rng.random();
            c.store_word(addr, v, m).unwrap();
            values.push(v);
        }
        values
    }

    fn addr_of_row(c: &CppcCache, row: usize) -> u64 {
        let (set, _, word) = c.layout().location_of(row);
        c.geometry().address_of(0, set) + (word * 8) as u64
    }

    #[test]
    fn spatial_squares_corrected_by_paper_config() {
        // Randomised spatial MBEs within 8x8 squares over dirty data:
        // correct or (rarely) DUE, never silent corruption.
        let mut corrected = 0;
        let mut dues = 0;
        for trial in 0..200u64 {
            let (mut c, mut m) = l1(CppcConfig::paper());
            let values = dirty_fill_rows(&mut c, &mut m, 32, trial);
            let mut rng = StdRng::seed_from_u64(trial ^ 0xFA17);
            let rows = rng.random_range(1..=8usize);
            let cols = rng.random_range(1..=8u32);
            let row0 = rng.random_range(0..=(32 - rows));
            let col0 = rng.random_range(0..=(64 - cols));
            let mut flips = Vec::new();
            for dr in 0..rows {
                for dc in 0..cols {
                    if rng.random_bool(0.6) {
                        flips.push(BitFlip {
                            row: row0 + dr,
                            col: col0 + dc,
                        });
                    }
                }
            }
            if flips.is_empty() {
                continue;
            }
            c.inject(&FaultPattern::new(flips));
            match c.recover_all(&mut m) {
                Ok(_) => {
                    // No silent corruption: every word must match.
                    for (row, &v) in values.iter().enumerate() {
                        assert_eq!(
                            c.peek_word(addr_of_row(&c, row)),
                            Some(v),
                            "trial {trial} row {row}: SDC"
                        );
                    }
                    assert!(c.verify_invariant(), "trial {trial}");
                    corrected += 1;
                }
                Err(_) => dues += 1,
            }
        }
        // Sparse in-square faults can be undetectable-but-benign or hit
        // ambiguities; the overwhelming majority must be corrected.
        assert!(corrected > dues * 10, "corrected={corrected} dues={dues}");
    }

    #[test]
    fn solid_squares_always_corrected_up_to_7_rows() {
        // Solid RxC squares with R <= 7, C <= 8: every parity group of
        // every touched word fires or the square is detectable; the
        // locator must correct all of them exactly.
        for rows in 1..=7usize {
            for cols in [1u32, 3, 5, 8] {
                let (mut c, mut m) = l1(CppcConfig::paper());
                let values = dirty_fill_rows(&mut c, &mut m, 16, 99);
                let mut flips = Vec::new();
                for dr in 0..rows {
                    for dc in 0..cols {
                        flips.push(BitFlip {
                            row: 2 + dr,
                            col: 20 + dc,
                        });
                    }
                }
                c.inject(&FaultPattern::new(flips));
                let report = c
                    .recover_all(&mut m)
                    .unwrap_or_else(|e| panic!("{rows}x{cols} square must be correctable: {e}"));
                assert!(report.corrected_dirty >= rows);
                for (row, &v) in values.iter().enumerate() {
                    assert_eq!(c.peek_word(addr_of_row(&c, row)), Some(v), "{rows}x{cols}");
                }
            }
        }
    }

    #[test]
    fn full_8x8_due_with_one_pair_corrected_with_two() {
        // §4.6: the solid 8x8 square is irreducible with one pair…
        let (mut c, mut m) = l1(CppcConfig::paper());
        let _ = dirty_fill_rows(&mut c, &mut m, 16, 5);
        let mut flips = Vec::new();
        for dr in 0..8usize {
            for dc in 0..8u32 {
                flips.push(BitFlip {
                    row: dr,
                    col: 16 + dc,
                });
            }
        }
        c.inject(&FaultPattern::new(flips.clone()));
        assert!(c.recover_all(&mut m).is_err(), "one pair: DUE");

        // …but correctable with two pairs (split into two 4x8 halves).
        let (mut c, mut m) = l1(CppcConfig::two_pairs());
        let values = dirty_fill_rows(&mut c, &mut m, 16, 5);
        c.inject(&FaultPattern::new(flips));
        c.recover_all(&mut m).expect("two pairs correct the 8x8");
        for (row, &v) in values.iter().enumerate() {
            assert_eq!(c.peek_word(addr_of_row(&c, row)), Some(v));
        }
    }

    #[test]
    fn distance_four_same_byte_handled_safely() {
        // §4.6's second irreducible pattern: same byte faults in words
        // 4 rows apart (classes 0 and 4). One pair: must not silently
        // miscorrect. Two pairs: separate domains, always corrected.
        let make_flips = || {
            vec![
                BitFlip { row: 0, col: 1 },
                BitFlip { row: 0, col: 2 },
                BitFlip { row: 4, col: 1 },
            ]
        };
        let (mut c, mut m) = l1(CppcConfig::paper());
        let values = dirty_fill_rows(&mut c, &mut m, 16, 6);
        c.inject(&FaultPattern::new(make_flips()));
        // DUE is acceptable for the aliased pattern; success must be exact.
        if c.recover_all(&mut m).is_ok() {
            for (row, &v) in values.iter().enumerate() {
                assert_eq!(c.peek_word(addr_of_row(&c, row)), Some(v), "no SDC allowed");
            }
        }

        let (mut c, mut m) = l1(CppcConfig::two_pairs());
        let values = dirty_fill_rows(&mut c, &mut m, 16, 6);
        c.inject(&FaultPattern::new(make_flips()));
        c.recover_all(&mut m).expect("two pairs split the domains");
        for (row, &v) in values.iter().enumerate() {
            assert_eq!(c.peek_word(addr_of_row(&c, row)), Some(v));
        }
    }

    #[test]
    fn eight_pairs_corrects_everything_without_shifting() {
        // §4.11: with 8 pairs, every class has a private register pair;
        // any spatial fault within 8 rows decomposes into single-word
        // recoveries.
        for trial in 0..50u64 {
            let (mut c, mut m) = l1(CppcConfig::eight_pairs());
            let values = dirty_fill_rows(&mut c, &mut m, 24, trial);
            let mut rng = StdRng::seed_from_u64(trial);
            let rows = rng.random_range(1..=8usize);
            let cols = rng.random_range(1..=8u32);
            let row0 = rng.random_range(0..=(24 - rows));
            let col0 = rng.random_range(0..=(64 - cols));
            let mut flips = Vec::new();
            for dr in 0..rows {
                for dc in 0..cols {
                    flips.push(BitFlip {
                        row: row0 + dr,
                        col: col0 + dc,
                    });
                }
            }
            c.inject(&FaultPattern::new(flips));
            c.recover_all(&mut m)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            for (row, &v) in values.iter().enumerate() {
                assert_eq!(c.peek_word(addr_of_row(&c, row)), Some(v), "trial {trial}");
            }
        }
    }

    #[test]
    fn register_fault_repair() {
        // §4.9: a corrupted register is rebuilt from the dirty words.
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 11, &mut m).unwrap();
        c.store_word(0x300, 22, &mut m).unwrap();
        c.registers_mut().flip_r1_bit(0, 0, 17);
        assert!(!c.verify_invariant());
        c.repair_registers();
        assert!(c.verify_invariant());
        // and recovery works after the repair:
        c.flip_data_bit_at(0x100, 2);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 11);
    }

    #[test]
    fn register_fault_detected_by_parity_and_self_repaired() {
        // §4.9: register parity detects the flip; recover_all rebuilds
        // the registers from the (sound) dirty words.
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 0xAA, &mut m).unwrap();
        c.registers_mut().flip_r2_bit(0, 0, 30);
        assert!(!c.registers_mut().check_parity());
        c.recover_all(&mut m).unwrap();
        assert!(c.registers_mut().check_parity());
        assert!(c.verify_invariant());
        // The repaired registers still correct data faults.
        c.flip_data_bit_at(0x100, 7);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 0xAA);
    }

    #[test]
    fn register_fault_plus_dirty_fault_is_due() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 0xAA, &mut m).unwrap();
        c.registers_mut().flip_r1_bit(0, 0, 3);
        c.flip_data_bit_at(0x100, 12);
        let err = c.recover_all(&mut m).unwrap_err();
        assert_eq!(err.reason, DueReason::RegisterFault);
    }

    #[test]
    fn l2_mode_block_writes() {
        let l2geo = CacheGeometry::new(4096, 4, 32).unwrap();
        let mut c = CppcCache::new_l2(l2geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
        let mut m = MainMemory::new();
        c.write_block(0x100, &[1, 2, 3, 4], 0b1111, &mut m).unwrap();
        assert!(c.verify_invariant());
        assert_eq!(c.read_block(0x100, &mut m).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(c.stats().rbw_block_reads, 0);
        // Overwrite (dirty): one block RBW.
        c.write_block(0x100, &[5, 6, 7, 8], 0b0011, &mut m).unwrap();
        assert_eq!(c.stats().rbw_block_reads, 1);
        assert!(c.verify_invariant());
        // Fault in a dirty word of the block:
        c.flip_data_bit_at(0x108, 33);
        assert_eq!(c.read_block(0x100, &mut m).unwrap(), vec![5, 6, 3, 4]);
    }

    #[test]
    fn l2_mode_partial_masks_keep_invariant() {
        let l2geo = CacheGeometry::new(4096, 4, 32).unwrap();
        let mut c = CppcCache::new_l2(l2geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
        let mut m = MainMemory::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let addr = (rng.random_range(0..64u64)) * 32;
            let mask = rng.random_range(1..16u64);
            let data: Vec<u64> = (0..4).map(|_| rng.random()).collect();
            c.write_block(addr, &data, mask, &mut m).unwrap();
        }
        assert!(c.verify_invariant());
        c.flush(&mut m).unwrap();
        assert!(c.verify_invariant());
        assert_eq!(c.dirty_word_count(), 0);
    }

    #[test]
    fn recovery_during_eviction_pressure() {
        // A fault sits on a dirty word; instead of loading it, we force
        // its eviction — the pre-eviction parity check must trigger
        // recovery so R2 absorbs the *correct* value.
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x40, 0x5555, &mut m).unwrap();
        c.flip_data_bit_at(0x40, 9);
        c.load_word(0x40 + 512, &mut m).unwrap();
        c.load_word(0x40 + 1024, &mut m).unwrap(); // evicts 0x40
        assert_eq!(m.peek_word(0x40), 0x5555, "corrected before write-back");
        assert!(c.verify_invariant());
    }

    #[test]
    fn store_over_corrupted_dirty_word_recovers_first() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x40, 0xAAAA, &mut m).unwrap();
        c.store_word(0x48, 0xBBBB, &mut m).unwrap();
        c.flip_data_bit_at(0x40, 4);
        // Overwrite the corrupted word: RBW parity check fires first.
        c.store_word(0x40, 0xCCCC, &mut m).unwrap();
        assert!(c.verify_invariant(), "R2 must not absorb corrupted data");
        assert_eq!(c.load_word(0x48, &mut m).unwrap(), 0xBBBB);
        // Later recovery of the sibling still works:
        c.flip_data_bit_at(0x48, 8);
        assert_eq!(c.load_word(0x48, &mut m).unwrap(), 0xBBBB);
    }

    #[test]
    fn invalidation_maintains_invariant() {
        // §7: write-invalidate protocols remove dirty blocks; R2 must
        // absorb them exactly as an eviction would.
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 0xAA, &mut m).unwrap();
        c.store_word(0x108, 0xBB, &mut m).unwrap();
        c.store_word(0x300, 0xCC, &mut m).unwrap();
        c.invalidate_block(0x100, &mut m).unwrap();
        assert!(c.verify_invariant());
        assert_eq!(m.peek_word(0x100), 0xAA, "dirty data written back");
        assert_eq!(m.peek_word(0x108), 0xBB);
        assert!(c.peek_word(0x100).is_none(), "block gone");
        // The surviving dirty word is still correctable.
        c.flip_data_bit_at(0x300, 6);
        assert_eq!(c.load_word(0x300, &mut m).unwrap(), 0xCC);
    }

    #[test]
    fn invalidation_of_corrupted_block_recovers_first() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.store_word(0x100, 0x1234, &mut m).unwrap();
        c.flip_data_bit_at(0x100, 3);
        c.invalidate_block(0x100, &mut m).unwrap();
        assert_eq!(m.peek_word(0x100), 0x1234, "corrected before write-back");
        assert!(c.verify_invariant());
    }

    #[test]
    fn invalidating_absent_block_is_noop() {
        let (mut c, mut m) = l1(CppcConfig::paper());
        c.invalidate_block(0x9990, &mut m).unwrap();
        assert!(c.verify_invariant());
    }

    #[test]
    fn due_counted_in_stats() {
        let (mut c, mut m) = l1(CppcConfig::basic());
        c.store_word(0x100, 1, &mut m).unwrap();
        c.store_word(0x108, 2, &mut m).unwrap();
        c.flip_data_bit_at(0x100, 0);
        c.flip_data_bit_at(0x108, 0);
        assert!(c.load_word(0x100, &mut m).is_err());
        assert_eq!(c.stats().dues, 1);
    }
}
