//! Silent-write-aware low-power ECC: a SECDED-protected cache that
//! elides the data write *and* the code refresh when a store carries
//! the value already held in the array ("Using Silent Writes in
//! Low-Power Traffic-Aware ECC", see PAPERS.md).
//!
//! Silent stores are common (stack re-initialisation, zero rewrites,
//! spin flags), and for an ECC cache each one normally costs a data
//! write plus a check-bit write. Skipping both saves write energy with
//! no loss of protection — *if* the stored word really equals the
//! incoming value. The hazard this model captures: the silent-store
//! comparison reads the **stored** word, so a latent fault in the
//! array makes the comparison see a corrupted value, the "silent"
//! elision is refused, and the store overwrites the fault (which is
//! actually the safe direction — the interesting accounting is the
//! energy saved, surfaced via [`SchemeOps::silent_writes`] and the
//! `scheme.silent_writes` metric).
//!
//! The underlying code here is per-word (72,64) SECDED **without**
//! physical interleaving — the low-power design point: silent-write
//! elision recovers write energy instead of paying the 8x bitline
//! activation interleaving costs on every access. The trade shows up
//! in campaigns: wide spatial strikes can defeat a non-interleaved
//! SECDED word (miscorrection → SDC), which the comparison table in
//! `docs/SCHEMES.md` makes visible next to the interleaved baseline.

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::stats::CacheStats;
use cppc_fault::campaign::Outcome;
use cppc_fault::layout::PhysicalLayout;
use cppc_fault::model::FaultPattern;

use crate::baselines::SecdedCache;
use crate::scheme::{ProtectionScheme, SchemeDescriptor, SchemeFault, SchemeOps};

/// Descriptor for [`SilentWriteEccScheme`] (`--scheme silent-write-ecc`).
pub static SILENT_WRITE_ECC_DESCRIPTOR: SchemeDescriptor = SchemeDescriptor {
    name: "silent-write-ecc",
    title: "Silent-write-aware ECC (low-power SECDED)",
    reference: "related work: Using Silent Writes in Low-Power Traffic-Aware ECC (PAPERS.md)",
    summary: "Per-word (72,64) SECDED, non-interleaved, with silent-store elision: every \
              store first compares the incoming value against the stored word and skips \
              both the data write and the check-bit refresh when they match. Elisions are \
              counted in the scheme.silent_writes metric and priced as free writes by the \
              energy model. Without interleaving, spatial strikes wider than two bits per \
              word can miscorrect — the energy/reliability trade the catalog table shows.",
    code_bits_per_word: 8,
    interleave_degree: 1,
    extra_state: "one 64-bit comparator on the store path (reads the stored word)",
    detection: "single and double bit errors per word; wider per-word damage can alias",
    correction: "one bit per word (no interleave decomposition of spatial strikes)",
};

/// A SECDED cache with silent-store elision behind the
/// [`ProtectionScheme`] trait.
pub struct SilentWriteEccScheme {
    inner: SecdedCache,
    silent_writes: u64,
}

impl SilentWriteEccScheme {
    /// Builds the scheme over a cache of geometry `geo`
    /// (non-interleaved SECDED — the low-power design point).
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        SilentWriteEccScheme {
            inner: SecdedCache::new(geo, false, policy),
            silent_writes: 0,
        }
    }

    /// Stores elided as silent so far.
    #[must_use]
    pub fn silent_writes(&self) -> u64 {
        self.silent_writes
    }
}

impl ProtectionScheme for SilentWriteEccScheme {
    fn descriptor(&self) -> &'static SchemeDescriptor {
        &SILENT_WRITE_ECC_DESCRIPTOR
    }

    fn write_word(
        &mut self,
        addr: u64,
        value: u64,
        mem: &mut MainMemory,
    ) -> Result<(), SchemeFault> {
        // The silent-store comparison reads the *stored* word — a
        // resident match elides the data write and the code refresh.
        // (A latent fault makes the comparison miss, so the store
        // proceeds and overwrites it: safe, just not energy-free.)
        if self.inner.peek_word(addr) == Some(value) {
            self.silent_writes += 1;
            crate::scheme::SILENT_WRITES.inc();
            return Ok(());
        }
        self.inner.store_word(addr, value, mem);
        Ok(())
    }

    fn read_word(&mut self, addr: u64, mem: &mut MainMemory) -> Result<u64, SchemeFault> {
        self.inner.load_word(addr, mem).map_err(SchemeFault::from)
    }

    fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    fn layout(&self) -> &PhysicalLayout {
        self.inner.layout()
    }

    fn flush(&mut self, mem: &mut MainMemory) -> Result<(), SchemeFault> {
        self.inner.flush(mem);
        Ok(())
    }

    fn inject(&mut self, pattern: &FaultPattern) -> usize {
        self.inner.inject(pattern)
    }

    fn classify(&mut self, truth: &[(u64, u64)], mem: &mut MainMemory) -> Outcome {
        for &(addr, v) in truth {
            match self.inner.load_word(addr, mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        Outcome::Corrected
    }

    fn ops(&self) -> SchemeOps {
        let stats = self.inner.cache_stats();
        SchemeOps {
            writes: stats.store_hits + stats.fills,
            silent_writes: self.silent_writes,
            rmw_reads: self.inner.rmw_reads(),
            corrected: self.inner.corrected(),
            dues: self.inner.dues(),
            ..SchemeOps::default()
        }
    }

    fn cache_stats(&self) -> &CacheStats {
        self.inner.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> CacheGeometry {
        CacheGeometry::new(1024, 2, 32).unwrap()
    }

    #[test]
    fn repeated_identical_store_is_elided() {
        let mut mem = MainMemory::new();
        let mut s = SilentWriteEccScheme::new(geo(), ReplacementPolicy::Lru);
        s.write_word(0x40, 0xAB, &mut mem).unwrap();
        assert_eq!(s.silent_writes(), 0);
        s.write_word(0x40, 0xAB, &mut mem).unwrap();
        s.write_word(0x40, 0xAB, &mut mem).unwrap();
        assert_eq!(s.silent_writes(), 2);
        assert_eq!(s.ops().silent_writes, 2);
        // A different value is a real store again.
        s.write_word(0x40, 0xCD, &mut mem).unwrap();
        assert_eq!(s.silent_writes(), 2);
        assert_eq!(s.read_word(0x40, &mut mem).unwrap(), 0xCD);
    }

    #[test]
    fn corrupted_word_defeats_the_elision_and_is_overwritten() {
        let mut mem = MainMemory::new();
        let mut s = SilentWriteEccScheme::new(geo(), ReplacementPolicy::Lru);
        s.write_word(0x40, 0xAB, &mut mem).unwrap();
        // Flip a bit in the stored word: the comparison now misses.
        let row = s.layout().row_of(geo().set_index(0x40), 0, 0);
        s.inject(&FaultPattern::new(vec![cppc_fault::model::BitFlip {
            row,
            col: 1,
        }]));
        s.write_word(0x40, 0xAB, &mut mem).unwrap();
        assert_eq!(s.silent_writes(), 0, "corrupted word is not silent");
        assert_eq!(s.read_word(0x40, &mut mem).unwrap(), 0xAB);
    }
}
