//! The pluggable [`ProtectionScheme`] abstraction: one trait every
//! protected cache in the zoo implements, so campaigns, repro
//! artifacts and the CLI parameterize over a *scheme selector* instead
//! of hard-coding each cache type.
//!
//! The trait captures the full lifecycle a fault-injection campaign
//! exercises:
//!
//! * **encode** — [`ProtectionScheme::write_word`], the per-write
//!   callback that stores data and refreshes the scheme's code bits
//!   (CPPC additionally folds the old/new values into R1; 2D parity
//!   performs its read-before-write). Dirty evictions triggered by a
//!   conflicting fill run each scheme's per-eviction maintenance
//!   internally (CPPC's R2 update, 2D parity's vertical-row rewrite);
//!   [`ProtectionScheme::flush`] exposes that eviction path explicitly
//!   by retiring every dirty block through it.
//! * **check / correct** — [`ProtectionScheme::read_word`] verifies the
//!   code on the read path and corrects (or refuses) on a mismatch;
//!   [`ProtectionScheme::classify`] runs the scheme's whole-array
//!   recovery procedure against ground truth and grades the outcome.
//! * **fault interface** — [`ProtectionScheme::inject`] applies a raw
//!   bit-flip pattern; [`ProtectionScheme::inject_model`] samples a
//!   strike from a [`FaultModel`] the way the scheme's physical array
//!   is actually organised (interleaved SECDED translates logical
//!   strikes onto its 8-way interleaved array, everything else strikes
//!   logical rows directly).
//! * **accounting** — [`ProtectionScheme::ops`] surfaces the
//!   energy-relevant operation counts (writes, silent-write elisions,
//!   read-modify-writes, read-before-writes) and
//!   [`ProtectionScheme::cache_stats`] the generic traffic counters
//!   the area/energy models consume.
//! * **self-description** — [`ProtectionScheme::descriptor`] returns
//!   static name/geometry/overhead metadata; the `schemes-md`
//!   generator renders `docs/SCHEMES.md` from exactly these
//!   descriptors.
//!
//! The four ported schemes (`cppc`, `parity1d`, `secded-interleaved`,
//! `parity2d`) reproduce the historical baked-in campaign closures
//! **bit for bit**: they consume the trial RNG stream in the same
//! order and classify with the same rules, so campaign tallies and
//! checkpoint bytes are identical to the pre-refactor paths (the
//! `scheme_equivalence` integration suite pins this at 1, 2 and 8
//! threads). The zoo's two related-work additions live in
//! [`crate::silent`] (silent-write-aware ECC) and [`crate::harp`]
//! (HARP-style on-die ECC with an error-profiling pass).

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::stats::CacheStats;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::RngExt;
use cppc_fault::campaign::Outcome;
use cppc_fault::layout::PhysicalLayout;
use cppc_fault::model::{FaultGenerator, FaultModel, FaultPattern};

use crate::baselines::{OneDimParityCache, SecdedCache, TwoDimParityCache};
use crate::cache::{CppcCache, Due};
use crate::config::{ConfigError, CppcConfig};

use std::fmt;

cppc_obs::metrics! {
    group SCHEME_METRICS: "scheme", "Protection-scheme zoo: per-scheme write-elision and error-profiling hooks behind the ProtectionScheme trait.";
    counter SILENT_WRITES: "scheme.silent_writes", "events", "Stores elided by the silent-write-aware ECC scheme: the incoming value matched the stored word, so the data write and the code refresh were both skipped.";
    counter HARP_PROFILED: "scheme.harp.profiled_uncorrectable", "words", "Words the HARP-style error-profiling pass identified as uncorrectable by the on-die SECDED code.";
    counter HARP_REPAIRS: "scheme.harp.repaired", "words", "Profiled uncorrectable words repaired from the scheme's write-through memory copy.";
}

/// Registers the scheme-zoo metric group (idempotent).
pub fn register_metrics() {
    SCHEME_METRICS.register();
}

/// A fault the scheme detected but cannot repair, surfaced from
/// [`ProtectionScheme::read_word`] / [`ProtectionScheme::write_word`] /
/// [`ProtectionScheme::flush`].
///
/// Each implementation's native error type (CPPC's [`Due`], the
/// baselines' [`UnrecoverableFault`](crate::baselines::UnrecoverableFault))
/// converts into this with its human-readable diagnostic preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeFault {
    /// Human-readable diagnostic from the underlying scheme.
    pub detail: String,
}

impl fmt::Display for SchemeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for SchemeFault {}

impl From<Due> for SchemeFault {
    fn from(due: Due) -> Self {
        SchemeFault {
            detail: due.to_string(),
        }
    }
}

impl From<crate::baselines::UnrecoverableFault> for SchemeFault {
    fn from(fault: crate::baselines::UnrecoverableFault) -> Self {
        SchemeFault {
            detail: fault.to_string(),
        }
    }
}

/// Static self-description of one protection scheme: the metadata the
/// `schemes-md` generator renders into `docs/SCHEMES.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeDescriptor {
    /// The selector name (`cppc-cli campaign --scheme <name>`).
    pub name: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Where the design comes from (paper section or related work).
    pub reference: &'static str,
    /// One-paragraph summary of the mechanism.
    pub summary: &'static str,
    /// Code bits stored per 64-bit data word.
    pub code_bits_per_word: u32,
    /// Physical bit-interleave degree of the data array.
    pub interleave_degree: u32,
    /// Extra state outside the data array (registers, vertical rows).
    pub extra_state: &'static str,
    /// What the scheme detects.
    pub detection: &'static str,
    /// What the scheme corrects.
    pub correction: &'static str,
}

impl SchemeDescriptor {
    /// Code-storage overhead as a percentage of the data array.
    #[must_use]
    pub fn storage_overhead_pct(&self) -> f64 {
        f64::from(self.code_bits_per_word) / 64.0 * 100.0
    }
}

/// Energy-relevant operation counts a scheme accumulated, surfaced via
/// [`ProtectionScheme::ops`] for the `cppc-energy` accounting hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeOps {
    /// Data-array writes performed (stores that actually wrote).
    pub writes: u64,
    /// Stores elided as silent (value already stored; no array write).
    pub silent_writes: u64,
    /// Read-modify-write reads (sub-word stores under a word code).
    pub rmw_reads: u64,
    /// Read-before-writes (2D parity's vertical-row maintenance).
    pub read_before_writes: u64,
    /// Words corrected by the scheme.
    pub corrected: u64,
    /// Detected-but-unrecoverable faults.
    pub dues: u64,
}

/// One protected cache in the zoo, as a campaign sees it.
///
/// Implementations wrap a concrete protected cache over the shared
/// `cppc-cache-sim` substrate; the trait is object-safe so campaign
/// drivers hold a `Box<dyn ProtectionScheme>` built by
/// [`SchemeKind::build`].
pub trait ProtectionScheme {
    /// Static name/geometry/overhead metadata (the `docs/SCHEMES.md`
    /// source of truth).
    fn descriptor(&self) -> &'static SchemeDescriptor;

    /// The per-write callback: store `value` at `addr`, refreshing the
    /// scheme's code (and running any scheme-specific write plumbing —
    /// CPPC's R1 XOR fold, 2D parity's read-before-write).
    ///
    /// # Errors
    ///
    /// Returns [`SchemeFault`] when the write path trips over a fault
    /// it cannot repair (e.g. an eviction of already-corrupt data).
    fn write_word(
        &mut self,
        addr: u64,
        value: u64,
        mem: &mut MainMemory,
    ) -> Result<(), SchemeFault>;

    /// The check/correct read hook: load the word at `addr`, verifying
    /// the code and correcting on a mismatch where the scheme can.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeFault`] on a detected-but-unrecoverable fault.
    fn read_word(&mut self, addr: u64, mem: &mut MainMemory) -> Result<u64, SchemeFault>;

    /// Reads the word at `addr` without side effects, if resident.
    fn peek_word(&self, addr: u64) -> Option<u64>;

    /// The physical data-array layout (for fault targeting).
    fn layout(&self) -> &PhysicalLayout;

    /// The per-eviction callback, applied to the whole cache: retire
    /// every dirty block through the scheme's eviction path (write-back
    /// plus eviction maintenance — CPPC folds evicted dirty words into
    /// R2).
    ///
    /// # Errors
    ///
    /// Returns [`SchemeFault`] when a dirty block under eviction holds
    /// a fault the scheme cannot repair.
    fn flush(&mut self, mem: &mut MainMemory) -> Result<(), SchemeFault>;

    /// Applies a raw bit-flip pattern to the data array, returning how
    /// many flips landed on resident blocks.
    fn inject(&mut self, pattern: &FaultPattern) -> usize;

    /// Samples one strike from `model` and applies it, returning the
    /// number of flips that landed.
    ///
    /// The default samples a logical-row pattern over the way-0 half of
    /// the array (the coverage-matrix methodology: way 0 is the dirty
    /// way) and consumes exactly one `u64` from `rng`, matching the
    /// historical baked-in campaign closures draw for draw. Schemes
    /// whose physical array is organised differently override this —
    /// interleaved SECDED translates the model into a physical strike
    /// on its 8-way interleaved array.
    fn inject_model(&mut self, model: FaultModel, rng: &mut StdRng) -> usize {
        let rows = self.layout().num_rows() / 2;
        let mut generator = FaultGenerator::new(rows, rng.random());
        let pattern = generator.sample(model);
        self.inject(&pattern)
    }

    /// Runs the scheme's whole-array recovery procedure and grades the
    /// result against ground truth.
    ///
    /// Each scheme classifies with its own semantics, mirroring the
    /// historical coverage-matrix closures: correction-capable schemes
    /// return [`Outcome::Corrected`] when every word verifies, while 1D
    /// parity — detection only — returns [`Outcome::Masked`] when every
    /// load matches (even flips per parity group were hidden, harmless
    /// this time).
    fn classify(&mut self, truth: &[(u64, u64)], mem: &mut MainMemory) -> Outcome;

    /// Energy-relevant operation counts accumulated so far.
    fn ops(&self) -> SchemeOps;

    /// Generic cache traffic statistics (hits, fills, write-backs).
    fn cache_stats(&self) -> &CacheStats;
}

/// The scheme selector: every member of the zoo, by wire name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// CPPC itself (the paper's design).
    Cppc,
    /// One-dimensional interleaved parity, detection only.
    Parity1d,
    /// SECDED per word with 8-way physical bit interleaving.
    SecdedInterleaved,
    /// Two-dimensional parity (horizontal interleaved + vertical rows).
    Parity2d,
    /// Silent-write-aware low-power ECC (related work).
    SilentWriteEcc,
    /// HARP-style on-die ECC with an error-profiling pass (related
    /// work).
    HarpOdecc,
}

impl SchemeKind {
    /// Every scheme, in catalog order.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Cppc,
        SchemeKind::Parity1d,
        SchemeKind::SecdedInterleaved,
        SchemeKind::Parity2d,
        SchemeKind::SilentWriteEcc,
        SchemeKind::HarpOdecc,
    ];

    /// The selector's wire name (`cppc-cli campaign --scheme <name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown scheme and listing the
    /// known ones.
    pub fn parse(name: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Self::ALL.iter().map(|k| k.name()).collect();
                format!("unknown scheme '{name}' (use {})", known.join("|"))
            })
    }

    /// The scheme's static descriptor (without building a cache).
    #[must_use]
    pub fn descriptor(self) -> &'static SchemeDescriptor {
        match self {
            SchemeKind::Cppc => &CPPC_DESCRIPTOR,
            SchemeKind::Parity1d => &PARITY1D_DESCRIPTOR,
            SchemeKind::SecdedInterleaved => &SECDED_DESCRIPTOR,
            SchemeKind::Parity2d => &PARITY2D_DESCRIPTOR,
            SchemeKind::SilentWriteEcc => &crate::silent::SILENT_WRITE_ECC_DESCRIPTOR,
            SchemeKind::HarpOdecc => &crate::harp::HARP_ODECC_DESCRIPTOR,
        }
    }

    /// Builds the scheme over a cache of geometry `geo`.
    ///
    /// `config` parameterizes CPPC only (register pairs, parity ways,
    /// byte shifting); the other schemes use their paper
    /// configurations: 8-way parity, 8-way SECDED interleaving, one
    /// vertical parity row.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `config` is invalid for CPPC.
    pub fn build(
        self,
        geo: CacheGeometry,
        config: CppcConfig,
    ) -> Result<Box<dyn ProtectionScheme>, ConfigError> {
        register_metrics();
        let policy = ReplacementPolicy::Lru;
        Ok(match self {
            SchemeKind::Cppc => Box::new(CppcScheme::new(geo, config, policy)?),
            SchemeKind::Parity1d => Box::new(Parity1dScheme::new(geo, policy)),
            SchemeKind::SecdedInterleaved => Box::new(SecdedInterleavedScheme::new(geo, policy)),
            SchemeKind::Parity2d => Box::new(Parity2dScheme::new(geo, policy)),
            SchemeKind::SilentWriteEcc => {
                Box::new(crate::silent::SilentWriteEccScheme::new(geo, policy))
            }
            SchemeKind::HarpOdecc => Box::new(crate::harp::HarpOdeccScheme::new(geo, policy)),
        })
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ======================================================================
// The four ported schemes
// ======================================================================

static CPPC_DESCRIPTOR: SchemeDescriptor = SchemeDescriptor {
    name: "cppc",
    title: "CPPC — correctable parity protected cache",
    reference: "Manoochehri, Annavaram & Dubois, ISCA 2011 (the reproduced paper)",
    summary: "Interleaved parity per word for detection plus two XOR checkpoint registers \
              (R1 folds dirty data in, R2 folds evicted dirty data out); their difference \
              reconstructs any single faulty dirty word, and byte shifting spreads spatial \
              multi-bit strikes across parity groups so the locator can pin each faulty \
              word down. Clean faults are re-fetched from below.",
    code_bits_per_word: 8,
    interleave_degree: 1,
    extra_state: "one R1/R2 64-bit register pair per parity interleave (paper \
                  configuration: 1 pair, byte shifting on)",
    detection: "any fault a parity way sees (odd flips per group)",
    correction: "all dirty-word faults locatable by parity groups + byte shifting; \
                 spatial MBEs up to 8x8 except the irreducible solid-square/distance-4 \
                 patterns with one pair (DUE, never SDC)",
};

static PARITY1D_DESCRIPTOR: SchemeDescriptor = SchemeDescriptor {
    name: "parity1d",
    title: "1D interleaved parity (detection only)",
    reference: "paper §6 baseline",
    summary: "Eight interleaved parity bits per 64-bit word. Detection only: a fault in a \
              clean word is repaired by re-fetching from the next level; a fault in a \
              dirty word has no redundant copy anywhere and halts the machine — the \
              paper's motivating failure mode for write-back caches.",
    code_bits_per_word: 8,
    interleave_degree: 1,
    extra_state: "none",
    detection: "odd flips per parity group",
    correction: "clean words only (re-fetch); dirty faults are fatal (DUE)",
};

static SECDED_DESCRIPTOR: SchemeDescriptor = SchemeDescriptor {
    name: "secded-interleaved",
    title: "SECDED (72,64) with 8-way physical interleaving",
    reference: "paper §6 baseline",
    summary: "A (72,64) Hsiao SECDED code per word, with the data array physically \
              interleaved 8-way so a spatial multi-bit strike decomposes into at most one \
              flipped bit per logical word — each correctable on its own. Pays the 8x \
              bitline activation the interleaving implies on every access.",
    code_bits_per_word: 8,
    interleave_degree: 8,
    extra_state: "none",
    detection: "single and double bit errors per word (guaranteed); wider strikes \
                decompose across the interleave",
    correction: "one bit per word — with 8-way interleaving, spatial strikes up to 8 \
                 columns wide",
};

static PARITY2D_DESCRIPTOR: SchemeDescriptor = SchemeDescriptor {
    name: "parity2d",
    title: "Two-dimensional parity",
    reference: "paper §6 baseline (Kim et al. style)",
    summary: "Eight-way horizontal interleaved parity per word plus vertical parity rows \
              (one in the paper's evaluated configuration). Horizontal parity locates the \
              faulty row, the vertical row rebuilds it — but every store and every fill \
              pays a read-before-write to keep the vertical parity current, and faults in \
              multiple rows of one vertical group are unrecoverable.",
    code_bits_per_word: 8,
    interleave_degree: 1,
    extra_state: "vertical parity rows in the array (1 row in the evaluated config)",
    detection: "odd flips per horizontal parity group",
    correction: "any single faulty row per vertical parity group",
};

/// CPPC behind the trait: delegates to [`CppcCache`] (L1 variant).
pub struct CppcScheme {
    inner: CppcCache,
}

impl CppcScheme {
    /// Builds an L1 CPPC with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `config` is invalid.
    pub fn new(
        geo: CacheGeometry,
        config: CppcConfig,
        policy: ReplacementPolicy,
    ) -> Result<Self, ConfigError> {
        Ok(CppcScheme {
            inner: CppcCache::new_l1(geo, config, policy)?,
        })
    }
}

impl ProtectionScheme for CppcScheme {
    fn descriptor(&self) -> &'static SchemeDescriptor {
        &CPPC_DESCRIPTOR
    }

    fn write_word(
        &mut self,
        addr: u64,
        value: u64,
        mem: &mut MainMemory,
    ) -> Result<(), SchemeFault> {
        self.inner
            .store_word(addr, value, mem)
            .map_err(SchemeFault::from)
    }

    fn read_word(&mut self, addr: u64, mem: &mut MainMemory) -> Result<u64, SchemeFault> {
        self.inner.load_word(addr, mem).map_err(SchemeFault::from)
    }

    fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    fn layout(&self) -> &PhysicalLayout {
        self.inner.layout()
    }

    fn flush(&mut self, mem: &mut MainMemory) -> Result<(), SchemeFault> {
        self.inner.flush(mem).map(|_| ()).map_err(SchemeFault::from)
    }

    fn inject(&mut self, pattern: &FaultPattern) -> usize {
        self.inner.inject(pattern)
    }

    fn classify(&mut self, truth: &[(u64, u64)], mem: &mut MainMemory) -> Outcome {
        match self.inner.recover_all(mem) {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(_) => {
                for &(addr, v) in truth {
                    if self.inner.peek_word(addr) != Some(v) {
                        return Outcome::SilentCorruption;
                    }
                }
                Outcome::Corrected
            }
        }
    }

    fn ops(&self) -> SchemeOps {
        let stats = self.inner.cache_stats();
        SchemeOps {
            writes: stats.store_hits + stats.fills,
            read_before_writes: stats.stores_to_dirty,
            ..SchemeOps::default()
        }
    }

    fn cache_stats(&self) -> &CacheStats {
        self.inner.cache_stats()
    }
}

/// 1D parity behind the trait: delegates to [`OneDimParityCache`]
/// (8-way parity, the paper configuration).
pub struct Parity1dScheme {
    inner: OneDimParityCache,
}

impl Parity1dScheme {
    /// Builds the cache with the paper's 8-way interleaved parity.
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        Parity1dScheme {
            inner: OneDimParityCache::new(geo, 8, policy),
        }
    }
}

impl ProtectionScheme for Parity1dScheme {
    fn descriptor(&self) -> &'static SchemeDescriptor {
        &PARITY1D_DESCRIPTOR
    }

    fn write_word(
        &mut self,
        addr: u64,
        value: u64,
        mem: &mut MainMemory,
    ) -> Result<(), SchemeFault> {
        self.inner.store_word(addr, value, mem);
        Ok(())
    }

    fn read_word(&mut self, addr: u64, mem: &mut MainMemory) -> Result<u64, SchemeFault> {
        self.inner.load_word(addr, mem).map_err(SchemeFault::from)
    }

    fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    fn layout(&self) -> &PhysicalLayout {
        self.inner.layout()
    }

    fn flush(&mut self, mem: &mut MainMemory) -> Result<(), SchemeFault> {
        self.inner.flush(mem);
        Ok(())
    }

    fn inject(&mut self, pattern: &FaultPattern) -> usize {
        self.inner.inject(pattern)
    }

    fn classify(&mut self, truth: &[(u64, u64)], mem: &mut MainMemory) -> Outcome {
        for &(addr, v) in truth {
            match self.inner.load_word(addr, mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        // Every flipped bit was hidden by even flips per parity group:
        // harmless this time — masked by parity blindness.
        Outcome::Masked
    }

    fn ops(&self) -> SchemeOps {
        let stats = self.inner.cache_stats();
        SchemeOps {
            writes: stats.store_hits + stats.fills,
            corrected: self.inner.corrected_clean(),
            dues: self.inner.dues(),
            ..SchemeOps::default()
        }
    }

    fn cache_stats(&self) -> &CacheStats {
        self.inner.cache_stats()
    }
}

/// Interleaved SECDED behind the trait: delegates to [`SecdedCache`]
/// with 8-way physical bit interleaving.
pub struct SecdedInterleavedScheme {
    inner: SecdedCache,
}

impl SecdedInterleavedScheme {
    /// Builds the cache with 8-way physical interleaving.
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        SecdedInterleavedScheme {
            inner: SecdedCache::new(geo, true, policy),
        }
    }
}

impl ProtectionScheme for SecdedInterleavedScheme {
    fn descriptor(&self) -> &'static SchemeDescriptor {
        &SECDED_DESCRIPTOR
    }

    fn write_word(
        &mut self,
        addr: u64,
        value: u64,
        mem: &mut MainMemory,
    ) -> Result<(), SchemeFault> {
        self.inner.store_word(addr, value, mem);
        Ok(())
    }

    fn read_word(&mut self, addr: u64, mem: &mut MainMemory) -> Result<u64, SchemeFault> {
        self.inner.load_word(addr, mem).map_err(SchemeFault::from)
    }

    fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    fn layout(&self) -> &PhysicalLayout {
        self.inner.layout()
    }

    fn flush(&mut self, mem: &mut MainMemory) -> Result<(), SchemeFault> {
        self.inner.flush(mem);
        Ok(())
    }

    fn inject(&mut self, pattern: &FaultPattern) -> usize {
        self.inner.inject(pattern)
    }

    fn inject_model(&mut self, model: FaultModel, rng: &mut StdRng) -> usize {
        let logical_rows = self.inner.layout().num_rows() / 2;
        // Translate the fault model into a physical strike on the
        // interleaved array (8 logical rows per physical row) — the
        // same translation (and RNG draw order) as the historical
        // coverage-matrix closure.
        let (rows, cols) = match model {
            FaultModel::TemporalSingleBit | FaultModel::TemporalMultiBit { .. } => (1, 1),
            FaultModel::VerticalStripe { rows } => (rows, 1),
            FaultModel::HorizontalBurst { cols } => (1, cols),
            FaultModel::SpatialSquare { rows, cols, .. } => (rows, cols),
        };
        let physical_rows = logical_rows / 8;
        let prows = rows.div_ceil(8).max(1).min(physical_rows);
        let row0 = rng.random_range(0..=(physical_rows - prows));
        let col0 = rng.random_range(0..=(512 - cols));
        self.inner.inject_spatial(row0, col0, prows, cols).len()
    }

    fn classify(&mut self, truth: &[(u64, u64)], mem: &mut MainMemory) -> Outcome {
        for &(addr, v) in truth {
            match self.inner.load_word(addr, mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        Outcome::Corrected
    }

    fn ops(&self) -> SchemeOps {
        let stats = self.inner.cache_stats();
        SchemeOps {
            writes: stats.store_hits + stats.fills,
            rmw_reads: self.inner.rmw_reads(),
            corrected: self.inner.corrected(),
            dues: self.inner.dues(),
            ..SchemeOps::default()
        }
    }

    fn cache_stats(&self) -> &CacheStats {
        self.inner.cache_stats()
    }
}

/// 2D parity behind the trait: delegates to [`TwoDimParityCache`]
/// with the paper's single vertical parity row.
pub struct Parity2dScheme {
    inner: TwoDimParityCache,
}

impl Parity2dScheme {
    /// Builds the cache with one vertical parity row (the paper's
    /// evaluated configuration).
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        Parity2dScheme {
            inner: TwoDimParityCache::new(geo, 1, policy),
        }
    }
}

impl ProtectionScheme for Parity2dScheme {
    fn descriptor(&self) -> &'static SchemeDescriptor {
        &PARITY2D_DESCRIPTOR
    }

    fn write_word(
        &mut self,
        addr: u64,
        value: u64,
        mem: &mut MainMemory,
    ) -> Result<(), SchemeFault> {
        self.inner.store_word(addr, value, mem);
        Ok(())
    }

    fn read_word(&mut self, addr: u64, mem: &mut MainMemory) -> Result<u64, SchemeFault> {
        self.inner.load_word(addr, mem).map_err(SchemeFault::from)
    }

    fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    fn layout(&self) -> &PhysicalLayout {
        self.inner.layout()
    }

    fn flush(&mut self, mem: &mut MainMemory) -> Result<(), SchemeFault> {
        self.inner.flush(mem);
        Ok(())
    }

    fn inject(&mut self, pattern: &FaultPattern) -> usize {
        self.inner.inject(pattern)
    }

    fn classify(&mut self, truth: &[(u64, u64)], _mem: &mut MainMemory) -> Outcome {
        match self.inner.recover_all() {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(()) => {
                for &(addr, v) in truth {
                    if self.inner.peek_word(addr) != Some(v) {
                        return Outcome::SilentCorruption;
                    }
                }
                Outcome::Corrected
            }
        }
    }

    fn ops(&self) -> SchemeOps {
        let stats = self.inner.cache_stats();
        SchemeOps {
            writes: stats.store_hits + stats.fills,
            read_before_writes: self.inner.read_before_writes(),
            corrected: self.inner.corrected(),
            dues: self.inner.dues(),
            ..SchemeOps::default()
        }
    }

    fn cache_stats(&self) -> &CacheStats {
        self.inner.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::SeedableRng;

    fn geometry() -> CacheGeometry {
        CacheGeometry::new(2048, 2, 32).unwrap()
    }

    fn fill(scheme: &mut dyn ProtectionScheme, mem: &mut MainMemory) -> Vec<(u64, u64)> {
        let geo = geometry();
        let mut rng = StdRng::seed_from_u64(7);
        let mut truth = Vec::new();
        for set in 0..geo.num_sets() {
            for word in 0..geo.words_per_block() {
                let addr = geo.address_of(0, set) + (word * 8) as u64;
                let v: u64 = rng.random();
                scheme.write_word(addr, v, mem).unwrap();
                truth.push((addr, v));
            }
        }
        truth
    }

    #[test]
    fn names_parse_and_roundtrip() {
        for kind in SchemeKind::ALL {
            assert_eq!(SchemeKind::parse(kind.name()), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        let err = SchemeKind::parse("hamming").unwrap_err();
        assert!(err.contains("cppc"), "{err}");
        assert!(err.contains("harp-odecc"), "{err}");
    }

    #[test]
    fn descriptors_are_complete() {
        for kind in SchemeKind::ALL {
            let d = kind.descriptor();
            assert_eq!(d.name, kind.name());
            assert!(!d.summary.is_empty());
            assert!(!d.correction.is_empty());
            assert!(d.storage_overhead_pct() > 0.0, "{}", d.name);
        }
        assert_eq!(SchemeKind::Cppc.descriptor().storage_overhead_pct(), 12.5);
        assert_eq!(
            SchemeKind::SecdedInterleaved.descriptor().interleave_degree,
            8
        );
    }

    #[test]
    fn every_scheme_stores_and_reads_back() {
        for kind in SchemeKind::ALL {
            let mut mem = MainMemory::new();
            let mut scheme = kind.build(geometry(), CppcConfig::paper()).unwrap();
            let truth = fill(scheme.as_mut(), &mut mem);
            for &(addr, v) in &truth {
                assert_eq!(scheme.peek_word(addr), Some(v), "{kind}");
                assert_eq!(scheme.read_word(addr, &mut mem).unwrap(), v, "{kind}");
            }
            assert!(scheme.ops().writes > 0, "{kind}");
        }
    }

    #[test]
    fn fault_free_classify_is_clean_for_every_scheme() {
        for kind in SchemeKind::ALL {
            let mut mem = MainMemory::new();
            let mut scheme = kind.build(geometry(), CppcConfig::paper()).unwrap();
            let truth = fill(scheme.as_mut(), &mut mem);
            let outcome = scheme.classify(&truth, &mut mem);
            assert!(
                matches!(outcome, Outcome::Corrected | Outcome::Masked),
                "{kind}: {outcome:?}"
            );
        }
    }

    #[test]
    fn single_bit_fault_never_silently_corrupts() {
        for kind in SchemeKind::ALL {
            let mut mem = MainMemory::new();
            let mut scheme = kind.build(geometry(), CppcConfig::paper()).unwrap();
            let truth = fill(scheme.as_mut(), &mut mem);
            let mut rng = StdRng::seed_from_u64(11);
            let landed = scheme.inject_model(FaultModel::TemporalSingleBit, &mut rng);
            assert!(landed > 0, "{kind}: strike must land on the dirty way");
            let outcome = scheme.classify(&truth, &mut mem);
            assert_ne!(outcome, Outcome::SilentCorruption, "{kind}");
        }
    }

    #[test]
    fn flush_leaves_memory_matching_truth() {
        for kind in SchemeKind::ALL {
            let mut mem = MainMemory::new();
            let mut scheme = kind.build(geometry(), CppcConfig::paper()).unwrap();
            let truth = fill(scheme.as_mut(), &mut mem);
            scheme.flush(&mut mem).unwrap();
            for &(addr, v) in &truth {
                assert_eq!(mem.peek_word(addr), v, "{kind}");
            }
        }
    }
}
