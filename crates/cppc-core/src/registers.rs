//! The R1/R2 XOR register file (paper §3, §4.9).
//!
//! R1 accumulates the XOR of every (rotated) word stored into the cache;
//! R2 accumulates the XOR of every (rotated) dirty word removed from the
//! cache — by overwrite or by write-back. The defining invariant,
//! maintained by construction and checked by
//! [`RegisterFile::checkpoint`]-based tests:
//!
//! > `R1 ^ R2` equals the XOR of the rotated values of all dirty words
//! > currently resident in the protection domain of the pair.
//!
//! A register *lane* is one 64-bit word. An L1 CPPC has one lane per
//! register; an L2 CPPC has one lane per word of an L1 block (§3.5: "R1
//! and R2 must have the size of an L1 cache block"). The file below
//! holds `pairs x lanes` of (R1, R2).

use cppc_ecc::parity::byte_parity64;

use crate::rotate::rotate_left_bytes;

/// A file of `pairs` (R1, R2) register pairs, each `lanes` words wide.
///
/// Per §4.9, the registers themselves carry byte parity, checked
/// whenever a register is read ([`RegisterFile::check_parity`]); a
/// detected register fault is repaired by re-deriving the registers
/// from the cache's dirty words (`reset_to`, driven by
/// `CppcCache::repair_registers`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    r1: Vec<u64>,
    r2: Vec<u64>,
    r1_parity: Vec<u8>,
    r2_parity: Vec<u8>,
    pairs: usize,
    lanes: usize,
}

impl RegisterFile {
    /// Creates a zeroed register file.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` or `lanes` is zero.
    #[must_use]
    pub fn new(pairs: usize, lanes: usize) -> Self {
        assert!(pairs > 0 && lanes > 0, "pairs and lanes must be non-zero");
        RegisterFile {
            r1: vec![0; pairs * lanes],
            r2: vec![0; pairs * lanes],
            r1_parity: vec![0; pairs * lanes],
            r2_parity: vec![0; pairs * lanes],
            pairs,
            lanes,
        }
    }

    /// Number of register pairs.
    #[must_use]
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Lanes (words) per register.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    fn idx(&self, pair: usize, lane: usize) -> usize {
        assert!(pair < self.pairs, "pair {pair} out of range");
        assert!(lane < self.lanes, "lane {lane} out of range");
        pair * self.lanes + lane
    }

    /// XORs `word`, rotated left by `rotation` bytes, into R1 of `pair`
    /// lane `lane` — the action on every store (paper Figure 2).
    pub fn absorb_store(&mut self, pair: usize, lane: usize, word: u64, rotation: u32) {
        crate::obs::R1_UPDATES.inc();
        let i = self.idx(pair, lane);
        self.r1[i] ^= rotate_left_bytes(word, rotation);
        self.r1_parity[i] = byte_parity64(self.r1[i]);
    }

    /// XORs `word`, rotated left by `rotation` bytes, into R2 of `pair`
    /// lane `lane` — the action when dirty data leaves the cache (by
    /// overwrite or write-back).
    pub fn absorb_removal(&mut self, pair: usize, lane: usize, word: u64, rotation: u32) {
        crate::obs::R2_UPDATES.inc();
        let i = self.idx(pair, lane);
        self.r2[i] ^= rotate_left_bytes(word, rotation);
        self.r2_parity[i] = byte_parity64(self.r2[i]);
    }

    /// `R1 ^ R2` for a pair/lane: the XOR of all (rotated) dirty words
    /// currently resident in that protection domain.
    #[must_use]
    pub fn dirty_xor(&self, pair: usize, lane: usize) -> u64 {
        let i = self.idx(pair, lane);
        self.r1[i] ^ self.r2[i]
    }

    /// Raw R1 value (for tests and fault injection on the registers
    /// themselves, §4.9).
    #[must_use]
    pub fn r1(&self, pair: usize, lane: usize) -> u64 {
        self.r1[self.idx(pair, lane)]
    }

    /// Raw R2 value.
    #[must_use]
    pub fn r2(&self, pair: usize, lane: usize) -> u64 {
        self.r2[self.idx(pair, lane)]
    }

    /// Checks the registers' own byte parity (§4.9: "protect registers
    /// with parity bits and check parities before each XOR operation").
    /// Returns `true` when every register matches its stored parity.
    #[must_use]
    pub fn check_parity(&self) -> bool {
        self.r1
            .iter()
            .zip(&self.r1_parity)
            .all(|(&r, &p)| byte_parity64(r) == p)
            && self
                .r2
                .iter()
                .zip(&self.r2_parity)
                .all(|(&r, &p)| byte_parity64(r) == p)
    }

    /// Flips one bit of R1 (register fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64` or indices are out of range.
    pub fn flip_r1_bit(&mut self, pair: usize, lane: usize, bit: u32) {
        assert!(bit < 64, "bit {bit} out of range");
        let i = self.idx(pair, lane);
        self.r1[i] ^= 1u64 << bit;
    }

    /// Flips one bit of R2 (register fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64` or indices are out of range.
    pub fn flip_r2_bit(&mut self, pair: usize, lane: usize, bit: u32) {
        assert!(bit < 64, "bit {bit} out of range");
        let i = self.idx(pair, lane);
        self.r2[i] ^= 1u64 << bit;
    }

    /// Rebuilds R1/R2 so that `R1 = dirty_xor_target` and `R2 = 0` for
    /// every lane — used after a register fault is repaired by re-XORing
    /// the cache's dirty words (§4.9). `targets` is indexed
    /// `[pair][lane]`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` has wrong dimensions.
    pub fn reset_to(&mut self, targets: &[Vec<u64>]) {
        assert_eq!(targets.len(), self.pairs, "pair count");
        for (pair, lanes) in targets.iter().enumerate() {
            assert_eq!(lanes.len(), self.lanes, "lane count");
            for (lane, &v) in lanes.iter().enumerate() {
                let i = self.idx(pair, lane);
                self.r1[i] = v;
                self.r2[i] = 0;
                self.r1_parity[i] = byte_parity64(v);
                self.r2_parity[i] = 0;
            }
        }
    }

    /// Snapshot of all `dirty_xor` values, indexed `[pair][lane]` — the
    /// quantity the invariant tests compare against a scan of the cache.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<Vec<u64>> {
        (0..self.pairs)
            .map(|p| (0..self.lanes).map(|l| self.dirty_xor(p, l)).collect())
            .collect()
    }

    /// Copies `src`'s registers and parities into `self` without
    /// allocating — the snapshot-restore path. (The derived
    /// `Clone::clone_from` would reallocate the four vectors.)
    ///
    /// # Panics
    ///
    /// Panics if the two files have different dimensions.
    pub fn copy_state_from(&mut self, src: &Self) {
        assert_eq!(
            (self.pairs, self.lanes),
            (src.pairs, src.lanes),
            "register file from a different configuration"
        );
        self.r1.copy_from_slice(&src.r1);
        self.r2.copy_from_slice(&src.r2);
        self.r1_parity.copy_from_slice(&src.r1_parity);
        self.r2_parity.copy_from_slice(&src.r2_parity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_file_is_zero() {
        let f = RegisterFile::new(2, 4);
        for p in 0..2 {
            for l in 0..4 {
                assert_eq!(f.dirty_xor(p, l), 0);
            }
        }
    }

    #[test]
    fn store_then_removal_cancels() {
        let mut f = RegisterFile::new(1, 1);
        f.absorb_store(0, 0, 0xABCD, 3);
        assert_eq!(f.dirty_xor(0, 0), rotate_left_bytes(0xABCD, 3));
        f.absorb_removal(0, 0, 0xABCD, 3);
        assert_eq!(f.dirty_xor(0, 0), 0, "store+removal cancel in R1^R2");
    }

    #[test]
    fn overwrite_sequence_tracks_current_value() {
        // store v1; overwrite with v2 (v1 leaves): R1^R2 == rot(v2).
        let mut f = RegisterFile::new(1, 1);
        f.absorb_store(0, 0, 111, 2);
        f.absorb_store(0, 0, 222, 2);
        f.absorb_removal(0, 0, 111, 2);
        assert_eq!(f.dirty_xor(0, 0), rotate_left_bytes(222, 2));
    }

    #[test]
    fn pairs_and_lanes_are_independent() {
        let mut f = RegisterFile::new(2, 2);
        f.absorb_store(0, 0, 1, 0);
        f.absorb_store(1, 1, 2, 0);
        assert_eq!(f.dirty_xor(0, 0), 1);
        assert_eq!(f.dirty_xor(0, 1), 0);
        assert_eq!(f.dirty_xor(1, 0), 0);
        assert_eq!(f.dirty_xor(1, 1), 2);
    }

    #[test]
    fn register_fault_injection() {
        let mut f = RegisterFile::new(1, 1);
        f.absorb_store(0, 0, 0xF0, 0);
        f.flip_r1_bit(0, 0, 4);
        assert_eq!(f.r1(0, 0), 0xE0);
        f.flip_r2_bit(0, 0, 0);
        assert_eq!(f.r2(0, 0), 1);
    }

    #[test]
    fn reset_to_rebuilds() {
        let mut f = RegisterFile::new(2, 1);
        f.absorb_store(0, 0, 5, 0);
        f.flip_r1_bit(0, 0, 60); // corrupt
        f.reset_to(&[vec![5], vec![0]]);
        assert_eq!(f.dirty_xor(0, 0), 5);
        assert_eq!(f.dirty_xor(1, 0), 0);
        assert_eq!(f.r2(0, 0), 0);
    }

    #[test]
    fn parity_tracks_updates() {
        let mut f = RegisterFile::new(2, 2);
        assert!(f.check_parity());
        f.absorb_store(0, 1, 0xDEAD_BEEF, 3);
        f.absorb_removal(1, 0, 0x1234, 5);
        assert!(f.check_parity());
    }

    #[test]
    fn parity_detects_register_fault() {
        let mut f = RegisterFile::new(1, 1);
        f.absorb_store(0, 0, 0xFF, 0);
        f.flip_r1_bit(0, 0, 9);
        assert!(!f.check_parity(), "R1 flip detected");
        let mut f = RegisterFile::new(1, 1);
        f.absorb_removal(0, 0, 0xFF, 0);
        f.flip_r2_bit(0, 0, 60);
        assert!(!f.check_parity(), "R2 flip detected");
    }

    #[test]
    fn reset_restores_parity() {
        let mut f = RegisterFile::new(1, 1);
        f.absorb_store(0, 0, 5, 0);
        f.flip_r1_bit(0, 0, 1);
        f.reset_to(&[vec![5]]);
        assert!(f.check_parity());
    }

    #[test]
    fn checkpoint_shape() {
        let f = RegisterFile::new(4, 2);
        let cp = f.checkpoint();
        assert_eq!(cp.len(), 4);
        assert!(cp.iter().all(|lanes| lanes.len() == 2));
    }

    #[test]
    #[should_panic(expected = "pair 2 out of range")]
    fn oob_pair_panics() {
        let _ = RegisterFile::new(2, 1).r1(2, 0);
    }

    #[test]
    #[should_panic(expected = "pairs and lanes must be non-zero")]
    fn zero_pairs_panics() {
        let _ = RegisterFile::new(0, 1);
    }
}
