//! The fully protected cache: CPPC data protection plus CPPC tag/state
//! protection in one assembly — the complete design §7 sketches.
//!
//! The data side is a [`CppcCache`]; the tag side is a [`TagCppc`]
//! shadow holding one packed `(tag, state)` entry per `(set, way)`,
//! where the state byte carries the per-word dirty mask. Every lookup
//! reads the addressed set's tag entries through the protected path
//! (parity checked, single faults reconstructed), exactly as a real
//! tag-array read would; data operations then proceed on the data CPPC.
//!
//! The shadow is reconciled after each operation from the data cache's
//! ground truth — allocation on fill, replacement on eviction,
//! state-byte updates as dirty masks change — so its R1/R2 invariant
//! tracks the live tag contents.

use cppc_cache_sim::cache::Backing;
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_fault::model::FaultPattern;

use crate::cache::{CppcCache, Due};
use crate::config::{ConfigError, CppcConfig};
use crate::tags::{pack_entry, TagCppc, TagDue};

use std::fmt;

/// A fault neither side of the assembly could correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtectedFault {
    /// The data CPPC declared a DUE.
    Data(Due),
    /// The tag CPPC declared a DUE.
    Tag(TagDue),
}

impl fmt::Display for ProtectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectedFault::Data(e) => write!(f, "data: {e}"),
            ProtectedFault::Tag(e) => write!(f, "tag: {e}"),
        }
    }
}

impl std::error::Error for ProtectedFault {}

impl From<Due> for ProtectedFault {
    fn from(e: Due) -> Self {
        ProtectedFault::Data(e)
    }
}

impl From<TagDue> for ProtectedFault {
    fn from(e: TagDue) -> Self {
        ProtectedFault::Tag(e)
    }
}

/// A CPPC-protected cache with a CPPC-protected tag array.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
/// use cppc_core::config::CppcConfig;
/// use cppc_core::full::FullyProtectedCache;
///
/// let geo = CacheGeometry::new(1024, 2, 32)?;
/// let mut mem = MainMemory::new();
/// let mut cache = FullyProtectedCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru)?;
/// cache.store_word(0x40, 7, &mut mem)?;
/// cache.flip_tag_bit_at(0x40, 13); // strike on the tag SRAM
/// assert_eq!(cache.load_word(0x40, &mut mem)?, 7); // tag reconstructed
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FullyProtectedCache {
    data: CppcCache,
    tags: TagCppc,
}

impl FullyProtectedCache {
    /// Creates an L1 assembly.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid CPPC configurations.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 8 words per block (the tag
    /// state byte carries the dirty mask).
    pub fn new_l1(
        geo: CacheGeometry,
        config: CppcConfig,
        policy: ReplacementPolicy,
    ) -> Result<Self, ConfigError> {
        assert!(
            geo.words_per_block() <= 8,
            "dirty mask must fit the state byte"
        );
        let data = CppcCache::new_l1(geo, config, policy)?;
        let slots = geo.num_sets() * geo.associativity();
        Ok(FullyProtectedCache {
            data,
            tags: TagCppc::new(slots, config.parity_ways),
        })
    }

    /// The data-side CPPC.
    #[must_use]
    pub fn data(&self) -> &CppcCache {
        &self.data
    }

    /// The tag-side CPPC.
    #[must_use]
    pub fn tags(&self) -> &TagCppc {
        &self.tags
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.data.geometry().associativity() + way
    }

    /// Expected packed tag entry for `(set, way)` from the data cache's
    /// ground truth, or `None` for an invalid way.
    fn expected_entry(&self, set: usize, way: usize) -> Option<u64> {
        let (tag, mask) = self.data.tag_state_of(set, way)?;
        Some(pack_entry(tag, mask))
    }

    /// Reconciles the shadow entries of one set with the data cache.
    fn reconcile_set(&mut self, set: usize) {
        for way in 0..self.data.geometry().associativity() {
            let slot = self.slot(set, way);
            let expected = self.expected_entry(set, way);
            let current = self.tags.entry_unchecked(slot);
            match (current, expected) {
                (None, Some(e)) => self.tags.allocate(slot, e),
                (Some(c), Some(e)) if c != e => {
                    self.tags.replace(slot, e).expect("shadow entry was sound");
                }
                (Some(_), None) => {
                    self.tags.invalidate(slot).expect("shadow entry was sound");
                }
                _ => {}
            }
        }
    }

    /// Reads the addressed set's tag entries through the protected path
    /// (the tag-array lookup), recovering single tag faults.
    fn lookup_tags(&mut self, addr: u64) -> Result<(), TagDue> {
        let set = self.data.geometry().set_index(addr);
        for way in 0..self.data.geometry().associativity() {
            let slot = self.slot(set, way);
            if let Some(result) = self.tags.read(slot) {
                result?;
            }
        }
        Ok(())
    }

    /// Loads a word: protected tag lookup, then the data CPPC path.
    ///
    /// # Errors
    ///
    /// Returns [`ProtectedFault`] on an unrecoverable tag or data error.
    pub fn load_word<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
    ) -> Result<u64, ProtectedFault> {
        self.lookup_tags(addr)?;
        let value = self.data.load_word(addr, backing)?;
        self.reconcile_set(self.data.geometry().set_index(addr));
        Ok(value)
    }

    /// Stores a word: protected tag lookup, then the data CPPC path.
    ///
    /// # Errors
    ///
    /// Returns [`ProtectedFault`] on an unrecoverable tag or data error.
    pub fn store_word<B: Backing>(
        &mut self,
        addr: u64,
        value: u64,
        backing: &mut B,
    ) -> Result<(), ProtectedFault> {
        self.lookup_tags(addr)?;
        self.data.store_word(addr, value, backing)?;
        self.reconcile_set(self.data.geometry().set_index(addr));
        Ok(())
    }

    /// Flushes the data side and reconciles every set.
    ///
    /// # Errors
    ///
    /// Returns [`ProtectedFault`] on an unrecoverable error.
    pub fn flush<B: Backing>(&mut self, backing: &mut B) -> Result<(), ProtectedFault> {
        self.data.flush(backing)?;
        for set in 0..self.data.geometry().num_sets() {
            self.reconcile_set(set);
        }
        Ok(())
    }

    /// Injects a data-array fault pattern; returns bits flipped.
    pub fn inject_data(&mut self, pattern: &FaultPattern) -> usize {
        self.data.inject(pattern)
    }

    /// Flips a bit in the tag entry covering `addr` (which must be
    /// resident).
    ///
    /// # Panics
    ///
    /// Panics if the address is not resident or `bit >= 64`.
    pub fn flip_tag_bit_at(&mut self, addr: u64, bit: u32) {
        let (set, way) = self
            .data
            .probe(addr)
            .expect("address must be resident to strike its tag");
        let slot = self.slot(set, way);
        self.tags.flip_bit(slot, bit);
    }

    /// Both invariants: data-side register invariant and tag-side
    /// register invariant.
    #[must_use]
    pub fn verify_invariants(&self) -> bool {
        self.data.verify_invariant() && self.tags.verify_invariant()
    }

    /// Reads a resident word without side effects.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        self.data.peek_word(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_cache_sim::memory::MainMemory;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};

    fn build() -> (FullyProtectedCache, MainMemory) {
        let geo = CacheGeometry::new(1024, 2, 32).unwrap();
        (
            FullyProtectedCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap(),
            MainMemory::new(),
        )
    }

    #[test]
    fn roundtrip_with_shadow() {
        let (mut c, mut m) = build();
        c.store_word(0x100, 42, &mut m).unwrap();
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 42);
        assert!(c.verify_invariants());
    }

    #[test]
    fn tag_fault_recovered_on_lookup() {
        let (mut c, mut m) = build();
        c.store_word(0x100, 7, &mut m).unwrap();
        c.store_word(0x500, 8, &mut m).unwrap();
        c.flip_tag_bit_at(0x100, 20);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 7);
        assert!(c.tags().stats().corrected >= 1);
        assert!(c.verify_invariants());
    }

    #[test]
    fn state_bit_fault_recovered() {
        // A flipped dirty-mask bit could silently drop a write-back;
        // the protected state byte catches it.
        let (mut c, mut m) = build();
        c.store_word(0x100, 9, &mut m).unwrap();
        c.flip_tag_bit_at(0x100, crate::tags::TAG_BITS + 2);
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 9);
        assert!(c.verify_invariants());
    }

    #[test]
    fn combined_data_and_tag_faults_in_different_entries() {
        let (mut c, mut m) = build();
        c.store_word(0x100, 0xAA, &mut m).unwrap();
        c.store_word(0x300, 0xBB, &mut m).unwrap();
        c.flip_tag_bit_at(0x300, 5);
        // data fault on one word, tag fault on another block
        let geo = *c.data().geometry();
        let _ = geo;
        c.inject_data(&FaultPattern::new(vec![cppc_fault::model::BitFlip {
            row: c
                .data()
                .layout()
                .row_of(c.data().probe(0x100).unwrap().0, 0, 0),
            col: 4,
        }]));
        assert_eq!(c.load_word(0x100, &mut m).unwrap(), 0xAA);
        assert_eq!(c.load_word(0x300, &mut m).unwrap(), 0xBB);
        assert!(c.verify_invariants());
    }

    #[test]
    fn churn_keeps_both_invariants() {
        let (mut c, mut m) = build();
        let mut rng = StdRng::seed_from_u64(0xF011);
        let mut oracle = std::collections::HashMap::new();
        for i in 0..8_000u64 {
            let addr = (rng.random_range(0..8192u64)) & !7;
            if rng.random_bool(0.4) {
                let v: u64 = rng.random();
                c.store_word(addr, v, &mut m).unwrap();
                oracle.insert(addr, v);
            } else {
                let got = c.load_word(addr, &mut m).unwrap();
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0));
            }
            if i % 512 == 0 {
                assert!(c.verify_invariants(), "op {i}");
            }
        }
        c.flush(&mut m).unwrap();
        assert!(c.verify_invariants());
        for (addr, v) in oracle {
            assert_eq!(m.peek_word(addr), v);
        }
    }

    #[test]
    fn two_tag_faults_are_due() {
        let (mut c, mut m) = build();
        c.store_word(0x100, 1, &mut m).unwrap();
        c.store_word(0x500, 2, &mut m).unwrap();
        c.flip_tag_bit_at(0x100, 3);
        c.flip_tag_bit_at(0x500, 3);
        let err = c.load_word(0x100, &mut m).unwrap_err();
        assert!(matches!(err, ProtectedFault::Tag(_)));
    }
}
