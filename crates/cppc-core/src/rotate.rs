//! The barrel byte-shifter (paper §4.3, §4.8).
//!
//! Data is rotated left by `class` bytes just before being XORed into
//! R1/R2 — the data stored in the cache is **not** rotated. Rotating by
//! whole bytes preserves each bit's parity group (`column mod 8`), which
//! is what keeps the fault locator's group arithmetic consistent.

/// Rotates `word` left by `bytes` bytes (the hardware barrel shifter).
///
/// # Example
///
/// ```
/// use cppc_core::rotate::rotate_left_bytes;
/// assert_eq!(rotate_left_bytes(0x00000000_000000FF, 1), 0x00000000_0000FF00);
/// assert_eq!(rotate_left_bytes(0xFF000000_00000000, 1), 0x00000000_000000FF);
/// ```
#[inline]
#[must_use]
pub fn rotate_left_bytes(word: u64, bytes: u32) -> u64 {
    word.rotate_left((bytes % 8) * 8)
}

/// Rotates `word` right by `bytes` bytes (the inverse rotation applied
/// when writing recovered data back, paper §4.4 step 2).
#[inline]
#[must_use]
pub fn rotate_right_bytes(word: u64, bytes: u32) -> u64 {
    word.rotate_right((bytes % 8) * 8)
}

/// Cost parameters of the CPPC barrel shifter, from Huntzicker et al. \[9\]
/// as cited in §4.8: rotating 32 bits costs < 0.4 ns and ~1.5 pJ in 90nm,
/// both negligible next to a cache access (0.78 ns, 240 pJ per CACTI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrelShifterCost {
    /// Rotation latency in nanoseconds.
    pub latency_ns: f64,
    /// Energy per rotation in picojoules.
    pub energy_pj: f64,
}

impl BarrelShifterCost {
    /// The §4.8 reference numbers.
    #[must_use]
    pub fn reference_90nm() -> Self {
        BarrelShifterCost {
            latency_ns: 0.4,
            energy_pj: 1.5,
        }
    }

    /// Multiplexer count of the CPPC shifter: `n/8 * log2(n/8)` for an
    /// `n`-bit datapath (§4.8) — much smaller than a general shifter's
    /// `n * log2(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or smaller than 8.
    #[must_use]
    pub fn mux_count(n: u32) -> u32 {
        assert!(
            n >= 8 && n.is_power_of_two(),
            "datapath must be power of two >= 8"
        );
        let lanes = n / 8;
        lanes * lanes.ilog2()
    }

    /// Stage count: `log2(n/8)` (§4.8).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or smaller than 8.
    #[must_use]
    pub fn stage_count(n: u32) -> u32 {
        assert!(
            n >= 8 && n.is_power_of_two(),
            "datapath must be power of two >= 8"
        );
        (n / 8).ilog2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn zero_rotation_is_identity() {
        assert_eq!(
            rotate_left_bytes(0x1234_5678_9ABC_DEF0, 0),
            0x1234_5678_9ABC_DEF0
        );
    }

    #[test]
    fn rotation_wraps_mod_8() {
        let w = 0x0102_0304_0506_0708;
        assert_eq!(rotate_left_bytes(w, 8), w);
        assert_eq!(rotate_left_bytes(w, 9), rotate_left_bytes(w, 1));
    }

    #[test]
    fn rotation_moves_bytes() {
        // Byte 0 moves to byte position `k` after rotating left by k.
        let w = 0xABu64;
        for k in 0..8u32 {
            assert_eq!(rotate_left_bytes(w, k), 0xABu64 << (8 * k));
        }
    }

    #[test]
    fn rotation_preserves_parity_group() {
        // column mod 8 is invariant under byte rotation.
        for bit in 0..64u32 {
            let w = 1u64 << bit;
            for k in 0..8u32 {
                let rotated = rotate_left_bytes(w, k);
                let new_bit = rotated.trailing_zeros();
                assert_eq!(new_bit % 8, bit % 8, "bit {bit} rot {k}");
            }
        }
    }

    #[test]
    fn mux_and_stage_counts_match_paper_formula() {
        // 64-bit datapath: 8 lanes → 8*log2(8)=24 muxes, 3 stages.
        assert_eq!(BarrelShifterCost::mux_count(64), 24);
        assert_eq!(BarrelShifterCost::stage_count(64), 3);
        // 32-bit: 4 lanes → 4*2=8 muxes, 2 stages.
        assert_eq!(BarrelShifterCost::mux_count(32), 8);
        assert_eq!(BarrelShifterCost::stage_count(32), 2);
    }

    #[test]
    fn reference_cost_sane() {
        let c = BarrelShifterCost::reference_90nm();
        assert!(c.latency_ns < 0.78, "not on the cache critical path");
        assert!(c.energy_pj < 240.0, "negligible vs cache access energy");
    }

    #[test]
    fn left_right_inverse() {
        let mut rng = StdRng::seed_from_u64(0x0707_A7E0);
        for _ in 0..512 {
            let w = rng.random::<u64>();
            let k = rng.random_range(0u32..8);
            assert_eq!(
                rotate_right_bytes(rotate_left_bytes(w, k), k),
                w,
                "w={w:#x} k={k}"
            );
        }
    }

    #[test]
    fn rotation_is_linear() {
        let mut rng = StdRng::seed_from_u64(0x0707_A7E1);
        for _ in 0..512 {
            let a = rng.random::<u64>();
            let b = rng.random::<u64>();
            let k = rng.random_range(0u32..8);
            assert_eq!(
                rotate_left_bytes(a ^ b, k),
                rotate_left_bytes(a, k) ^ rotate_left_bytes(b, k),
                "a={a:#x} b={b:#x} k={k}"
            );
        }
    }
}
