//! Value-independent batch evaluation of fault-injection trials.
//!
//! The CPPC classification pipeline is XOR-linear end to end: parity
//! syndromes, the R1/R2 dirty-XOR invariant and R3 all separate into
//! `f(warm ^ error) = f(warm) ^ f(error)`, and on a *fault-free warm
//! state* the `f(warm)` terms cancel against the stored parities and
//! registers (the same argument that justifies the warm-snapshot
//! oracle in `cppc-bench`). A trial's outcome therefore depends only
//! on the fault geometry and the warm state's valid/dirty maps — never
//! on the stored data values.
//!
//! [`BatchSim`] exploits this: it is built once from a warm
//! [`CppcCache`](crate::CppcCache) (via
//! [`CppcCache::batch_sim`](crate::CppcCache::batch_sim)) and then
//! classifies trials by propagating **error masks** through the exact
//! recovery algebra of
//! [`recover_all`](crate::CppcCache::recover_all), instead of
//! restoring and re-simulating the full cache per trial:
//!
//! * detection: a word's syndrome under errors is `encode(err)`;
//! * clean faulty words: the §3.2 re-fetch restores the warm value, so
//!   the error clears (a clean word equals its backing copy);
//! * single faulty dirty word per domain (§4.4 steps 1–2): the
//!   reconstruction leaves residual error
//!   `rot_f⁻¹(XOR over other domain words w of rot_w(err_w))`;
//! * disjoint-syndrome groups (§4.4 step 4): the masked reconstruction
//!   updates `err_f = (err_f & !mask) | (residual_f & mask)`, applied
//!   sequentially in scan order exactly like the full path;
//! * shared-syndrome groups (§4.5): `R3 = (R1^R2) ^ XOR of rotated
//!   domain values` collapses to the XOR of rotated error masks, so
//!   the *same* [`locate_spatial_into`] the full engine calls runs on
//!   error-derived inputs; a successful locate applies its masks
//!   (`err_f ^= mask_f`). A locate the locator *refuses* — or a shared
//!   group under a config without the locator — is DUE territory: the
//!   batch path reports [`BatchOutcome::NeedsFull`] and the caller
//!   runs that lane through the ordinary per-trial simulator (the
//!   "recovery tail" fallback).
//!
//! After recovery the trial is a silent corruption iff any residual
//! error mask is non-zero on a valid row; the §4.4 post-condition scan
//! cannot fire for data-array faults (every patched word's parity is
//! refreshed, every unpatched erroneous word was undetected), and the
//! register file is never struck by a [`FaultPattern`], so the
//! remaining outcomes are exactly Masked / Corrected / SDC.
//!
//! The per-trial fall-back plus the trial-by-trial differential tests
//! in `cppc-bench` keep this path pinned bit-identical to the full
//! simulator.

use cppc_ecc::InterleavedParity;
use cppc_fault::model::FaultPattern;

use crate::locator::{locate_spatial_into, Suspect};
use crate::rotate::{rotate_left_bytes, rotate_right_bytes};

/// How one trial classified under error-mask propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// No flip landed on a valid row — nothing to detect or recover.
    Masked,
    /// Every detected fault recovered through the single-word or
    /// disjoint-group reconstruction; `residual` reports whether any
    /// error mask survived (silent corruption) or all cleared
    /// (corrected).
    Recovered {
        /// `true` iff some valid row still carries a non-zero error.
        residual: bool,
    },
    /// Some protection domain reached DUE territory: the spatial
    /// locator refused a shared-syndrome group, or the configuration
    /// has no locator. The caller must run this lane through the full
    /// per-trial simulator for the reference outcome.
    NeedsFull,
}

/// Reusable per-thread buffers of [`BatchSim::classify`].
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Indices into the lane's entries, sorted by scan rank.
    order: Vec<usize>,
    /// Indices of the current domain's detected dirty members.
    group: Vec<usize>,
    /// Locator inputs of the current shared-syndrome group.
    suspects: Vec<Suspect>,
    /// Locator outputs (per-suspect correction masks).
    masks: Vec<u64>,
}

/// Precomputed warm-state fault-geometry tables (one per warm state;
/// see the module docs).
#[derive(Debug, Clone)]
pub struct BatchSim {
    pub(crate) rows: usize,
    /// Per row: lands a flip on resident data?
    pub(crate) valid: Vec<bool>,
    /// Per row: dirty word (register-protected)?
    pub(crate) dirty: Vec<bool>,
    /// Per row: register pair of the row's protection domain.
    pub(crate) pair: Vec<u16>,
    /// Per row: register lane of the row's protection domain.
    pub(crate) lane: Vec<u16>,
    /// Per row: byte rotation applied before XOR into the registers.
    pub(crate) rot: Vec<u8>,
    /// Per row: CPPC rotation class (the locator's `Suspect::class`).
    pub(crate) class: Vec<u8>,
    /// Per row: position in `recover_all`'s set-major scan order.
    pub(crate) scan_rank: Vec<u32>,
    pub(crate) code: InterleavedParity,
    /// Whether the §4.5 spatial locator applies (8-way parity + byte
    /// shifting); without it shared-syndrome groups are DUEs.
    pub(crate) locator_ok: bool,
}

impl BatchSim {
    /// Number of physical data rows of the warm cache.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Appends one `(row, error-mask)` entry per *valid* faulty row of
    /// `pattern` to the parallel arenas and returns the number of
    /// applied bit flips (the batch form of
    /// [`inject`](crate::CppcCache::inject)'s return value).
    ///
    /// Flips on invalid rows are dropped exactly like `inject` drops
    /// them; flips sharing a row merge into one mask.
    pub fn gather(&self, pattern: &FaultPattern, rows: &mut Vec<u32>, errs: &mut Vec<u64>) -> u32 {
        let mut applied = 0u32;
        for (row, mask) in pattern.row_masks() {
            assert!(row < self.rows, "row {row} out of range");
            if !self.valid[row] {
                continue;
            }
            applied += mask.count_ones();
            rows.push(row as u32);
            errs.push(mask);
        }
        applied
    }

    /// Computes the parity syndrome of every error mask in `errs` into
    /// `out` — by XOR-linearity, `syndrome(warm ^ err) = encode(err)`
    /// on a fault-free warm state. One call covers every lane of a
    /// batch: this is the single vectorized instruction stream the
    /// syndromes of all trials flow through
    /// ([`cppc_ecc::kernels::encode_many`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn syndromes(&self, errs: &[u64], out: &mut [u64]) {
        cppc_ecc::kernels::encode_many(errs, self.code.ways(), out);
    }

    /// Classifies one lane from its gathered `(row, err, syn)` entries,
    /// replaying the recovery algebra on the error masks. `errs` is
    /// updated in place to the post-recovery residual errors.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn classify(
        &self,
        rows: &[u32],
        errs: &mut [u64],
        syns: &[u64],
        scratch: &mut BatchScratch,
    ) -> BatchOutcome {
        assert_eq!(rows.len(), errs.len(), "parallel slices");
        assert_eq!(rows.len(), syns.len(), "parallel slices");
        if errs.iter().all(|&e| e == 0) {
            return BatchOutcome::Masked;
        }

        // Entries in recover_all's scan order (set-major), so domain
        // first-encounter order and within-group order match the full
        // walk. Insertion sort: a lane holds a handful of rows.
        scratch.order.clear();
        scratch.order.extend(0..rows.len());
        let rank = |i: usize| self.scan_rank[rows[i] as usize];
        for i in 1..scratch.order.len() {
            let mut j = i;
            while j > 0 && rank(scratch.order[j - 1]) > rank(scratch.order[j]) {
                scratch.order.swap(j - 1, j);
                j -= 1;
            }
        }

        // Detected clean words: the re-fetch restores the warm (==
        // backing) value, clearing the error.
        for &i in &scratch.order {
            let row = rows[i] as usize;
            if syns[i] != 0 && !self.dirty[row] {
                errs[i] = 0;
            }
        }

        // Detected dirty words, grouped by protection domain in
        // first-encounter order.
        for gi in 0..scratch.order.len() {
            let i = scratch.order[gi];
            let row = rows[i] as usize;
            if syns[i] == 0 || !self.dirty[row] {
                continue;
            }
            let key = (self.pair[row], self.lane[row]);
            let seen = scratch.order[..gi].iter().any(|&p| {
                let r = rows[p] as usize;
                syns[p] != 0 && self.dirty[r] && (self.pair[r], self.lane[r]) == key
            });
            if seen {
                continue;
            }
            scratch.group.clear();
            for &j in &scratch.order[gi..] {
                let r = rows[j] as usize;
                if syns[j] != 0 && self.dirty[r] && (self.pair[r], self.lane[r]) == key {
                    scratch.group.push(j);
                }
            }

            if scratch.group.len() == 1 {
                let f = scratch.group[0];
                errs[f] = self.residual_of(rows, errs, f, key);
                continue;
            }
            let disjoint = scratch.group.iter().enumerate().all(|(i, &a)| {
                scratch.group[i + 1..]
                    .iter()
                    .all(|&b| syns[a] & syns[b] == 0)
            });
            if !disjoint {
                // Shared syndromes: the §4.5 locator, on error-derived
                // inputs. R3 is the XOR of the rotated errors of every
                // erroneous dirty word of the domain (the warm values
                // cancel against R1^R2, module docs).
                if !self.locator_ok {
                    return BatchOutcome::NeedsFull;
                }
                let mut r3 = 0u64;
                for (&row, &err) in rows.iter().zip(errs.iter()) {
                    let r = row as usize;
                    if err != 0 && self.dirty[r] && (self.pair[r], self.lane[r]) == key {
                        r3 ^= rotate_left_bytes(err, u32::from(self.rot[r]));
                    }
                }
                scratch.suspects.clear();
                for &f in &scratch.group {
                    let r = rows[f] as usize;
                    scratch.suspects.push(Suspect {
                        row: r,
                        class: usize::from(self.class[r]),
                        syndrome: syns[f] as u8,
                    });
                }
                if locate_spatial_into(r3, &scratch.suspects, &mut scratch.masks).is_err() {
                    // The locator refused — the full path's DUE. The
                    // caller's per-trial fallback owns this lane.
                    return BatchOutcome::NeedsFull;
                }
                for (k, &f) in scratch.group.iter().enumerate() {
                    errs[f] ^= scratch.masks[k];
                }
                continue;
            }
            // Masked reconstruction, sequential in scan order: each
            // member takes the reconstruction only in its own fired
            // parity-group columns, and later members see the updated
            // errors of earlier ones.
            for k in 0..scratch.group.len() {
                let f = scratch.group[k];
                let residual = self.residual_of(rows, errs, f, key);
                let mask = self.group_mask(syns[f]);
                errs[f] = (errs[f] & !mask) | (residual & mask);
            }
        }

        BatchOutcome::Recovered {
            residual: errs.iter().any(|&e| e != 0),
        }
    }

    /// Residual error the §4.4 reconstruction of entry `f` leaves
    /// behind: `rot_f⁻¹(XOR over the domain's other erroneous dirty
    /// words w of rot_w(err_w))`. The warm values cancel against the
    /// registers (module docs), so only error masks appear.
    fn residual_of(&self, rows: &[u32], errs: &[u64], f: usize, key: (u16, u16)) -> u64 {
        let mut acc = 0u64;
        for (j, (&row, &err)) in rows.iter().zip(errs.iter()).enumerate() {
            let r = row as usize;
            if j != f && err != 0 && self.dirty[r] && (self.pair[r], self.lane[r]) == key {
                acc ^= rotate_left_bytes(err, u32::from(self.rot[r]));
            }
        }
        rotate_right_bytes(acc, u32::from(self.rot[rows[f] as usize]))
    }

    /// Column mask of the fired parity groups of `syndrome` (the mask
    /// of `reconstruct_word_masked`).
    fn group_mask(&self, syndrome: u64) -> u64 {
        let ways = self.code.ways();
        let mut mask = 0u64;
        for g in 0..ways {
            if syndrome >> g & 1 == 1 {
                let mut col = g;
                while col < 64 {
                    mask |= 1u64 << col;
                    col += ways;
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CppcCache, CppcConfig};
    use cppc_cache_sim::geometry::CacheGeometry;
    use cppc_cache_sim::memory::MainMemory;
    use cppc_cache_sim::replacement::ReplacementPolicy;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};
    use cppc_fault::model::{FaultGenerator, FaultModel};

    /// The reference outcome of one injected pattern, from the full
    /// simulator: `None` = masked, `Ok(true)` = corrected, `Ok(false)`
    /// = silent corruption, `Err(())` = DUE.
    fn full_outcome(
        cache: &mut CppcCache,
        mem: &mut MainMemory,
        pattern: &cppc_fault::model::FaultPattern,
        probes: &[(u64, u64)],
    ) -> Option<Result<bool, ()>> {
        if cache.inject(pattern) == 0 {
            return None;
        }
        Some(match cache.recover_all(mem) {
            Err(_) => Err(()),
            Ok(_) => Ok(probes
                .iter()
                .all(|&(addr, v)| cache.peek_word(addr).is_none_or(|got| got == v))),
        })
    }

    /// Drives mixed store/load traffic (larger than the cache, so LRU
    /// creates resident *clean* blocks with non-zero values) and
    /// returns the warm pair plus the probe list of every word of
    /// every resident block with its expected value.
    fn warm(l2: bool, seed: u64) -> (CppcCache, MainMemory, Vec<(u64, u64)>) {
        let geo = CacheGeometry::new(1024, 2, 32).unwrap(); // 16 sets, 4 words
        let mut mem = MainMemory::new();
        let mut cache = if l2 {
            CppcCache::new_l2(geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap()
        } else {
            CppcCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = std::collections::HashMap::new();
        for _ in 0..4_000 {
            let addr = (rng.random_range(0..3 * 1024u64)) & !7;
            if rng.random_bool(0.5) {
                let v: u64 = rng.random();
                cache.store_word(addr, v, &mut mem).unwrap();
                oracle.insert(addr, v);
            } else {
                let _ = cache.load_word(addr, &mut mem).unwrap();
            }
        }
        let wpb = geo.words_per_block();
        let mut probes = Vec::new();
        let mut clean_words = 0usize;
        for set in 0..geo.num_sets() {
            for way in 0..geo.associativity() {
                let Some((tag, dirty_mask)) = cache.tag_state_of(set, way) else {
                    continue;
                };
                let base = geo.address_of(tag, set);
                for w in 0..wpb {
                    let addr = base + (w * 8) as u64;
                    probes.push((addr, *oracle.get(&addr).unwrap_or(&0)));
                    clean_words += usize::from(dirty_mask >> w & 1 == 0);
                }
            }
        }
        assert!(clean_words > 0, "traffic must leave clean resident words");
        for &(addr, v) in &probes {
            assert_eq!(cache.peek_word(addr), Some(v), "warm probe list is truth");
        }
        (cache, mem, probes)
    }

    /// The pinning property: wherever `classify` claims an outcome
    /// (anything but `NeedsFull`), it equals the full simulator's,
    /// across random spatial/temporal strikes on both lane modes.
    #[test]
    fn classify_matches_full_simulator() {
        for l2 in [false, true] {
            let (mut cache, mut mem, probes) = warm(l2, 0xBA7C + u64::from(l2));
            let snap = cache.snapshot();
            let mem_snap = mem.snapshot();
            let sim = cache.batch_sim().expect("warm state certifies");
            let models = [
                FaultModel::TemporalSingleBit,
                FaultModel::TemporalMultiBit { count: 3 },
                FaultModel::SpatialSquare {
                    rows: 4,
                    cols: 4,
                    density: 1.0,
                },
                FaultModel::SpatialSquare {
                    rows: 8,
                    cols: 8,
                    density: 0.4,
                },
            ];
            let mut generator = FaultGenerator::new(sim.num_rows(), 0x5EED + u64::from(l2));
            let mut scratch = BatchScratch::default();
            let (mut rows, mut errs, mut syns) = (Vec::new(), Vec::new(), Vec::new());
            let (mut fast, mut fell_back) = (0u32, 0u32);
            for i in 0..600 {
                let pattern = generator.sample(models[i % models.len()]);

                rows.clear();
                errs.clear();
                let applied = sim.gather(&pattern, &mut rows, &mut errs);
                syns.resize(errs.len(), 0);
                sim.syndromes(&errs, &mut syns);
                let batch = if applied == 0 {
                    BatchOutcome::Masked
                } else {
                    sim.classify(&rows, &mut errs, &syns, &mut scratch)
                };

                cache.restore_snapshot(&snap);
                mem.restore_snapshot(&mem_snap);
                let full = full_outcome(&mut cache, &mut mem, &pattern, &probes);
                match batch {
                    // A locate-refusal: the reference path owns the
                    // lane, so the batch claims nothing to check.
                    BatchOutcome::NeedsFull => {
                        fell_back += 1;
                        assert_eq!(full, Some(Err(())), "trial {i}: NeedsFull is DUE territory");
                    }
                    BatchOutcome::Masked => assert!(full.is_none(), "trial {i}"),
                    BatchOutcome::Recovered { residual } => {
                        fast += 1;
                        assert_eq!(full, Some(Ok(!residual)), "trial {i}");
                    }
                }
            }
            assert!(fast > 100, "fast path must carry the bulk ({fast})");
            // `fell_back` may be zero here: with the locator
            // replicated, only locate-refusals (rare in this sample)
            // take the tail — the bench-level sparse campaign test
            // pins that seam with `due > 0`.
            let _ = fell_back;
        }
    }

    #[test]
    fn struck_cache_does_not_certify() {
        let (mut cache, _mem, _probes) = warm(false, 0xDEAD);
        assert!(cache.batch_sim().is_some());
        let pattern = cppc_fault::model::FaultPattern::new(vec![cppc_fault::model::BitFlip {
            row: 0,
            col: 7,
        }]);
        // Strike a resident word and *don't* recover: the baseline is
        // no longer fault-free, so the batch algebra must refuse.
        if cache.inject(&pattern) == 1 {
            assert!(cache.batch_sim().is_none());
        }
    }
}
