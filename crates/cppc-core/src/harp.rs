//! HARP-style on-die ECC with an error-profiling pass (see PAPERS.md:
//! "HARP: practically and effectively identifying uncorrectable errors
//! in memory chips").
//!
//! On-die ECC sits *inside* the array and corrects transparently; the
//! system above never sees corrected errors, which makes the
//! uncorrectable ones hard to find until they bite. HARP's insight is
//! that writes are the ground truth: if every written value also
//! reaches a copy the on-die code cannot corrupt, a profiling pass can
//! read the array back, catch the words where the on-die code throws
//! up its hands (or miscorrects against the reference), and repair
//! them from the copy before they become failures.
//!
//! The model here: a per-word (72,64) SECDED array (non-interleaved —
//! the on-die design point pays no interleaving wiring) operated
//! **write-through**, so main memory always holds the last written
//! value of every profiled word. [`HarpOdeccScheme::profile`] is the
//! error-profiling pass: it re-reads every address the program wrote,
//! counts the reads the on-die code flags uncorrectable
//! (`scheme.harp.profiled_uncorrectable`), and repairs each from the
//! write-through copy (`scheme.harp.repaired`). Campaign
//! classification runs the pass after the strike — a repaired word is
//! a correction the plain non-interleaved SECDED could not have made.

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::stats::CacheStats;
use cppc_fault::campaign::Outcome;
use cppc_fault::layout::PhysicalLayout;
use cppc_fault::model::FaultPattern;

use crate::baselines::SecdedCache;
use crate::scheme::{ProtectionScheme, SchemeDescriptor, SchemeFault, SchemeOps};

/// Descriptor for [`HarpOdeccScheme`] (`--scheme harp-odecc`).
pub static HARP_ODECC_DESCRIPTOR: SchemeDescriptor = SchemeDescriptor {
    name: "harp-odecc",
    title: "HARP-style on-die ECC with error profiling",
    reference: "related work: HARP — identifying uncorrectable errors under on-die ECC (PAPERS.md)",
    summary: "Per-word (72,64) SECDED, non-interleaved, operated write-through so memory \
              always holds the last written value of every word. An error-profiling pass \
              re-reads each written address, counts the words the on-die code flags \
              uncorrectable, and repairs them from the write-through copy — turning \
              would-be DUEs into corrections at the cost of write-through traffic. \
              Miscorrections the on-die code does not flag still escape the profiler.",
    code_bits_per_word: 8,
    interleave_degree: 1,
    extra_state: "write-through reference copy in the next level; per-address profile list",
    detection: "single and double bit errors per word; the profiling pass additionally \
                surfaces every *flagged* uncorrectable word",
    correction: "one bit per word in-line; any flagged-uncorrectable word via \
                 profile-and-repair from the write-through copy",
};

/// A write-through SECDED cache with a HARP-style profiling pass,
/// behind the [`ProtectionScheme`] trait.
pub struct HarpOdeccScheme {
    inner: SecdedCache,
    /// Addresses the program wrote, deduplicated, in first-write order
    /// — the profile list the error-profiling pass walks.
    written: Vec<u64>,
    profiled_uncorrectable: u64,
    repaired: u64,
}

impl HarpOdeccScheme {
    /// Builds the scheme over a cache of geometry `geo`
    /// (non-interleaved SECDED, write-through).
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        HarpOdeccScheme {
            inner: SecdedCache::new(geo, false, policy),
            written: Vec::new(),
            profiled_uncorrectable: 0,
            repaired: 0,
        }
    }

    /// Words the profiling pass flagged uncorrectable so far.
    #[must_use]
    pub fn profiled_uncorrectable(&self) -> u64 {
        self.profiled_uncorrectable
    }

    /// Flagged words repaired from the write-through copy so far.
    #[must_use]
    pub fn repaired(&self) -> u64 {
        self.repaired
    }

    /// The error-profiling pass: re-read every written address, count
    /// the reads the on-die code flags uncorrectable, and repair each
    /// from the write-through copy in `mem`. Returns how many words
    /// were repaired this pass.
    pub fn profile(&mut self, mem: &mut MainMemory) -> u64 {
        let mut repaired = 0;
        // Walk a snapshot of the profile list: the repair store below
        // must not grow the list mid-walk.
        let addrs: Vec<u64> = self.written.clone();
        for addr in addrs {
            if self.inner.peek_word(addr).is_none() {
                continue;
            }
            if self.inner.load_word(addr, mem).is_err() {
                self.profiled_uncorrectable += 1;
                crate::scheme::HARP_PROFILED.inc();
                let reference = mem.peek_word(addr);
                self.inner.store_word(addr, reference, mem);
                self.repaired += 1;
                repaired += 1;
                crate::scheme::HARP_REPAIRS.inc();
            }
        }
        repaired
    }
}

impl ProtectionScheme for HarpOdeccScheme {
    fn descriptor(&self) -> &'static SchemeDescriptor {
        &HARP_ODECC_DESCRIPTOR
    }

    fn write_word(
        &mut self,
        addr: u64,
        value: u64,
        mem: &mut MainMemory,
    ) -> Result<(), SchemeFault> {
        self.inner.store_word(addr, value, mem);
        // Write-through: memory is the profiling pass's ground truth.
        mem.write_word(addr, value);
        if !self.written.contains(&addr) {
            self.written.push(addr);
        }
        Ok(())
    }

    fn read_word(&mut self, addr: u64, mem: &mut MainMemory) -> Result<u64, SchemeFault> {
        self.inner.load_word(addr, mem).map_err(SchemeFault::from)
    }

    fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    fn layout(&self) -> &PhysicalLayout {
        self.inner.layout()
    }

    fn flush(&mut self, mem: &mut MainMemory) -> Result<(), SchemeFault> {
        self.inner.flush(mem);
        Ok(())
    }

    fn inject(&mut self, pattern: &FaultPattern) -> usize {
        self.inner.inject(pattern)
    }

    fn classify(&mut self, truth: &[(u64, u64)], mem: &mut MainMemory) -> Outcome {
        // The profiling pass runs first: flagged-uncorrectable words
        // are repaired from the write-through copy instead of ending
        // the run as DUEs.
        self.profile(mem);
        for &(addr, v) in truth {
            match self.inner.load_word(addr, mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        Outcome::Corrected
    }

    fn ops(&self) -> SchemeOps {
        let stats = self.inner.cache_stats();
        SchemeOps {
            writes: stats.store_hits + stats.fills,
            rmw_reads: self.inner.rmw_reads(),
            corrected: self.inner.corrected() + self.repaired,
            dues: self.inner.dues(),
            ..SchemeOps::default()
        }
    }

    fn cache_stats(&self) -> &CacheStats {
        self.inner.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_fault::model::BitFlip;

    fn geo() -> CacheGeometry {
        CacheGeometry::new(1024, 2, 32).unwrap()
    }

    #[test]
    fn write_through_keeps_memory_current() {
        let mut mem = MainMemory::new();
        let mut s = HarpOdeccScheme::new(geo(), ReplacementPolicy::Lru);
        s.write_word(0x40, 0xAB, &mut mem).unwrap();
        s.write_word(0x40, 0xCD, &mut mem).unwrap();
        assert_eq!(mem.peek_word(0x40), 0xCD);
    }

    #[test]
    fn profiling_repairs_a_flagged_uncorrectable_word() {
        let mut mem = MainMemory::new();
        let mut s = HarpOdeccScheme::new(geo(), ReplacementPolicy::Lru);
        s.write_word(0x40, 0xAB, &mut mem).unwrap();
        // A double-bit error per word is flagged uncorrectable by
        // SECDED — exactly what the profiling pass exists to find.
        let row = s.layout().row_of(geo().set_index(0x40), 0, 0);
        s.inject(&FaultPattern::new(vec![
            BitFlip { row, col: 0 },
            BitFlip { row, col: 1 },
        ]));
        assert_eq!(s.profile(&mut mem), 1);
        assert_eq!(s.profiled_uncorrectable(), 1);
        assert_eq!(s.repaired(), 1);
        assert_eq!(s.read_word(0x40, &mut mem).unwrap(), 0xAB);
        // A second pass finds nothing new.
        assert_eq!(s.profile(&mut mem), 0);
    }
}
