//! The spatial-MBE fault locator (paper §4.5).
//!
//! When several dirty words in one protection domain are faulty *and*
//! they share fired parity groups, simple reconstruction cannot separate
//! their errors. The locator pins down exactly which bits flipped, using
//! three pieces of information (paper §4.5):
//!
//! 1. which parity bits fired in each faulty word (the syndromes),
//! 2. the rotation classes of the faulty words,
//! 3. `R3` — the XOR of `R1 ^ R2` with the rotated *current* (corrupted)
//!    values of all dirty words in the domain, which equals the XOR of
//!    the rotated per-word error masks.
//!
//! # Algorithm
//!
//! A spatial fault contained in an 8x8-bit square occupies, in every
//! affected word, either a single byte column or two adjacent byte
//! columns (the paper's "faulty byte or faulty adjacent two bytes").
//! The locator therefore tries each adjacent byte band `(j, j+1)` and,
//! within a band, *peels*: whenever some byte of `R3` receives the
//! contribution of exactly one `(word, byte)` candidate, that word's
//! error in that byte is read off `R3` directly, the error bits in its
//! other band byte follow from the syndrome (`e_other = e_known ^
//! syndrome`, by the per-group parity case analysis), and the word's
//! full error mask is XORed out of `R3` before repeating.
//!
//! A band solution is accepted only if every faulty word is located and
//! `R3` is completely consumed (ends at zero). If no band yields a
//! solution, or two bands yield *different* solutions (the irreducible
//! ambiguities of §4.6, e.g. a full 8x8 strike with one register pair),
//! the error is a DUE. This accept-only-forced-deductions discipline is
//! what keeps the locator from ever silently miscorrecting an in-model
//! fault.

use std::fmt;

use crate::rotate::rotate_left_bytes;

/// One faulty dirty word handed to the locator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Suspect {
    /// Physical row of the word (for the distance check).
    pub row: usize,
    /// Rotation class (`row mod 8` in the byte-shifting design).
    pub class: usize,
    /// Fired parity groups, one bit per 8-way-interleaved parity group.
    pub syndrome: u8,
}

/// Why the locator declared a DUE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocateError {
    /// Faulty rows span more than 8 physical rows — outside the
    /// correctable 8x8 square (paper §4.4 step 5).
    DistanceExceeded,
    /// Two faulty words share a rotation class, so their register
    /// contributions alias (distance-8 pattern, §4.6).
    ClassAliased,
    /// No byte band produced a consistent assignment of error bits.
    NoSolution,
    /// More than one distinct consistent assignment exists (§4.6's
    /// irreducible patterns, e.g. the solid 8x8 with one pair).
    Ambiguous,
}

impl fmt::Display for LocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocateError::DistanceExceeded => {
                write!(f, "faulty rows span more than the 8x8 correctable square")
            }
            LocateError::ClassAliased => {
                write!(f, "two faulty words share a rotation class")
            }
            LocateError::NoSolution => write!(f, "no consistent error assignment found"),
            LocateError::Ambiguous => {
                write!(
                    f,
                    "multiple consistent error assignments (irreducible ambiguity)"
                )
            }
        }
    }
}

impl std::error::Error for LocateError {}

/// Locates the per-word error masks of a suspected spatial MBE.
///
/// `r3` is the XOR of all rotated error masks (see module docs);
/// `suspects` lists the faulty dirty words of one protection domain.
/// On success returns one error mask per suspect, in order: XORing each
/// mask into its word's stored value yields the corrected data.
///
/// # Errors
///
/// Returns a [`LocateError`] when the fault is outside the correctable
/// envelope or cannot be unambiguously located — a DUE in the paper's
/// taxonomy.
///
/// # Panics
///
/// Panics if `suspects` is empty or any syndrome is zero (callers only
/// invoke the locator for detected faults).
pub fn locate_spatial(r3: u64, suspects: &[Suspect]) -> Result<Vec<u64>, LocateError> {
    let mut out = Vec::with_capacity(suspects.len());
    locate_spatial_into(r3, suspects, &mut out)?;
    Ok(out)
}

/// Buffer-reuse form of [`locate_spatial`]: writes the per-suspect error
/// masks into `out` (cleared first). The locator's working set lives in
/// fixed stack arrays — after the distance and class-alias checks at
/// most 8 suspects remain (one per rotation class) — so a successful
/// call performs no heap allocation beyond growing `out` once.
///
/// # Errors
///
/// Returns a [`LocateError`] when the fault is outside the correctable
/// envelope or cannot be unambiguously located — a DUE in the paper's
/// taxonomy.
///
/// # Panics
///
/// Panics if `suspects` is empty or any syndrome is zero (callers only
/// invoke the locator for detected faults).
pub fn locate_spatial_into(
    r3: u64,
    suspects: &[Suspect],
    out: &mut Vec<u64>,
) -> Result<(), LocateError> {
    out.clear();
    assert!(!suspects.is_empty(), "locator needs at least one suspect");
    assert!(
        suspects.iter().all(|s| s.syndrome != 0),
        "suspects must have fired parity"
    );

    let min_row = suspects.iter().map(|s| s.row).min().expect("non-empty");
    let max_row = suspects.iter().map(|s| s.row).max().expect("non-empty");
    if max_row - min_row > 7 {
        return Err(LocateError::DistanceExceeded);
    }
    for (i, a) in suspects.iter().enumerate() {
        for b in &suspects[i + 1..] {
            if a.class == b.class {
                return Err(LocateError::ClassAliased);
            }
        }
    }
    // Distinct classes in 0..8 ⇒ at most 8 suspects from here on.
    let n = suspects.len();
    debug_assert!(n <= 8, "class-alias check bounds the suspect count");

    // Step 1-2 (paper §4.5): the non-zero bytes of R3 (as a bitmask) —
    // for each, some word byte must explain the contribution.
    let faulty_bytes = (0..8).fold(0u8, |m, b| m | (u8::from((r3 >> (8 * b)) & 0xFF != 0) << b));

    let mut scratch = [0u64; 8];

    // Step 3, first half: a single common byte `j` such that every R3
    // faulty byte is explained by byte `j` of some faulty word. Only the
    // first distinct solution is kept; a second distinct one is already
    // irreducibly ambiguous (e.g. the §4.6 distance-4 alias), no matter
    // what later bytes yield.
    if faulty_bytes != 0 {
        let mut found: Option<[u64; 8]> = None;
        for j in 0..8u32 {
            let covers = (0..8).filter(|&b| faulty_bytes >> b & 1 == 1).all(|b| {
                suspects
                    .iter()
                    .any(|s| (j as usize + s.class) % 8 == b as usize)
            });
            if covers && solve_single_byte(r3, suspects, j, &mut scratch) {
                match &found {
                    Some(first) if first[..n] == scratch[..n] => {}
                    Some(_) => return Err(LocateError::Ambiguous),
                    None => found = Some(scratch),
                }
            }
        }
        if let Some(first) = found {
            out.extend_from_slice(&first[..n]);
            return Ok(());
        }
    }

    // Step 3, second half + step 4: adjacent byte bands with peeling.
    let mut found: Option<[u64; 8]> = None;
    for band in 0..7u32 {
        // The paper's precondition: every R3 faulty byte must be
        // explainable by byte `band` or `band + 1` of some faulty word.
        let qualifies = (0..8).filter(|&b| faulty_bytes >> b & 1 == 1).all(|b| {
            suspects.iter().any(|s| {
                (band as usize + s.class) % 8 == b as usize
                    || (band as usize + 1 + s.class) % 8 == b as usize
            })
        });
        if !qualifies {
            continue;
        }
        // Physical-plausibility filter: a spatial MBE inside an 8x8
        // square spans at most 8 consecutive bit columns.
        if solve_band(r3, suspects, band, &mut scratch) && column_span(&scratch[..n]) <= 8 {
            match &found {
                Some(first) if first[..n] == scratch[..n] => {}
                Some(_) => return Err(LocateError::Ambiguous),
                None => found = Some(scratch),
            }
        }
    }
    match found {
        Some(first) => {
            out.extend_from_slice(&first[..n]);
            Ok(())
        }
        None => Err(LocateError::NoSolution),
    }
}

/// Width in bit columns of the union of all error masks (0 for empty).
fn column_span(masks: &[u64]) -> u32 {
    let union = masks.iter().fold(0u64, |acc, m| acc | m);
    if union == 0 {
        0
    } else {
        64 - union.leading_zeros() - union.trailing_zeros()
    }
}

/// Tries to explain the fault entirely within byte `j` of every faulty
/// word (the paper's single-common-byte case). Each suspect's error byte
/// is read directly off R3; consistency demands that it equals the
/// suspect's syndrome (byte-aligned bits are their own parity groups)
/// and that the contributions reproduce R3 exactly. On success writes
/// the per-suspect error masks into `masks[..suspects.len()]`.
fn solve_single_byte(r3: u64, suspects: &[Suspect], j: u32, masks: &mut [u64; 8]) -> bool {
    let mut reconstructed = 0u64;
    for (i, s) in suspects.iter().enumerate() {
        let b = (j as usize + s.class) % 8;
        let e_byte = ((r3 >> (8 * b)) & 0xFF) as u8;
        if e_byte != s.syndrome {
            return false;
        }
        let mask = u64::from(e_byte) << (8 * j);
        reconstructed ^= rotate_left_bytes(mask, s.class as u32);
        masks[i] = mask;
    }
    reconstructed == r3
}

/// Attempts to explain the fault entirely within word bytes `band` and
/// `band + 1`. On success writes the per-suspect error masks into
/// `masks[..suspects.len()]`.
fn solve_band(r3: u64, suspects: &[Suspect], band: u32, masks: &mut [u64; 8]) -> bool {
    let jj_lo = band;
    let jj_hi = band + 1;
    let n = suspects.len();

    // members[b] = candidate (suspect index, word byte) pairs whose
    // rotated contribution lands in byte b of R3. Each of the ≤ 8
    // suspects lands in two *distinct* bytes (jj_lo and jj_hi differ by
    // 1 mod 8), so a byte holds at most one entry per suspect.
    let mut members = [[(0usize, 0u32); 8]; 8];
    let mut member_len = [0usize; 8];
    for (i, s) in suspects.iter().enumerate() {
        for jj in [jj_lo, jj_hi] {
            let b = (jj as usize + s.class) % 8;
            members[b][member_len[b]] = (i, jj);
            member_len[b] += 1;
        }
    }

    let mut r3 = r3;
    let mut remaining = n;

    while remaining > 0 {
        // Find a forced deduction: an R3 byte with exactly one candidate.
        let Some(singleton) = (0..8).find(|&b| member_len[b] == 1) else {
            return false;
        };
        let (idx, jj) = members[singleton][0];
        let s = suspects[idx];

        let e_known = ((r3 >> (8 * singleton)) & 0xFF) as u8;
        // Per-group case analysis: a group fires iff an odd number of its
        // band bits flipped; each band byte holds exactly one bit of each
        // group, so the other byte's bit is e_known ^ syndrome.
        let e_other = e_known ^ s.syndrome;
        let jj_other = if jj == jj_lo { jj_hi } else { jj_lo };
        let mask = (u64::from(e_known) << (8 * jj)) | (u64::from(e_other) << (8 * jj_other));

        masks[idx] = mask;
        r3 ^= rotate_left_bytes(mask, s.class as u32);
        for b in 0..8 {
            let mut kept = 0;
            for t in 0..member_len[b] {
                if members[b][t].0 != idx {
                    members[b][kept] = members[b][t];
                    kept += 1;
                }
            }
            member_len[b] = kept;
        }
        remaining -= 1;
    }

    // Accept only a fully consistent explanation. The peel loop located
    // every suspect exactly once (retain removes a located index from
    // all candidate lists), so masks[..n] is fully written.
    r3 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds (r3, suspects) from ground-truth error masks, mimicking
    /// what the recovery engine computes from the real cache.
    fn make_case(errors: &[(usize, u64)]) -> (u64, Vec<Suspect>) {
        let mut r3 = 0;
        let mut suspects = Vec::new();
        for &(row, e) in errors {
            assert_ne!(e, 0);
            let class = row % 8;
            r3 ^= rotate_left_bytes(e, class as u32);
            let mut syndrome = 0u8;
            for bit in 0..64u32 {
                if e >> bit & 1 == 1 {
                    syndrome ^= 1 << (bit % 8);
                }
            }
            suspects.push(Suspect {
                row,
                class,
                syndrome,
            });
        }
        (r3, suspects)
    }

    fn check_located(errors: &[(usize, u64)]) {
        let (r3, suspects) = make_case(errors);
        let masks = locate_spatial(r3, &suspects).expect("locatable");
        for (i, &(_, e)) in errors.iter().enumerate() {
            assert_eq!(masks[i], e, "error mask of suspect {i}");
        }
    }

    #[test]
    fn vertical_two_bit_stripe() {
        // The paper's Figure 4/5 scenario: bit 0 of two adjacent rows.
        check_located(&[(0, 1), (1, 1)]);
    }

    #[test]
    fn vertical_full_column_eight_rows_is_ambiguous_or_located() {
        // Bit 0 of 8 adjacent rows: classes 0..7 all faulty, single
        // column. The solid same-column stripe across all 8 classes is
        // one of the §4.6 hard patterns family; accept either a correct
        // location or a DUE, but never a wrong mask.
        let errors: Vec<(usize, u64)> = (0..8).map(|r| (r, 1u64)).collect();
        let (r3, suspects) = make_case(&errors);
        match locate_spatial(r3, &suspects) {
            Ok(masks) => {
                for (i, &(_, e)) in errors.iter().enumerate() {
                    assert_eq!(masks[i], e);
                }
            }
            Err(LocateError::Ambiguous) | Err(LocateError::NoSolution) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn paper_section_4_5_example() {
        // §4.5's worked example: a spatial fault in bits 5-12 of four
        // words of classes 0-3 (bits 5-7 of byte 0, bits 0-4 of byte 1).
        let e = 0b1_1111_1110_0000u64; // bits 5..=12
        let errors: Vec<(usize, u64)> = (0..4).map(|r| (r, e)).collect();
        check_located(&errors);
    }

    #[test]
    fn three_bit_vertical_in_byte_zero() {
        // §4.3's example: 3-bit vertical fault in bit 0 of first three rows.
        check_located(&[(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn diagonal_pattern_within_square() {
        check_located(&[(0, 1 << 3), (1, 1 << 4), (2, 1 << 5)]);
    }

    #[test]
    fn two_byte_band_mixed_bits() {
        // Errors straddling the byte 0/1 boundary, confined to columns
        // 4..=11 (an 8-wide window): word A flips bits 7,8,9; word B
        // flips bits 4 and 11.
        check_located(&[(4, 0b0011_1000_0000), (5, 0b1000_0001_0000)]);
    }

    #[test]
    fn full_8x8_square_is_due() {
        // §4.6: all bits of an 8x8 square — unlocatable with one pair.
        let errors: Vec<(usize, u64)> = (0..8).map(|r| (r, 0xFFu64)).collect();
        let (r3, suspects) = make_case(&errors);
        assert!(matches!(
            locate_spatial(r3, &suspects),
            Err(LocateError::Ambiguous) | Err(LocateError::NoSolution)
        ));
    }

    #[test]
    fn distance_four_alias_is_due_or_correct() {
        // §4.6: byte 0 of class 0 and byte 0 of class 4: content of R3
        // identical to byte-4 interpretation — must not silently pick a
        // wrong one. Distance 4 rows, same byte.
        let errors = [(0usize, 0x07u64), (4usize, 0x03u64)];
        let (r3, suspects) = make_case(&errors);
        match locate_spatial(r3, &suspects) {
            Ok(masks) => assert_eq!(masks, vec![0x07, 0x03], "if located, must be exact"),
            Err(LocateError::Ambiguous) | Err(LocateError::NoSolution) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn distance_beyond_square_rejected() {
        let errors = [(0usize, 1u64), (9usize, 1u64)];
        let (r3, suspects) = make_case(&errors);
        assert_eq!(
            locate_spatial(r3, &suspects),
            Err(LocateError::DistanceExceeded)
        );
    }

    #[test]
    fn shared_class_rejected() {
        let s = Suspect {
            row: 0,
            class: 0,
            syndrome: 1,
        };
        let t = Suspect {
            row: 3,
            class: 0,
            syndrome: 1,
        };
        assert_eq!(locate_spatial(1, &[s, t]), Err(LocateError::ClassAliased));
    }

    #[test]
    fn never_miscorrects_exhaustive_two_row_bands() {
        // Exhaustive-ish sweep: every 2-row pattern within every band,
        // a few bit combinations. The locator must either return the
        // exact masks or refuse.
        for band in 0..7u32 {
            for bits_a in [0b1u64, 0b1000_0000, 0b1_0000_0001, 0b1111] {
                for bits_b in [0b1u64, 0b10, 0b1000_0001] {
                    let shift = 8 * band;
                    let ea = bits_a << shift;
                    let eb = bits_b << shift;
                    // keep within the 16-bit band
                    if ea >> shift > 0xFFFF || eb >> shift > 0xFFFF {
                        continue;
                    }
                    // Skip patterns with even flips per parity group —
                    // those are undetectable by 8-way parity (hardware
                    // would not see them either).
                    let syn = |e: u64| {
                        (0..64u32).fold(0u8, |s, b| {
                            if e >> b & 1 == 1 {
                                s ^ (1 << (b % 8))
                            } else {
                                s
                            }
                        })
                    };
                    if syn(ea) == 0 || syn(eb) == 0 {
                        continue;
                    }
                    for r0 in 0..3usize {
                        let errors = [(r0, ea), (r0 + 1, eb)];
                        let (r3, suspects) = make_case(&errors);
                        match locate_spatial(r3, &suspects) {
                            Ok(masks) => {
                                assert_eq!(masks, vec![ea, eb], "band {band} rows {r0}");
                            }
                            Err(LocateError::Ambiguous | LocateError::NoSolution) => {}
                            Err(other) => panic!("unexpected {other:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one suspect")]
    fn empty_suspects_panics() {
        let _ = locate_spatial(0, &[]);
    }
}
