//! **CPPC — Correctable Parity Protected Cache** (Manoochehri, Annavaram
//! & Dubois, ISCA 2011): a write-back cache that detects faults with
//! interleaved parity and corrects them with two XOR "checkpoint"
//! registers, extended to spatial multi-bit errors by byte shifting.
//!
//! The crate is organised around the paper's structure:
//!
//! * [`config`] — design-space knobs: parity ways, register pairs
//!   (§3.4/§4.11), byte shifting (§4.3).
//! * [`rotate`] — the barrel byte-shifter and its cost model (§4.8).
//! * [`registers`] — the R1/R2 register file and its invariant (§3).
//! * [`cache`] — [`cache::CppcCache`], the protected cache with the
//!   write path of Figure 2, the recovery engine of §4.4 and both L1
//!   and L2 variants (§3.5).
//! * [`locator`] — the spatial-MBE fault locator of §4.5.
//! * [`baselines`] — the three comparison caches of §6: one-dimensional
//!   parity, SECDED with physical bit interleaving, and two-dimensional
//!   parity.
//! * [`scheme`] — the pluggable [`scheme::ProtectionScheme`] trait and
//!   [`scheme::SchemeKind`] selector the campaign drivers parameterize
//!   over, with CPPC and the baselines ported onto it.
//! * [`silent`], [`harp`] — the related-work zoo: silent-write-aware
//!   low-power ECC and HARP-style on-die ECC with error profiling.
//!
//! # Quick start
//!
//! ```
//! use cppc_cache_sim::{CacheGeometry, MainMemory, ReplacementPolicy};
//! use cppc_core::{CppcCache, CppcConfig};
//!
//! let geo = CacheGeometry::new(32 * 1024, 2, 32)?;
//! let mut mem = MainMemory::new();
//! let mut cache = CppcCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru)?;
//!
//! cache.store_word(0x1000, 42, &mut mem).unwrap();
//! cache.flip_data_bit_at(0x1000, 5); // particle strike on dirty data
//! assert_eq!(cache.load_word(0x1000, &mut mem).unwrap(), 42); // corrected
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baselines;
pub mod batch;
pub mod cache;
pub mod config;
pub mod full;
pub mod harp;
pub mod icr;
pub mod locator;
pub mod obs;
pub mod registers;
pub mod rotate;
pub mod scheme;
pub mod silent;
pub mod tags;

pub use batch::{BatchOutcome, BatchScratch, BatchSim};
pub use cache::{CppcCache, CppcStats, Due, DueReason, RecoveryReport, SimSnapshot};
pub use config::{ConfigError, CppcConfig, ROTATION_CLASSES};
pub use full::{FullyProtectedCache, ProtectedFault};
pub use harp::HarpOdeccScheme;
pub use icr::{IcrCache, IcrStats};
pub use locator::{locate_spatial, locate_spatial_into, LocateError, Suspect};
pub use registers::RegisterFile;
pub use scheme::{ProtectionScheme, SchemeDescriptor, SchemeFault, SchemeKind, SchemeOps};
pub use silent::SilentWriteEccScheme;
pub use tags::{TagCppc, TagDue};
