//! The three baseline protected caches of the paper's evaluation (§6):
//!
//! * [`OneDimParityCache`] — 8 interleaved parity bits per word,
//!   detection only: a fault in a *clean* word is recovered by re-fetch,
//!   a fault in a *dirty* word halts the machine (the paper's
//!   motivation: "even a single-bit error in a write-back
//!   parity-protected cache may cause the processor to fail").
//! * [`SecdedCache`] — a (72,64) SECDED code per word, optionally with
//!   8-way physical bit interleaving so spatial MBEs decompose into
//!   single-bit errors per word.
//! * [`TwoDimParityCache`] — 8-way horizontal interleaved parity per
//!   word plus vertical parity rows (one in the paper's evaluated
//!   configuration); every store and every fill performs a
//!   read-before-write to keep the vertical parity current.
//!
//! All three hold real data through the same `cppc-cache-sim` substrate
//! used by the CPPC itself, so fault-injection campaigns compare the
//! schemes on identical ground.

use cppc_cache_sim::cache::{Backing, Cache};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::stats::CacheStats;
use cppc_ecc::interleave::BitInterleaving;
use cppc_ecc::interleaved::InterleavedParity;
use cppc_ecc::secded::{DecodeOutcome, Secded64};
use cppc_fault::layout::PhysicalLayout;
use cppc_fault::model::{BitFlip, FaultPattern};

use std::fmt;

/// A detected fault a baseline scheme cannot repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnrecoverableFault {
    /// One-dimensional parity detected a fault in dirty data.
    DirtyParityFault,
    /// SECDED flagged a double-bit error.
    DoubleBitError,
    /// Two-dimensional parity found more than one faulty row in the
    /// same vertical parity group.
    MultipleRowsInGroup,
}

impl fmt::Display for UnrecoverableFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrecoverableFault::DirtyParityFault => {
                write!(f, "parity fault in dirty data (no correction available)")
            }
            UnrecoverableFault::DoubleBitError => write!(f, "SECDED double-bit error"),
            UnrecoverableFault::MultipleRowsInGroup => {
                write!(f, "multiple faulty rows share one vertical parity row")
            }
        }
    }
}

impl std::error::Error for UnrecoverableFault {}

// ======================================================================
// One-dimensional parity
// ======================================================================

/// A write-back cache protected by `k`-way interleaved parity per word —
/// detection only.
#[derive(Debug, Clone)]
pub struct OneDimParityCache {
    inner: Cache,
    parity: Vec<u64>,
    code: InterleavedParity,
    layout: PhysicalLayout,
    corrected_clean: u64,
    dues: u64,
}

impl OneDimParityCache {
    /// Creates the cache with `parity_ways`-way interleaved parity
    /// (8 in the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if `parity_ways` does not divide 64.
    #[must_use]
    pub fn new(geo: CacheGeometry, parity_ways: u32, policy: ReplacementPolicy) -> Self {
        let layout =
            PhysicalLayout::new(geo.num_sets(), geo.associativity(), geo.words_per_block());
        OneDimParityCache {
            inner: Cache::new(geo, policy),
            parity: vec![0; layout.num_rows()],
            code: InterleavedParity::new(parity_ways),
            layout,
            corrected_clean: 0,
            dues: 0,
        }
    }

    /// Generic cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// Clean words repaired by re-fetch.
    #[must_use]
    pub fn corrected_clean(&self) -> u64 {
        self.corrected_clean
    }

    /// Unrecoverable (dirty-data) faults seen.
    #[must_use]
    pub fn dues(&self) -> u64 {
        self.dues
    }

    /// The physical layout (for fault targeting).
    #[must_use]
    pub fn layout(&self) -> &PhysicalLayout {
        &self.layout
    }

    fn refresh_parity(&mut self, set: usize, way: usize, w: usize) {
        let row = self.layout.row_of(set, way, w);
        self.parity[row] = self.code.encode(self.inner.block(set, way).word(w));
    }

    fn ensure_resident<B: Backing>(
        &mut self,
        addr: u64,
        is_store: bool,
        backing: &mut B,
    ) -> (usize, usize) {
        if let Some((set, way)) = self.inner.probe(addr) {
            self.inner.record_access(is_store, true);
            self.inner.touch(set, way);
            return (set, way);
        }
        self.inner.record_access(is_store, false);
        let set = self.inner.geometry().set_index(addr);
        let way = self.inner.choose_way_for_fill(set);
        let _ = self.inner.fill_into(addr, way, backing);
        for w in 0..self.inner.geometry().words_per_block() {
            self.refresh_parity(set, way, w);
        }
        (set, way)
    }

    /// Loads a word; faults in clean data re-fetch, faults in dirty data
    /// are fatal.
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::DirtyParityFault`] on a dirty-data
    /// fault.
    pub fn load_word<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
    ) -> Result<u64, UnrecoverableFault> {
        let (set, way) = self.ensure_resident(addr, false, backing);
        let w = self.inner.geometry().word_index(addr);
        let row = self.layout.row_of(set, way, w);
        let value = self.inner.block(set, way).word(w);
        if self.code.syndrome(value, self.parity[row]) != 0 {
            if self.inner.block(set, way).is_word_dirty(w) {
                self.dues += 1;
                return Err(UnrecoverableFault::DirtyParityFault);
            }
            let base = self.inner.block_address(set, way);
            let data = backing.fetch_block(base, self.inner.geometry().words_per_block());
            self.inner.block_mut(set, way).patch_word(w, data[w]);
            self.refresh_parity(set, way, w);
            self.corrected_clean += 1;
            return Ok(data[w]);
        }
        Ok(value)
    }

    /// Stores a word (no read-before-write needed — parity is recomputed
    /// from the new data alone; that is the scheme's energy advantage).
    pub fn store_word<B: Backing>(&mut self, addr: u64, value: u64, backing: &mut B) {
        let (set, way) = self.ensure_resident(addr, true, backing);
        let w = self.inner.geometry().word_index(addr);
        self.inner.store_word_in_place(set, way, w, value);
        self.refresh_parity(set, way, w);
    }

    /// Stores one byte: parity is recomputed from the merged word (the
    /// merge is free in hardware with per-byte write enables plus the
    /// old byte's parity group — no extra array read).
    pub fn store_byte<B: Backing>(&mut self, addr: u64, value: u8, backing: &mut B) {
        let (set, way) = self.ensure_resident(addr, true, backing);
        let w = self.inner.geometry().word_index(addr);
        let byte = self.inner.geometry().byte_in_word(addr);
        self.inner.store_byte_in_place(set, way, w, byte, value);
        self.refresh_parity(set, way, w);
    }

    /// Applies a fault pattern to the data array; returns bits flipped.
    pub fn inject(&mut self, pattern: &FaultPattern) -> usize {
        let mut applied = 0;
        for flip in pattern.flips() {
            let (set, way, word) = self.layout.location_of(flip.row);
            if self.inner.block(set, way).is_valid() {
                self.inner.block_mut(set, way).flip_bit(word, flip.col);
                applied += 1;
            }
        }
        applied
    }

    /// Reads the resident word without side effects.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    /// Writes every dirty block back to `backing` (the data is written
    /// back as stored, so the parity over it stays valid).
    pub fn flush<B: Backing>(&mut self, backing: &mut B) {
        self.inner.flush(backing);
    }
}

// ======================================================================
// SECDED
// ======================================================================

/// A write-back cache protected by a (72,64) SECDED code per word, with
/// optional 8-way physical bit interleaving (the paper's L1 SECDED
/// baseline combines both).
#[derive(Debug, Clone)]
pub struct SecdedCache {
    inner: Cache,
    check: Vec<u16>,
    layout: PhysicalLayout,
    interleaving: Option<BitInterleaving>,
    corrected: u64,
    dues: u64,
    rmw_reads: u64,
}

impl SecdedCache {
    /// Creates the cache. `interleaved` enables 8-way physical bit
    /// interleaving (spatial-MBE tolerance at 8x bitline energy).
    #[must_use]
    pub fn new(geo: CacheGeometry, interleaved: bool, policy: ReplacementPolicy) -> Self {
        let layout =
            PhysicalLayout::new(geo.num_sets(), geo.associativity(), geo.words_per_block());
        SecdedCache {
            inner: Cache::new(geo, policy),
            check: vec![Secded64::encode(0).check_bits(); layout.num_rows()],
            layout,
            interleaving: interleaved.then(|| BitInterleaving::new(8, 64)),
            corrected: 0,
            dues: 0,
            rmw_reads: 0,
        }
    }

    /// Read-modify-writes forced by partial (sub-word) stores: the
    /// word's code must be recomputed from the whole word, so the old
    /// word is read and decoded first (paper §1's argument against
    /// large ECC domains, at word scale).
    #[must_use]
    pub fn rmw_reads(&self) -> u64 {
        self.rmw_reads
    }

    /// Generic cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// Single-bit corrections performed.
    #[must_use]
    pub fn corrected(&self) -> u64 {
        self.corrected
    }

    /// Double-bit (unrecoverable) errors seen.
    #[must_use]
    pub fn dues(&self) -> u64 {
        self.dues
    }

    /// The physical layout (for fault targeting).
    #[must_use]
    pub fn layout(&self) -> &PhysicalLayout {
        &self.layout
    }

    /// The bitline-energy multiplier this configuration pays (8 with
    /// interleaving, 1 without) — used by the energy model.
    #[must_use]
    pub fn bitline_multiplier(&self) -> f64 {
        self.interleaving
            .map_or(1.0, |il| il.bitline_energy_multiplier())
    }

    fn refresh_check(&mut self, set: usize, way: usize, w: usize) {
        let row = self.layout.row_of(set, way, w);
        self.check[row] = Secded64::encode(self.inner.block(set, way).word(w)).check_bits();
    }

    fn ensure_resident<B: Backing>(
        &mut self,
        addr: u64,
        is_store: bool,
        backing: &mut B,
    ) -> (usize, usize) {
        if let Some((set, way)) = self.inner.probe(addr) {
            self.inner.record_access(is_store, true);
            self.inner.touch(set, way);
            return (set, way);
        }
        self.inner.record_access(is_store, false);
        let set = self.inner.geometry().set_index(addr);
        let way = self.inner.choose_way_for_fill(set);
        let _ = self.inner.fill_into(addr, way, backing);
        for w in 0..self.inner.geometry().words_per_block() {
            self.refresh_check(set, way, w);
        }
        (set, way)
    }

    /// Loads a word, decoding the SECDED codeword: single-bit errors are
    /// corrected in place, double-bit errors are fatal.
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::DoubleBitError`] when the decoder
    /// flags an uncorrectable error.
    pub fn load_word<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
    ) -> Result<u64, UnrecoverableFault> {
        let (set, way) = self.ensure_resident(addr, false, backing);
        let w = self.inner.geometry().word_index(addr);
        let row = self.layout.row_of(set, way, w);
        let stored = self.inner.block(set, way).word(w);
        match Secded64::from_parts(stored, self.check[row]).decode() {
            DecodeOutcome::Clean(v) => Ok(v),
            DecodeOutcome::Corrected { data, .. } => {
                self.inner.block_mut(set, way).patch_word(w, data);
                self.refresh_check(set, way, w);
                self.corrected += 1;
                Ok(data)
            }
            DecodeOutcome::DetectedUncorrectable => {
                self.dues += 1;
                Err(UnrecoverableFault::DoubleBitError)
            }
        }
    }

    /// Stores a word, re-encoding its SECDED codeword.
    pub fn store_word<B: Backing>(&mut self, addr: u64, value: u64, backing: &mut B) {
        let (set, way) = self.ensure_resident(addr, true, backing);
        let w = self.inner.geometry().word_index(addr);
        self.inner.store_word_in_place(set, way, w, value);
        self.refresh_check(set, way, w);
    }

    /// Stores one byte. Unlike parity, SECDED needs the rest of the
    /// word to recompute the code — a read-modify-write, decoded first
    /// so a latent fault is not silently absorbed into a fresh code.
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::DoubleBitError`] if the RMW decode
    /// flags an uncorrectable error.
    pub fn store_byte<B: Backing>(
        &mut self,
        addr: u64,
        value: u8,
        backing: &mut B,
    ) -> Result<(), UnrecoverableFault> {
        let (set, way) = self.ensure_resident(addr, true, backing);
        let w = self.inner.geometry().word_index(addr);
        let byte = self.inner.geometry().byte_in_word(addr);
        self.rmw_reads += 1;
        let row = self.layout.row_of(set, way, w);
        let stored = self.inner.block(set, way).word(w);
        match Secded64::from_parts(stored, self.check[row]).decode() {
            DecodeOutcome::Clean(_) => {}
            DecodeOutcome::Corrected { data, .. } => {
                self.inner.block_mut(set, way).patch_word(w, data);
                self.corrected += 1;
            }
            DecodeOutcome::DetectedUncorrectable => {
                self.dues += 1;
                return Err(UnrecoverableFault::DoubleBitError);
            }
        }
        self.inner.store_byte_in_place(set, way, w, byte, value);
        self.refresh_check(set, way, w);
        Ok(())
    }

    /// Applies a fault pattern in *logical* coordinates (no
    /// interleaving translation); returns bits flipped.
    pub fn inject(&mut self, pattern: &FaultPattern) -> usize {
        let mut applied = 0;
        for flip in pattern.flips() {
            let (set, way, word) = self.layout.location_of(flip.row);
            if self.inner.block(set, way).is_valid() {
                self.inner.block_mut(set, way).flip_bit(word, flip.col);
                applied += 1;
            }
        }
        applied
    }

    /// Applies a *physical* spatial fault. With interleaving enabled, a
    /// physical row holds bits of 8 consecutive logical rows
    /// bit-interleaved, so an NxM strike at physical `(row0, col0)`
    /// decomposes into ≤1 flip per word for M ≤ 8 — the mechanism that
    /// makes interleaved SECDED spatial-MBE tolerant. Without
    /// interleaving the pattern applies directly.
    ///
    /// Returns the bit flips actually applied (in logical coordinates).
    ///
    /// # Panics
    ///
    /// Panics if the footprint leaves the array.
    pub fn inject_spatial(
        &mut self,
        row0: usize,
        col0: u32,
        rows: usize,
        cols: u32,
    ) -> Vec<BitFlip> {
        let mut flips = Vec::new();
        match self.interleaving {
            None => {
                for dr in 0..rows {
                    for dc in 0..cols {
                        flips.push(BitFlip {
                            row: row0 + dr,
                            col: col0 + dc,
                        });
                    }
                }
            }
            Some(_) => {
                // Physical row r holds logical rows 8r..8r+7 interleaved:
                // physical column c maps to logical row 8r + (c % 8),
                // bit c / 8. Strike columns live in 0..512.
                assert!(col0 + cols <= 512, "physical strike leaves the row");
                for dr in 0..rows {
                    for dc in 0..cols {
                        let c = col0 + dc;
                        let logical_row = 8 * (row0 + dr) + (c % 8) as usize;
                        if logical_row < self.layout.num_rows() {
                            flips.push(BitFlip {
                                row: logical_row,
                                col: c / 8,
                            });
                        }
                    }
                }
            }
        }
        let mut applied = Vec::new();
        for flip in flips {
            if flip.row >= self.layout.num_rows() {
                continue;
            }
            let (set, way, word) = self.layout.location_of(flip.row);
            if self.inner.block(set, way).is_valid() {
                self.inner.block_mut(set, way).flip_bit(word, flip.col);
                applied.push(flip);
            }
        }
        applied
    }

    /// Reads the resident word without side effects or decoding.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    /// Writes every dirty block back to `backing` (data written back as
    /// stored; the per-word check bits stay consistent with it).
    pub fn flush<B: Backing>(&mut self, backing: &mut B) {
        self.inner.flush(backing);
    }
}

// ======================================================================
// Block-granularity SECDED (the paper's L2 SECDED organisation)
// ======================================================================

/// A write-back cache protected by one SECDED code per *block* (§6:
/// "As an L2 cache, a SECDED is attached to a block instead of each
/// word") — less check storage than per-word SECDED (e.g. 10 bits per
/// 256 data bits vs 32), at the price of a read-modify-write on every
/// partial (sub-block) write, since the whole block's code must be
/// recomputed. This RMW cost is exactly the §1 argument for why
/// enlarging an *ECC* domain is expensive while enlarging CPPC's
/// XOR domain is free.
#[derive(Debug, Clone)]
pub struct BlockSecdedCache {
    inner: Cache,
    code: cppc_ecc::secded_block::BlockSecded,
    check: Vec<u32>,
    layout: PhysicalLayout,
    rmw_reads: u64,
    corrected: u64,
    dues: u64,
}

impl BlockSecdedCache {
    /// Creates the cache.
    #[must_use]
    pub fn new(geo: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let layout =
            PhysicalLayout::new(geo.num_sets(), geo.associativity(), geo.words_per_block());
        let code = cppc_ecc::secded_block::BlockSecded::new(geo.words_per_block());
        let clean_check = code.encode(&vec![0; geo.words_per_block()]).expect("width");
        BlockSecdedCache {
            inner: Cache::new(geo, policy),
            code,
            check: vec![clean_check; geo.num_sets() * geo.associativity()],
            layout,
            rmw_reads: 0,
            corrected: 0,
            dues: 0,
        }
    }

    /// Generic cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// Read-modify-write block reads forced by partial writes.
    #[must_use]
    pub fn rmw_reads(&self) -> u64 {
        self.rmw_reads
    }

    /// Single-bit corrections performed.
    #[must_use]
    pub fn corrected(&self) -> u64 {
        self.corrected
    }

    /// Double-bit (unrecoverable) errors seen.
    #[must_use]
    pub fn dues(&self) -> u64 {
        self.dues
    }

    /// The physical layout (for fault targeting).
    #[must_use]
    pub fn layout(&self) -> &PhysicalLayout {
        &self.layout
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.inner.geometry().associativity() + way
    }

    fn refresh_check(&mut self, set: usize, way: usize) {
        let slot = self.slot(set, way);
        self.check[slot] = self
            .code
            .encode(self.inner.block(set, way).words())
            .expect("block width");
    }

    fn ensure_resident<B: Backing>(
        &mut self,
        addr: u64,
        is_store: bool,
        backing: &mut B,
    ) -> (usize, usize) {
        if let Some((set, way)) = self.inner.probe(addr) {
            self.inner.record_access(is_store, true);
            self.inner.touch(set, way);
            return (set, way);
        }
        self.inner.record_access(is_store, false);
        let set = self.inner.geometry().set_index(addr);
        let way = self.inner.choose_way_for_fill(set);
        let _ = self.inner.fill_into(addr, way, backing);
        self.refresh_check(set, way);
        (set, way)
    }

    fn decode_block(&mut self, set: usize, way: usize) -> Result<(), UnrecoverableFault> {
        let slot = self.slot(set, way);
        let words = self.inner.block(set, way).words().to_vec();
        match self
            .code
            .decode(&words, self.check[slot])
            .expect("block width")
        {
            cppc_ecc::secded_block::BlockDecodeOutcome::Clean(_) => Ok(()),
            cppc_ecc::secded_block::BlockDecodeOutcome::Corrected { data, .. } => {
                for (w, &v) in data.iter().enumerate() {
                    self.inner.block_mut(set, way).patch_word(w, v);
                }
                self.refresh_check(set, way);
                self.corrected += 1;
                Ok(())
            }
            cppc_ecc::secded_block::BlockDecodeOutcome::DetectedUncorrectable => {
                self.dues += 1;
                Err(UnrecoverableFault::DoubleBitError)
            }
        }
    }

    /// Loads a word, decoding the whole block's SECDED code.
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::DoubleBitError`] on an
    /// uncorrectable error.
    pub fn load_word<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
    ) -> Result<u64, UnrecoverableFault> {
        let (set, way) = self.ensure_resident(addr, false, backing);
        self.decode_block(set, way)?;
        let w = self.inner.geometry().word_index(addr);
        Ok(self.inner.block(set, way).word(w))
    }

    /// Stores a word. A sub-block write forces a read-modify-write of
    /// the whole block (the old data is needed to recompute the code,
    /// and it must be decoded first lest a latent fault be absorbed).
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::DoubleBitError`] if the RMW decode
    /// flags an uncorrectable error.
    pub fn store_word<B: Backing>(
        &mut self,
        addr: u64,
        value: u64,
        backing: &mut B,
    ) -> Result<(), UnrecoverableFault> {
        let (set, way) = self.ensure_resident(addr, true, backing);
        self.rmw_reads += 1;
        self.decode_block(set, way)?;
        let w = self.inner.geometry().word_index(addr);
        self.inner.store_word_in_place(set, way, w, value);
        self.refresh_check(set, way);
        Ok(())
    }

    /// Stores one byte: a partial write of the 256-bit codeword — the
    /// full block must be read, decoded and re-encoded (paper §1).
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::DoubleBitError`] if the RMW decode
    /// flags an uncorrectable error.
    pub fn store_byte<B: Backing>(
        &mut self,
        addr: u64,
        value: u8,
        backing: &mut B,
    ) -> Result<(), UnrecoverableFault> {
        let (set, way) = self.ensure_resident(addr, true, backing);
        self.rmw_reads += 1;
        self.decode_block(set, way)?;
        let w = self.inner.geometry().word_index(addr);
        let byte = self.inner.geometry().byte_in_word(addr);
        self.inner.store_byte_in_place(set, way, w, byte, value);
        self.refresh_check(set, way);
        Ok(())
    }

    /// Accepts a whole-block write (no RMW needed when `mask` covers
    /// the full block — the L2 CPPC comparison point).
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::DoubleBitError`] if a partial
    /// write's RMW decode fails.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not one block wide.
    pub fn write_block<B: Backing>(
        &mut self,
        addr: u64,
        data: &[u64],
        mask: u64,
        backing: &mut B,
    ) -> Result<(), UnrecoverableFault> {
        let wpb = self.inner.geometry().words_per_block();
        assert_eq!(data.len(), wpb, "block width");
        let (set, way) = self.ensure_resident(addr, true, backing);
        let full = mask.count_ones() as usize == wpb;
        if !full {
            self.rmw_reads += 1;
            self.decode_block(set, way)?;
        }
        for (w, &v) in data.iter().enumerate() {
            if mask >> w & 1 == 1 {
                self.inner.store_word_in_place(set, way, w, v);
            }
        }
        self.refresh_check(set, way);
        Ok(())
    }

    /// Applies a fault pattern; returns bits flipped.
    pub fn inject(&mut self, pattern: &FaultPattern) -> usize {
        let mut applied = 0;
        for flip in pattern.flips() {
            let (set, way, word) = self.layout.location_of(flip.row);
            if self.inner.block(set, way).is_valid() {
                self.inner.block_mut(set, way).flip_bit(word, flip.col);
                applied += 1;
            }
        }
        applied
    }

    /// Reads the resident word without side effects or decoding.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }
}

// ======================================================================
// Two-dimensional parity
// ======================================================================

/// A write-back cache protected by two-dimensional parity: 8-way
/// horizontal interleaved parity per word for detection, `vertical_rows`
/// vertical parity rows for correction (row `r` belongs to vertical
/// group `r mod vertical_rows`).
///
/// The paper's evaluated configuration uses a single vertical row
/// (matching CPPC's hardware budget), which sacrifices spatial-MBE
/// correction; eight rows restore it.
#[derive(Debug, Clone)]
pub struct TwoDimParityCache {
    inner: Cache,
    horizontal: Vec<u64>,
    vertical: Vec<u64>,
    code: InterleavedParity,
    layout: PhysicalLayout,
    read_before_writes: u64,
    corrected: u64,
    dues: u64,
}

impl TwoDimParityCache {
    /// Creates the cache with `vertical_rows` vertical parity rows.
    ///
    /// # Panics
    ///
    /// Panics if `vertical_rows` is zero.
    #[must_use]
    pub fn new(geo: CacheGeometry, vertical_rows: usize, policy: ReplacementPolicy) -> Self {
        assert!(vertical_rows > 0, "need at least one vertical parity row");
        let layout =
            PhysicalLayout::new(geo.num_sets(), geo.associativity(), geo.words_per_block());
        TwoDimParityCache {
            inner: Cache::new(geo, policy),
            horizontal: vec![0; layout.num_rows()],
            vertical: vec![0; vertical_rows],
            code: InterleavedParity::new(8),
            layout,
            read_before_writes: 0,
            corrected: 0,
            dues: 0,
        }
    }

    /// Generic cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// Read-before-write operations performed (every store + every word
    /// of every fill — the scheme's energy Achilles heel, §2).
    #[must_use]
    pub fn read_before_writes(&self) -> u64 {
        self.read_before_writes
    }

    /// Faulty rows corrected via vertical parity.
    #[must_use]
    pub fn corrected(&self) -> u64 {
        self.corrected
    }

    /// Unrecoverable faults seen.
    #[must_use]
    pub fn dues(&self) -> u64 {
        self.dues
    }

    /// The physical layout (for fault targeting).
    #[must_use]
    pub fn layout(&self) -> &PhysicalLayout {
        &self.layout
    }

    fn vgroup(&self, row: usize) -> usize {
        row % self.vertical.len()
    }

    fn refresh_horizontal(&mut self, set: usize, way: usize, w: usize) {
        let row = self.layout.row_of(set, way, w);
        self.horizontal[row] = self.code.encode(self.inner.block(set, way).word(w));
    }

    fn ensure_resident<B: Backing>(
        &mut self,
        addr: u64,
        is_store: bool,
        backing: &mut B,
    ) -> (usize, usize) {
        if let Some((set, way)) = self.inner.probe(addr) {
            self.inner.record_access(is_store, true);
            self.inner.touch(set, way);
            return (set, way);
        }
        self.inner.record_access(is_store, false);
        let set = self.inner.geometry().set_index(addr);
        let way = self.inner.choose_way_for_fill(set);
        let wpb = self.inner.geometry().words_per_block();

        // Read-before-write on the whole incoming line (§2): the old
        // contents must leave the vertical parity before new data enters.
        if self.inner.block(set, way).is_valid() {
            for w in 0..wpb {
                let row = self.layout.row_of(set, way, w);
                let old = self.inner.block(set, way).word(w);
                let g = self.vgroup(row);
                self.vertical[g] ^= old;
            }
        }
        self.read_before_writes += wpb as u64;
        let _ = self.inner.fill_into(addr, way, backing);
        for w in 0..wpb {
            let row = self.layout.row_of(set, way, w);
            let new = self.inner.block(set, way).word(w);
            let g = self.vgroup(row);
            self.vertical[g] ^= new;
            self.refresh_horizontal(set, way, w);
        }
        (set, way)
    }

    /// Loads a word; a horizontal parity fault triggers vertical-parity
    /// row reconstruction.
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::MultipleRowsInGroup`] when two
    /// faulty rows share a vertical group.
    pub fn load_word<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
    ) -> Result<u64, UnrecoverableFault> {
        let (set, way) = self.ensure_resident(addr, false, backing);
        let w = self.inner.geometry().word_index(addr);
        let row = self.layout.row_of(set, way, w);
        let value = self.inner.block(set, way).word(w);
        if self.code.syndrome(value, self.horizontal[row]) != 0 {
            self.recover_all()?;
        }
        Ok(self.inner.block(set, way).word(w))
    }

    /// Stores a word, performing the mandatory read-before-write to
    /// update the vertical parity.
    pub fn store_word<B: Backing>(&mut self, addr: u64, value: u64, backing: &mut B) {
        let (set, way) = self.ensure_resident(addr, true, backing);
        let w = self.inner.geometry().word_index(addr);
        let row = self.layout.row_of(set, way, w);
        let old = self.inner.block(set, way).word(w);
        let g = self.vgroup(row);
        self.vertical[g] ^= old ^ value;
        self.read_before_writes += 1;
        self.inner.store_word_in_place(set, way, w, value);
        self.refresh_horizontal(set, way, w);
    }

    /// Stores one byte: the read-before-write is unavoidable (the old
    /// word is needed for the vertical parity update).
    pub fn store_byte<B: Backing>(&mut self, addr: u64, value: u8, backing: &mut B) {
        let (set, way) = self.ensure_resident(addr, true, backing);
        let w = self.inner.geometry().word_index(addr);
        let byte = self.inner.geometry().byte_in_word(addr);
        let row = self.layout.row_of(set, way, w);
        let old = self.inner.block(set, way).word(w);
        self.read_before_writes += 1;
        self.inner.store_byte_in_place(set, way, w, byte, value);
        let new = self.inner.block(set, way).word(w);
        let g = self.vgroup(row);
        self.vertical[g] ^= old ^ new;
        self.refresh_horizontal(set, way, w);
    }

    /// Scans for horizontal parity violations and repairs each faulty
    /// row from its vertical parity group.
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::MultipleRowsInGroup`] if a group
    /// holds two or more faulty rows.
    pub fn recover_all(&mut self) -> Result<(), UnrecoverableFault> {
        let wpb = self.inner.geometry().words_per_block();
        let mut faulty: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (set, way, block) in self.inner.iter_blocks() {
            for w in 0..wpb {
                let row = self.layout.row_of(set, way, w);
                if self.code.syndrome(block.word(w), self.horizontal[row]) != 0 {
                    faulty.push((set, way, w, row));
                }
            }
        }
        // Two faulty rows in one vertical group are unrecoverable.
        for (i, a) in faulty.iter().enumerate() {
            for b in &faulty[i + 1..] {
                if self.vgroup(a.3) == self.vgroup(b.3) {
                    self.dues += 1;
                    return Err(UnrecoverableFault::MultipleRowsInGroup);
                }
            }
        }
        for (set, way, w, row) in faulty {
            let g = self.vgroup(row);
            let mut acc = self.vertical[g];
            for (s2, w2, b2) in self.inner.iter_blocks() {
                for i2 in 0..wpb {
                    let r2 = self.layout.row_of(s2, w2, i2);
                    if self.vgroup(r2) == g && r2 != row {
                        acc ^= b2.word(i2);
                    }
                }
            }
            self.inner.block_mut(set, way).patch_word(w, acc);
            self.refresh_horizontal(set, way, w);
            self.corrected += 1;
        }
        Ok(())
    }

    /// Applies a fault pattern to the data array; returns bits flipped.
    pub fn inject(&mut self, pattern: &FaultPattern) -> usize {
        let mut applied = 0;
        for flip in pattern.flips() {
            let (set, way, word) = self.layout.location_of(flip.row);
            if self.inner.block(set, way).is_valid() {
                self.inner.block_mut(set, way).flip_bit(word, flip.col);
                applied += 1;
            }
        }
        applied
    }

    /// Reads the resident word without side effects.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }

    /// Writes every dirty block back to `backing` (data written back as
    /// stored; horizontal and vertical parity stay consistent with it).
    pub fn flush<B: Backing>(&mut self, backing: &mut B) {
        self.inner.flush(backing);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_cache_sim::memory::MainMemory;

    fn geo() -> CacheGeometry {
        CacheGeometry::new(1024, 2, 32).unwrap()
    }

    // ---------------- One-dimensional parity ----------------

    #[test]
    fn parity_clean_fault_refetched() {
        let mut mem = MainMemory::new();
        mem.write_word(0x40, 7);
        let mut c = OneDimParityCache::new(geo(), 8, ReplacementPolicy::Lru);
        assert_eq!(c.load_word(0x40, &mut mem).unwrap(), 7);
        // corrupt the clean word
        let (set, way) = (geo().set_index(0x40), 0);
        let row = c.layout().row_of(set, way, 0);
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 3 }]));
        assert_eq!(c.load_word(0x40, &mut mem).unwrap(), 7, "refetched");
        assert_eq!(c.corrected_clean(), 1);
    }

    #[test]
    fn parity_dirty_fault_is_fatal() {
        let mut mem = MainMemory::new();
        let mut c = OneDimParityCache::new(geo(), 8, ReplacementPolicy::Lru);
        c.store_word(0x40, 99, &mut mem);
        let (set, _) = (geo().set_index(0x40), 0);
        let row = c.layout().row_of(set, 0, 0);
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 0 }]));
        assert_eq!(
            c.load_word(0x40, &mut mem),
            Err(UnrecoverableFault::DirtyParityFault)
        );
        assert_eq!(c.dues(), 1);
    }

    #[test]
    fn parity_store_needs_no_read() {
        let mut mem = MainMemory::new();
        let mut c = OneDimParityCache::new(geo(), 8, ReplacementPolicy::Lru);
        c.store_word(0x40, 1, &mut mem);
        c.store_word(0x40, 2, &mut mem);
        assert_eq!(c.load_word(0x40, &mut mem).unwrap(), 2);
    }

    // ---------------- SECDED ----------------

    #[test]
    fn secded_corrects_single_bit_in_dirty() {
        let mut mem = MainMemory::new();
        let mut c = SecdedCache::new(geo(), false, ReplacementPolicy::Lru);
        c.store_word(0x40, 0xDEAD, &mut mem);
        let row = c.layout().row_of(geo().set_index(0x40), 0, 0);
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 15 }]));
        assert_eq!(c.load_word(0x40, &mut mem).unwrap(), 0xDEAD);
        assert_eq!(c.corrected(), 1);
    }

    #[test]
    fn secded_double_bit_is_fatal() {
        let mut mem = MainMemory::new();
        let mut c = SecdedCache::new(geo(), false, ReplacementPolicy::Lru);
        c.store_word(0x40, 5, &mut mem);
        let row = c.layout().row_of(geo().set_index(0x40), 0, 0);
        c.inject(&FaultPattern::new(vec![
            BitFlip { row, col: 1 },
            BitFlip { row, col: 2 },
        ]));
        assert_eq!(
            c.load_word(0x40, &mut mem),
            Err(UnrecoverableFault::DoubleBitError)
        );
    }

    #[test]
    fn secded_interleaved_survives_spatial_burst() {
        let mut mem = MainMemory::new();
        let mut c = SecdedCache::new(geo(), true, ReplacementPolicy::Lru);
        // Fill two blocks (8 logical rows = 1 physical interleaved row).
        for i in 0..8u64 {
            c.store_word(0x40 + i * 8, 0x1111 * (i + 1), &mut mem);
        }
        // 0x40 maps to set 2, way 0, word 0 → logical rows 8..15, which
        // share physical interleaved row 1.
        let first_row = c.layout().row_of(geo().set_index(0x40), 0, 0);
        assert_eq!(first_row % 8, 0, "test assumes an aligned row band");
        // 1x8 physical burst: one bit in each of 8 logical rows.
        let flips = c.inject_spatial(first_row / 8, 100, 1, 8);
        assert!(!flips.is_empty());
        for i in 0..8u64 {
            assert_eq!(
                c.load_word(0x40 + i * 8, &mut mem).unwrap(),
                0x1111 * (i + 1),
                "word {i} corrected"
            );
        }
    }

    #[test]
    fn secded_non_interleaved_dies_on_horizontal_burst() {
        let mut mem = MainMemory::new();
        let mut c = SecdedCache::new(geo(), false, ReplacementPolicy::Lru);
        c.store_word(0x40, 5, &mut mem);
        let row = c.layout().row_of(geo().set_index(0x40), 0, 0);
        let flips = c.inject_spatial(row, 10, 1, 2);
        assert_eq!(flips.len(), 2);
        assert!(c.load_word(0x40, &mut mem).is_err());
    }

    #[test]
    fn secded_bitline_multiplier() {
        assert_eq!(
            SecdedCache::new(geo(), true, ReplacementPolicy::Lru).bitline_multiplier(),
            8.0
        );
        assert_eq!(
            SecdedCache::new(geo(), false, ReplacementPolicy::Lru).bitline_multiplier(),
            1.0
        );
    }

    // ---------------- Block SECDED ----------------

    #[test]
    fn block_secded_roundtrip_and_correction() {
        let mut mem = MainMemory::new();
        let mut c = BlockSecdedCache::new(geo(), ReplacementPolicy::Lru);
        c.store_word(0x40, 0xFEED, &mut mem).unwrap();
        c.store_word(0x48, 0xBEEF, &mut mem).unwrap();
        let row = c.layout().row_of(geo().set_index(0x40), 0, 1);
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 30 }]));
        assert_eq!(c.load_word(0x48, &mut mem).unwrap(), 0xBEEF);
        assert_eq!(c.corrected(), 1);
    }

    #[test]
    fn block_secded_double_bit_anywhere_in_block_is_due() {
        // The enlarged codeword's weakness: two flips anywhere in the
        // 256-bit block are fatal, even in *different words*.
        let mut mem = MainMemory::new();
        let mut c = BlockSecdedCache::new(geo(), ReplacementPolicy::Lru);
        c.store_word(0x40, 1, &mut mem).unwrap();
        let set = geo().set_index(0x40);
        c.inject(&FaultPattern::new(vec![
            BitFlip {
                row: c.layout().row_of(set, 0, 0),
                col: 3,
            },
            BitFlip {
                row: c.layout().row_of(set, 0, 2),
                col: 9,
            },
        ]));
        assert_eq!(
            c.load_word(0x40, &mut mem),
            Err(UnrecoverableFault::DoubleBitError)
        );
    }

    #[test]
    fn block_secded_counts_rmw() {
        let mut mem = MainMemory::new();
        let mut c = BlockSecdedCache::new(geo(), ReplacementPolicy::Lru);
        c.store_word(0x40, 1, &mut mem).unwrap(); // partial: RMW
        assert_eq!(c.rmw_reads(), 1);
        c.write_block(0x80, &[1, 2, 3, 4], 0b1111, &mut mem)
            .unwrap(); // full: free
        assert_eq!(c.rmw_reads(), 1);
        c.write_block(0x80, &[9, 9, 9, 9], 0b0011, &mut mem)
            .unwrap(); // partial
        assert_eq!(c.rmw_reads(), 2);
    }

    #[test]
    fn block_secded_check_storage_is_smaller() {
        // 10 bits per 32-byte block vs 32 bits for per-word SECDED.
        let code = cppc_ecc::secded_block::BlockSecded::new(4);
        assert!(code.check_bits() < 4 * 8 / 2);
    }

    // ---------------- Two-dimensional parity ----------------

    #[test]
    fn twodim_corrects_dirty_fault() {
        let mut mem = MainMemory::new();
        let mut c = TwoDimParityCache::new(geo(), 1, ReplacementPolicy::Lru);
        c.store_word(0x40, 0xBEEF, &mut mem);
        c.store_word(0x80, 0xCAFE, &mut mem);
        let row = c.layout().row_of(geo().set_index(0x40), 0, 0);
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 7 }]));
        assert_eq!(c.load_word(0x40, &mut mem).unwrap(), 0xBEEF);
        assert_eq!(c.corrected(), 1);
    }

    #[test]
    fn twodim_single_vertical_row_dies_on_two_faulty_rows() {
        let mut mem = MainMemory::new();
        let mut c = TwoDimParityCache::new(geo(), 1, ReplacementPolicy::Lru);
        c.store_word(0x40, 1, &mut mem);
        c.store_word(0x48, 2, &mut mem);
        let set = geo().set_index(0x40);
        let r0 = c.layout().row_of(set, 0, 0);
        let r1 = c.layout().row_of(set, 0, 1);
        c.inject(&FaultPattern::new(vec![
            BitFlip { row: r0, col: 0 },
            BitFlip { row: r1, col: 0 },
        ]));
        assert_eq!(
            c.load_word(0x40, &mut mem),
            Err(UnrecoverableFault::MultipleRowsInGroup)
        );
    }

    #[test]
    fn twodim_eight_rows_survive_vertical_stripe() {
        let mut mem = MainMemory::new();
        let mut c = TwoDimParityCache::new(geo(), 8, ReplacementPolicy::Lru);
        for i in 0..8u64 {
            c.store_word(0x40 + i * 8, 100 + i, &mut mem);
        }
        let set = geo().set_index(0x40);
        // rows of words 0..3 of two consecutive blocks in the same way:
        let flips: Vec<BitFlip> = (0..8)
            .map(|i| BitFlip {
                row: c.layout().row_of(set + i / 4, 0, i % 4),
                col: 5,
            })
            .collect();
        c.inject(&FaultPattern::new(flips));
        for i in 0..8u64 {
            assert_eq!(c.load_word(0x40 + i * 8, &mut mem).unwrap(), 100 + i);
        }
    }

    #[test]
    fn twodim_counts_read_before_writes() {
        let mut mem = MainMemory::new();
        let mut c = TwoDimParityCache::new(geo(), 1, ReplacementPolicy::Lru);
        c.store_word(0x40, 1, &mut mem); // miss: 4-word fill RBW + 1 store RBW
        assert_eq!(c.read_before_writes(), 5);
        c.store_word(0x40, 2, &mut mem); // hit: 1 store RBW
        assert_eq!(c.read_before_writes(), 6);
    }

    #[test]
    fn twodim_vertical_survives_eviction_traffic() {
        let mut mem = MainMemory::new();
        let mut c = TwoDimParityCache::new(geo(), 1, ReplacementPolicy::Lru);
        // Cycle many blocks through one set to exercise fill/evict parity
        // maintenance, then verify correction still works.
        for i in 0..20u64 {
            c.store_word(0x40 + i * 1024, i, &mut mem);
        }
        c.store_word(0x40, 0xAA, &mut mem);
        let (set, way) = (geo().set_index(0x40), {
            // find the way holding 0x40
            let mut found = 0;
            for w in 0..2 {
                if c.inner.block(geo().set_index(0x40), w).is_valid()
                    && c.inner.peek_word(0x40).is_some()
                {
                    found = w;
                    break;
                }
            }
            found
        });
        let _ = way;
        let (s, w) = c.inner.probe(0x40).unwrap();
        let row = c.layout().row_of(s, w, 0);
        let _ = set;
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 1 }]));
        assert_eq!(c.load_word(0x40, &mut mem).unwrap(), 0xAA);
    }
}
