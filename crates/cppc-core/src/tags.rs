//! CPPC-style protection for the cache *tag array* — the paper's §7
//! closing direction: "the approach used for data in CPPC can be
//! extended to cache tags. For the tags, the concept of dirty vs. clean
//! data does not exist. Read-before-write operations are not needed.
//! Tags are read-only until they are replaced."
//!
//! The scheme mirrors the data-side CPPC with the simplifications §7
//! anticipates:
//!
//! * every *valid* tag entry is in the protection domain (there is no
//!   clean/dirty split — a corrupted tag is dangerous regardless,
//!   because it can turn a hit into a miss or, worse, a false hit);
//! * R1 absorbs entries when they are written (allocation/replacement),
//!   R2 absorbs them when they leave (replacement/invalidation) — but
//!   since a tag is only written at fill time, there is never a
//!   read-before-write;
//! * `R1 ^ R2` equals the XOR of all valid entries, so a single faulty
//!   entry is reconstructed by XORing everything else into it.
//!
//! A tag entry is packed as `tag | state << 56` (56 tag bits is ample:
//! a 64-bit physical address minus offset and index bits), so the state
//! bits — valid, dirty mask, coherence state — are protected together
//! with the tag, as §7 suggests ("including state bits").

use cppc_ecc::interleaved::InterleavedParity;

use std::fmt;

/// Number of bits reserved for the tag proper.
pub const TAG_BITS: u32 = 56;

/// A detected-but-unrecoverable tag fault (more than one entry faulty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagDue {
    /// How many entries failed their parity check.
    pub faulty_entries: usize,
}

impl fmt::Display for TagDue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecoverable tag-array fault: {} entries faulty",
            self.faulty_entries
        )
    }
}

impl std::error::Error for TagDue {}

/// Packs a tag and its state bits into one protected entry.
///
/// # Panics
///
/// Panics if `tag` does not fit in [`TAG_BITS`].
#[must_use]
pub fn pack_entry(tag: u64, state: u8) -> u64 {
    assert!(
        tag < (1u64 << TAG_BITS),
        "tag {tag:#x} exceeds {TAG_BITS} bits"
    );
    tag | (u64::from(state) << TAG_BITS)
}

/// Unpacks an entry into `(tag, state)`.
#[must_use]
pub fn unpack_entry(entry: u64) -> (u64, u8) {
    (entry & ((1u64 << TAG_BITS) - 1), (entry >> TAG_BITS) as u8)
}

/// Statistics of the tag-array CPPC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagCppcStats {
    /// Parity detections on tag reads.
    pub detections: u64,
    /// Entries corrected by reconstruction.
    pub corrected: u64,
    /// Unrecoverable multi-entry faults.
    pub dues: u64,
}

/// A CPPC-protected tag array of `slots` entries (one per `(set, way)`).
///
/// # Example
///
/// ```
/// use cppc_core::tags::{pack_entry, TagCppc};
///
/// let mut tags = TagCppc::new(64, 8);
/// tags.allocate(3, pack_entry(0xAB, 0b01));
/// tags.flip_bit(3, 5); // particle strike on the tag SRAM
/// assert_eq!(tags.read(3), Some(Ok(pack_entry(0xAB, 0b01)))); // corrected
/// ```
#[derive(Debug, Clone)]
pub struct TagCppc {
    entries: Vec<Option<u64>>,
    parity: Vec<u64>,
    code: InterleavedParity,
    r1: u64,
    r2: u64,
    stats: TagCppcStats,
}

impl TagCppc {
    /// Creates a tag array of `slots` entries protected by
    /// `parity_ways`-way interleaved parity.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `parity_ways` does not divide 64.
    #[must_use]
    pub fn new(slots: usize, parity_ways: u32) -> Self {
        assert!(slots > 0, "tag array needs slots");
        TagCppc {
            entries: vec![None; slots],
            parity: vec![0; slots],
            code: InterleavedParity::new(parity_ways),
            r1: 0,
            r2: 0,
            stats: TagCppcStats::default(),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> &TagCppcStats {
        &self.stats
    }

    /// Writes a new entry into an *empty* slot (a fill into an invalid
    /// way). The entry is XORed into R1 — the only write the tag ever
    /// sees until replacement, hence no read-before-write (§7).
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or out of range.
    pub fn allocate(&mut self, slot: usize, entry: u64) {
        assert!(self.entries[slot].is_none(), "slot {slot} occupied");
        self.entries[slot] = Some(entry);
        self.parity[slot] = self.code.encode(entry);
        self.r1 ^= entry;
    }

    /// Replaces the entry in an occupied slot: the outgoing entry moves
    /// into R2, the incoming one into R1. The outgoing entry was just
    /// read by the lookup that triggered the replacement, so its parity
    /// is checked (and a fault recovered) before it can poison R2.
    ///
    /// # Errors
    ///
    /// Returns [`TagDue`] if the outgoing entry is faulty beyond repair.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or out of range.
    pub fn replace(&mut self, slot: usize, entry: u64) -> Result<(), TagDue> {
        let old = self.checked_outgoing(slot)?;
        self.r2 ^= old;
        self.entries[slot] = Some(entry);
        self.parity[slot] = self.code.encode(entry);
        self.r1 ^= entry;
        Ok(())
    }

    /// Invalidates a slot; the outgoing entry moves into R2 (parity
    /// checked first, as in [`TagCppc::replace`]).
    ///
    /// # Errors
    ///
    /// Returns [`TagDue`] if the outgoing entry is faulty beyond repair.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or out of range.
    pub fn invalidate(&mut self, slot: usize) -> Result<(), TagDue> {
        let old = self.checked_outgoing(slot)?;
        self.r2 ^= old;
        self.entries[slot] = None;
        Ok(())
    }

    /// Reads the outgoing entry of `slot`, recovering it first if its
    /// parity fails.
    fn checked_outgoing(&mut self, slot: usize) -> Result<u64, TagDue> {
        let old = self.entries[slot].expect("slot must be occupied");
        if self.code.syndrome(old, self.parity[slot]) == 0 {
            return Ok(old);
        }
        self.stats.detections += 1;
        self.recover(slot)
    }

    /// Reads a slot, checking parity and reconstructing a faulty entry
    /// from `R1 ^ R2 ^ (all other valid entries)`.
    ///
    /// Returns `None` for invalid (empty) slots.
    ///
    /// # Errors
    ///
    /// Returns [`TagDue`] when more than one entry is faulty — the tag
    /// array has a single register pair, so its correction granularity
    /// is one entry.
    pub fn read(&mut self, slot: usize) -> Option<Result<u64, TagDue>> {
        let entry = self.entries[slot]?;
        if self.code.syndrome(entry, self.parity[slot]) == 0 {
            return Some(Ok(entry));
        }
        self.stats.detections += 1;
        Some(self.recover(slot))
    }

    fn recover(&mut self, faulty_slot: usize) -> Result<u64, TagDue> {
        // Scan for additional faults first (§4.4 step 1's check).
        let faulty: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                e.filter(|&v| self.code.syndrome(v, self.parity[i]) != 0)
                    .map(|_| i)
            })
            .collect();
        if faulty.len() > 1 {
            self.stats.dues += 1;
            return Err(TagDue {
                faulty_entries: faulty.len(),
            });
        }
        debug_assert_eq!(faulty, vec![faulty_slot]);

        let mut acc = self.r1 ^ self.r2;
        for (i, e) in self.entries.iter().enumerate() {
            if i != faulty_slot {
                if let Some(v) = e {
                    acc ^= v;
                }
            }
        }
        self.entries[faulty_slot] = Some(acc);
        self.parity[faulty_slot] = self.code.encode(acc);
        self.stats.corrected += 1;
        Ok(acc)
    }

    /// Raw entry access without parity checking — bookkeeping only
    /// (shadow reconciliation), never the lookup path.
    #[must_use]
    pub fn entry_unchecked(&self, slot: usize) -> Option<u64> {
        self.entries[slot]
    }

    /// Flips one bit of a stored entry — fault injection.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty/out of range or `bit >= 64`.
    pub fn flip_bit(&mut self, slot: usize, bit: u32) {
        assert!(bit < 64, "bit {bit} out of range");
        let e = self.entries[slot].expect("slot must be occupied");
        self.entries[slot] = Some(e ^ (1u64 << bit));
    }

    /// The defining invariant: `R1 ^ R2` equals the XOR of all valid
    /// entries.
    #[must_use]
    pub fn verify_invariant(&self) -> bool {
        let expect = self.entries.iter().flatten().fold(0u64, |a, &e| a ^ e);
        self.r1 ^ self.r2 == expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};

    #[test]
    fn pack_unpack_roundtrip() {
        let e = pack_entry(0xAB_CDEF, 0b1010_0001);
        assert_eq!(unpack_entry(e), (0xAB_CDEF, 0b1010_0001));
    }

    #[test]
    #[should_panic(expected = "exceeds 56 bits")]
    fn oversized_tag_panics() {
        let _ = pack_entry(1u64 << 56, 0);
    }

    #[test]
    fn allocate_read() {
        let mut t = TagCppc::new(16, 8);
        t.allocate(5, pack_entry(0x123, 1));
        assert_eq!(t.read(5), Some(Ok(pack_entry(0x123, 1))));
        assert_eq!(t.read(6), None);
        assert!(t.verify_invariant());
    }

    #[test]
    fn corrects_single_bit_anywhere() {
        let mut t = TagCppc::new(8, 8);
        for slot in 0..8 {
            t.allocate(slot, pack_entry(0x100 + slot as u64, slot as u8));
        }
        for slot in 0..8 {
            for bit in [0u32, 17, 55, 57, 63] {
                t.flip_bit(slot, bit);
                let got = t.read(slot).unwrap().unwrap();
                assert_eq!(
                    got,
                    pack_entry(0x100 + slot as u64, slot as u8),
                    "slot {slot} bit {bit}"
                );
                assert!(t.verify_invariant());
            }
        }
    }

    #[test]
    fn state_bits_protected_too() {
        // §7: "including state bits" — flip inside the state byte.
        let mut t = TagCppc::new(4, 8);
        t.allocate(0, pack_entry(0x42, 0b11));
        t.flip_bit(0, TAG_BITS + 1);
        let (tag, state) = unpack_entry(t.read(0).unwrap().unwrap());
        assert_eq!((tag, state), (0x42, 0b11));
    }

    #[test]
    fn replace_and_invalidate_maintain_invariant() {
        let mut t = TagCppc::new(8, 8);
        t.allocate(0, pack_entry(1, 0));
        t.allocate(1, pack_entry(2, 0));
        t.replace(0, pack_entry(3, 1)).unwrap();
        assert!(t.verify_invariant());
        t.invalidate(1).unwrap();
        assert!(t.verify_invariant());
        // Correction still works after churn.
        t.flip_bit(0, 9);
        assert_eq!(t.read(0).unwrap().unwrap(), pack_entry(3, 1));
    }

    #[test]
    fn two_faulty_entries_are_due() {
        let mut t = TagCppc::new(8, 8);
        t.allocate(0, pack_entry(7, 0));
        t.allocate(1, pack_entry(8, 0));
        t.flip_bit(0, 3);
        t.flip_bit(1, 3);
        assert_eq!(t.read(0), Some(Err(TagDue { faulty_entries: 2 })));
        assert_eq!(t.stats().dues, 1);
    }

    #[test]
    fn randomized_churn_and_recovery() {
        let mut rng = StdRng::seed_from_u64(0x7A6);
        let mut t = TagCppc::new(64, 8);
        let mut shadow: Vec<Option<u64>> = vec![None; 64];
        for _ in 0..5_000 {
            let slot = rng.random_range(0..64);
            match shadow[slot] {
                None => {
                    let e = pack_entry(rng.random_range(0..1u64 << 56), rng.random());
                    t.allocate(slot, e);
                    shadow[slot] = Some(e);
                }
                Some(old) => {
                    if rng.random_bool(0.3) {
                        t.invalidate(slot).unwrap();
                        shadow[slot] = None;
                    } else if rng.random_bool(0.5) {
                        let e = pack_entry(rng.random_range(0..1u64 << 56), rng.random());
                        t.replace(slot, e).unwrap();
                        shadow[slot] = Some(e);
                    } else {
                        // occasional strike + read-back
                        t.flip_bit(slot, rng.random_range(0..64));
                        assert_eq!(t.read(slot), Some(Ok(old)));
                    }
                }
            }
            assert!(t.verify_invariant());
        }
    }

    #[test]
    fn corrupted_outgoing_entry_recovered_before_r2() {
        let mut t = TagCppc::new(8, 8);
        t.allocate(0, pack_entry(0xAA, 0));
        t.allocate(1, pack_entry(0xBB, 0));
        t.flip_bit(0, 2);
        // Replacing the corrupted entry must not poison R2.
        t.replace(0, pack_entry(0xCC, 0)).unwrap();
        assert!(t.verify_invariant());
        // …so entry 1 is still recoverable afterwards.
        t.flip_bit(1, 60);
        assert_eq!(t.read(1), Some(Ok(pack_entry(0xBB, 0))));
    }

    #[test]
    fn no_read_before_write_by_construction() {
        // The API simply has no read-modify-write path: allocate and
        // replace never read stored data (the compiler enforces §7's
        // observation). This test documents the property.
        let mut t = TagCppc::new(2, 8);
        t.allocate(0, pack_entry(1, 0));
        t.replace(0, pack_entry(2, 0)).unwrap(); // old value comes from the array
                                                 // bookkeeping, not a data read
        assert_eq!(t.read(0), Some(Ok(pack_entry(2, 0))));
    }
}
