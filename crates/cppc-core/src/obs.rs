//! Global observability for the CPPC core.
//!
//! Publishes register-file activity and recovery outcomes into the
//! process-wide `cppc-obs` registry, and traces each recovery walk /
//! fault injection into the bounded event ring so a campaign failure
//! can be reconstructed after the fact. Per-instance
//! [`CppcStats`](crate::cache::CppcStats) bundles are unaffected.

cppc_obs::metrics! {
    group CPPC_METRICS: "cppc", "CPPC core: R1/R2 register updates, fault detection and the recovery engine.";
    counter R1_UPDATES: "cppc.r1_updates", "events", "XOR updates absorbed into R1 — dirty data entering the cache.";
    counter R2_UPDATES: "cppc.r2_updates", "events", "XOR updates absorbed into R2 — dirty data leaving the cache.";
    counter FAULTS_INJECTED: "cppc.faults_injected", "bits", "Fault-pattern bits actually applied to resident blocks.";
    counter RECOVERY_WALKS: "cppc.recovery.walks", "events", "Whole-cache recovery scans started (paper section 4.4).";
    counter DETECTIONS: "cppc.recovery.detections", "events", "Parity violations found by recovery scans.";
    counter CORRECTED_CLEAN: "cppc.recovery.corrected_clean", "events", "Faulty clean words repaired by re-fetching from below.";
    counter CORRECTED_DIRTY: "cppc.recovery.corrected_dirty", "events", "Faulty dirty words rebuilt from the XOR registers.";
    counter VIA_LOCATOR: "cppc.recovery.via_locator", "events", "Dirty repairs that needed the spatial fault locator.";
    counter DUES: "cppc.recovery.dues", "events", "Detected-but-unrecoverable recovery outcomes.";
    timer RECOVERY_WALK: "cppc.recovery.walk.ns", "ns", "Wall time of each whole-cache recovery scan.";
}

/// Registers the CPPC metric group and the protection-scheme zoo
/// group (idempotent).
pub fn register_metrics() {
    CPPC_METRICS.register();
    crate::scheme::register_metrics();
}
