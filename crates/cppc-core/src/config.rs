//! CPPC configuration.

use std::fmt;

/// How many rotation classes the byte-shifting design uses (paper §4.3:
/// eight classes, selected by three bits of the store address, matching
/// the 8-way interleaved parity and the 8x8 correctable square).
pub const ROTATION_CLASSES: usize = 8;

/// Error returned for inconsistent CPPC configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Parity ways must divide 64.
    BadParityWays(u32),
    /// Register pair count must be 1, 2, 4 or 8.
    BadRegisterPairs(usize),
    /// Byte shifting requires 8-way interleaved parity (the shifter works
    /// at byte granularity, one byte per parity group).
    ShiftingNeedsByteParity(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadParityWays(w) => {
                write!(f, "parity ways must divide 64, got {w}")
            }
            ConfigError::BadRegisterPairs(p) => {
                write!(f, "register pairs must be 1, 2, 4 or 8, got {p}")
            }
            ConfigError::ShiftingNeedsByteParity(w) => {
                write!(
                    f,
                    "byte shifting requires 8-way interleaved parity, got {w}-way"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a CPPC instance.
///
/// The paper's evaluated design (§6) is [`CppcConfig::paper`]: 8-way
/// interleaved parity, one register pair, byte shifting enabled. The
/// §4.11 all-registers variant is [`CppcConfig::eight_pairs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CppcConfig {
    /// `k`-way interleaved parity per word (1 = plain word parity).
    pub parity_ways: u32,
    /// Number of (R1, R2) register pairs: 1, 2, 4 or 8. Pairs are
    /// interleaved across rotation classes (§4.6/§4.11): with `p` pairs,
    /// classes `[i*8/p, (i+1)*8/p)` belong to pair `i`.
    pub register_pairs: usize,
    /// Whether the barrel byte-shifter rotates data before XORing into
    /// the registers (§4.3). Disabled in the 8-pair design (§4.11).
    pub byte_shifting: bool,
}

impl CppcConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid parameter combinations.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.parity_ways == 0 || 64 % self.parity_ways != 0 {
            return Err(ConfigError::BadParityWays(self.parity_ways));
        }
        if ![1, 2, 4, 8].contains(&self.register_pairs) {
            return Err(ConfigError::BadRegisterPairs(self.register_pairs));
        }
        if self.byte_shifting && self.parity_ways != 8 {
            return Err(ConfigError::ShiftingNeedsByteParity(self.parity_ways));
        }
        Ok(())
    }

    /// The basic CPPC of §3: one parity bit per word, one register pair,
    /// no byte shifting. Corrects temporal single-bit faults in dirty
    /// words; no spatial-MBE correction.
    #[must_use]
    pub fn basic() -> Self {
        CppcConfig {
            parity_ways: 1,
            register_pairs: 1,
            byte_shifting: false,
        }
    }

    /// The paper's evaluated configuration (§6): 8 interleaved parity
    /// bits per word, two registers (one pair), byte shifting.
    #[must_use]
    pub fn paper() -> Self {
        CppcConfig {
            parity_ways: 8,
            register_pairs: 1,
            byte_shifting: true,
        }
    }

    /// Two register pairs + byte shifting (§4.6): closes the full-8x8 and
    /// distance-4 ambiguities of the single-pair design.
    #[must_use]
    pub fn two_pairs() -> Self {
        CppcConfig {
            parity_ways: 8,
            register_pairs: 2,
            byte_shifting: true,
        }
    }

    /// Eight register pairs, no byte shifting (§4.11): every rotation
    /// class has a private pair, all spatial MBEs in an 8x8 square are
    /// correctable, and temporal-alias miscorrection is eliminated.
    #[must_use]
    pub fn eight_pairs() -> Self {
        CppcConfig {
            parity_ways: 8,
            register_pairs: 8,
            byte_shifting: false,
        }
    }

    /// The register pair that protects rotation class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= ROTATION_CLASSES`.
    #[must_use]
    pub fn pair_of_class(&self, class: usize) -> usize {
        assert!(class < ROTATION_CLASSES, "class {class} out of range");
        class / (ROTATION_CLASSES / self.register_pairs)
    }

    /// The byte-rotation amount applied to data of rotation class
    /// `class` before XORing into its registers (0 when byte shifting is
    /// disabled).
    ///
    /// # Panics
    ///
    /// Panics if `class >= ROTATION_CLASSES`.
    #[must_use]
    pub fn rotation_of_class(&self, class: usize) -> u32 {
        assert!(class < ROTATION_CLASSES, "class {class} out of range");
        if self.byte_shifting {
            class as u32
        } else {
            0
        }
    }
}

impl Default for CppcConfig {
    fn default() -> Self {
        CppcConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in [
            CppcConfig::basic(),
            CppcConfig::paper(),
            CppcConfig::two_pairs(),
            CppcConfig::eight_pairs(),
        ] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn rejects_bad_parity_ways() {
        let c = CppcConfig {
            parity_ways: 7,
            ..CppcConfig::basic()
        };
        assert_eq!(c.validate(), Err(ConfigError::BadParityWays(7)));
    }

    #[test]
    fn rejects_bad_pairs() {
        let c = CppcConfig {
            register_pairs: 3,
            ..CppcConfig::paper()
        };
        assert_eq!(c.validate(), Err(ConfigError::BadRegisterPairs(3)));
    }

    #[test]
    fn rejects_shifting_without_byte_parity() {
        let c = CppcConfig {
            parity_ways: 1,
            byte_shifting: true,
            register_pairs: 1,
        };
        assert_eq!(c.validate(), Err(ConfigError::ShiftingNeedsByteParity(1)));
    }

    #[test]
    fn pair_assignment_single_pair() {
        let c = CppcConfig::paper();
        for class in 0..8 {
            assert_eq!(c.pair_of_class(class), 0);
        }
    }

    #[test]
    fn pair_assignment_two_pairs_splits_at_four() {
        // §4.6: classes 0-3 on one pair, classes 4-7 on the other.
        let c = CppcConfig::two_pairs();
        for class in 0..4 {
            assert_eq!(c.pair_of_class(class), 0);
        }
        for class in 4..8 {
            assert_eq!(c.pair_of_class(class), 1);
        }
    }

    #[test]
    fn pair_assignment_eight_pairs_is_identity() {
        let c = CppcConfig::eight_pairs();
        for class in 0..8 {
            assert_eq!(c.pair_of_class(class), class);
        }
    }

    #[test]
    fn rotation_follows_class_when_enabled() {
        let c = CppcConfig::paper();
        for class in 0..8 {
            assert_eq!(c.rotation_of_class(class), class as u32);
        }
        let c = CppcConfig::eight_pairs();
        for class in 0..8 {
            assert_eq!(c.rotation_of_class(class), 0, "no shifter in 8-pair design");
        }
    }

    #[test]
    fn error_display() {
        assert!(ConfigError::BadParityWays(7)
            .to_string()
            .contains("divide 64"));
        assert!(ConfigError::BadRegisterPairs(3)
            .to_string()
            .contains("1, 2, 4 or 8"));
        assert!(ConfigError::ShiftingNeedsByteParity(1)
            .to_string()
            .contains("8-way"));
    }
}
