//! In-Cache Replication (ICR), the related-work baseline of \[24\]
//! (Zhang et al., DSN 2003) the paper contrasts CPPC against in §2:
//! *"cache lines that have not been accessed for a long time are
//! allocated to replicas of dirty blocks. ICR essentially trades off
//! reduced effective cache size for better reliability. Thus the miss
//! rate of the cache may be higher or, alternatively, dirty blocks may
//! be left unprotected."*
//!
//! This model makes the trade explicit: half the capacity serves as the
//! data cache, the other half is a replica store for dirty blocks. When
//! the replica store overflows, the oldest replica is dropped and its
//! dirty block runs unprotected — exactly the failure mode the paper
//! points at. Parity detects; a faulty dirty word recovers from its
//! replica if one survives.

use cppc_cache_sim::cache::{Backing, Cache};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::stats::CacheStats;
use cppc_ecc::interleaved::InterleavedParity;
use cppc_fault::layout::PhysicalLayout;
use cppc_fault::model::FaultPattern;

use crate::baselines::UnrecoverableFault;

/// ICR statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcrStats {
    /// Replica words written (each costs a cache write of energy).
    pub replica_writes: u64,
    /// Dirty blocks whose replica was dropped for capacity — left
    /// unprotected.
    pub unprotected_evictions: u64,
    /// Words recovered from a replica.
    pub recovered: u64,
    /// Faults in dirty data with no surviving replica.
    pub dues: u64,
}

/// An ICR-protected write-back cache: the nominal capacity is split in
/// half between data and replicas.
#[derive(Debug, Clone)]
pub struct IcrCache {
    inner: Cache,
    parity: Vec<u64>,
    code: InterleavedParity,
    layout: PhysicalLayout,
    /// FIFO of `(block_base, words)` replicas of dirty blocks.
    replicas: Vec<(u64, Vec<u64>)>,
    replica_capacity: usize,
    stats: IcrStats,
}

impl IcrCache {
    /// Creates an ICR cache of *nominal* `geo` capacity: the data side
    /// gets half the sets, the replica store gets the other half.
    ///
    /// # Panics
    ///
    /// Panics if the geometry cannot be halved (fewer than 2 sets).
    #[must_use]
    pub fn new(geo: CacheGeometry, parity_ways: u32, policy: ReplacementPolicy) -> Self {
        assert!(geo.num_sets() >= 2, "cannot halve a single-set cache");
        let half = CacheGeometry::new(geo.size_bytes() / 2, geo.associativity(), geo.block_bytes())
            .expect("halved geometry is valid");
        let layout = PhysicalLayout::new(
            half.num_sets(),
            half.associativity(),
            half.words_per_block(),
        );
        // The replica store competes with ordinary data for its half of
        // the cache; model its usable share as half of that half (the
        // [24] "dead block" supply is limited), so heavy write sets
        // overflow it and leave dirty blocks unprotected.
        let replica_capacity = geo.size_bytes() / 4 / geo.block_bytes();
        IcrCache {
            inner: Cache::new(half, policy),
            parity: vec![0; layout.num_rows()],
            code: InterleavedParity::new(parity_ways),
            layout,
            replicas: Vec::new(),
            replica_capacity,
            stats: IcrStats::default(),
        }
    }

    /// Generic cache statistics (of the halved data side — its miss
    /// rate is the scheme's capacity penalty).
    #[must_use]
    pub fn cache_stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// ICR-specific statistics.
    #[must_use]
    pub fn stats(&self) -> &IcrStats {
        &self.stats
    }

    /// The physical layout of the data side (for fault targeting).
    #[must_use]
    pub fn layout(&self) -> &PhysicalLayout {
        &self.layout
    }

    fn refresh_parity(&mut self, set: usize, way: usize, w: usize) {
        let row = self.layout.row_of(set, way, w);
        self.parity[row] = self.code.encode(self.inner.block(set, way).word(w));
    }

    fn replica_of(&self, base: u64) -> Option<&Vec<u64>> {
        self.replicas
            .iter()
            .find(|(b, _)| *b == base)
            .map(|(_, w)| w)
    }

    fn upsert_replica(&mut self, base: u64, words: Vec<u64>) {
        self.stats.replica_writes += words.len() as u64;
        if let Some(entry) = self.replicas.iter_mut().find(|(b, _)| *b == base) {
            entry.1 = words;
            return;
        }
        if self.replicas.len() == self.replica_capacity {
            self.replicas.remove(0);
            self.stats.unprotected_evictions += 1;
        }
        self.replicas.push((base, words));
    }

    fn drop_replica(&mut self, base: u64) {
        self.replicas.retain(|(b, _)| *b != base);
    }

    fn ensure_resident<B: Backing>(
        &mut self,
        addr: u64,
        is_store: bool,
        backing: &mut B,
    ) -> (usize, usize) {
        if let Some((set, way)) = self.inner.probe(addr) {
            self.inner.record_access(is_store, true);
            self.inner.touch(set, way);
            return (set, way);
        }
        self.inner.record_access(is_store, false);
        let set = self.inner.geometry().set_index(addr);
        let way = self.inner.choose_way_for_fill(set);
        // The evicted block's replica (if any) is obsolete once the
        // write-back lands below.
        if self.inner.block(set, way).is_valid() {
            let base = self.inner.block_address(set, way);
            self.drop_replica(base);
        }
        let _ = self.inner.fill_into(addr, way, backing);
        for w in 0..self.inner.geometry().words_per_block() {
            self.refresh_parity(set, way, w);
        }
        (set, way)
    }

    /// Loads a word; a faulty clean word re-fetches, a faulty dirty
    /// word recovers from its replica.
    ///
    /// # Errors
    ///
    /// Returns [`UnrecoverableFault::DirtyParityFault`] when a dirty
    /// word is faulty and its replica was dropped.
    pub fn load_word<B: Backing>(
        &mut self,
        addr: u64,
        backing: &mut B,
    ) -> Result<u64, UnrecoverableFault> {
        let (set, way) = self.ensure_resident(addr, false, backing);
        let w = self.inner.geometry().word_index(addr);
        let row = self.layout.row_of(set, way, w);
        let value = self.inner.block(set, way).word(w);
        if self.code.syndrome(value, self.parity[row]) == 0 {
            return Ok(value);
        }
        if !self.inner.block(set, way).is_word_dirty(w) {
            let base = self.inner.block_address(set, way);
            let data = backing.fetch_block(base, self.inner.geometry().words_per_block());
            self.inner.block_mut(set, way).patch_word(w, data[w]);
            self.refresh_parity(set, way, w);
            return Ok(data[w]);
        }
        let base = self.inner.block_address(set, way);
        let Some(replica) = self.replica_of(base).cloned() else {
            self.stats.dues += 1;
            return Err(UnrecoverableFault::DirtyParityFault);
        };
        let good = replica[w];
        self.inner.block_mut(set, way).patch_word(w, good);
        self.refresh_parity(set, way, w);
        self.stats.recovered += 1;
        Ok(good)
    }

    /// Stores a word: the data write plus the replica write — ICR's
    /// doubled write energy.
    pub fn store_word<B: Backing>(&mut self, addr: u64, value: u64, backing: &mut B) {
        let (set, way) = self.ensure_resident(addr, true, backing);
        let w = self.inner.geometry().word_index(addr);
        self.inner.store_word_in_place(set, way, w, value);
        self.refresh_parity(set, way, w);
        let base = self.inner.block_address(set, way);
        let words = self.inner.block(set, way).words().to_vec();
        self.upsert_replica(base, words);
    }

    /// Stores one byte: data write plus replica refresh.
    pub fn store_byte<B: Backing>(&mut self, addr: u64, value: u8, backing: &mut B) {
        let (set, way) = self.ensure_resident(addr, true, backing);
        let w = self.inner.geometry().word_index(addr);
        let byte = self.inner.geometry().byte_in_word(addr);
        self.inner.store_byte_in_place(set, way, w, byte, value);
        self.refresh_parity(set, way, w);
        let base = self.inner.block_address(set, way);
        let words = self.inner.block(set, way).words().to_vec();
        self.upsert_replica(base, words);
    }

    /// Applies a fault pattern to the data side; returns bits flipped.
    pub fn inject(&mut self, pattern: &FaultPattern) -> usize {
        let mut applied = 0;
        for flip in pattern.flips() {
            let (set, way, word) = self.layout.location_of(flip.row);
            if self.inner.block(set, way).is_valid() {
                self.inner.block_mut(set, way).flip_bit(word, flip.col);
                applied += 1;
            }
        }
        applied
    }

    /// Reads a resident word without side effects.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> Option<u64> {
        self.inner.peek_word(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_cache_sim::memory::MainMemory;
    use cppc_fault::model::BitFlip;

    fn build() -> (IcrCache, MainMemory) {
        (
            IcrCache::new(
                CacheGeometry::new(2048, 2, 32).unwrap(),
                8,
                ReplacementPolicy::Lru,
            ),
            MainMemory::new(),
        )
    }

    #[test]
    fn recovers_dirty_fault_from_replica() {
        let (mut c, mut m) = build();
        c.store_word(0x40, 0xABCD, &mut m);
        let (set, way) = (c.inner.geometry().set_index(0x40), 0);
        let row = c.layout().row_of(set, way, 0);
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 5 }]));
        assert_eq!(c.load_word(0x40, &mut m).unwrap(), 0xABCD);
        assert_eq!(c.stats().recovered, 1);
    }

    #[test]
    fn dropped_replica_means_due() {
        let (mut c, mut m) = build();
        // 20 dirty blocks fit the 32-block data side but overflow the
        // 16-block replica store.
        for i in 0..20u64 {
            c.store_word(i * 32, i, &mut m);
        }
        assert!(c.stats().unprotected_evictions > 0);
        // Block 0 is still resident but its replica is gone.
        let (set, way) = c.inner.probe(0).expect("block 0 resident");
        let row = c.layout().row_of(set, way, 0);
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 0 }]));
        assert_eq!(
            c.load_word(0, &mut m),
            Err(UnrecoverableFault::DirtyParityFault)
        );
        assert_eq!(c.stats().dues, 1);
    }

    #[test]
    fn halved_capacity_hurts_miss_rate() {
        // The §2 critique quantified: same nominal size, higher misses.
        use cppc_cache_sim::Cache;
        let geo = CacheGeometry::new(2048, 2, 32).unwrap();
        let mut icr = IcrCache::new(geo, 8, ReplacementPolicy::Lru);
        let mut full = Cache::new(geo, ReplacementPolicy::Lru);
        let (mut m1, mut m2) = (MainMemory::new(), MainMemory::new());
        // Working set that fits 2KB but not 1KB.
        for round in 0..20 {
            let _ = round;
            for i in 0..48u64 {
                let _ = icr.load_word(i * 32, &mut m1);
                let _ = full.load_word(i * 32, &mut m2);
            }
        }
        assert!(
            icr.cache_stats().miss_rate() > 1.5 * full.stats().miss_rate(),
            "ICR {} vs full {}",
            icr.cache_stats().miss_rate(),
            full.stats().miss_rate()
        );
    }

    #[test]
    fn replica_writes_double_store_energy() {
        let (mut c, mut m) = build();
        c.store_word(0x40, 1, &mut m);
        c.store_word(0x40, 2, &mut m);
        assert!(c.stats().replica_writes >= 8, "whole-block replica writes");
    }

    #[test]
    fn clean_fault_refetches() {
        let (mut c, mut m) = build();
        m.write_word(0x40, 77);
        assert_eq!(c.load_word(0x40, &mut m).unwrap(), 77);
        let (set, way) = c.inner.probe(0x40).unwrap();
        let row = c.layout().row_of(set, way, 0);
        c.inject(&FaultPattern::new(vec![BitFlip { row, col: 9 }]));
        assert_eq!(c.load_word(0x40, &mut m).unwrap(), 77);
    }

    #[test]
    fn eviction_drops_replica() {
        let (mut c, mut m) = build();
        c.store_word(0x40, 5, &mut m);
        // Evict by filling the set (halved cache: 16 sets, stride 512).
        let _ = c.load_word(0x40 + 512, &mut m);
        let _ = c.load_word(0x40 + 1024, &mut m);
        assert_eq!(m.peek_word(0x40), 5, "written back");
        assert!(c.replica_of(0x40).is_none(), "replica dropped on eviction");
    }
}
