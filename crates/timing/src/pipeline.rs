//! A structural, cycle-counting pipeline model — the detailed
//! cross-check of the closed-form CPI model in [`crate::model`].
//!
//! Where the analytical model prices read-before-write conflicts with a
//! constant utilisation × slack factor, this model tracks the actual
//! machine state op by op: a store buffer of bounded depth draining
//! into the write port, read-before-write drains competing with loads
//! for the read port, idle read-port slots accumulating between memory
//! operations (the §3.1 "cycle stealing" supply), and speculative-load
//! replays when a conflict slips through. Everything is deterministic —
//! conflicts escalate to replays on a fixed modulus rather than a coin
//! flip — so results are exactly reproducible.

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::hierarchy::{MemOp, TwoLevelHierarchy};
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_workloads::{BenchmarkProfile, TraceGenerator};

use crate::config::MachineConfig;
use crate::model::L1Scheme;

/// Cycle breakdown from a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineResult {
    /// Total simulated cycles.
    pub cycles: f64,
    /// Instructions represented by the trace.
    pub instructions: f64,
    /// Cycles lost waiting for cache misses.
    pub miss_stall_cycles: f64,
    /// Cycles loads lost to read-port conflicts with read-before-writes.
    pub conflict_cycles: f64,
    /// Cycles lost to speculative-load replays.
    pub replay_cycles: f64,
    /// Cycles lost to a full store buffer.
    pub store_buffer_stall_cycles: f64,
    /// Read-before-write drains that found a stolen (idle) read slot.
    pub stolen_slots: u64,
    /// Drains that collided with a load.
    pub conflicts: u64,
}

impl PipelineResult {
    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.cycles / self.instructions
    }
}

/// The structural pipeline model.
#[derive(Debug, Clone, Copy)]
pub struct PipelineModel {
    machine: MachineConfig,
    store_buffer_depth: u32,
    replay_modulus: u64,
    replay_cycles: f64,
}

impl PipelineModel {
    /// Creates the model. The store buffer depth follows the LSQ budget
    /// (half the Table 1 LSQ); every `replay_modulus`-th conflict
    /// escalates to a 4-cycle replay (§3.1's "costly replays").
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        PipelineModel {
            machine,
            store_buffer_depth: machine.lsq_size / 2,
            replay_modulus: 7,
            replay_cycles: 4.0,
        }
    }

    /// Runs `memops` operations of `profile` under `scheme`, counting
    /// cycles structurally.
    ///
    /// # Panics
    ///
    /// Panics if the machine's geometries are invalid.
    #[must_use]
    pub fn simulate(
        &self,
        profile: &BenchmarkProfile,
        scheme: L1Scheme,
        memops: usize,
        seed: u64,
    ) -> PipelineResult {
        let l1_geo: CacheGeometry = self.machine.l1d.geometry().expect("valid L1");
        let l2_geo: CacheGeometry = self.machine.l2.geometry().expect("valid L2");
        let mut hierarchy = TwoLevelHierarchy::new(l1_geo, l2_geo, ReplacementPolicy::Lru);

        // Warm-up half the trace.
        let mut generator = TraceGenerator::new(profile, seed);
        hierarchy.run(generator.by_ref().take(memops / 2));

        let wpb = l1_geo.words_per_block() as f64;
        let mean_gap = profile.instructions_per_memop() * profile.base_cpi;
        let m = &self.machine;

        let mut result = PipelineResult {
            cycles: 0.0,
            instructions: memops as f64 * profile.instructions_per_memop(),
            miss_stall_cycles: 0.0,
            conflict_cycles: 0.0,
            replay_cycles: 0.0,
            store_buffer_stall_cycles: 0.0,
            stolen_slots: 0,
            conflicts: 0,
        };

        // Machine state. Time is `result.cycles`; the read port is
        // modelled as a "free from" timestamp for *eager* readers (2D
        // parity's uncoordinated read-before-writes), while CPPC's
        // coordinated drains consume a bounded supply of recently idle
        // read slots (the §3.1 cycle-stealing window).
        const IDLE_SLOT_CAP: f64 = 3.0;
        let mut idle_read_slots = 0.0f64;
        let mut pending_rbw = 0.0f64;
        let mut store_buffer = 0.0f64;
        let mut conflict_counter = 0u64;
        let mut read_port_free_at = 0.0f64;

        for (i, op) in generator.take(memops).enumerate() {
            // Bursty issue: a deterministic hash spreads gaps over
            // {0, 1, 2, 3} x mean/1.5, so back-to-back memory ops occur
            // (they are what create port conflicts) while the average
            // matches the profile's non-memory ILP.
            let burst = (i as u64).wrapping_mul(2_654_435_761) >> 7 & 3;
            let gap_cycles = mean_gap * burst as f64 / 1.5;
            result.cycles += gap_cycles;
            store_buffer = (store_buffer - gap_cycles).max(0.0);
            idle_read_slots = (idle_read_slots + gap_cycles).min(IDLE_SLOT_CAP);

            // Classify the access functionally *before* timing it.
            let addr = op.addr();
            let l1_hit = hierarchy.l1().probe(addr).is_some();
            let was_dirty = hierarchy
                .l1()
                .probe(addr)
                .map(|(s, w)| {
                    hierarchy
                        .l1()
                        .block(s, w)
                        .is_word_dirty(hierarchy.l1().geometry().word_index(addr))
                })
                .unwrap_or(false);
            let l2_hit = l1_hit || hierarchy.l2().probe(addr).is_some();
            hierarchy.step(op);

            // Scheme-specific read-before-write demand. CPPC's drains
            // are *coordinated*: they wait for idle read slots. 2D
            // parity's are *eager*: the read port is seized immediately
            // (one cycle per store, a whole line per fill).
            match scheme {
                L1Scheme::Cppc if op.is_store() && was_dirty && l1_hit => {
                    pending_rbw += 1.0;
                }
                L1Scheme::TwoDimParity => {
                    let mut hold = 0.0;
                    if op.is_store() {
                        hold += 1.0;
                    }
                    if !l1_hit {
                        hold += wpb; // the old line is read on every fill
                    }
                    if hold > 0.0 {
                        read_port_free_at = result.cycles.max(read_port_free_at) + hold;
                    }
                }
                _ => {}
            }

            // Serve coordinated drains from the stolen-slot supply.
            let served = pending_rbw.min(idle_read_slots);
            pending_rbw -= served;
            idle_read_slots -= served;
            result.stolen_slots += served as u64;

            result.cycles += 1.0; // issue slot of the memory op
            match op {
                MemOp::Load(_) => {
                    // An eager reader (2D parity) still holding the read
                    // port delays this load directly.
                    if result.cycles < read_port_free_at {
                        let wait = read_port_free_at - result.cycles;
                        result.conflicts += 1;
                        result.conflict_cycles += wait;
                        result.cycles = read_port_free_at;
                        conflict_counter += 1;
                        if conflict_counter.is_multiple_of(self.replay_modulus) {
                            result.replay_cycles += self.replay_cycles;
                            result.cycles += self.replay_cycles;
                        }
                    }
                    // A coordinated (CPPC) drain still pending collides.
                    if pending_rbw >= 1.0 {
                        pending_rbw -= 1.0;
                        result.conflicts += 1;
                        result.conflict_cycles += 1.0;
                        result.cycles += 1.0;
                        conflict_counter += 1;
                        if conflict_counter.is_multiple_of(self.replay_modulus) {
                            result.replay_cycles += self.replay_cycles;
                            result.cycles += self.replay_cycles;
                        }
                    }
                    if !l1_hit {
                        let stall = if l2_hit {
                            f64::from(m.l2.latency_cycles)
                        } else {
                            f64::from(m.l2.latency_cycles)
                                + f64::from(m.memory_latency_cycles) * (1.0 - m.mlp_overlap)
                        };
                        result.miss_stall_cycles += stall;
                        result.cycles += stall;
                        // A long stall is a drain bonanza.
                        store_buffer = (store_buffer - stall).max(0.0);
                        idle_read_slots = (idle_read_slots + stall).min(f64::from(m.lsq_size));
                    }
                }
                MemOp::Store(..) | MemOp::StoreByte(..) => {
                    store_buffer += 1.0;
                    if store_buffer > f64::from(self.store_buffer_depth) {
                        let stall = store_buffer - f64::from(self.store_buffer_depth);
                        result.store_buffer_stall_cycles += stall;
                        result.cycles += stall;
                        store_buffer = f64::from(self.store_buffer_depth);
                    }
                    if !l1_hit {
                        // Write-allocate fill latency, partially hidden.
                        let stall = if l2_hit {
                            f64::from(m.l2.latency_cycles) * 0.5
                        } else {
                            (f64::from(m.l2.latency_cycles)
                                + f64::from(m.memory_latency_cycles) * (1.0 - m.mlp_overlap))
                                * 0.5
                        };
                        result.miss_stall_cycles += stall;
                        result.cycles += stall;
                    }
                }
            }
        }
        result
    }
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel::new(MachineConfig::table1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_workloads::spec2000_profiles;

    const OPS: usize = 50_000;

    fn overheads(scheme: L1Scheme) -> Vec<f64> {
        let model = PipelineModel::default();
        spec2000_profiles()
            .iter()
            .map(|p| {
                let base = model.simulate(p, L1Scheme::OneDimParity, OPS, 5);
                let with = model.simulate(p, scheme, OPS, 5);
                with.cpi() / base.cpi() - 1.0
            })
            .collect()
    }

    #[test]
    fn deterministic() {
        let model = PipelineModel::default();
        let p = &spec2000_profiles()[1];
        let a = model.simulate(p, L1Scheme::Cppc, 20_000, 3);
        let b = model.simulate(p, L1Scheme::Cppc, 20_000, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn parity_has_no_rbw_activity() {
        let model = PipelineModel::default();
        let p = &spec2000_profiles()[0];
        let r = model.simulate(p, L1Scheme::OneDimParity, OPS, 1);
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.conflict_cycles, 0.0);
        assert_eq!(r.replay_cycles, 0.0);
    }

    #[test]
    fn structural_model_confirms_figure10_shape() {
        // The independent structural model must reproduce the analytical
        // model's conclusion: CPPC's CPI overhead tiny, 2D parity's
        // several times larger.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let cppc = mean(&overheads(L1Scheme::Cppc));
        let twodim = mean(&overheads(L1Scheme::TwoDimParity));
        assert!(
            (0.0..0.015).contains(&cppc),
            "CPPC structural overhead {cppc}"
        );
        assert!(twodim > 2.0 * cppc, "2D {twodim} vs CPPC {cppc}");
        assert!(twodim < 0.12, "2D structural overhead {twodim}");
    }

    #[test]
    fn cycle_stealing_serves_most_drains() {
        // §3.1's claim, structurally: the idle-slot supply absorbs the
        // vast majority of CPPC's read-before-writes.
        let model = PipelineModel::default();
        let p = &spec2000_profiles()[0]; // store-hot gzip
        let r = model.simulate(p, L1Scheme::Cppc, OPS, 2);
        let total = r.stolen_slots + r.conflicts;
        assert!(total > 0, "rbw activity expected");
        let stolen_frac = r.stolen_slots as f64 / total as f64;
        assert!(stolen_frac > 0.8, "stolen fraction {stolen_frac}");
    }

    #[test]
    fn two_dim_suffers_more_conflicts_than_cppc() {
        let model = PipelineModel::default();
        let p = &spec2000_profiles()[6]; // eon, store-heavy
        let cppc = model.simulate(p, L1Scheme::Cppc, OPS, 3);
        let twodim = model.simulate(p, L1Scheme::TwoDimParity, OPS, 3);
        assert!(twodim.conflicts > 2 * cppc.conflicts);
    }

    #[test]
    fn memory_bound_profiles_have_high_cpi() {
        let model = PipelineModel::default();
        let profiles = spec2000_profiles();
        let mcf = profiles.iter().find(|p| p.name == "mcf").unwrap();
        let eon = profiles.iter().find(|p| p.name == "eon").unwrap();
        let c_mcf = model.simulate(mcf, L1Scheme::OneDimParity, OPS, 4).cpi();
        let c_eon = model.simulate(eon, L1Scheme::OneDimParity, OPS, 4).cpi();
        assert!(c_mcf > 2.0 * c_eon, "{c_mcf} vs {c_eon}");
    }

    #[test]
    fn breakdown_adds_up_loosely() {
        let model = PipelineModel::default();
        let p = &spec2000_profiles()[2];
        let r = model.simulate(p, L1Scheme::TwoDimParity, OPS, 6);
        let accounted =
            r.miss_stall_cycles + r.conflict_cycles + r.replay_cycles + r.store_buffer_stall_cycles;
        assert!(accounted < r.cycles, "stalls are a subset of cycles");
        assert!(r.cpi() > 0.3);
    }
}
