//! Global observability for the timing model.
//!
//! Every CPI breakdown publishes its stall-cause cycle components into
//! the process-wide `cppc-obs` registry, so `cppc-cli stats` can show
//! where modelled time went (base issue, L1 miss, L2 miss, protection
//! port conflicts) across a whole run.

cppc_obs::metrics! {
    group TIMING_METRICS: "timing", "Timing model: stall-cause cycle breakdown, accumulated over every CPI evaluation.";
    counter INSTRUCTIONS: "timing.instructions", "instructions", "Instructions covered by CPI breakdowns.";
    counter BASE_CYCLES: "timing.base_cycles", "cycles", "Cycles spent at the core's base (no-stall) CPI.";
    counter L1_MISS_STALL: "timing.l1_miss_stall_cycles", "cycles", "Stall cycles paying the L2 latency on L1 misses.";
    counter L2_MISS_STALL: "timing.l2_miss_stall_cycles", "cycles", "Stall cycles paying DRAM latency on L2 misses (after MLP overlap).";
    counter PORT_CONFLICT_CYCLES: "timing.port_conflict_cycles", "cycles", "Cycles lost to protection-scheme L1 port conflicts (incl. replays).";
    counter BREAKDOWNS: "timing.breakdowns", "events", "CPI breakdowns computed.";
    timer SIMULATE: "timing.simulate.ns", "ns", "Wall time of each trace-driven simulate() call (warmup + measure).";
}

/// Registers the timing metric group (idempotent).
pub fn register_metrics() {
    TIMING_METRICS.register();
}

/// Publishes one breakdown's stall components (cycle values are
/// fractional in the model; rounded to whole cycles here).
pub(crate) fn publish_breakdown(
    instructions: f64,
    base_cycles: f64,
    l1_miss_cycles: f64,
    l2_miss_cycles: f64,
    contention_cycles: f64,
) {
    register_metrics();
    BREAKDOWNS.inc();
    INSTRUCTIONS.add(instructions.round() as u64);
    BASE_CYCLES.add(base_cycles.round() as u64);
    L1_MISS_STALL.add(l1_miss_cycles.round() as u64);
    L2_MISS_STALL.add(l2_miss_cycles.round() as u64);
    PORT_CONFLICT_CYCLES.add(contention_cycles.round() as u64);
}
