//! Trace-driven CPU timing model (SimpleScalar substitute).
//!
//! Figure 10 of the paper compares the CPI of a 4-wide out-of-order
//! processor whose L1 data cache is protected by CPPC or two-dimensional
//! parity, normalised to one-dimensional parity. The performance
//! difference comes from exactly one mechanism: **read-port contention**
//! caused by read-before-write operations (§3.1, §5.2):
//!
//! * CPPC reads the old word only on stores to *dirty* words, and the
//!   store buffer steals idle read-port cycles in coordination with the
//!   load/store scheduler, eliminating most conflicts;
//! * two-dimensional parity reads old data on *every* store and reads
//!   the *entire old line* on every miss fill, with no way to hide the
//!   extra traffic as effectively.
//!
//! This crate runs a trace through the functional hierarchy, computes a
//! base CPI from the machine's ILP and miss penalties, and adds an
//! analytical port-contention term per scheme. Absolute CPIs are
//! synthetic; the normalised deltas (CPPC ≈ +0.3%, 2D ≈ +1.7% on
//! average) are the reproduction target.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accounting;
pub mod config;
pub mod model;
pub mod obs;
pub mod pipeline;

pub use accounting::counts_from_stats;
pub use config::{CacheLevelConfig, MachineConfig};
pub use model::{CpiBreakdown, L1Scheme, PortConfig, TimingModel};
pub use pipeline::{PipelineModel, PipelineResult};
