//! Bridges functional-simulation statistics to the energy model's
//! operation counts (the paper's §6.2 counting rules).

use cppc_cache_sim::stats::CacheStats;
use cppc_energy::scheme::AccessCounts;

/// Converts cache statistics into the [`AccessCounts`] the energy model
/// prices, per the paper's counting methodology: read hits and write
/// hits are counted directly (a miss fill writes the array, so fills
/// count as writes for every scheme); stores-to-dirty drive CPPC's
/// read-before-writes; fills additionally drive two-dimensional
/// parity's old-line reads.
#[must_use]
pub fn counts_from_stats(stats: &CacheStats, words_per_line: u32) -> AccessCounts {
    AccessCounts {
        reads: stats.load_hits,
        writes: stats.store_hits + stats.fills,
        stores_to_dirty: stats.stores_to_dirty,
        miss_fills: stats.fills,
        words_per_line,
        silent_writes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_faithful() {
        let stats = CacheStats {
            load_hits: 100,
            load_misses: 10,
            store_hits: 50,
            store_misses: 5,
            stores_to_dirty: 20,
            fills: 15,
            ..CacheStats::default()
        };
        let counts = counts_from_stats(&stats, 4);
        assert_eq!(counts.reads, 100);
        assert_eq!(counts.writes, 65, "store hits + fills");
        assert_eq!(counts.stores_to_dirty, 20);
        assert_eq!(counts.miss_fills, 15);
        assert_eq!(counts.words_per_line, 4);
    }
}
