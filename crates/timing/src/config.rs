//! Machine configuration (the paper's Table 1).

use cppc_cache_sim::geometry::{CacheGeometry, GeometryError};

/// One cache level's dimensioning and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub associativity: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Access latency in cycles.
    pub latency_cycles: u32,
}

impl CacheLevelConfig {
    /// Builds the corresponding [`CacheGeometry`].
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] for inconsistent dimensions.
    pub fn geometry(&self) -> Result<CacheGeometry, GeometryError> {
        CacheGeometry::new(self.size_bytes, self.associativity, self.block_bytes)
    }
}

/// The full machine model (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Core frequency in GHz.
    pub frequency_ghz: f64,
    /// Load/store queue entries.
    pub lsq_size: u32,
    /// Register-update-unit (ROB) entries.
    pub ruu_size: u32,
    /// L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Unified L2.
    pub l2: CacheLevelConfig,
    /// L1 instruction cache.
    pub l1i: CacheLevelConfig,
    /// Main-memory latency in cycles (not in Table 1; a typical 3GHz
    /// DDR round-trip).
    pub memory_latency_cycles: u32,
    /// Fraction of a long-miss penalty hidden by memory-level
    /// parallelism and out-of-order overlap.
    pub mlp_overlap: f64,
}

impl MachineConfig {
    /// The evaluation machine of Table 1.
    #[must_use]
    pub fn table1() -> Self {
        MachineConfig {
            issue_width: 4,
            frequency_ghz: 3.0,
            lsq_size: 16,
            ruu_size: 64,
            l1d: CacheLevelConfig {
                size_bytes: 32 * 1024,
                associativity: 2,
                block_bytes: 32,
                latency_cycles: 2,
            },
            l2: CacheLevelConfig {
                size_bytes: 1024 * 1024,
                associativity: 4,
                block_bytes: 32,
                latency_cycles: 8,
            },
            l1i: CacheLevelConfig {
                size_bytes: 16 * 1024,
                associativity: 1,
                block_bytes: 32,
                latency_cycles: 1,
            },
            memory_latency_cycles: 200,
            mlp_overlap: 0.7,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let m = MachineConfig::table1();
        assert_eq!(m.issue_width, 4);
        assert_eq!(m.frequency_ghz, 3.0);
        assert_eq!(m.lsq_size, 16);
        assert_eq!(m.ruu_size, 64);
        assert_eq!(m.l1d.size_bytes, 32 * 1024);
        assert_eq!(m.l1d.associativity, 2);
        assert_eq!(m.l1d.latency_cycles, 2);
        assert_eq!(m.l2.size_bytes, 1024 * 1024);
        assert_eq!(m.l2.associativity, 4);
        assert_eq!(m.l2.latency_cycles, 8);
        assert_eq!(m.l1i.size_bytes, 16 * 1024);
    }

    #[test]
    fn geometries_build() {
        let m = MachineConfig::table1();
        assert_eq!(m.l1d.geometry().unwrap().num_sets(), 512);
        assert_eq!(m.l2.geometry().unwrap().num_sets(), 8192);
        assert_eq!(m.l1i.geometry().unwrap().num_sets(), 512);
    }
}
