//! The CPI model and per-scheme port-contention terms.

use cppc_cache_sim::batch::OpBatch;
use cppc_cache_sim::hierarchy::{MemOp, TwoLevelHierarchy};
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::stats::CacheStats;
use cppc_workloads::{BenchmarkProfile, SharedTrace, TraceGenerator};

use crate::config::MachineConfig;

/// Fraction of read-port conflicts a store can dodge because the store
/// buffer drains opportunistically (applies to every scheme's
/// read-before-write traffic).
const STORE_BUFFER_SLACK: f64 = 0.35;
/// Additional conflict-avoidance CPPC gets from coordinating the store
/// buffer with the load/store scheduler ("cycle stealing", §3.1).
const CPPC_STEAL_EFFICIENCY: f64 = 0.65;
/// Fraction of residual conflicts that escalate into a speculative-load
/// replay, and the cost of one replay (§3.1's "costly replays").
const REPLAY_FRACTION: f64 = 0.15;
const REPLAY_CYCLES: f64 = 4.0;

/// L1 port organisation (§7: "we will also evaluate single-ported
/// caches and their impact on the read-before-write operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PortConfig {
    /// Separate read and write ports (the paper's main assumption,
    /// §3.1: "widespread in modern processors") — read-before-writes
    /// contend only with loads, and CPPC steals idle read cycles.
    #[default]
    SeparateReadWrite,
    /// One shared port: every read-before-write serialises with *all*
    /// other accesses and cycle stealing cannot help.
    SinglePorted,
}

/// Which protection scheme the L1 uses (for the Figure 10 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Scheme {
    /// One-dimensional (interleaved) parity — no extra port traffic.
    OneDimParity,
    /// CPPC — read-before-write on stores to dirty words, mitigated by
    /// cycle stealing.
    Cppc,
    /// SECDED — decode off the critical path (§6.1), no port overhead.
    Secded,
    /// Two-dimensional parity — read-before-write on every store and a
    /// full line read on every miss.
    TwoDimParity,
}

/// CPI decomposition for one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiBreakdown {
    /// Instructions represented by the trace.
    pub instructions: f64,
    /// Base (ILP-limited, memory-ideal) CPI.
    pub base_cpi: f64,
    /// Cycles per instruction stalled on cache/memory misses.
    pub memory_cpi: f64,
    /// Cycles per instruction lost to protection-scheme port contention.
    pub contention_cpi: f64,
    /// L1 statistics from the functional run.
    pub l1_stats: CacheStats,
    /// L2 statistics from the functional run.
    pub l2_stats: CacheStats,
}

impl CpiBreakdown {
    /// The total CPI.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.base_cpi + self.memory_cpi + self.contention_cpi
    }
}

/// The timing model: functional simulation + analytical CPI terms.
#[derive(Debug, Clone, Copy)]
pub struct TimingModel {
    machine: MachineConfig,
}

impl TimingModel {
    /// Creates the model for a machine.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        TimingModel { machine }
    }

    /// The machine being modelled.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Runs `memops` operations of `profile` (seeded deterministically)
    /// through the hierarchy and returns the CPI breakdown under
    /// `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the machine's cache geometries are inconsistent.
    #[must_use]
    pub fn simulate(
        &self,
        profile: &BenchmarkProfile,
        scheme: L1Scheme,
        memops: usize,
        seed: u64,
    ) -> CpiBreakdown {
        let _span = crate::obs::SIMULATE.start();
        let l1 = self.machine.l1d.geometry().expect("valid L1 geometry");
        let l2 = self.machine.l2.geometry().expect("valid L2 geometry");
        let mut hierarchy = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
        // Warm up for half the trace, then measure steady state.
        let mut generator = TraceGenerator::new(profile, seed);
        hierarchy.run(generator.by_ref().take(memops / 2));
        hierarchy.reset_stats();
        hierarchy.run(generator.take(memops));
        let (l1_stats, l2_stats) = hierarchy.stats();
        self.breakdown_from_stats(profile, scheme, memops, l1_stats, l2_stats)
    }

    /// Trace-driven variant of [`TimingModel::simulate`]: drives a
    /// pre-recorded [`SharedTrace`] through the hierarchy a pre-decoded
    /// batch at a time
    /// ([`TwoLevelHierarchy::run_batch`](cppc_cache_sim::TwoLevelHierarchy::run_batch)),
    /// so the per-op dispatch overhead amortizes. The first
    /// `memops / 2` operations warm the hierarchy, the next `memops`
    /// are measured — given
    /// `SharedTrace::generate(profile, seed, memops / 2 + memops)` the
    /// breakdown is bit-identical to
    /// `simulate(profile, scheme, memops, seed)` (pinned by tests);
    /// the trace can equally come from disk
    /// ([`SharedTrace::from_binary_file`]).
    ///
    /// # Panics
    ///
    /// Panics if the trace holds fewer than `memops / 2 + memops`
    /// operations or the machine's cache geometries are inconsistent.
    #[must_use]
    pub fn simulate_trace(
        &self,
        profile: &BenchmarkProfile,
        scheme: L1Scheme,
        trace: &SharedTrace,
        memops: usize,
    ) -> CpiBreakdown {
        let _span = crate::obs::SIMULATE.start();
        let warm = memops / 2;
        assert!(
            trace.len() >= warm + memops,
            "trace holds {} ops, need {warm} warm + {memops} measured",
            trace.len()
        );
        let l1 = self.machine.l1d.geometry().expect("valid L1 geometry");
        let l2 = self.machine.l2.geometry().expect("valid L2 geometry");
        let mut hierarchy = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
        let mut batch = OpBatch::with_capacity(cppc_workloads::binfmt::DEFAULT_BATCH_OPS);
        let mut run_span = |hierarchy: &mut TwoLevelHierarchy, ops: &[MemOp]| {
            for chunk in ops.chunks(cppc_workloads::binfmt::DEFAULT_BATCH_OPS) {
                batch.clear();
                batch.extend_from_ops(chunk);
                hierarchy.run_batch(&batch);
            }
        };
        run_span(&mut hierarchy, &trace.ops()[..warm]);
        hierarchy.reset_stats();
        run_span(&mut hierarchy, &trace.ops()[warm..warm + memops]);
        let (l1_stats, l2_stats) = hierarchy.stats();
        self.breakdown_from_stats(profile, scheme, memops, l1_stats, l2_stats)
    }

    /// Computes the CPI breakdown from already-collected statistics
    /// (lets several schemes share one functional run — they see the
    /// same access stream). Uses the dual-ported L1 of Table 1.
    #[must_use]
    pub fn breakdown_from_stats(
        &self,
        profile: &BenchmarkProfile,
        scheme: L1Scheme,
        memops: usize,
        l1_stats: CacheStats,
        l2_stats: CacheStats,
    ) -> CpiBreakdown {
        self.breakdown_with_ports(
            profile,
            scheme,
            PortConfig::SeparateReadWrite,
            memops,
            l1_stats,
            l2_stats,
        )
    }

    /// [`TimingModel::breakdown_from_stats`] with an explicit port
    /// organisation — the §7 single-ported ablation.
    #[must_use]
    pub fn breakdown_with_ports(
        &self,
        profile: &BenchmarkProfile,
        scheme: L1Scheme,
        ports: PortConfig,
        memops: usize,
        l1_stats: CacheStats,
        l2_stats: CacheStats,
    ) -> CpiBreakdown {
        let instructions = memops as f64 * profile.instructions_per_memop();

        // Memory stall component: L1 misses pay the L2 latency; L2
        // misses pay DRAM, partially hidden by MLP/OoO overlap.
        let m = &self.machine;
        let l1_miss_cycles = l1_stats.misses() as f64 * f64::from(m.l2.latency_cycles);
        let l2_miss_cycles =
            l2_stats.misses() as f64 * f64::from(m.memory_latency_cycles) * (1.0 - m.mlp_overlap);
        let memory_cpi = (l1_miss_cycles + l2_miss_cycles) / instructions;

        let base_cpi = profile.base_cpi.max(1.0 / f64::from(m.issue_width));

        // Port contention: conflicts arise when a read-before-write
        // needs the read port in a cycle a load wants it. The chance is
        // proportional to port utilisation; a single-ported array
        // serialises against every access and cannot cycle-steal.
        let provisional_cycles = instructions * (base_cpi + memory_cpi);
        let port_util = match ports {
            PortConfig::SeparateReadWrite => {
                (l1_stats.loads() as f64 / provisional_cycles).min(1.0)
            }
            PortConfig::SinglePorted => (l1_stats.accesses() as f64 / provisional_cycles).min(1.0),
        };
        let conflict_cycles = |events: f64, steal: f64| -> f64 {
            let steal = match ports {
                PortConfig::SeparateReadWrite => steal,
                PortConfig::SinglePorted => 0.0,
            };
            let slack = match ports {
                PortConfig::SeparateReadWrite => STORE_BUFFER_SLACK,
                PortConfig::SinglePorted => 1.0,
            };
            let conflicts = events * port_util * slack * (1.0 - steal);
            conflicts * (1.0 + REPLAY_FRACTION * REPLAY_CYCLES)
        };
        let wpb = (m.l1d.block_bytes / 8) as f64;
        let contention = match scheme {
            L1Scheme::OneDimParity | L1Scheme::Secded => 0.0,
            L1Scheme::Cppc => {
                conflict_cycles(l1_stats.stores_to_dirty as f64, CPPC_STEAL_EFFICIENCY)
            }
            L1Scheme::TwoDimParity => {
                // every store + the whole old line on every fill
                conflict_cycles(l1_stats.stores() as f64, 0.0)
                    + conflict_cycles(l1_stats.fills as f64 * wpb, 0.0)
            }
        };
        crate::obs::publish_breakdown(
            instructions,
            instructions * base_cpi,
            l1_miss_cycles,
            l2_miss_cycles,
            contention,
        );
        CpiBreakdown {
            instructions,
            base_cpi,
            memory_cpi,
            contention_cpi: contention / instructions,
            l1_stats,
            l2_stats,
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::new(MachineConfig::table1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_workloads::spec2000_profiles;

    const OPS: usize = 60_000;

    fn run_all(scheme: L1Scheme) -> Vec<(String, f64)> {
        let model = TimingModel::default();
        spec2000_profiles()
            .iter()
            .map(|p| (p.name.to_string(), model.simulate(p, scheme, OPS, 42).cpi()))
            .collect()
    }

    #[test]
    fn parity_and_secded_identical() {
        assert_eq!(run_all(L1Scheme::OneDimParity), run_all(L1Scheme::Secded));
    }

    #[test]
    fn figure_10_shape() {
        // CPPC overhead tiny (avg well under 1%, max ≤ ~2%); 2D parity
        // noticeably larger; ordering parity ≤ CPPC < 2D per benchmark.
        let base = run_all(L1Scheme::OneDimParity);
        let cppc = run_all(L1Scheme::Cppc);
        let twodim = run_all(L1Scheme::TwoDimParity);
        let mut cppc_overheads = Vec::new();
        let mut twodim_overheads = Vec::new();
        for ((name, b), ((_, c), (_, t))) in base.iter().zip(cppc.iter().zip(twodim.iter())) {
            let oc = c / b - 1.0;
            let ot = t / b - 1.0;
            assert!(oc >= 0.0 && ot >= oc, "{name}: {oc} vs {ot}");
            cppc_overheads.push(oc);
            twodim_overheads.push(ot);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
        let (ac, at) = (avg(&cppc_overheads), avg(&twodim_overheads));
        assert!(ac < 0.01, "CPPC avg overhead {ac} (paper: 0.3%)");
        assert!(
            max(&cppc_overheads) < 0.025,
            "CPPC max {:?}",
            max(&cppc_overheads)
        );
        assert!(at > ac * 2.0, "2D parity clearly worse: {at} vs {ac}");
        assert!(at < 0.10, "2D avg overhead {at} (paper: 1.7%)");
    }

    #[test]
    fn memory_bound_benchmarks_have_higher_cpi() {
        let model = TimingModel::default();
        let profiles = spec2000_profiles();
        let mcf = profiles.iter().find(|p| p.name == "mcf").unwrap();
        let eon = profiles.iter().find(|p| p.name == "eon").unwrap();
        let cpi_mcf = model.simulate(mcf, L1Scheme::OneDimParity, OPS, 1).cpi();
        let cpi_eon = model.simulate(eon, L1Scheme::OneDimParity, OPS, 1).cpi();
        assert!(cpi_mcf > 1.5 * cpi_eon, "{cpi_mcf} vs {cpi_eon}");
    }

    #[test]
    fn breakdown_components_positive() {
        let model = TimingModel::default();
        let p = &spec2000_profiles()[0];
        let b = model.simulate(p, L1Scheme::Cppc, OPS, 3);
        assert!(b.base_cpi > 0.0);
        assert!(b.memory_cpi >= 0.0);
        assert!(b.contention_cpi >= 0.0);
        assert!((b.cpi() - (b.base_cpi + b.memory_cpi + b.contention_cpi)).abs() < 1e-12);
        assert!(b.instructions > OPS as f64);
    }

    #[test]
    fn deterministic() {
        let model = TimingModel::default();
        let p = &spec2000_profiles()[5];
        let a = model.simulate(p, L1Scheme::TwoDimParity, 20_000, 9).cpi();
        let b = model.simulate(p, L1Scheme::TwoDimParity, 20_000, 9).cpi();
        assert_eq!(a, b);
    }

    #[test]
    fn simulate_trace_matches_generator_drive() {
        // The batched trace drive is the fast path for the same
        // computation simulate() performs — every stat and CPI term
        // must come out bit-identical.
        let model = TimingModel::default();
        for p in &spec2000_profiles()[..4] {
            let trace = SharedTrace::generate(p, 42, 20_000 / 2 + 20_000);
            for scheme in [L1Scheme::Cppc, L1Scheme::TwoDimParity] {
                let direct = model.simulate(p, scheme, 20_000, 42);
                let traced = model.simulate_trace(p, scheme, &trace, 20_000);
                assert_eq!(direct, traced, "{} {scheme:?}", p.name);
            }
        }
    }

    #[test]
    #[should_panic(expected = "trace holds")]
    fn simulate_trace_rejects_short_traces() {
        let model = TimingModel::default();
        let p = &spec2000_profiles()[0];
        let trace = SharedTrace::generate(p, 1, 100);
        let _ = model.simulate_trace(p, L1Scheme::Cppc, &trace, 1_000);
    }

    #[test]
    fn single_ported_costs_more() {
        // §7's ablation: without a separate read port, CPPC's
        // read-before-writes hurt noticeably more.
        let model = TimingModel::default();
        let p = &spec2000_profiles()[0];
        let base = model.simulate(p, L1Scheme::OneDimParity, OPS, 1);
        let dual = model.breakdown_with_ports(
            p,
            L1Scheme::Cppc,
            PortConfig::SeparateReadWrite,
            OPS,
            base.l1_stats,
            base.l2_stats,
        );
        let single = model.breakdown_with_ports(
            p,
            L1Scheme::Cppc,
            PortConfig::SinglePorted,
            OPS,
            base.l1_stats,
            base.l2_stats,
        );
        assert!(single.contention_cpi > 3.0 * dual.contention_cpi);
        // …but still bounded (the events themselves are rare).
        assert!(single.cpi() / base.cpi() < 1.1);
    }
}
