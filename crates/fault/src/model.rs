//! Fault models and deterministic fault-pattern generators.

use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

/// One flipped bit: physical row + bit column (0–63).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitFlip {
    /// Physical data-array row.
    pub row: usize,
    /// Bit column within the row (0 = LSB of the stored word).
    pub col: u32,
}

/// A concrete fault: the set of bits one event flips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPattern {
    flips: Vec<BitFlip>,
}

impl FaultPattern {
    /// Builds a pattern from flips, dropping duplicates.
    #[must_use]
    pub fn new(mut flips: Vec<BitFlip>) -> Self {
        Self::normalise(&mut flips);
        FaultPattern { flips }
    }

    /// An empty pattern — the reusable buffer for
    /// [`FaultGenerator::sample_into`].
    #[must_use]
    pub fn empty() -> Self {
        FaultPattern { flips: Vec::new() }
    }

    /// Sorts and dedups in place. `sort_unstable` gives the identical
    /// result to a stable sort here (duplicates are indistinguishable
    /// under `BitFlip`'s total order) without the stable sort's scratch
    /// allocation.
    fn normalise(flips: &mut Vec<BitFlip>) {
        flips.sort_unstable();
        flips.dedup();
    }

    /// The individual bit flips.
    #[must_use]
    pub fn flips(&self) -> &[BitFlip] {
        &self.flips
    }

    /// Number of bits flipped.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flips.len()
    }

    /// `true` when no bit flips (a fully masked event).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// Iterates the pattern row by row as `(row, error-mask)` pairs,
    /// where bit `c` of the mask is set iff the pattern flips column
    /// `c` of that row. Rows appear in ascending order (flips are kept
    /// sorted), each exactly once.
    pub fn row_masks(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        let mut i = 0;
        std::iter::from_fn(move || {
            let first = *self.flips.get(i)?;
            let mut mask = 0u64;
            while let Some(f) = self.flips.get(i) {
                if f.row != first.row {
                    break;
                }
                mask |= 1u64 << f.col;
                i += 1;
            }
            Some((first.row, mask))
        })
    }

    /// The bounding box `(rows, cols)` of the pattern (0,0 for empty).
    #[must_use]
    pub fn bounding_box(&self) -> (usize, u32) {
        if self.flips.is_empty() {
            return (0, 0);
        }
        let rmin = self.flips.iter().map(|f| f.row).min().expect("non-empty");
        let rmax = self.flips.iter().map(|f| f.row).max().expect("non-empty");
        let cmin = self.flips.iter().map(|f| f.col).min().expect("non-empty");
        let cmax = self.flips.iter().map(|f| f.col).max().expect("non-empty");
        (rmax - rmin + 1, cmax - cmin + 1)
    }
}

impl FromIterator<BitFlip> for FaultPattern {
    fn from_iter<T: IntoIterator<Item = BitFlip>>(iter: T) -> Self {
        FaultPattern::new(iter.into_iter().collect())
    }
}

/// Generative fault models. Each `sample` is deterministic given the
/// generator state, so campaigns are reproducible from their seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// A single-event upset flipping exactly one bit, uniformly placed.
    TemporalSingleBit,
    /// `count` independent single-bit upsets (temporal multi-bit error).
    TemporalMultiBit {
        /// Number of independent flips.
        count: u32,
    },
    /// A spatial event: every bit inside a `rows x cols` rectangle flips
    /// with probability `density` (at least one bit always flips), with
    /// the rectangle placed uniformly at random. `density = 1.0` gives
    /// the worst-case solid square (e.g. the paper's 8x8).
    SpatialSquare {
        /// Height of the strike footprint in rows.
        rows: usize,
        /// Width of the strike footprint in bit columns.
        cols: u32,
        /// Per-cell flip probability inside the footprint (0, 1].
        density: f64,
    },
    /// A horizontal burst: `cols` adjacent bits of one row.
    HorizontalBurst {
        /// Burst length in bits.
        cols: u32,
    },
    /// A vertical stripe: the same bit column in `rows` adjacent rows.
    VerticalStripe {
        /// Stripe height in rows.
        rows: usize,
    },
}

/// Deterministic generator of [`FaultPattern`]s over an array of
/// `num_rows` rows x 64 columns.
#[derive(Debug)]
pub struct FaultGenerator {
    rng: StdRng,
    num_rows: usize,
}

impl FaultGenerator {
    /// Creates a generator for an array of `num_rows` rows, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_rows` is zero.
    #[must_use]
    pub fn new(num_rows: usize, seed: u64) -> Self {
        assert!(num_rows > 0, "array must have rows");
        FaultGenerator {
            rng: StdRng::seed_from_u64(seed),
            num_rows,
        }
    }

    /// Samples one fault pattern from `model`.
    ///
    /// # Panics
    ///
    /// Panics if the model's footprint exceeds the array, if
    /// `density` is outside (0, 1], or a multi-bit count is zero.
    pub fn sample(&mut self, model: FaultModel) -> FaultPattern {
        let mut out = FaultPattern::empty();
        self.sample_into(model, &mut out);
        out
    }

    /// Samples one fault pattern from `model` into `out`, reusing its
    /// flip buffer — the allocation-free form campaign hot loops use.
    /// Draws from the generator's RNG in exactly the same order as
    /// [`FaultGenerator::sample`], so the two are interchangeable in a
    /// seeded campaign.
    ///
    /// # Panics
    ///
    /// Panics if the model's footprint exceeds the array, if
    /// `density` is outside (0, 1], or a multi-bit count is zero.
    pub fn sample_into(&mut self, model: FaultModel, out: &mut FaultPattern) {
        let flips = &mut out.flips;
        flips.clear();
        match model {
            FaultModel::TemporalSingleBit => {
                let row = self.rng.random_range(0..self.num_rows);
                let col = self.rng.random_range(0..64u32);
                flips.push(BitFlip { row, col });
            }
            FaultModel::TemporalMultiBit { count } => {
                assert!(count > 0, "multi-bit fault needs count >= 1");
                while flips.len() < count as usize {
                    let f = BitFlip {
                        row: self.rng.random_range(0..self.num_rows),
                        col: self.rng.random_range(0..64u32),
                    };
                    if !flips.contains(&f) {
                        flips.push(f);
                    }
                }
            }
            FaultModel::SpatialSquare {
                rows,
                cols,
                density,
            } => {
                assert!(rows >= 1 && rows <= self.num_rows, "rows out of range");
                assert!((1..=64).contains(&cols), "cols out of range");
                assert!(density > 0.0 && density <= 1.0, "density must be in (0,1]");
                let row0 = self.rng.random_range(0..=self.num_rows - rows);
                let col0 = self.rng.random_range(0..=64 - cols);
                loop {
                    for dr in 0..rows {
                        for dc in 0..cols {
                            if density >= 1.0 || self.rng.random_bool(density) {
                                flips.push(BitFlip {
                                    row: row0 + dr,
                                    col: col0 + dc,
                                });
                            }
                        }
                    }
                    if !flips.is_empty() {
                        break;
                    }
                }
            }
            FaultModel::HorizontalBurst { cols } => {
                assert!((1..=64).contains(&cols), "cols out of range");
                let row = self.rng.random_range(0..self.num_rows);
                let col0 = self.rng.random_range(0..=64 - cols);
                flips.extend((0..cols).map(|dc| BitFlip {
                    row,
                    col: col0 + dc,
                }));
            }
            FaultModel::VerticalStripe { rows } => {
                assert!(rows >= 1 && rows <= self.num_rows, "rows out of range");
                let row0 = self.rng.random_range(0..=self.num_rows - rows);
                let col = self.rng.random_range(0..64u32);
                flips.extend((0..rows).map(|dr| BitFlip {
                    row: row0 + dr,
                    col,
                }));
            }
        }
        FaultPattern::normalise(flips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_masks_groups_sorted_flips() {
        let p = FaultPattern::new(vec![
            BitFlip { row: 7, col: 63 },
            BitFlip { row: 3, col: 0 },
            BitFlip { row: 3, col: 5 },
            BitFlip { row: 3, col: 5 }, // duplicate
            BitFlip { row: 9, col: 1 },
        ]);
        let got: Vec<(usize, u64)> = p.row_masks().collect();
        assert_eq!(got, vec![(3, 0b10_0001), (7, 1u64 << 63), (9, 0b10)]);
        assert_eq!(FaultPattern::empty().row_masks().count(), 0);
    }

    #[test]
    fn single_bit_is_single() {
        let mut g = FaultGenerator::new(100, 1);
        for _ in 0..50 {
            let p = g.sample(FaultModel::TemporalSingleBit);
            assert_eq!(p.len(), 1);
            assert!(p.flips()[0].row < 100);
        }
    }

    #[test]
    fn multibit_count_respected_and_distinct() {
        let mut g = FaultGenerator::new(16, 2);
        for _ in 0..20 {
            let p = g.sample(FaultModel::TemporalMultiBit { count: 5 });
            assert_eq!(p.len(), 5, "flips are distinct");
        }
    }

    #[test]
    fn solid_square_has_exact_footprint() {
        let mut g = FaultGenerator::new(64, 3);
        for _ in 0..20 {
            let p = g.sample(FaultModel::SpatialSquare {
                rows: 8,
                cols: 8,
                density: 1.0,
            });
            assert_eq!(p.len(), 64);
            assert_eq!(p.bounding_box(), (8, 8));
        }
    }

    #[test]
    fn sparse_square_stays_inside_box() {
        let mut g = FaultGenerator::new(64, 4);
        for _ in 0..50 {
            let p = g.sample(FaultModel::SpatialSquare {
                rows: 4,
                cols: 6,
                density: 0.3,
            });
            assert!(!p.is_empty());
            let (r, c) = p.bounding_box();
            assert!(r <= 4 && c <= 6, "bounding box {r}x{c}");
        }
    }

    #[test]
    fn horizontal_burst_single_row() {
        let mut g = FaultGenerator::new(8, 5);
        let p = g.sample(FaultModel::HorizontalBurst { cols: 7 });
        assert_eq!(p.len(), 7);
        assert_eq!(p.bounding_box().0, 1);
        let cols: Vec<u32> = p.flips().iter().map(|f| f.col).collect();
        assert_eq!(cols.windows(2).filter(|w| w[1] != w[0] + 1).count(), 0);
    }

    #[test]
    fn vertical_stripe_single_column() {
        let mut g = FaultGenerator::new(32, 6);
        let p = g.sample(FaultModel::VerticalStripe { rows: 5 });
        assert_eq!(p.len(), 5);
        assert_eq!(p.bounding_box(), (5, 1));
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = FaultGenerator::new(128, 99);
        let mut b = FaultGenerator::new(128, 99);
        for _ in 0..10 {
            assert_eq!(
                a.sample(FaultModel::SpatialSquare {
                    rows: 8,
                    cols: 8,
                    density: 0.5
                }),
                b.sample(FaultModel::SpatialSquare {
                    rows: 8,
                    cols: 8,
                    density: 0.5
                })
            );
        }
    }

    #[test]
    fn sample_into_matches_sample_draw_for_draw() {
        let models = [
            FaultModel::TemporalSingleBit,
            FaultModel::TemporalMultiBit { count: 6 },
            FaultModel::SpatialSquare {
                rows: 4,
                cols: 4,
                density: 1.0,
            },
            FaultModel::SpatialSquare {
                rows: 8,
                cols: 8,
                density: 0.4,
            },
            FaultModel::HorizontalBurst { cols: 5 },
            FaultModel::VerticalStripe { rows: 3 },
        ];
        let mut a = FaultGenerator::new(128, 0xFA17);
        let mut b = FaultGenerator::new(128, 0xFA17);
        let mut buf = FaultPattern::empty();
        for _ in 0..20 {
            for model in models {
                b.sample_into(model, &mut buf);
                assert_eq!(a.sample(model), buf, "{model:?}");
            }
        }
    }

    #[test]
    fn pattern_dedups_and_sorts() {
        let p = FaultPattern::new(vec![
            BitFlip { row: 2, col: 1 },
            BitFlip { row: 1, col: 9 },
            BitFlip { row: 2, col: 1 },
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.flips()[0], BitFlip { row: 1, col: 9 });
    }

    #[test]
    fn empty_pattern_bounding_box() {
        assert_eq!(FaultPattern::new(vec![]).bounding_box(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "rows out of range")]
    fn square_taller_than_array_panics() {
        let mut g = FaultGenerator::new(4, 0);
        let _ = g.sample(FaultModel::SpatialSquare {
            rows: 8,
            cols: 8,
            density: 1.0,
        });
    }
}
