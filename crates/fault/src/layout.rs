//! Logical→physical data-array layout.
//!
//! The SRAM data array is modelled as `num_rows` rows of 64 bit-columns,
//! one 64-bit word per row (the paper's Figures 6/7 use exactly this
//! view). Each way of the cache is a separate bank; within a bank the
//! words of a set's block occupy consecutive rows, and consecutive sets
//! follow each other. Two words are *vertical neighbours* iff their row
//! indices differ by 1 in the same bank.
//!
//! CPPC's rotation classes are `row mod classes` (three address bits feed
//! the barrel shifter in Figure 6), so this module is the single source
//! of truth for "which rotation class does word (set, way, word) belong
//! to".

/// Maps cache coordinates `(set, way, word)` onto physical rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysicalLayout {
    num_sets: usize,
    ways: usize,
    words_per_block: usize,
}

impl PhysicalLayout {
    /// Creates a layout for a cache of `num_sets x ways` blocks of
    /// `words_per_block` words.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(num_sets: usize, ways: usize, words_per_block: usize) -> Self {
        assert!(
            num_sets > 0 && ways > 0 && words_per_block > 0,
            "all layout dimensions must be non-zero"
        );
        PhysicalLayout {
            num_sets,
            ways,
            words_per_block,
        }
    }

    /// Total number of physical rows (= total words in the cache).
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.num_sets * self.ways * self.words_per_block
    }

    /// Rows per bank (one bank per way).
    #[inline]
    #[must_use]
    pub fn rows_per_bank(&self) -> usize {
        self.num_sets * self.words_per_block
    }

    /// The physical row of word `word` of the block at `(set, way)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[inline]
    #[must_use]
    pub fn row_of(&self, set: usize, way: usize, word: usize) -> usize {
        assert!(set < self.num_sets, "set {set} out of range");
        assert!(way < self.ways, "way {way} out of range");
        assert!(word < self.words_per_block, "word {word} out of range");
        way * self.rows_per_bank() + set * self.words_per_block + word
    }

    /// The `(set, way, word)` stored in physical row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn location_of(&self, row: usize) -> (usize, usize, usize) {
        assert!(row < self.num_rows(), "row {row} out of range");
        let way = row / self.rows_per_bank();
        let in_bank = row % self.rows_per_bank();
        let set = in_bank / self.words_per_block;
        let word = in_bank % self.words_per_block;
        (set, way, word)
    }

    /// CPPC rotation class of a row given `classes` rotation classes
    /// (8 in the paper's byte-shifting design).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    #[inline]
    #[must_use]
    pub fn rotation_class(&self, row: usize, classes: usize) -> usize {
        assert!(classes > 0, "classes must be non-zero");
        row % classes
    }

    /// `true` iff rows `a` and `b` sit in the same bank (faults never
    /// straddle banks).
    #[must_use]
    pub fn same_bank(&self, a: usize, b: usize) -> bool {
        a / self.rows_per_bank() == b / self.rows_per_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn roundtrip_small() {
        let l = PhysicalLayout::new(4, 2, 4);
        for row in 0..l.num_rows() {
            let (s, w, word) = l.location_of(row);
            assert_eq!(l.row_of(s, w, word), row);
        }
    }

    #[test]
    fn consecutive_words_are_vertical_neighbours() {
        let l = PhysicalLayout::new(8, 1, 4);
        let r0 = l.row_of(0, 0, 0);
        let r1 = l.row_of(0, 0, 1);
        assert_eq!(r1, r0 + 1);
        // …and the next set's first word follows the last word of this set.
        let r3 = l.row_of(0, 0, 3);
        let next = l.row_of(1, 0, 0);
        assert_eq!(next, r3 + 1);
    }

    #[test]
    fn rotation_classes_cycle() {
        let l = PhysicalLayout::new(8, 1, 4);
        let classes: Vec<usize> = (0..16).map(|r| l.rotation_class(r, 8)).collect();
        assert_eq!(classes[..8], [0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(classes[8..], [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn banks_partition_rows() {
        let l = PhysicalLayout::new(4, 2, 4);
        assert!(l.same_bank(0, 15));
        assert!(!l.same_bank(15, 16));
        assert_eq!(l.rows_per_bank(), 16);
    }

    #[test]
    #[should_panic(expected = "set 4 out of range")]
    fn oob_set_panics() {
        let _ = PhysicalLayout::new(4, 2, 4).row_of(4, 0, 0);
    }

    #[test]
    #[should_panic(expected = "row 32 out of range")]
    fn oob_row_panics() {
        let _ = PhysicalLayout::new(4, 2, 4).location_of(32);
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x1A70);
        for _ in 0..256 {
            let sets = rng.random_range(1usize..64);
            let ways = rng.random_range(1usize..8);
            let wpb = rng.random_range(1usize..16);
            let l = PhysicalLayout::new(sets, ways, wpb);
            let row = rng.random::<u64>() as usize % l.num_rows();
            let (s, w, word) = l.location_of(row);
            assert_eq!(
                l.row_of(s, w, word),
                row,
                "sets={sets} ways={ways} wpb={wpb}"
            );
        }
    }

    #[test]
    fn prop_distinct_rows() {
        let mut rng = StdRng::seed_from_u64(0x1A71);
        for _ in 0..64 {
            let sets = rng.random_range(1usize..16);
            let ways = rng.random_range(1usize..4);
            let wpb = rng.random_range(1usize..8);
            let l = PhysicalLayout::new(sets, ways, wpb);
            let mut seen = std::collections::HashSet::new();
            for s in 0..sets {
                for w in 0..ways {
                    for word in 0..wpb {
                        assert!(seen.insert(l.row_of(s, w, word)));
                    }
                }
            }
            assert_eq!(seen.len(), l.num_rows());
        }
    }
}
