//! Soft-error fault-injection substrate.
//!
//! * [`layout`] — the logical→physical mapping of cache words onto SRAM
//!   data-array rows. Spatial multi-bit errors (MBEs) are physical
//!   phenomena: a particle strike flips bits inside a small square of
//!   adjacent cells. This module defines which words are vertical
//!   neighbours, which is what CPPC's rotation classes are built on.
//! * [`model`] — fault models: temporal single-bit upsets and spatial
//!   NxM multi-bit patterns, with deterministic seeded generators.
//! * [`campaign`] — a campaign runner that injects thousands of faults
//!   into fresh system instances and tallies outcomes (Masked /
//!   Corrected / DUE / SDC), the methodology behind the paper's
//!   correction-coverage claims (§4.6).
//!
//! # Example
//!
//! ```
//! use cppc_fault::layout::PhysicalLayout;
//!
//! // 4 sets x 2 ways x 4 words/block = 32 physical rows of 64 bits.
//! let layout = PhysicalLayout::new(4, 2, 4);
//! assert_eq!(layout.num_rows(), 32);
//! let row = layout.row_of(3, 1, 2);
//! assert_eq!(layout.location_of(row), (3, 1, 2));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
pub mod layout;
pub mod model;

pub use campaign::{Campaign, Outcome, OutcomeTally};
pub use layout::PhysicalLayout;
pub use model::{BitFlip, FaultModel, FaultPattern};
