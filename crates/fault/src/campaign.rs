//! Fault-injection campaign runner.
//!
//! A campaign runs `trials` independent experiments. Each experiment
//! receives a freshly seeded RNG stream (derived deterministically from
//! the campaign seed via [`cppc_campaign::trial_seed`]), builds/loads a
//! system, injects a fault, exercises the recovery path and reports an
//! [`Outcome`]. The tally mirrors the standard soft-error taxonomy the
//! paper uses: corrected events, Detected-Unrecoverable Errors (DUE)
//! and Silent Data Corruptions (SDC).
//!
//! Campaigns execute through the [`cppc_campaign`] engine: the
//! sequential [`Campaign::run`] and the sharded, multi-threaded
//! [`Campaign::run_parallel`] derive identical per-trial RNG streams
//! and therefore produce **bit-identical tallies at any thread count**.

use cppc_campaign::json::Json;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::{Accumulator, CampaignConfig, Persist};

/// The outcome of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The fault hit state that was never consumed (or an invalid/empty
    /// location); the program result is unaffected.
    Masked,
    /// The fault was detected and repaired; data verified correct.
    Corrected,
    /// The fault was detected but could not be corrected — the machine
    /// raises a fatal exception (Detected Unrecoverable Error).
    DetectedUnrecoverable,
    /// The fault was not detected (or was "corrected" to a wrong value)
    /// and wrong data was consumed — Silent Data Corruption.
    SilentCorruption,
}

/// Tally of campaign outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Count of [`Outcome::Masked`].
    pub masked: u64,
    /// Count of [`Outcome::Corrected`].
    pub corrected: u64,
    /// Count of [`Outcome::DetectedUnrecoverable`].
    pub due: u64,
    /// Count of [`Outcome::SilentCorruption`].
    pub sdc: u64,
}

impl OutcomeTally {
    /// Records one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Corrected => self.corrected += 1,
            Outcome::DetectedUnrecoverable => self.due += 1,
            Outcome::SilentCorruption => self.sdc += 1,
        }
    }

    /// Total trials recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.masked + self.corrected + self.due + self.sdc
    }

    /// Fraction of *unmasked* faults that were corrected (coverage).
    /// Returns 1.0 when nothing was unmasked.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let unmasked = self.corrected + self.due + self.sdc;
        if unmasked == 0 {
            1.0
        } else {
            self.corrected as f64 / unmasked as f64
        }
    }

    /// Fraction of all trials ending in silent corruption.
    #[must_use]
    pub fn sdc_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sdc as f64 / self.total() as f64
        }
    }
}

impl Accumulator for OutcomeTally {
    type Item = Outcome;

    fn record(&mut self, _trial: u64, outcome: Outcome) {
        OutcomeTally::record(self, outcome);
    }

    fn merge(&mut self, other: Self) {
        self.masked += other.masked;
        self.corrected += other.corrected;
        self.due += other.due;
        self.sdc += other.sdc;
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("Masked", self.masked),
            ("Corrected", self.corrected),
            ("DUE", self.due),
            ("SDC", self.sdc),
        ]
    }
}

impl Persist for OutcomeTally {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("masked".into(), Json::UInt(self.masked)),
            ("corrected".into(), Json::UInt(self.corrected)),
            ("due".into(), Json::UInt(self.due)),
            ("sdc".into(), Json::UInt(self.sdc)),
        ])
    }

    fn from_json(value: &Json) -> Option<Self> {
        Some(OutcomeTally {
            masked: value.get("masked")?.as_u64()?,
            corrected: value.get("corrected")?.as_u64()?,
            due: value.get("due")?.as_u64()?,
            sdc: value.get("sdc")?.as_u64()?,
        })
    }
}

/// A deterministic fault-injection campaign.
///
/// # Example
///
/// ```
/// use cppc_fault::campaign::{Campaign, Outcome};
///
/// // A toy "system" that always corrects:
/// let tally = Campaign::new(0xC0FFEE).run(100, |_rng, _trial| Outcome::Corrected);
/// assert_eq!(tally.corrected, 100);
/// assert_eq!(tally.coverage(), 1.0);
///
/// // The multi-threaded path gives bit-identical results:
/// let par = Campaign::new(0xC0FFEE).run_parallel(100, 4, |_rng, _trial| Outcome::Corrected);
/// assert_eq!(tally, par);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    seed: u64,
}

impl Campaign {
    /// Creates a campaign with a master seed; every trial derives its own
    /// independent RNG from it.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Campaign { seed }
    }

    /// The master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The engine configuration equivalent to this campaign — the entry
    /// point for checkpointed / metered runs through
    /// [`cppc_campaign::run_resumable`].
    #[must_use]
    pub fn config(&self, trials: u64) -> CampaignConfig {
        CampaignConfig::new(self.seed, trials)
    }

    /// Runs `trials` experiments sequentially. `experiment` receives a
    /// per-trial RNG and the trial index.
    pub fn run<F>(&self, trials: u64, mut experiment: F) -> OutcomeTally
    where
        F: FnMut(&mut StdRng, u64) -> Outcome,
    {
        let mut tally = OutcomeTally::default();
        for trial in 0..trials {
            // The same stream derivation the parallel engine uses, so
            // both paths see identical randomness.
            let mut rng = cppc_campaign::trial_rng(self.seed, trial);
            OutcomeTally::record(&mut tally, experiment(&mut rng, trial));
        }
        tally
    }

    /// Runs `trials` experiments across `threads` workers (0 = all CPUs)
    /// through the campaign engine. Bit-identical to [`Campaign::run`]
    /// at any thread count.
    pub fn run_parallel<F>(&self, trials: u64, threads: usize, experiment: F) -> OutcomeTally
    where
        F: Fn(&mut StdRng, u64) -> Outcome + Sync,
    {
        cppc_campaign::run::<OutcomeTally, _>(&self.config(trials).threads(threads), experiment)
            .result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::RngExt;

    #[test]
    fn tally_records_all_kinds() {
        let mut t = OutcomeTally::default();
        t.record(Outcome::Masked);
        t.record(Outcome::Corrected);
        t.record(Outcome::Corrected);
        t.record(Outcome::DetectedUnrecoverable);
        t.record(Outcome::SilentCorruption);
        assert_eq!(t.total(), 5);
        assert_eq!(t.masked, 1);
        assert_eq!(t.corrected, 2);
        assert_eq!(t.due, 1);
        assert_eq!(t.sdc, 1);
    }

    #[test]
    fn coverage_excludes_masked() {
        let t = OutcomeTally {
            masked: 100,
            corrected: 3,
            due: 1,
            sdc: 0,
        };
        assert!((t.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_one_when_all_masked() {
        let t = OutcomeTally {
            masked: 10,
            ..OutcomeTally::default()
        };
        assert_eq!(t.coverage(), 1.0);
    }

    #[test]
    fn sdc_rate_over_total() {
        let t = OutcomeTally {
            masked: 1,
            corrected: 1,
            due: 1,
            sdc: 1,
        };
        assert!((t.sdc_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sdc_rate_zero_when_empty() {
        assert_eq!(OutcomeTally::default().sdc_rate(), 0.0);
    }

    #[test]
    fn campaign_trials_are_reproducible() {
        let collect = |seed| {
            let mut values = Vec::new();
            Campaign::new(seed).run(10, |rng, _| {
                values.push(rng.random::<u64>());
                Outcome::Masked
            });
            values
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn campaign_passes_trial_index() {
        let mut indices = Vec::new();
        Campaign::new(1).run(5, |_, t| {
            indices.push(t);
            Outcome::Corrected
        });
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn per_trial_rngs_are_independent() {
        let mut firsts = Vec::new();
        Campaign::new(123).run(20, |rng, _| {
            firsts.push(rng.random::<u64>());
            Outcome::Masked
        });
        let mut dedup = firsts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), firsts.len(), "trial streams must differ");
    }

    /// A deterministic experiment whose outcome depends on the trial's
    /// RNG stream — any divergence between paths shows up as a
    /// different tally.
    fn stream_sensitive(rng: &mut StdRng, _trial: u64) -> Outcome {
        match rng.random_range(0..4u32) {
            0 => Outcome::Masked,
            1 => Outcome::Corrected,
            2 => Outcome::DetectedUnrecoverable,
            _ => Outcome::SilentCorruption,
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let c = Campaign::new(0xBEEF);
        let seq = c.run(513, stream_sensitive);
        for threads in [1, 2, 8] {
            assert_eq!(c.run_parallel(513, threads, stream_sensitive), seq);
        }
    }

    #[test]
    fn tally_merge_is_componentwise() {
        let mut a = OutcomeTally {
            masked: 1,
            corrected: 2,
            due: 3,
            sdc: 4,
        };
        Accumulator::merge(
            &mut a,
            OutcomeTally {
                masked: 10,
                corrected: 20,
                due: 30,
                sdc: 40,
            },
        );
        assert_eq!(a.total(), 110);
        assert_eq!(a.due, 33);
    }

    #[test]
    fn tally_persist_roundtrip() {
        let t = OutcomeTally {
            masked: 5,
            corrected: 6,
            due: 7,
            sdc: 8,
        };
        let json = t.to_json();
        assert_eq!(OutcomeTally::from_json(&json), Some(t));
        assert_eq!(OutcomeTally::from_json(&Json::Null), None);
    }

    #[test]
    fn live_counters_use_paper_taxonomy() {
        let t = OutcomeTally {
            masked: 1,
            corrected: 2,
            due: 3,
            sdc: 4,
        };
        assert_eq!(
            Accumulator::counters(&t),
            vec![("Masked", 1), ("Corrected", 2), ("DUE", 3), ("SDC", 4)]
        );
    }
}
