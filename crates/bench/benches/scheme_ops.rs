//! Criterion benches comparing the *common-case* store/load path of
//! every protected cache — the software analogue of the paper's claim
//! that CPPC's normal operation adds almost nothing over plain parity
//! while two-dimensional parity pays a read-before-write on every store.

use cppc_bench::microbench::{BatchSize, Criterion};
use cppc_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::Cache;
use cppc_core::baselines::{OneDimParityCache, SecdedCache, TwoDimParityCache};
use cppc_core::{CppcCache, CppcConfig};
use cppc_workloads::micro::random_mix;

fn geo() -> CacheGeometry {
    CacheGeometry::new(32 * 1024, 2, 32).unwrap()
}

const OPS: usize = 4096;

fn bench_store_paths(c: &mut Criterion) {
    let trace = random_mix(OPS, 64 * 1024, 0.4, 7);
    let mut group = c.benchmark_group("mixed_trace_4k_ops");

    group.bench_function("unprotected", |b| {
        b.iter_batched(
            || (Cache::new(geo(), ReplacementPolicy::Lru), MainMemory::new()),
            |(mut cache, mut mem)| {
                for op in &trace {
                    match *op {
                        cppc_cache_sim::hierarchy::MemOp::Load(a) => {
                            black_box(cache.load_word(a, &mut mem));
                        }
                        cppc_cache_sim::hierarchy::MemOp::Store(a, v) => {
                            cache.store_word(a, v, &mut mem);
                        }
                        cppc_cache_sim::hierarchy::MemOp::StoreByte(a, v) => {
                            cache.store_byte(a, v, &mut mem);
                        }
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("one_dim_parity", |b| {
        b.iter_batched(
            || {
                (
                    OneDimParityCache::new(geo(), 8, ReplacementPolicy::Lru),
                    MainMemory::new(),
                )
            },
            |(mut cache, mut mem)| {
                for op in &trace {
                    match *op {
                        cppc_cache_sim::hierarchy::MemOp::Load(a) => {
                            black_box(cache.load_word(a, &mut mem).unwrap());
                        }
                        cppc_cache_sim::hierarchy::MemOp::Store(a, v) => {
                            cache.store_word(a, v, &mut mem);
                        }
                        cppc_cache_sim::hierarchy::MemOp::StoreByte(a, v) => {
                            cache.store_byte(a, v, &mut mem);
                        }
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("cppc_paper", |b| {
        b.iter_batched(
            || {
                (
                    CppcCache::new_l1(geo(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap(),
                    MainMemory::new(),
                )
            },
            |(mut cache, mut mem)| {
                for op in &trace {
                    match *op {
                        cppc_cache_sim::hierarchy::MemOp::Load(a) => {
                            black_box(cache.load_word(a, &mut mem).unwrap());
                        }
                        cppc_cache_sim::hierarchy::MemOp::Store(a, v) => {
                            cache.store_word(a, v, &mut mem).unwrap();
                        }
                        cppc_cache_sim::hierarchy::MemOp::StoreByte(a, v) => {
                            cache.store_byte(a, v, &mut mem).unwrap();
                        }
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("secded_interleaved", |b| {
        b.iter_batched(
            || {
                (
                    SecdedCache::new(geo(), true, ReplacementPolicy::Lru),
                    MainMemory::new(),
                )
            },
            |(mut cache, mut mem)| {
                for op in &trace {
                    match *op {
                        cppc_cache_sim::hierarchy::MemOp::Load(a) => {
                            black_box(cache.load_word(a, &mut mem).unwrap());
                        }
                        cppc_cache_sim::hierarchy::MemOp::Store(a, v) => {
                            cache.store_word(a, v, &mut mem);
                        }
                        cppc_cache_sim::hierarchy::MemOp::StoreByte(a, v) => {
                            cache.store_byte(a, v, &mut mem).unwrap();
                        }
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("two_dim_parity", |b| {
        b.iter_batched(
            || {
                (
                    TwoDimParityCache::new(geo(), 1, ReplacementPolicy::Lru),
                    MainMemory::new(),
                )
            },
            |(mut cache, mut mem)| {
                for op in &trace {
                    match *op {
                        cppc_cache_sim::hierarchy::MemOp::Load(a) => {
                            black_box(cache.load_word(a, &mut mem).unwrap());
                        }
                        cppc_cache_sim::hierarchy::MemOp::Store(a, v) => {
                            cache.store_word(a, v, &mut mem);
                        }
                        cppc_cache_sim::hierarchy::MemOp::StoreByte(a, v) => {
                            cache.store_byte(a, v, &mut mem);
                        }
                    }
                }
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_store_paths);
criterion_main!(benches);
