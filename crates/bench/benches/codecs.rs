//! Criterion benches for the protection-code primitives: the
//! common-case hardware operations every access performs.

use cppc_bench::microbench::{BatchSize, Criterion};
use cppc_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use cppc_core::rotate::{rotate_left_bytes, rotate_right_bytes};
use cppc_ecc::interleaved::InterleavedParity;
use cppc_ecc::parity::{byte_parity64, parity64};
use cppc_ecc::secded::Secded64;

fn bench_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity");
    group.bench_function("word_parity", |b| {
        b.iter(|| parity64(black_box(0xDEAD_BEEF_0123_4567)))
    });
    group.bench_function("byte_parity", |b| {
        b.iter(|| byte_parity64(black_box(0xDEAD_BEEF_0123_4567)))
    });
    let code = InterleavedParity::new(8);
    group.bench_function("interleaved8_encode", |b| {
        b.iter(|| code.encode(black_box(0xDEAD_BEEF_0123_4567)))
    });
    group.bench_function("interleaved8_syndrome", |b| {
        let stored = code.encode(0xDEAD_BEEF_0123_4567);
        b.iter(|| code.syndrome(black_box(0xDEAD_BEEF_0123_4567), black_box(stored)))
    });
    group.finish();
}

fn bench_secded(c: &mut Criterion) {
    let mut group = c.benchmark_group("secded");
    group.bench_function("encode", |b| {
        b.iter(|| Secded64::encode(black_box(0xA5A5_0F0F_1234_5678)))
    });
    let clean = Secded64::encode(0xA5A5_0F0F_1234_5678);
    group.bench_function("decode_clean", |b| b.iter(|| black_box(clean).decode()));
    group.bench_function("decode_correct_single", |b| {
        b.iter_batched(
            || {
                let mut cw = clean;
                cw.flip_data_bit(17);
                cw
            },
            |cw| cw.decode(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_block_secded(c: &mut Criterion) {
    use cppc_ecc::secded_block::BlockSecded;
    let mut group = c.benchmark_group("block_secded_4w");
    let code = BlockSecded::new(4);
    let data = [0xDEAD_BEEFu64, 0x0123_4567, u64::MAX, 0xA5A5];
    group.bench_function("encode", |b| {
        b.iter(|| code.encode(black_box(&data)).unwrap())
    });
    let check = code.encode(&data).unwrap();
    group.bench_function("decode_clean", |b| {
        b.iter(|| code.decode(black_box(&data), black_box(check)).unwrap())
    });
    let mut corrupted = data;
    corrupted[2] ^= 1 << 33;
    group.bench_function("decode_correct_single", |b| {
        b.iter(|| {
            code.decode(black_box(&corrupted), black_box(check))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrel_shifter");
    group.bench_function("rotate_left", |b| {
        b.iter(|| rotate_left_bytes(black_box(0x0123_4567_89AB_CDEF), black_box(5)))
    });
    group.bench_function("rotate_right", |b| {
        b.iter(|| rotate_right_bytes(black_box(0x0123_4567_89AB_CDEF), black_box(5)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parity,
    bench_secded,
    bench_block_secded,
    bench_rotation
);
criterion_main!(benches);
