//! Criterion benches for the functional hierarchy simulator itself —
//! the substrate's throughput bounds how large the figure traces can be.

use cppc_bench::microbench::{BatchSize, Criterion, Throughput};
use cppc_bench::{criterion_group, criterion_main};

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::hierarchy::TwoLevelHierarchy;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_workloads::{spec2000_profiles, SharedTrace, TraceGenerator};

const OPS: usize = 50_000;

fn bench_hierarchy(c: &mut Criterion) {
    let profiles = spec2000_profiles();
    let mut group = c.benchmark_group("hierarchy_throughput");
    group.throughput(Throughput::Elements(OPS as u64));
    for name in ["gzip", "mcf", "swim"] {
        let profile = *profiles.iter().find(|p| p.name == name).unwrap();
        // Generated once; every measured iteration replays it.
        let trace = SharedTrace::generate(&profile, 3, OPS);
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let l1 = CacheGeometry::new(32 * 1024, 2, 32).unwrap();
                    let l2 = CacheGeometry::new(1024 * 1024, 4, 32).unwrap();
                    TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru)
                },
                |mut h| h.run(trace.replay()),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let profiles = spec2000_profiles();
    let profile = profiles[0];
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("gzip_generate", |b| {
        b.iter(|| TraceGenerator::new(&profile, 9).take(OPS).count())
    });
    let trace = SharedTrace::generate(&profile, 9, OPS);
    group.bench_function("gzip_shared_replay", |b| b.iter(|| trace.replay().count()));
    group.finish();
}

criterion_group!(benches, bench_hierarchy, bench_trace_generation);
criterion_main!(benches);
