//! Criterion benches for the *rare-case* machinery: CPPC recovery and
//! the spatial fault locator. The paper argues their cost is irrelevant
//! because errors are rare (§5); these benches quantify the cost anyway
//! — recovery scans every dirty word of the affected domain.

use cppc_bench::microbench::{BatchSize, BenchmarkId, Criterion};
use cppc_bench::{criterion_group, criterion_main};

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_core::{locate_spatial, CppcCache, CppcConfig, Suspect};
use cppc_fault::model::{BitFlip, FaultPattern};

fn dirty_cache(dirty_words: usize) -> (CppcCache, MainMemory) {
    let geo = CacheGeometry::new(32 * 1024, 2, 32).unwrap();
    let mut cache = CppcCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let mut mem = MainMemory::new();
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..dirty_words {
        cache
            .store_word((i as u64) * 8, rng.random(), &mut mem)
            .unwrap();
    }
    (cache, mem)
}

fn bench_single_bit_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_single_bit");
    for dirty in [64usize, 512, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(dirty), &dirty, |b, &dirty| {
            b.iter_batched(
                || {
                    let (mut cache, mem) = dirty_cache(dirty);
                    cache.flip_data_bit_at(0, 13);
                    (cache, mem)
                },
                |(mut cache, mut mem)| cache.recover_all(&mut mem).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_spatial_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_spatial_4x4");
    for dirty in [64usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(dirty), &dirty, |b, &dirty| {
            b.iter_batched(
                || {
                    let (mut cache, mem) = dirty_cache(dirty);
                    let flips: Vec<BitFlip> = (0..4)
                        .flat_map(|r| {
                            (0..4).map(move |c| BitFlip {
                                row: r,
                                col: 20 + c,
                            })
                        })
                        .collect();
                    cache.inject(&FaultPattern::new(flips));
                    (cache, mem)
                },
                |(mut cache, mut mem)| cache.recover_all(&mut mem).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_locator(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_locator");
    // The §4.5 worked example: 4 words, bits 5..=12 each.
    let e = 0b1_1111_1110_0000u64;
    let mut r3 = 0;
    let mut suspects = Vec::new();
    for row in 0..4usize {
        r3 ^= cppc_core::rotate::rotate_left_bytes(e, row as u32);
        suspects.push(Suspect {
            row,
            class: row,
            syndrome: 0xFF,
        });
    }
    group.bench_function("paper_example_4_words", |b| {
        b.iter(|| locate_spatial(r3, &suspects).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_bit_recovery,
    bench_spatial_recovery,
    bench_locator
);
criterion_main!(benches);
