//! Differential pinning of the cross-trial batch engine: the batched
//! executor must be observationally identical — trial by trial, not
//! just in aggregate — to the per-trial reference path, at every batch
//! size and thread count.

use cppc_bench::mbe::{self, MbeBatchExec, SEED, SOLID_MODEL, SPARSE_MODEL};
use cppc_campaign::{run, run_exec, trial_rng, Accumulator, CampaignConfig, TrialExec};
use cppc_fault::campaign::{Outcome, OutcomeTally};

/// Keeps every `(trial, outcome)` pair so reordering or divergence of
/// any single trial shows, not just tally drift.
#[derive(Debug, Default, PartialEq, Eq)]
struct Record {
    items: Vec<(u64, Outcome)>,
}

impl Accumulator for Record {
    type Item = Outcome;
    fn record(&mut self, trial: u64, item: Outcome) {
        self.items.push((trial, item));
    }
    fn merge(&mut self, other: Self) {
        self.items.extend(other.items);
    }
}

#[test]
fn batched_equals_sequential_trial_by_trial() {
    const TRIALS: u64 = 600;
    for model in [SOLID_MODEL, SPARSE_MODEL] {
        let mut reference = Record::default();
        for trial in 0..TRIALS {
            let mut rng = trial_rng(SEED, trial);
            Accumulator::record(
                &mut reference,
                trial,
                mbe::experiment_model(model, &mut rng),
            );
        }
        for batch in [1usize, 4, 7, 64] {
            let exec = MbeBatchExec::new(model, batch);
            let mut got = Record::default();
            exec.run_range(SEED, 0, TRIALS, &mut got);
            assert_eq!(got, reference, "model {model:?}, batch {batch}");
        }
    }
}

#[test]
fn tallies_identical_across_batch_and_threads() {
    const TRIALS: u64 = 2_000;
    for model in [SOLID_MODEL, SPARSE_MODEL] {
        let cfg = CampaignConfig::new(SEED, TRIALS).shard_size(64);
        let reference =
            run::<OutcomeTally, _>(&cfg, |rng, _trial| mbe::experiment_model(model, rng));
        assert!(reference.is_complete());
        for batch in [1usize, 8, 64] {
            for threads in [1usize, 2, 8] {
                let report = run_exec::<OutcomeTally, _>(
                    &cfg.clone().threads(threads),
                    MbeBatchExec::new(model, batch),
                );
                assert!(report.is_complete());
                assert_eq!(
                    report.result, reference.result,
                    "model {model:?}, batch {batch}, threads {threads}"
                );
            }
        }
    }
}

#[test]
fn sparse_campaign_exercises_every_outcome_class() {
    // The sparse 8x8 model must reach the locator/DUE fallback tail —
    // otherwise the batch-vs-sequential equality above would not be
    // testing the fallback seam at all.
    let report = run_exec::<OutcomeTally, _>(
        &CampaignConfig::new(SEED, 2_000).shard_size(64),
        MbeBatchExec::new(SPARSE_MODEL, 32),
    );
    let t = report.result;
    assert_eq!(t.total(), 2_000);
    assert!(t.corrected > 0, "{t:?}");
    assert!(t.due > 0, "sparse strikes must produce DUEs: {t:?}");
}
