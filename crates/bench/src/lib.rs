//! Shared harness code for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index); this library holds the pieces
//! they share: the functional simulation runner, the evaluation
//! defaults and small table-printing helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod gate;
pub mod mbe;
pub mod microbench;
pub mod obs;

use cppc_cache_sim::hierarchy::TwoLevelHierarchy;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::stats::CacheStats;
use cppc_timing::MachineConfig;
use cppc_workloads::{BenchmarkProfile, SharedTrace};

/// Default trace length (memory operations) per benchmark. Override
/// with the `CPPC_BENCH_OPS` environment variable.
pub const DEFAULT_MEMOPS: usize = 300_000;

/// Seed shared by all figure binaries so every scheme sees the same
/// access stream.
pub const EVAL_SEED: u64 = 0x15CA_2011;

/// Trace length, honouring `CPPC_BENCH_OPS`.
#[must_use]
pub fn memops() -> usize {
    std::env::var("CPPC_BENCH_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MEMOPS)
}

/// The result of running one benchmark through the Table 1 hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Mean fraction of dirty L1 words.
    pub l1_dirty_fraction: f64,
    /// Mean fraction of dirty L2 words.
    pub l2_dirty_fraction: f64,
    /// Mean cycles between accesses to the same dirty L1 word.
    pub l1_tavg: Option<f64>,
    /// Mean cycles between accesses to the same dirty L2 block.
    pub l2_tavg: Option<f64>,
}

/// Runs `profile` for `ops` operations through the paper's Table 1
/// hierarchy and collects every statistic the figures need.
///
/// `cycles_per_op` calibrates `Tavg` into cycles; use the profile's
/// instructions-per-memop times an assumed CPI of ~1 for Table 2-style
/// numbers.
///
/// # Panics
///
/// Panics if the Table 1 geometries are invalid (they are not).
#[must_use]
pub fn run_profile(profile: &BenchmarkProfile, ops: usize, seed: u64) -> RunResult {
    let trace = SharedTrace::generate(profile, seed, ops / 2 + ops);
    run_profile_trace(profile, &trace, ops)
}

/// Like [`run_profile`], but replaying a pre-generated [`SharedTrace`]
/// (generated once per campaign and reused by every scheme or thread).
/// The trace must hold at least `ops / 2 + ops` operations — warmup plus
/// measurement — so the access stream is bit-identical to
/// `run_profile(profile, ops, seed)` with the trace's seed.
///
/// # Panics
///
/// Panics if the trace is shorter than `ops / 2 + ops` operations.
#[must_use]
pub fn run_profile_trace(profile: &BenchmarkProfile, trace: &SharedTrace, ops: usize) -> RunResult {
    assert!(
        trace.len() >= ops / 2 + ops,
        "trace shorter than warmup+run"
    );
    let machine = MachineConfig::table1();
    let l1 = machine.l1d.geometry().expect("valid L1");
    let l2 = machine.l2.geometry().expect("valid L2");
    let mut h = TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru);
    h.set_cycles_per_op(profile.instructions_per_memop().round().max(1.0) as u64);
    h.set_sample_interval(2048);
    // Warm the hierarchy for half the trace length, then measure: the
    // paper's 100M-instruction Simpoints amortise compulsory misses
    // that would otherwise dominate a short synthetic trace.
    let mut replay = trace.replay();
    h.run(replay.by_ref().take(ops / 2));
    h.reset_stats();
    h.run(replay.take(ops));
    let (l1_stats, l2_stats) = h.stats();
    RunResult {
        l1: l1_stats,
        l2: l2_stats,
        l1_dirty_fraction: h.l1_dirty_fraction(),
        l2_dirty_fraction: h.l2_dirty_fraction(),
        l1_tavg: h.l1_tavg(),
        l2_tavg: h.l2_tavg(),
    }
}

/// Prints a header row followed by a separator, padding every column to
/// `width`.
pub fn print_header(columns: &[&str], width: usize) {
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat((width + 1) * columns.len()));
}

/// Prints one data row: a left-aligned label plus right-aligned values.
pub fn print_row(label: &str, values: &[String], width: usize) {
    let row: Vec<String> = values.iter().map(|v| format!("{v:>width$}")).collect();
    println!("{label:>width$} {}", row.join(" "));
}

/// Geometric mean of a slice (the usual way normalised figures report
/// their "average" bar).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "geometric mean needs positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of nothing");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_workloads::spec2000_profiles;

    #[test]
    fn run_profile_produces_stats() {
        let p = &spec2000_profiles()[0];
        let r = run_profile(p, 20_000, 1);
        assert!(r.l1.accesses() == 20_000);
        assert!(r.l1_dirty_fraction > 0.0);
        assert!(r.l1_tavg.is_some());
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memops_default() {
        // No env var in tests → default.
        assert!(memops() >= 1000);
    }
}
