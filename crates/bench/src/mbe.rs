//! The `mbe_coverage`-style fault-injection campaign shared by the
//! scaling and hot-path benchmark binaries: CPPC paper config, spatial
//! square strikes on a 2 KiB / 2-way cache.
//!
//! # Warm-state snapshots
//!
//! Every trial of this campaign starts from the *same* warm cache state
//! (way 0 fully dirty); only the injected fault differs. The hot path
//! therefore simulates the warmup prefix once per worker thread,
//! captures it ([`CppcCache::snapshot`] + [`MainMemory::snapshot`]) and
//! serves each trial by restoring the snapshot into the thread's
//! existing arenas via the process-wide [`WarmPool`] — no allocation
//! and no warmup replay in steady state.
//!
//! The warm truth is `oracle(SEED)` for every trial (the cold path
//! historically used `oracle(trial)`); outcomes are unaffected because
//! the classification is value-independent: Masked is decided by fault
//! geometry alone, parity syndromes and R3 are XOR-linear (the error
//! contribution separates from the data), and a successful recovery
//! reconstructs the exact pre-fault values. [`experiment_cold`]
//! preserves the replay-from-cold path so the snapshot oracle test can
//! check the equivalence trial by trial.

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::snapshot::MemorySnapshot;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_campaign::snapshot::WarmPool;
use cppc_core::{CppcCache, CppcConfig, SimSnapshot};
use cppc_fault::campaign::Outcome;
use cppc_fault::model::{FaultGenerator, FaultModel, FaultPattern};

/// Campaign seed shared by every binary that runs this experiment, so
/// their tallies are comparable.
pub const SEED: u64 = 0xC0DE;

/// The benchmark's solid 4x4 spatial strike.
pub const SOLID_MODEL: FaultModel = FaultModel::SpatialSquare {
    rows: 4,
    cols: 4,
    density: 1.0,
};

/// A sparse 8x8 strike that exercises the locator and DUE paths.
pub const SPARSE_MODEL: FaultModel = FaultModel::SpatialSquare {
    rows: 8,
    cols: 8,
    density: 0.4,
};

/// The campaign's cache geometry (32 sets, 256 data rows).
///
/// # Panics
///
/// Never — the geometry is valid by construction.
#[must_use]
pub fn geometry() -> CacheGeometry {
    CacheGeometry::new(2048, 2, 32).unwrap()
}

/// Ground truth: addresses of way-0 rows and their stored values.
#[must_use]
pub fn oracle(seed: u64) -> Vec<(u64, u64)> {
    let geo = geometry();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = geo.num_sets() * geo.words_per_block();
    (0..rows)
        .map(|row| {
            let set = row / geo.words_per_block();
            let word = row % geo.words_per_block();
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            (addr, rng.random())
        })
        .collect()
}

/// A worker thread's reusable trial state: the simulator pair, the warm
/// snapshots restored at the top of every trial, the fault-pattern
/// buffer and the ground-truth table.
#[derive(Debug)]
pub struct TrialContext {
    cache: CppcCache,
    mem: MainMemory,
    cache_snap: SimSnapshot,
    mem_snap: MemorySnapshot,
    pattern: FaultPattern,
    truth: Vec<(u64, u64)>,
}

/// The process-wide pool of warm contexts shared by all benchmark
/// binaries and tests that run this experiment.
static POOL: WarmPool<TrialContext> = WarmPool::new();

/// The shared warm-context pool (for benchmark reporting: captures,
/// restores, hit rate, held bytes).
#[must_use]
pub fn pool() -> &'static WarmPool<TrialContext> {
    &POOL
}

/// Identity key of the warm state: everything the warmup prefix depends
/// on — seed, geometry and CPPC configuration. The fault *model* is
/// deliberately excluded: the warm state is model-independent, so solid
/// and sparse campaigns share one pool. A change to any input re-keys
/// the pool and invalidates stale contexts.
#[must_use]
pub fn warm_identity() -> u64 {
    let geo = geometry();
    let config = CppcConfig::paper();
    // FNV-1a over the warm-state facts.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        SEED,
        geo.num_sets() as u64,
        geo.associativity() as u64,
        geo.words_per_block() as u64,
        u64::from(config.parity_ways),
        config.register_pairs as u64,
        u64::from(config.byte_shifting),
    ] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Simulates the warmup prefix from cold and captures it. Returns the
/// context plus its snapshot payload size for the `snapshot.bytes`
/// gauge.
fn warm_context() -> (TrialContext, u64) {
    let mut mem = MainMemory::new();
    let mut cache =
        CppcCache::new_l1(geometry(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let truth = oracle(SEED);
    for &(addr, v) in &truth {
        cache.store_word(addr, v, &mut mem).unwrap();
    }
    let cache_snap = cache.snapshot();
    let mem_snap = mem.snapshot();
    let bytes = cache_snap.bytes() + mem_snap.bytes();
    (
        TrialContext {
            cache,
            mem,
            cache_snap,
            mem_snap,
            pattern: FaultPattern::empty(),
            truth,
        },
        bytes,
    )
}

/// One trial against a restored warm context: restore, strike, recover,
/// classify.
fn run_trial(ctx: &mut TrialContext, model: FaultModel, rng: &mut StdRng) -> Outcome {
    ctx.cache.restore_snapshot(&ctx.cache_snap);
    ctx.mem.restore_snapshot(&ctx.mem_snap);
    let rows = ctx.cache.layout().num_rows() / 2;
    let mut generator = FaultGenerator::new(rows, rng.random());
    generator.sample_into(model, &mut ctx.pattern);
    if ctx.cache.inject(&ctx.pattern) == 0 {
        return Outcome::Masked;
    }
    match ctx.cache.recover_all(&mut ctx.mem) {
        Err(_) => Outcome::DetectedUnrecoverable,
        Ok(_) => {
            for &(addr, v) in &ctx.truth {
                if ctx.cache.peek_word(addr) != Some(v) {
                    return Outcome::SilentCorruption;
                }
            }
            Outcome::Corrected
        }
    }
}

/// One fault-injection trial of `model` on the shared warm pool.
pub fn experiment_model(model: FaultModel, rng: &mut StdRng) -> Outcome {
    POOL.with(warm_identity(), warm_context, |ctx| {
        run_trial(ctx, model, rng)
    })
}

/// One fault-injection trial: restore the warm way-0 fill, strike a 4x4
/// solid square, recover, classify. Snapshot-backed hot path.
///
/// # Panics
///
/// Panics if the paper configuration is rejected (it is not).
pub fn experiment(rng: &mut StdRng, _trial: u64) -> Outcome {
    experiment_model(SOLID_MODEL, rng)
}

/// [`experiment_model`] without the warm pool: rebuilds the simulator
/// and replays the warmup from cold every trial, warming with
/// `oracle(trial)`. This is the pre-snapshot reference path the
/// differential oracle test compares against.
pub fn experiment_model_cold(model: FaultModel, rng: &mut StdRng, trial: u64) -> Outcome {
    let mut mem = MainMemory::new();
    let mut cache =
        CppcCache::new_l1(geometry(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let truth = oracle(trial);
    for &(addr, v) in &truth {
        cache.store_word(addr, v, &mut mem).unwrap();
    }
    let rows = cache.layout().num_rows() / 2;
    let mut generator = FaultGenerator::new(rows, rng.random());
    let pattern = generator.sample(model);
    if cache.inject(&pattern) == 0 {
        return Outcome::Masked;
    }
    match cache.recover_all(&mut mem) {
        Err(_) => Outcome::DetectedUnrecoverable,
        Ok(_) => {
            for &(addr, v) in &truth {
                if cache.peek_word(addr) != Some(v) {
                    return Outcome::SilentCorruption;
                }
            }
            Outcome::Corrected
        }
    }
}

/// The replay-from-cold form of [`experiment`].
///
/// # Panics
///
/// Panics if the paper configuration is rejected (it is not).
pub fn experiment_cold(rng: &mut StdRng, trial: u64) -> Outcome {
    experiment_model_cold(SOLID_MODEL, rng, trial)
}
