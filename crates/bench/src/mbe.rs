//! The `mbe_coverage`-style fault-injection campaign shared by the
//! scaling and hot-path benchmark binaries: CPPC paper config, 4x4
//! solid spatial square strikes on a 2 KiB / 2-way cache.

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_core::{CppcCache, CppcConfig};
use cppc_fault::campaign::Outcome;
use cppc_fault::model::{FaultGenerator, FaultModel};

/// Campaign seed shared by every binary that runs this experiment, so
/// their tallies are comparable.
pub const SEED: u64 = 0xC0DE;

/// The campaign's cache geometry (32 sets, 256 data rows).
///
/// # Panics
///
/// Never — the geometry is valid by construction.
#[must_use]
pub fn geometry() -> CacheGeometry {
    CacheGeometry::new(2048, 2, 32).unwrap()
}

/// Ground truth: addresses of way-0 rows and their stored values.
#[must_use]
pub fn oracle(seed: u64) -> Vec<(u64, u64)> {
    let geo = geometry();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = geo.num_sets() * geo.words_per_block();
    (0..rows)
        .map(|row| {
            let set = row / geo.words_per_block();
            let word = row % geo.words_per_block();
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            (addr, rng.random())
        })
        .collect()
}

/// One fault-injection trial: fill way 0, strike a 4x4 solid square,
/// recover, classify.
///
/// # Panics
///
/// Panics if the paper configuration is rejected (it is not).
pub fn experiment(rng: &mut StdRng, trial: u64) -> Outcome {
    let model = FaultModel::SpatialSquare {
        rows: 4,
        cols: 4,
        density: 1.0,
    };
    let mut mem = MainMemory::new();
    let mut cache =
        CppcCache::new_l1(geometry(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let truth = oracle(trial);
    for &(addr, v) in &truth {
        cache.store_word(addr, v, &mut mem).unwrap();
    }
    let rows = cache.layout().num_rows() / 2;
    let mut generator = FaultGenerator::new(rows, rng.random());
    let pattern = generator.sample(model);
    if cache.inject(&pattern) == 0 {
        return Outcome::Masked;
    }
    match cache.recover_all(&mut mem) {
        Err(_) => Outcome::DetectedUnrecoverable,
        Ok(_) => {
            for &(addr, v) in &truth {
                if cache.peek_word(addr) != Some(v) {
                    return Outcome::SilentCorruption;
                }
            }
            Outcome::Corrected
        }
    }
}
