//! The `mbe_coverage`-style fault-injection campaign shared by the
//! scaling and hot-path benchmark binaries: CPPC paper config, spatial
//! square strikes on a 2 KiB / 2-way cache.
//!
//! # Warm-state snapshots
//!
//! Every trial of this campaign starts from the *same* warm cache state
//! (way 0 fully dirty); only the injected fault differs. The hot path
//! therefore simulates the warmup prefix once per worker thread,
//! captures it ([`CppcCache::snapshot`] + [`MainMemory::snapshot`]) and
//! serves each trial by restoring the snapshot into the thread's
//! existing arenas via the process-wide [`WarmPool`] — no allocation
//! and no warmup replay in steady state.
//!
//! The warm truth is `oracle(SEED)` for every trial (the cold path
//! historically used `oracle(trial)`); outcomes are unaffected because
//! the classification is value-independent: Masked is decided by fault
//! geometry alone, parity syndromes and R3 are XOR-linear (the error
//! contribution separates from the data), and a successful recovery
//! reconstructs the exact pre-fault values. [`experiment_cold`]
//! preserves the replay-from-cold path so the snapshot oracle test can
//! check the equivalence trial by trial.

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::snapshot::MemorySnapshot;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_campaign::snapshot::WarmPool;
use cppc_campaign::{trial_rng, Accumulator, TrialExec};
use cppc_core::{BatchOutcome, BatchScratch, BatchSim, CppcCache, CppcConfig, SimSnapshot};
use cppc_fault::campaign::Outcome;
use cppc_fault::model::{FaultGenerator, FaultModel, FaultPattern};

/// Campaign seed shared by every binary that runs this experiment, so
/// their tallies are comparable.
pub const SEED: u64 = 0xC0DE;

/// The benchmark's solid 4x4 spatial strike.
pub const SOLID_MODEL: FaultModel = FaultModel::SpatialSquare {
    rows: 4,
    cols: 4,
    density: 1.0,
};

/// A sparse 8x8 strike that exercises the locator and DUE paths.
pub const SPARSE_MODEL: FaultModel = FaultModel::SpatialSquare {
    rows: 8,
    cols: 8,
    density: 0.4,
};

/// The campaign's cache geometry (32 sets, 256 data rows).
///
/// # Panics
///
/// Never — the geometry is valid by construction.
#[must_use]
pub fn geometry() -> CacheGeometry {
    CacheGeometry::new(2048, 2, 32).unwrap()
}

/// Ground truth: addresses of way-0 rows and their stored values.
#[must_use]
pub fn oracle(seed: u64) -> Vec<(u64, u64)> {
    let geo = geometry();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = geo.num_sets() * geo.words_per_block();
    (0..rows)
        .map(|row| {
            let set = row / geo.words_per_block();
            let word = row % geo.words_per_block();
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            (addr, rng.random())
        })
        .collect()
}

/// A worker thread's reusable trial state: the simulator pair, the warm
/// snapshots restored at the top of every trial, the fault-pattern
/// buffer and the ground-truth table.
#[derive(Debug)]
pub struct TrialContext {
    cache: CppcCache,
    mem: MainMemory,
    cache_snap: SimSnapshot,
    mem_snap: MemorySnapshot,
    pattern: FaultPattern,
    truth: Vec<(u64, u64)>,
    /// Lazily built value-independent batch evaluator for this warm
    /// state (`None` until the first batched shard runs).
    batch_sim: Option<BatchSim>,
}

/// The process-wide pool of warm contexts shared by all benchmark
/// binaries and tests that run this experiment.
static POOL: WarmPool<TrialContext> = WarmPool::new();

/// The shared warm-context pool (for benchmark reporting: captures,
/// restores, hit rate, held bytes).
#[must_use]
pub fn pool() -> &'static WarmPool<TrialContext> {
    &POOL
}

/// Identity key of the warm state: everything the warmup prefix depends
/// on — seed, geometry and CPPC configuration. The fault *model* is
/// deliberately excluded: the warm state is model-independent, so solid
/// and sparse campaigns share one pool. A change to any input re-keys
/// the pool and invalidates stale contexts.
#[must_use]
pub fn warm_identity() -> u64 {
    let geo = geometry();
    let config = CppcConfig::paper();
    // FNV-1a over the warm-state facts.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        SEED,
        geo.num_sets() as u64,
        geo.associativity() as u64,
        geo.words_per_block() as u64,
        u64::from(config.parity_ways),
        config.register_pairs as u64,
        u64::from(config.byte_shifting),
    ] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Simulates the warmup prefix from cold and captures it. Returns the
/// context plus its snapshot payload size for the `snapshot.bytes`
/// gauge.
fn warm_context() -> (TrialContext, u64) {
    let mut mem = MainMemory::new();
    let mut cache =
        CppcCache::new_l1(geometry(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let truth = oracle(SEED);
    for &(addr, v) in &truth {
        cache.store_word(addr, v, &mut mem).unwrap();
    }
    let cache_snap = cache.snapshot();
    let mem_snap = mem.snapshot();
    let bytes = cache_snap.bytes() + mem_snap.bytes();
    (
        TrialContext {
            cache,
            mem,
            cache_snap,
            mem_snap,
            pattern: FaultPattern::empty(),
            truth,
            batch_sim: None,
        },
        bytes,
    )
}

/// One trial against a restored warm context: restore, strike, recover,
/// classify.
fn run_trial(ctx: &mut TrialContext, model: FaultModel, rng: &mut StdRng) -> Outcome {
    ctx.cache.restore_snapshot(&ctx.cache_snap);
    ctx.mem.restore_snapshot(&ctx.mem_snap);
    let rows = ctx.cache.layout().num_rows() / 2;
    let mut generator = FaultGenerator::new(rows, rng.random());
    generator.sample_into(model, &mut ctx.pattern);
    if ctx.cache.inject(&ctx.pattern) == 0 {
        return Outcome::Masked;
    }
    match ctx.cache.recover_all(&mut ctx.mem) {
        Err(_) => Outcome::DetectedUnrecoverable,
        Ok(_) => {
            for &(addr, v) in &ctx.truth {
                if ctx.cache.peek_word(addr) != Some(v) {
                    return Outcome::SilentCorruption;
                }
            }
            Outcome::Corrected
        }
    }
}

/// One fault-injection trial of `model` on the shared warm pool.
pub fn experiment_model(model: FaultModel, rng: &mut StdRng) -> Outcome {
    POOL.with(warm_identity(), warm_context, |ctx| {
        run_trial(ctx, model, rng)
    })
}

/// One fault-injection trial: restore the warm way-0 fill, strike a 4x4
/// solid square, recover, classify. Snapshot-backed hot path.
///
/// # Panics
///
/// Panics if the paper configuration is rejected (it is not).
pub fn experiment(rng: &mut StdRng, _trial: u64) -> Outcome {
    experiment_model(SOLID_MODEL, rng)
}

/// [`experiment_model`] without the warm pool: rebuilds the simulator
/// and replays the warmup from cold every trial, warming with
/// `oracle(trial)`. This is the pre-snapshot reference path the
/// differential oracle test compares against.
pub fn experiment_model_cold(model: FaultModel, rng: &mut StdRng, trial: u64) -> Outcome {
    let mut mem = MainMemory::new();
    let mut cache =
        CppcCache::new_l1(geometry(), CppcConfig::paper(), ReplacementPolicy::Lru).unwrap();
    let truth = oracle(trial);
    for &(addr, v) in &truth {
        cache.store_word(addr, v, &mut mem).unwrap();
    }
    let rows = cache.layout().num_rows() / 2;
    let mut generator = FaultGenerator::new(rows, rng.random());
    let pattern = generator.sample(model);
    if cache.inject(&pattern) == 0 {
        return Outcome::Masked;
    }
    match cache.recover_all(&mut mem) {
        Err(_) => Outcome::DetectedUnrecoverable,
        Ok(_) => {
            for &(addr, v) in &truth {
                if cache.peek_word(addr) != Some(v) {
                    return Outcome::SilentCorruption;
                }
            }
            Outcome::Corrected
        }
    }
}

/// The replay-from-cold form of [`experiment`].
///
/// # Panics
///
/// Panics if the paper configuration is rejected (it is not).
pub fn experiment_cold(rng: &mut StdRng, trial: u64) -> Outcome {
    experiment_model_cold(SOLID_MODEL, rng, trial)
}

// ---------------------------------------------------------------------
// Cross-trial batched execution
// ---------------------------------------------------------------------

/// Structure-of-arrays context of one batch of trials: every lane's
/// faulty `(row, error-mask, syndrome)` entries live contiguously in
/// shared arenas, so the syndrome stage of *all* lanes runs through a
/// single [`BatchSim::syndromes`] call (one vectorized instruction
/// stream) instead of one simulator walk per trial.
#[derive(Debug, Default)]
pub struct TrialBatch {
    rows: Vec<u32>,
    errs: Vec<u64>,
    syns: Vec<u64>,
    lanes: Vec<BatchLane>,
    scratch: BatchScratch,
}

/// One lane of a [`TrialBatch`]: a trial plus its slice of the arenas.
#[derive(Debug, Clone, Copy)]
struct BatchLane {
    trial: u64,
    lo: usize,
    hi: usize,
    applied: u32,
}

impl TrialBatch {
    /// An empty batch (arenas grow on first use and are then reused).
    #[must_use]
    pub fn new() -> Self {
        TrialBatch::default()
    }

    fn clear(&mut self) {
        self.rows.clear();
        self.errs.clear();
        self.syns.clear();
        self.lanes.clear();
    }
}

/// Evaluates the `trials` range in batches of `batch` lanes into
/// `acc`, bit-identically to running [`experiment_model`] per trial.
///
/// Per batch: every lane's fault pattern is sampled from its own
/// [`trial_rng`]-derived stream and gathered into the [`TrialBatch`]
/// arenas, all lanes' syndromes are computed in one vectorized pass,
/// and each lane is classified by error-delta propagation
/// ([`BatchSim::classify`]). Lanes the fast path cannot own — shared
/// parity-group syndromes inside one protection domain, i.e. locator
/// or DUE territory — fall back to the full per-trial simulator with a
/// freshly re-derived trial RNG, so their outcome is *the* reference
/// outcome. If the warm state cannot be certified fault-free
/// ([`CppcCache::batch_sim`] returns `None`) every trial of the range
/// falls back wholesale.
pub fn simulate_batch_into<A: Accumulator<Item = Outcome>>(
    ctx: &mut TrialContext,
    batch_buf: &mut TrialBatch,
    model: FaultModel,
    batch: usize,
    seed: u64,
    trials: std::ops::Range<u64>,
    acc: &mut A,
) {
    let (lo, hi) = (trials.start, trials.end);
    let batch = batch.max(1) as u64;
    if ctx.batch_sim.is_none() {
        // The pooled context may sit in an arbitrary post-trial state;
        // certify from the restored warm baseline.
        ctx.cache.restore_snapshot(&ctx.cache_snap);
        ctx.mem.restore_snapshot(&ctx.mem_snap);
        ctx.batch_sim = ctx.cache.batch_sim();
        if ctx.batch_sim.is_none() {
            crate::obs::BATCH_WHOLESALE_FALLBACKS.inc();
        }
    }
    let Some(sim) = ctx.batch_sim.take() else {
        for trial in lo..hi {
            let mut rng = trial_rng(seed, trial);
            acc.record(trial, run_trial(ctx, model, &mut rng));
        }
        return;
    };
    let sample_rows = sim.num_rows() / 2;

    let mut chunk_lo = lo;
    while chunk_lo < hi {
        let chunk_hi = (chunk_lo + batch).min(hi);
        batch_buf.clear();
        for trial in chunk_lo..chunk_hi {
            // Identical stream derivation to the per-trial path:
            // trial_rng seeds the generator, which samples the pattern.
            let mut rng = trial_rng(seed, trial);
            let mut generator = FaultGenerator::new(sample_rows, rng.random());
            generator.sample_into(model, &mut ctx.pattern);
            let arena_lo = batch_buf.rows.len();
            let applied = sim.gather(&ctx.pattern, &mut batch_buf.rows, &mut batch_buf.errs);
            batch_buf.lanes.push(BatchLane {
                trial,
                lo: arena_lo,
                hi: batch_buf.rows.len(),
                applied,
            });
        }
        // One instruction stream over every lane's error words.
        batch_buf.syns.resize(batch_buf.errs.len(), 0);
        sim.syndromes(&batch_buf.errs, &mut batch_buf.syns);

        crate::obs::BATCH_BATCHES.inc();
        crate::obs::BATCH_LANES_FILLED.add(batch_buf.lanes.len() as u64);
        for li in 0..batch_buf.lanes.len() {
            let lane = batch_buf.lanes[li];
            let outcome = if lane.applied == 0 {
                Outcome::Masked
            } else {
                match sim.classify(
                    &batch_buf.rows[lane.lo..lane.hi],
                    &mut batch_buf.errs[lane.lo..lane.hi],
                    &batch_buf.syns[lane.lo..lane.hi],
                    &mut batch_buf.scratch,
                ) {
                    BatchOutcome::Masked => Outcome::Masked,
                    BatchOutcome::Recovered { residual: false } => Outcome::Corrected,
                    BatchOutcome::Recovered { residual: true } => Outcome::SilentCorruption,
                    BatchOutcome::NeedsFull => {
                        crate::obs::BATCH_TAIL_FALLBACKS.inc();
                        let mut rng = trial_rng(seed, lane.trial);
                        run_trial(ctx, model, &mut rng)
                    }
                }
            };
            acc.record(lane.trial, outcome);
        }
        chunk_lo = chunk_hi;
    }
    ctx.batch_sim = Some(sim);
}

/// A [`TrialExec`] running the warm-pool mbe campaign through the
/// cross-trial batch engine, `batch` lanes at a time.
///
/// With `batch == 1` the pipeline still runs batched (one-lane
/// batches); the tallies are bit-identical at every batch size, thread
/// count, and with the `simd` feature disabled — the differential
/// tests pin this.
#[derive(Debug, Clone, Copy)]
pub struct MbeBatchExec {
    model: FaultModel,
    batch: usize,
}

impl MbeBatchExec {
    /// Creates the executor and records which parity kernel the probe
    /// dispatched to (`kernel.dispatch.*`).
    #[must_use]
    pub fn new(model: FaultModel, batch: usize) -> Self {
        crate::obs::record_kernel_dispatch();
        MbeBatchExec {
            model,
            batch: batch.max(1),
        }
    }

    /// The solid-4x4 executor of the standard mbe campaign.
    #[must_use]
    pub fn solid(batch: usize) -> Self {
        MbeBatchExec::new(SOLID_MODEL, batch)
    }
}

impl<A: Accumulator<Item = Outcome>> TrialExec<A> for MbeBatchExec {
    fn run_range(&self, seed: u64, lo: u64, hi: u64, acc: &mut A) {
        POOL.with(warm_identity(), warm_context, |ctx| {
            let mut batch_buf = TrialBatch::new();
            simulate_batch_into(
                ctx,
                &mut batch_buf,
                self.model,
                self.batch,
                seed,
                lo..hi,
                acc,
            );
        });
    }
}
