//! **§7 exploration — the L3 CPPC**: "We expect the energy overhead of
//! an L3 CPPC to be even less [than the L2's 7%]… the number of
//! read-before-write operations is smaller in L3 caches."
//!
//! Runs the benchmarks through a three-level hierarchy (Table 1's L1/L2
//! plus an 8MB/16-way L3) and reports CPPC's normalised energy at every
//! level — the §7 claim holds if the overhead shrinks monotonically.
//!
//! Run with `cargo run -p cppc-bench --release --bin l3_energy`.

use cppc_bench::{mean, memops, print_header, print_row, EVAL_SEED};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::hierarchy3::ThreeLevelHierarchy;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_energy::scheme::{ProtectionKind, SchemeEnergy};
use cppc_energy::tech::TechnologyNode;
use cppc_timing::counts_from_stats;
use cppc_workloads::{spec2000_profiles, TraceGenerator};

fn main() {
    let ops = memops();
    let l1_geo = CacheGeometry::new(32 * 1024, 2, 32).expect("L1");
    let l2_geo = CacheGeometry::new(1024 * 1024, 4, 32).expect("L2");
    let l3_geo = CacheGeometry::new(8 * 1024 * 1024, 16, 32).expect("L3");
    let node = TechnologyNode::Nm32;

    let scheme_pair = |size: usize, assoc: usize| {
        (
            SchemeEnergy::new(
                size,
                assoc,
                32,
                ProtectionKind::OneDimParity { ways: 8 },
                node,
            ),
            SchemeEnergy::new(size, assoc, 32, ProtectionKind::Cppc { ways: 8 }, node),
        )
    };
    let (l1_par, l1_cppc) = scheme_pair(32 * 1024, 2);
    let (l2_par, l2_cppc) = scheme_pair(1024 * 1024, 4);
    let (l3_par, l3_cppc) = scheme_pair(8 * 1024 * 1024, 16);

    println!("Section 7 exploration: CPPC energy overhead down the hierarchy");
    println!("L1 32KB/2-way, L2 1MB/4-way, L3 8MB/16-way; {ops} memory ops\n");
    print_header(&["bench", "L1 CPPC", "L2 CPPC", "L3 CPPC"], 12);

    let (mut n1, mut n2, mut n3) = (Vec::new(), Vec::new(), Vec::new());
    for profile in spec2000_profiles() {
        let mut h = ThreeLevelHierarchy::new(l1_geo, l2_geo, l3_geo, ReplacementPolicy::Lru);
        let mut generator = TraceGenerator::new(&profile, EVAL_SEED);
        h.run(generator.by_ref().take(ops / 2));
        h.reset_stats();
        h.run(generator.take(ops));
        let (s1, s2, s3) = h.stats();
        let c1 = counts_from_stats(&s1, 4);
        let c2 = counts_from_stats(&s2, 4);
        let c3 = counts_from_stats(&s3, 4);
        let r1 = l1_cppc.total_pj(&c1) / l1_par.total_pj(&c1);
        let r2 = l2_cppc.total_pj(&c2) / l2_par.total_pj(&c2);
        let r3 = if c3.reads + c3.writes == 0 {
            1.0
        } else {
            l3_cppc.total_pj(&c3) / l3_par.total_pj(&c3)
        };
        n1.push(r1);
        n2.push(r2);
        n3.push(r3);
        print_row(
            profile.name,
            &[format!("{r1:.3}"), format!("{r2:.3}"), format!("{r3:.3}")],
            12,
        );
    }
    println!();
    print_row(
        "average",
        &[
            format!("{:.3}", mean(&n1)),
            format!("{:.3}", mean(&n2)),
            format!("{:.3}", mean(&n3)),
        ],
        12,
    );
    println!();
    println!(
        "CPPC overhead: L1 {:+.1}%  ->  L2 {:+.1}%  ->  L3 {:+.1}%",
        (mean(&n1) - 1.0) * 100.0,
        (mean(&n2) - 1.0) * 100.0,
        (mean(&n3) - 1.0) * 100.0
    );
    println!("section 7 expectation: monotonically shrinking overhead.");
}
