//! Hot-path throughput benchmark and regression gate.
//!
//! Measures trials/sec of the sequential `mbe_coverage` campaign (the
//! same experiment as `campaign_scaling`) and writes the result next to
//! the pre-optimisation baseline to `BENCH_hotpath.json`. The baseline
//! figure was measured on this host immediately before the warm-state
//! snapshot rework (snapshot/restore subsystem, wide-word parity
//! kernels, allocation-free locator), with the same trial count, seed
//! and methodology (median of three runs).
//!
//! Run with `cargo run -p cppc-bench --release --bin hotpath`.
//! `--trials N` sets the campaign size (default 100000); `--out PATH`
//! redirects the output file.
//!
//! `--gate PATH` switches to regression-gate mode: instead of writing a
//! new baseline, it reads the committed `BENCH_hotpath.json` at PATH,
//! measures the current tree once and exits non-zero if throughput
//! fell below 0.9x the file's `baseline.trials_per_sec`.

use std::time::Instant;

use cppc_bench::mbe::{experiment, pool, SEED};
use cppc_campaign::json::Json;
use cppc_fault::campaign::{Campaign, OutcomeTally};

/// Sequential trials/sec measured at the pre-snapshot tree (commit
/// 918b4f9) with `--trials 100000`, median of three runs.
const BASELINE_TRIALS_PER_SEC: f64 = 84_726.0;
const BASELINE_COMMIT: &str = "918b4f9";

/// A measured run may regress to this fraction of the recorded baseline
/// before the gate fails (CI noise allowance).
const GATE_FLOOR: f64 = 0.9;

fn timed_run(trials: u64) -> (OutcomeTally, f64) {
    let start = Instant::now();
    let tally = Campaign::new(SEED).run_parallel(trials, 1, experiment);
    (tally, start.elapsed().as_secs_f64())
}

fn tally_json(tally: &OutcomeTally) -> Json {
    Json::Obj(vec![
        ("masked".into(), Json::UInt(tally.masked)),
        ("corrected".into(), Json::UInt(tally.corrected)),
        ("due".into(), Json::UInt(tally.due)),
        ("sdc".into(), Json::UInt(tally.sdc)),
    ])
}

/// Regression-gate mode: measure once, compare against the committed
/// baseline file, exit 1 on a >10% regression.
fn run_gate(path: &str, trials: u64) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate: cannot read {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("gate: {path} is not JSON: {e}"));
    let recorded = doc
        .get("baseline")
        .and_then(|b| b.get("trials_per_sec"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("gate: {path} lacks baseline.trials_per_sec"));

    println!("hot-path gate: {trials} sequential trials vs {recorded:.0} trials/sec baseline");
    let (_tally, secs) = timed_run(trials);
    let current = trials as f64 / secs;
    let ratio = current / recorded;
    println!("  measured: {current:.0} trials/sec  ({ratio:.2}x of recorded baseline)");
    if ratio < GATE_FLOOR {
        eprintln!(
            "hot-path REGRESSION: {current:.0} trials/sec is below {GATE_FLOOR}x of the \
             recorded {recorded:.0} trials/sec baseline in {path}"
        );
        std::process::exit(1);
    }
    println!("  gate passed (floor {GATE_FLOOR}x)");
}

fn main() {
    let mut trials = 100_000u64;
    let mut out = String::from("BENCH_hotpath.json");
    let mut gate: Option<String> = None;
    let mut trials_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut next = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--trials" => {
                trials = next().parse().expect("--trials needs a number");
                trials_set = true;
            }
            "--out" => out = next(),
            "--gate" => gate = Some(next()),
            other => panic!("unknown flag {other}; supported: --trials/--out/--gate"),
        }
    }

    if let Some(path) = gate {
        // Gate runs default to a smaller campaign: one run, quick enough
        // for CI, long enough to amortise the per-thread warmup capture.
        run_gate(&path, if trials_set { trials } else { 20_000 });
        return;
    }

    println!("hot-path benchmark: {trials} sequential mbe_coverage trials, 3 runs");
    let mut runs: Vec<(OutcomeTally, f64)> = (0..3)
        .map(|i| {
            let (tally, s) = timed_run(trials);
            println!(
                "  run {}: {s:.2}s  ({:.0} trials/sec)",
                i + 1,
                trials as f64 / s
            );
            (tally, s)
        })
        .collect();
    let tally = runs[0].0;
    assert!(
        runs.iter().all(|(t, _)| *t == tally),
        "tallies must be identical across runs"
    );
    runs.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"));
    let median = runs[1].1;
    let current = trials as f64 / median;
    let speedup = current / BASELINE_TRIALS_PER_SEC;
    println!("  median: {current:.0} trials/sec  ({speedup:.2}x vs pre-snapshot baseline)");
    println!(
        "  warm pool: {} captures, {} restores ({:.4} hit rate)",
        pool().captures(),
        pool().restores(),
        pool().hit_rate()
    );

    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("hotpath".into())),
        (
            "campaign".into(),
            Json::Str("mbe_coverage: CPPC paper config, 4x4 solid square, sequential".into()),
        ),
        ("seed".into(), Json::UInt(SEED)),
        ("trials".into(), Json::UInt(trials)),
        (
            "baseline".into(),
            Json::Obj(vec![
                ("commit".into(), Json::Str(BASELINE_COMMIT.into())),
                ("trials_per_sec".into(), Json::Num(BASELINE_TRIALS_PER_SEC)),
            ]),
        ),
        (
            "current".into(),
            Json::Obj(vec![
                ("median_wall_clock_secs".into(), Json::Num(median)),
                ("trials_per_sec".into(), Json::Num(current)),
            ]),
        ),
        ("speedup".into(), Json::Num(speedup)),
        ("tallies".into(), tally_json(&tally)),
        (
            "snapshot".into(),
            Json::Obj(vec![
                ("captures".into(), Json::UInt(pool().captures())),
                ("restores".into(), Json::UInt(pool().restores())),
                ("bytes".into(), Json::UInt(pool().bytes())),
                ("hit_rate".into(), Json::Num(pool().hit_rate())),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.to_string_compact() + "\n").expect("write hotpath result");
    println!("wrote {out}");
}
