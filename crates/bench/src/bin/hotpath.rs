//! Hot-path throughput benchmark.
//!
//! Measures trials/sec of the sequential `mbe_coverage` campaign (the
//! same experiment as `campaign_scaling`) and writes the result next to
//! the pre-optimisation baseline to `BENCH_hotpath.json`. The baseline
//! figure was measured on this host immediately before the
//! allocation-free hot-path rework (SoA cache arena, paged main memory,
//! buffer-reuse `Backing` API, shared traces), with the same trial
//! count, seed and methodology (median of three runs).
//!
//! Run with `cargo run -p cppc-bench --release --bin hotpath`.
//! `--trials N` sets the campaign size (default 100000); `--out PATH`
//! redirects the output file.

use std::time::Instant;

use cppc_bench::mbe::{experiment, SEED};
use cppc_campaign::json::Json;
use cppc_fault::campaign::Campaign;

/// Sequential trials/sec measured at the pre-rework tree (commit
/// 9c895c7) with `--trials 100000`, median of three runs.
const BASELINE_TRIALS_PER_SEC: f64 = 53_365.0;
const BASELINE_COMMIT: &str = "9c895c7";

fn timed_run(trials: u64) -> f64 {
    let start = Instant::now();
    let _tally = Campaign::new(SEED).run_parallel(trials, 1, experiment);
    start.elapsed().as_secs_f64()
}

fn main() {
    let mut trials = 100_000u64;
    let mut out = String::from("BENCH_hotpath.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut next = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--trials" => trials = next().parse().expect("--trials needs a number"),
            "--out" => out = next(),
            other => panic!("unknown flag {other}; supported: --trials/--out"),
        }
    }

    println!("hot-path benchmark: {trials} sequential mbe_coverage trials, 3 runs");
    let mut secs: Vec<f64> = (0..3)
        .map(|i| {
            let s = timed_run(trials);
            println!(
                "  run {}: {s:.2}s  ({:.0} trials/sec)",
                i + 1,
                trials as f64 / s
            );
            s
        })
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = secs[1];
    let current = trials as f64 / median;
    let speedup = current / BASELINE_TRIALS_PER_SEC;
    println!("  median: {current:.0} trials/sec  ({speedup:.2}x vs pre-rework baseline)");

    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("hotpath".into())),
        (
            "campaign".into(),
            Json::Str("mbe_coverage: CPPC paper config, 4x4 solid square, sequential".into()),
        ),
        ("seed".into(), Json::UInt(SEED)),
        ("trials".into(), Json::UInt(trials)),
        (
            "baseline".into(),
            Json::Obj(vec![
                ("commit".into(), Json::Str(BASELINE_COMMIT.into())),
                ("trials_per_sec".into(), Json::Num(BASELINE_TRIALS_PER_SEC)),
            ]),
        ),
        (
            "current".into(),
            Json::Obj(vec![
                ("median_wall_clock_secs".into(), Json::Num(median)),
                ("trials_per_sec".into(), Json::Num(current)),
            ]),
        ),
        ("speedup".into(), Json::Num(speedup)),
    ]);
    std::fs::write(&out, doc.to_string_compact() + "\n").expect("write hotpath result");
    println!("wrote {out}");
}
