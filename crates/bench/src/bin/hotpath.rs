//! Hot-path throughput benchmark and regression gate.
//!
//! Measures trials/sec of the `mbe_coverage` campaign two ways and
//! writes both next to their baselines in `BENCH_hotpath.json`:
//!
//! * **sequential** — the per-trial reference path (restore snapshot,
//!   inject, recover, classify), against the pre-snapshot-rework
//!   baseline (commit 918b4f9).
//! * **batched** — the cross-trial batch engine
//!   ([`cppc_bench::mbe::MbeBatchExec`]): fault patterns of a whole
//!   batch gathered into SoA arenas, syndromes of all lanes through
//!   one vectorized kernel call, error-delta classification, per-trial
//!   fallback for the locator/DUE tail. Its baseline is the per-trial
//!   throughput recorded at the previous optimisation round, and its
//!   target is ≥ 1,000,000 trials/sec. The batched tallies at the
//!   sequential leg's trial count are asserted bit-identical to the
//!   sequential tallies on every benchmark run.
//!
//! Run with `cargo run -p cppc-bench --release --bin hotpath`.
//! `--trials N` sets the sequential campaign size (default 100000);
//! `--batch-trials N` the batched campaign size (default 1000000);
//! `--batch N` the lanes per batch (default 64); `--out PATH`
//! redirects the output file.
//!
//! `--gate PATH` switches to regression-gate mode: instead of writing a
//! new baseline, it reads the committed `BENCH_hotpath.json` at PATH,
//! measures the current tree once per leg and exits non-zero if the
//! sequential leg fell below 0.9x its recorded throughput or the
//! batched leg fell below the recorded `target_trials_per_sec` floor.

use std::time::Instant;

use cppc_bench::gate::{self, BenchArgs, GATE_FLOOR};
use cppc_bench::mbe::{experiment, pool, MbeBatchExec, SEED};
use cppc_campaign::json::Json;
use cppc_campaign::{run_exec, CampaignConfig};
use cppc_fault::campaign::{Campaign, OutcomeTally};

/// Sequential trials/sec measured at the pre-snapshot tree (commit
/// 918b4f9) with `--trials 100000`, median of three runs.
const BASELINE_TRIALS_PER_SEC: f64 = 84_726.0;
const BASELINE_COMMIT: &str = "918b4f9";

/// Per-trial trials/sec at the tree immediately before the batch
/// engine landed (the `current.trials_per_sec` this benchmark recorded
/// at that commit) — the batched leg's speedup denominator.
const BATCH_BASELINE_TRIALS_PER_SEC: f64 = 223_923.0;
const BATCH_BASELINE_COMMIT: &str = "b268aba";

/// The batched leg's absolute throughput target.
const BATCH_TARGET_TRIALS_PER_SEC: f64 = 1_000_000.0;

/// Lanes per batch when `--batch` is not given.
const DEFAULT_BATCH: usize = 64;

fn timed_run(trials: u64) -> (OutcomeTally, f64) {
    let start = Instant::now();
    let tally = Campaign::new(SEED).run_parallel(trials, 1, experiment);
    (tally, start.elapsed().as_secs_f64())
}

fn timed_batched_run(trials: u64, batch: usize) -> (OutcomeTally, f64) {
    // Large shards amortise the scheduler; single-threaded so the two
    // legs measure per-core work, like-for-like.
    let cfg = CampaignConfig::new(SEED, trials)
        .shard_size(4096)
        .threads(1);
    let start = Instant::now();
    let report = run_exec::<OutcomeTally, _>(&cfg, MbeBatchExec::solid(batch));
    assert!(report.is_complete(), "batched campaign must complete");
    (report.result, start.elapsed().as_secs_f64())
}

fn tally_json(tally: &OutcomeTally) -> Json {
    Json::Obj(vec![
        ("masked".into(), Json::UInt(tally.masked)),
        ("corrected".into(), Json::UInt(tally.corrected)),
        ("due".into(), Json::UInt(tally.due)),
        ("sdc".into(), Json::UInt(tally.sdc)),
    ])
}

/// Regression-gate mode: measure each leg once, compare against the
/// committed baseline file, exit 1 on a >10% regression of either.
fn run_gate(path: &str, trials: u64, batch: usize) {
    let recorded = gate::read_baseline(path, "baseline.trials_per_sec");
    // The batched leg gates against the recorded *target* floor, not
    // its own freshest measurement: the recorded trials_per_sec is a
    // quiet-host median-of-three, which a loaded CI run can undershoot
    // by well over the noise allowance without any real regression.
    // Falling below the 1M target, by contrast, means the batch engine
    // itself stopped paying off.
    let batched_floor = gate::read_baseline(path, "batched.target_trials_per_sec");

    println!("hot-path gate: {trials} sequential trials vs {recorded:.0} trials/sec baseline");
    let (_tally, secs) = timed_run(trials);
    let sequential_ok = gate::gate_leg(
        "hot-path sequential",
        "trials",
        trials as f64 / secs,
        recorded * GATE_FLOOR,
    );

    // The batched leg runs more trials per measurement — at ≥ 1M
    // trials/sec a small campaign would time scheduler noise.
    let batched_trials = trials * 10;
    println!(
        "hot-path gate: {batched_trials} batched trials (batch {batch}) vs \
         {batched_floor:.0} trials/sec target floor"
    );
    let (_tally, secs) = timed_batched_run(batched_trials, batch);
    let batched_ok = gate::gate_leg(
        "hot-path batched",
        "trials",
        batched_trials as f64 / secs,
        batched_floor,
    );

    if !(sequential_ok && batched_ok) {
        std::process::exit(1);
    }
    println!("  gate passed (sequential floor {GATE_FLOOR}x, batched floor {batched_floor:.0} trials/sec)");
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = BenchArgs::parse(&["trials", "batch-trials", "batch", "out", "gate"]);
    let trials: u64 = args.parsed("trials", 100_000);
    let batch_trials: u64 = args.parsed("batch-trials", 1_000_000);
    let batch: usize = args.parsed("batch", DEFAULT_BATCH);
    let out: String = args.parsed("out", String::from("BENCH_hotpath.json"));

    if let Some(path) = args.get("gate") {
        // Gate runs default to a smaller campaign: one run per leg,
        // quick enough for CI, long enough to amortise the per-thread
        // warmup capture.
        run_gate(path, args.parsed("trials", 20_000), batch);
        return;
    }

    println!("hot-path benchmark: {trials} sequential mbe_coverage trials, 3 runs");
    let (tally, median) =
        gate::median_of_three("sequential", trials, "trials", || timed_run(trials));
    let current = trials as f64 / median;
    let speedup = current / BASELINE_TRIALS_PER_SEC;
    println!("  median: {current:.0} trials/sec  ({speedup:.2}x vs pre-snapshot baseline)");

    println!("hot-path benchmark: {batch_trials} batched trials (batch {batch}), 3 runs");
    let (batched_tally, batched_median) =
        gate::median_of_three("batched", batch_trials, "trials", || {
            timed_batched_run(batch_trials, batch)
        });
    let batched_current = batch_trials as f64 / batched_median;
    let batched_speedup = batched_current / BATCH_BASELINE_TRIALS_PER_SEC;
    println!(
        "  median: {batched_current:.0} trials/sec  ({batched_speedup:.2}x vs per-trial \
         baseline, target {BATCH_TARGET_TRIALS_PER_SEC:.0})"
    );
    println!("  kernel: {}", cppc_ecc::kernels::active().name());

    // The batched engine must agree with the sequential leg bit for
    // bit at the same trial count — every benchmark run re-proves it.
    let (batched_check, _) = timed_batched_run(trials, batch);
    assert_eq!(
        batched_check, tally,
        "batched tallies diverge from sequential at {trials} trials"
    );
    println!("  tally identity: batched == sequential at {trials} trials");

    println!(
        "  warm pool: {} captures, {} restores ({:.4} hit rate)",
        pool().captures(),
        pool().restores(),
        pool().hit_rate()
    );

    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("hotpath".into())),
        (
            "campaign".into(),
            Json::Str("mbe_coverage: CPPC paper config, 4x4 solid square, sequential".into()),
        ),
        ("seed".into(), Json::UInt(SEED)),
        ("trials".into(), Json::UInt(trials)),
        (
            "baseline".into(),
            Json::Obj(vec![
                ("commit".into(), Json::Str(BASELINE_COMMIT.into())),
                ("trials_per_sec".into(), Json::Num(BASELINE_TRIALS_PER_SEC)),
            ]),
        ),
        (
            "current".into(),
            Json::Obj(vec![
                ("median_wall_clock_secs".into(), Json::Num(median)),
                ("trials_per_sec".into(), Json::Num(current)),
            ]),
        ),
        ("speedup".into(), Json::Num(speedup)),
        ("tallies".into(), tally_json(&tally)),
        (
            "batched".into(),
            Json::Obj(vec![
                ("batch".into(), Json::UInt(batch as u64)),
                ("trials".into(), Json::UInt(batch_trials)),
                (
                    "kernel".into(),
                    Json::Str(cppc_ecc::kernels::active().name().into()),
                ),
                (
                    "baseline".into(),
                    Json::Obj(vec![
                        ("commit".into(), Json::Str(BATCH_BASELINE_COMMIT.into())),
                        (
                            "trials_per_sec".into(),
                            Json::Num(BATCH_BASELINE_TRIALS_PER_SEC),
                        ),
                    ]),
                ),
                (
                    "target_trials_per_sec".into(),
                    Json::Num(BATCH_TARGET_TRIALS_PER_SEC),
                ),
                ("median_wall_clock_secs".into(), Json::Num(batched_median)),
                ("trials_per_sec".into(), Json::Num(batched_current)),
                ("speedup_vs_per_trial".into(), Json::Num(batched_speedup)),
                ("tallies".into(), tally_json(&batched_tally)),
            ]),
        ),
        (
            "snapshot".into(),
            Json::Obj(vec![
                ("captures".into(), Json::UInt(pool().captures())),
                ("restores".into(), Json::UInt(pool().restores())),
                ("bytes".into(), Json::UInt(pool().bytes())),
                ("hit_rate".into(), Json::Num(pool().hit_rate())),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.to_string_compact() + "\n").expect("write hotpath result");
    println!("wrote {out}");
}
