//! **§4.6 / §4.7 coverage matrix** (no figure in the paper, but the
//! correction-capability claims the design rests on): fault-injection
//! campaigns measuring how each protection scheme disposes of each
//! fault class — Corrected, DUE, SDC or Masked.
//!
//! Expected shape (paper claims):
//!
//! * 1D parity: detects but never corrects dirty faults (all DUE);
//! * SECDED + interleaving: corrects everything up to 8-wide strikes;
//! * CPPC (1 pair, byte shifting): corrects all spatial MBEs in an 8x8
//!   square except the irreducible patterns (solid 8x8, distance-4
//!   alias) — those are DUE, never SDC;
//! * CPPC (2 pairs): corrects the 8x8 too;
//! * CPPC (8 pairs, no shifting): corrects everything in the square.
//!
//! Run with `cargo run -p cppc-bench --bin mbe_coverage --release`.
//! Accepts `--threads N` (0 = all CPUs, default 1) and `--trials N`;
//! campaigns run through the `cppc-campaign` engine, so the matrix is
//! bit-identical at every thread count.

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_core::baselines::{OneDimParityCache, SecdedCache, TwoDimParityCache};
use cppc_core::{CppcCache, CppcConfig};
use cppc_fault::campaign::{Campaign, Outcome, OutcomeTally};
use cppc_fault::model::{FaultGenerator, FaultModel};

const DEFAULT_TRIALS: u64 = 400;

/// `--threads N` / `--trials N` from argv, with defaults.
fn parse_args() -> (usize, u64) {
    let mut threads = 1usize;
    let mut trials = DEFAULT_TRIALS;
    let mut args = std::env::args().skip(1);
    fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
        value
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{flag} needs a number"))
    }
    while let Some(flag) = args.next() {
        let value = args.next();
        match flag.as_str() {
            "--threads" => threads = parse(value, "--threads"),
            "--trials" => trials = parse(value, "--trials"),
            other => panic!("unknown flag {other}; supported: --threads N, --trials N"),
        }
    }
    (threads, trials)
}

fn geometry() -> CacheGeometry {
    CacheGeometry::new(2048, 2, 32).unwrap() // 32 sets, 256 rows
}

/// Ground truth: addresses of way-0 rows and their stored values.
fn oracle(seed: u64) -> Vec<(u64, u64)> {
    let geo = geometry();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = geo.num_sets() * geo.words_per_block(); // way 0 only
    (0..rows)
        .map(|row| {
            let set = row / geo.words_per_block();
            let word = row % geo.words_per_block();
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            (addr, rng.random())
        })
        .collect()
}

fn fault_models() -> Vec<(&'static str, FaultModel)> {
    vec![
        ("single bit", FaultModel::TemporalSingleBit),
        ("2-bit vertical", FaultModel::VerticalStripe { rows: 2 }),
        ("8-bit horizontal", FaultModel::HorizontalBurst { cols: 8 }),
        (
            "4x4 square",
            FaultModel::SpatialSquare {
                rows: 4,
                cols: 4,
                density: 1.0,
            },
        ),
        (
            "8x8 sparse",
            FaultModel::SpatialSquare {
                rows: 8,
                cols: 8,
                density: 0.4,
            },
        ),
        (
            "8x8 solid",
            FaultModel::SpatialSquare {
                rows: 8,
                cols: 8,
                density: 1.0,
            },
        ),
    ]
}

fn run_cppc(config: CppcConfig, model: FaultModel, trials: u64, threads: usize) -> OutcomeTally {
    Campaign::new(0xC0DE).run_parallel(trials, threads, |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = CppcCache::new_l1(geometry(), config, ReplacementPolicy::Lru).unwrap();
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem).unwrap();
        }
        let rows = cache.layout().num_rows() / 2; // way 0 rows only
        let mut generator = FaultGenerator::new(rows, rng.random());
        let pattern = generator.sample(model);
        if cache.inject(&pattern) == 0 {
            return Outcome::Masked;
        }
        match cache.recover_all(&mut mem) {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(_) => {
                for &(addr, v) in &truth {
                    if cache.peek_word(addr) != Some(v) {
                        return Outcome::SilentCorruption;
                    }
                }
                Outcome::Corrected
            }
        }
    })
}

fn run_parity(model: FaultModel, trials: u64, threads: usize) -> OutcomeTally {
    Campaign::new(0xC0DE).run_parallel(trials, threads, |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = OneDimParityCache::new(geometry(), 8, ReplacementPolicy::Lru);
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem);
        }
        let rows = cache.layout().num_rows() / 2;
        let mut generator = FaultGenerator::new(rows, rng.random());
        let pattern = generator.sample(model);
        if cache.inject(&pattern) == 0 {
            return Outcome::Masked;
        }
        for &(addr, v) in &truth {
            match cache.load_word(addr, &mut mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        // All loads matched — every flipped bit was hidden (even flips
        // per parity group): silent, but harmless this time. Count as
        // SDC-escape only if data actually differs (checked above), so
        // this is effectively "masked by parity blindness".
        Outcome::Masked
    })
}

fn run_secded(model: FaultModel, trials: u64, threads: usize) -> OutcomeTally {
    Campaign::new(0xC0DE).run_parallel(trials, threads, |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = SecdedCache::new(geometry(), true, ReplacementPolicy::Lru);
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem);
        }
        let logical_rows = cache.layout().num_rows() / 2;
        // Translate the fault model into a physical strike on the
        // interleaved array (8 logical rows per physical row).
        let (rows, cols) = match model {
            FaultModel::TemporalSingleBit => (1, 1),
            FaultModel::VerticalStripe { rows } => (rows, 1),
            FaultModel::HorizontalBurst { cols } => (1, cols),
            FaultModel::SpatialSquare { rows, cols, .. } => (rows, cols),
            FaultModel::TemporalMultiBit { .. } => (1, 1),
        };
        let physical_rows = logical_rows / 8;
        let prows = rows.div_ceil(8).max(1).min(physical_rows);
        let row0 = rng.random_range(0..=(physical_rows - prows));
        let col0 = rng.random_range(0..=(512 - cols));
        let flips = cache.inject_spatial(row0, col0, prows, cols);
        if flips.is_empty() {
            return Outcome::Masked;
        }
        for &(addr, v) in &truth {
            match cache.load_word(addr, &mut mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        Outcome::Corrected
    })
}

fn run_twodim(
    vertical_rows: usize,
    model: FaultModel,
    trials: u64,
    threads: usize,
) -> OutcomeTally {
    Campaign::new(0xC0DE).run_parallel(trials, threads, |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = TwoDimParityCache::new(geometry(), vertical_rows, ReplacementPolicy::Lru);
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem);
        }
        let rows = cache.layout().num_rows() / 2;
        let mut generator = FaultGenerator::new(rows, rng.random());
        let pattern = generator.sample(model);
        if cache.inject(&pattern) == 0 {
            return Outcome::Masked;
        }
        match cache.recover_all() {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(()) => {
                for &(addr, v) in &truth {
                    if cache.peek_word(addr) != Some(v) {
                        return Outcome::SilentCorruption;
                    }
                }
                Outcome::Corrected
            }
        }
    })
}

fn print_tally(label: &str, t: &OutcomeTally) {
    println!(
        "  {label:<22} corrected {:>5.1}%  due {:>5.1}%  sdc {:>5.1}%  masked {:>5.1}%",
        t.corrected as f64 / t.total() as f64 * 100.0,
        t.due as f64 / t.total() as f64 * 100.0,
        t.sdc as f64 / t.total() as f64 * 100.0,
        t.masked as f64 / t.total() as f64 * 100.0,
    );
}

fn main() {
    let (threads, trials) = parse_args();
    println!(
        "Spatial/temporal MBE coverage matrix ({trials} trials per cell, {threads} thread(s))"
    );
    println!("cache: 2KB 2-way 32B blocks, way 0 fully dirty\n");
    for (name, model) in fault_models() {
        println!("fault: {name}");
        print_tally("1D parity", &run_parity(model, trials, threads));
        print_tally("SECDED+interleave", &run_secded(model, trials, threads));
        print_tally(
            "CPPC 1 pair",
            &run_cppc(CppcConfig::paper(), model, trials, threads),
        );
        print_tally(
            "CPPC 2 pairs",
            &run_cppc(CppcConfig::two_pairs(), model, trials, threads),
        );
        print_tally(
            "CPPC 8 pairs",
            &run_cppc(CppcConfig::eight_pairs(), model, trials, threads),
        );
        print_tally("2D parity (1 row)", &run_twodim(1, model, trials, threads));
        print_tally("2D parity (8 rows)", &run_twodim(8, model, trials, threads));
        println!();
    }
    println!("expected shape: 1D parity all-DUE on dirty faults; SECDED and");
    println!("CPPC-8-pairs correct everything; CPPC-1-pair DUEs only on the");
    println!("irreducible 8x8/distance-4 patterns; SDC stays at zero everywhere.");
    println!("The single-vertical-row 2D parity — the paper's evaluated 2D");
    println!("configuration — corrects single-bit faults only: any multi-row");
    println!("fault collapses onto its one vertical row (all-DUE), which is why");
    println!("section 6 compares its energy but not its reliability.");
}
