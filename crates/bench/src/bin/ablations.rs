//! **Ablations** of the design choices `DESIGN.md` calls out:
//!
//! 1. single-ported vs dual-ported L1 (§7): how much of CPPC's tiny CPI
//!    overhead is owed to the separate read port + cycle stealing;
//! 2. early write-back (related work [2, 15], §2): dirty-residency
//!    reduction vs write-back traffic — the alternative the paper
//!    argues is more expensive than CPPC;
//! 3. parity-ways scaling (§3.4): MTTF and detection coverage vs code
//!    storage;
//! 4. register-pair scaling (§4.6/§4.7): locator coverage and aliasing
//!    MTTF vs area.
//!
//! Run with `cargo run -p cppc-bench --release --bin ablations`.

use cppc_bench::{mean, memops, print_header, print_row, EVAL_SEED};
use cppc_cache_sim::cache::Cache;
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_energy::AreaModel;
use cppc_reliability::mttf::{aliasing_vulnerable_bits, mttf_aliasing_years, mttf_cppc_years};
use cppc_reliability::ReliabilityParams;
use cppc_timing::{L1Scheme, MachineConfig, PortConfig, TimingModel};
use cppc_workloads::{spec2000_profiles, SharedTrace};

fn ports_ablation(ops: usize) {
    println!("1) port organisation (section 7): CPPC CPI overhead\n");
    let model = TimingModel::new(MachineConfig::table1());
    let mut dual = Vec::new();
    let mut single = Vec::new();
    for p in spec2000_profiles() {
        let base = model.simulate(&p, L1Scheme::OneDimParity, ops, EVAL_SEED);
        let d = model.breakdown_with_ports(
            &p,
            L1Scheme::Cppc,
            PortConfig::SeparateReadWrite,
            ops,
            base.l1_stats,
            base.l2_stats,
        );
        let s = model.breakdown_with_ports(
            &p,
            L1Scheme::Cppc,
            PortConfig::SinglePorted,
            ops,
            base.l1_stats,
            base.l2_stats,
        );
        dual.push(d.cpi() / base.cpi() - 1.0);
        single.push(s.cpi() / base.cpi() - 1.0);
    }
    println!(
        "   dual-ported (paper):   {:+.2}% avg CPI overhead",
        mean(&dual) * 100.0
    );
    println!(
        "   single-ported:         {:+.2}% avg CPI overhead",
        mean(&single) * 100.0
    );
    println!("   -> the separate read port + cycle stealing carry the claim.\n");
}

fn early_writeback_ablation(trace: &SharedTrace) {
    println!("2) early write-back (related work [2,15]): dirty residency vs traffic\n");
    print_header(&["scrub every", "dirty%", "writebacks"], 14);
    let geo = CacheGeometry::new(32 * 1024, 2, 32).expect("L1");
    for interval in [0usize, 4096, 1024, 256, 64] {
        let mut cache = Cache::new(geo, ReplacementPolicy::Lru);
        let mut mem = MainMemory::new();
        let mut dirty_samples = Vec::new();
        for (i, op) in trace.replay().enumerate() {
            match op {
                cppc_cache_sim::hierarchy::MemOp::Load(a) => {
                    cache.load_word(a, &mut mem);
                }
                cppc_cache_sim::hierarchy::MemOp::Store(a, v) => {
                    cache.store_word(a, v, &mut mem);
                }
                cppc_cache_sim::hierarchy::MemOp::StoreByte(a, v) => {
                    cache.store_byte(a, v, &mut mem);
                }
            }
            if interval > 0 && i % interval == interval - 1 {
                cache.early_writeback(4, &mut mem);
            }
            if i % 1024 == 0 {
                dirty_samples.push(cache.dirty_word_count() as f64 / geo.total_words() as f64);
            }
        }
        print_row(
            &(if interval == 0 {
                "never".to_string()
            } else {
                format!("{interval} ops")
            }),
            &[
                format!("{:.1}", mean(&dirty_samples) * 100.0),
                format!("{}", cache.stats().writebacks),
            ],
            14,
        );
    }
    println!("   -> scrubbing buys reliability with write-back energy; CPPC");
    println!("      keeps the dirty data and corrects it instead.\n");
}

fn parity_ways_ablation() {
    println!("3) parity-ways scaling (section 3.4): L1 point\n");
    print_header(&["ways", "MTTF (y)", "area ovh"], 14);
    let params = ReliabilityParams::paper_l1();
    for ways in [1u32, 2, 4, 8] {
        print_row(
            &ways.to_string(),
            &[
                format!("{:.2e}", mttf_cppc_years(&params, ways)),
                format!(
                    "{:.2}%",
                    AreaModel::cppc(32 * 1024, ways, 1, 64).overhead_fraction() * 100.0
                ),
            ],
            14,
        );
    }
    println!("   -> correction capability scales linearly with parity bits.\n");
}

fn register_pairs_ablation() {
    println!("4) register-pair scaling (sections 4.6/4.7): L2 point\n");
    print_header(&["pairs", "alias MTTF", "extra bits"], 14);
    let params = ReliabilityParams::paper_l2();
    for pairs in [1usize, 2, 4, 8] {
        let alias = mttf_aliasing_years(&params, aliasing_vulnerable_bits(pairs));
        let base = AreaModel::cppc(1024 * 1024, 8, 1, 256).overhead_bits();
        let this = AreaModel::cppc(1024 * 1024, 8, pairs, 256).overhead_bits();
        print_row(
            &pairs.to_string(),
            &[
                if alias.is_infinite() {
                    "eliminated".to_string()
                } else {
                    format!("{alias:.2e} y")
                },
                format!("{:+.0}", this - base),
            ],
            14,
        );
    }
    println!("   -> a few hundred register bits buy orders of magnitude;");
    println!("      eight pairs remove both the shifter and the aliasing window.");
}

fn write_through_ablation(trace: &SharedTrace) {
    use cppc_cache_sim::write_through::WriteThroughCache;
    use cppc_energy::scheme::{AccessCounts, ProtectionKind, SchemeEnergy};
    use cppc_energy::tech::TechnologyNode;

    println!("5) write-through L1 (section 1's framing): parity suffices, traffic doesn't\n");
    let geo = CacheGeometry::new(32 * 1024, 2, 32).expect("L1");
    let node = TechnologyNode::Nm32;

    // Write-back + CPPC.
    let mut wb = Cache::new(geo, ReplacementPolicy::Lru);
    let mut mem_wb = MainMemory::new();
    // Write-through + plain parity.
    let mut wt = WriteThroughCache::new(geo, ReplacementPolicy::Lru);
    let mut mem_wt = MainMemory::new();
    for op in trace.replay() {
        match op {
            cppc_cache_sim::hierarchy::MemOp::Load(a) => {
                wb.load_word(a, &mut mem_wb);
                wt.load_word(a, &mut mem_wt);
            }
            cppc_cache_sim::hierarchy::MemOp::Store(a, v) => {
                wb.store_word(a, v, &mut mem_wb);
                wt.store_word(a, v, &mut mem_wt);
            }
            cppc_cache_sim::hierarchy::MemOp::StoreByte(a, v) => {
                wb.store_byte(a, v, &mut mem_wb);
                wt.store_byte(a, v, &mut mem_wt);
            }
        }
    }

    let l1_cppc = SchemeEnergy::new(32 * 1024, 2, 32, ProtectionKind::Cppc { ways: 8 }, node);
    let l1_par = SchemeEnergy::new(
        32 * 1024,
        2,
        32,
        ProtectionKind::OneDimParity { ways: 8 },
        node,
    );
    let l2_par = SchemeEnergy::new(
        1024 * 1024,
        4,
        32,
        ProtectionKind::OneDimParity { ways: 8 },
        node,
    );
    let wb_counts = AccessCounts {
        reads: wb.stats().load_hits,
        writes: wb.stats().store_hits + wb.stats().fills,
        stores_to_dirty: wb.stats().stores_to_dirty,
        miss_fills: wb.stats().fills,
        words_per_line: 4,
        silent_writes: 0,
    };
    // WB: L1 CPPC energy + write-back traffic into L2.
    let wb_energy = l1_cppc.total_pj(&wb_counts)
        + wb.stats().writebacks as f64 * l2_par.model().write_energy_pj();
    // WT: parity L1 + one L2 write per store.
    let wt_counts = AccessCounts {
        reads: wt.stats().load_hits,
        writes: wt.stats().store_hits + wt.stats().fills,
        stores_to_dirty: 0,
        miss_fills: wt.stats().fills,
        words_per_line: 4,
        silent_writes: 0,
    };
    let wt_energy =
        l1_par.total_pj(&wt_counts) + wt.store_traffic() as f64 * l2_par.model().write_energy_pj();

    println!(
        "   write-back + CPPC:      {:>8.1} uJ  ({} L2 write-backs)",
        wb_energy / 1e6,
        wb.stats().writebacks
    );
    println!(
        "   write-through + parity: {:>8.1} uJ  ({} L2 store writes)",
        wt_energy / 1e6,
        wt.store_traffic()
    );
    println!(
        "   -> write-through pays {:.1}x the energy; that is why write-back",
        wt_energy / wb_energy
    );
    println!("      caches dominate and need correction, not just detection.\n");
}

fn icr_ablation(trace: &SharedTrace) {
    use cppc_core::icr::IcrCache;
    use cppc_core::{CppcCache, CppcConfig};

    println!("6) in-cache replication (related work [24], section 2's critique)\n");
    let geo = CacheGeometry::new(32 * 1024, 2, 32).expect("L1");
    let mut icr = IcrCache::new(geo, 8, ReplacementPolicy::Lru);
    let mut mem_icr = MainMemory::new();
    let mut cppc =
        CppcCache::new_l1(geo, CppcConfig::paper(), ReplacementPolicy::Lru).expect("config");
    let mut mem_cppc = MainMemory::new();
    for op in trace.replay() {
        match op {
            cppc_cache_sim::hierarchy::MemOp::Load(a) => {
                let _ = icr.load_word(a, &mut mem_icr);
                let _ = cppc.load_word(a, &mut mem_cppc);
            }
            cppc_cache_sim::hierarchy::MemOp::Store(a, v) => {
                icr.store_word(a, v, &mut mem_icr);
                let _ = cppc.store_word(a, v, &mut mem_cppc);
            }
            cppc_cache_sim::hierarchy::MemOp::StoreByte(a, v) => {
                icr.store_byte(a, v, &mut mem_icr);
                let _ = cppc.store_byte(a, v, &mut mem_cppc);
            }
        }
    }
    println!(
        "   ICR (half capacity):  miss rate {:5.2}%, {:>8} replica word writes,",
        icr.cache_stats().miss_rate() * 100.0,
        icr.stats().replica_writes
    );
    println!(
        "                         {:>6} dirty blocks left unprotected",
        icr.stats().unprotected_evictions
    );
    println!(
        "   CPPC (full capacity): miss rate {:5.2}%, {:>8} read-before-writes,",
        cppc.cache_stats().miss_rate() * 100.0,
        cppc.stats().read_before_writes
    );
    println!("                         every dirty word protected");
    println!("   -> the section 2 critique, quantified: ICR pays misses and");
    println!("      replica writes, and still leaves dirty data exposed.");
}

fn main() {
    let ops = memops();
    println!("Design-choice ablations ({ops} memory ops where traces are used)\n");
    // Each trace is generated once and replayed by every ablation that
    // needs it (the gcc-like one is consumed twice).
    let profiles = spec2000_profiles();
    let gzip_trace = SharedTrace::generate(&profiles[0], EVAL_SEED, ops);
    let gcc_trace = SharedTrace::generate(&profiles[2], EVAL_SEED, ops);
    ports_ablation(ops);
    early_writeback_ablation(&gcc_trace);
    parity_ways_ablation();
    register_pairs_ablation();
    println!();
    write_through_ablation(&gzip_trace);
    icr_ablation(&gcc_trace);
}
