//! **Figure 11**: dynamic energy of L1 protection schemes, normalised
//! to the one-dimensional-parity L1 cache.
//!
//! Paper result: CPPC ≈ +14%, SECDED (8-way interleaved) ≈ +42%,
//! two-dimensional parity ≈ +70% on average.
//!
//! Run with `cargo run -p cppc-bench --bin fig11_l1_energy --release`.

use cppc_bench::{mean, memops, print_header, print_row, run_profile, EVAL_SEED};
use cppc_energy::scheme::{ProtectionKind, SchemeEnergy};
use cppc_energy::tech::TechnologyNode;
use cppc_timing::{counts_from_stats, MachineConfig};
use cppc_workloads::spec2000_profiles;

fn main() {
    let ops = memops();
    let machine = MachineConfig::table1();
    let (size, assoc, block) = (
        machine.l1d.size_bytes,
        machine.l1d.associativity,
        machine.l1d.block_bytes,
    );
    let node = TechnologyNode::Nm32;
    let parity = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::OneDimParity { ways: 8 },
        node,
    );
    let cppc = SchemeEnergy::new(size, assoc, block, ProtectionKind::Cppc { ways: 8 }, node);
    let secded = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::Secded { interleaved: true },
        node,
    );
    let twodim = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::TwoDimParity { ways: 8 },
        node,
    );

    println!("Figure 11: normalised L1 dynamic energy (32nm, Table 1 L1D)");
    println!("trace: {ops} memory ops per benchmark\n");
    print_header(&["bench", "CPPC", "SECDED", "2D-parity"], 12);

    let wpl = (block / 8) as u32;
    let (mut nc, mut ns, mut nt) = (Vec::new(), Vec::new(), Vec::new());
    for profile in spec2000_profiles() {
        let run = run_profile(&profile, ops, EVAL_SEED);
        let counts = counts_from_stats(&run.l1, wpl);
        let base = parity.total_pj(&counts);
        let c = cppc.total_pj(&counts) / base;
        let s = secded.total_pj(&counts) / base;
        let t = twodim.total_pj(&counts) / base;
        nc.push(c);
        ns.push(s);
        nt.push(t);
        print_row(
            profile.name,
            &[format!("{c:.3}"), format!("{s:.3}"), format!("{t:.3}")],
            12,
        );
    }
    println!();
    print_row(
        "average",
        &[
            format!("{:.3}", mean(&nc)),
            format!("{:.3}", mean(&ns)),
            format!("{:.3}", mean(&nt)),
        ],
        12,
    );
    println!();
    println!(
        "CPPC   : avg {:+.1}%   (paper: +14%)",
        (mean(&nc) - 1.0) * 100.0
    );
    println!(
        "SECDED : avg {:+.1}%   (paper: +42%)",
        (mean(&ns) - 1.0) * 100.0
    );
    println!(
        "2D par : avg {:+.1}%   (paper: +70%)",
        (mean(&nt) - 1.0) * 100.0
    );
}
