//! **§7 exploration — multiprocessor CPPC**: "In invalidate protocols,
//! since many dirty blocks may be invalidated, the number of
//! read-before-write operations might decrease which might lead to
//! better efficiency in multiprocessor CPPCCs."
//!
//! Sweeps the fraction of shared accesses on a 4-core MSI system and
//! reports the machine-wide read-before-write rate (stores landing on
//! locally-dirty words) together with the invalidation traffic.
//!
//! Run with `cargo run -p cppc-bench --release --bin coherence_rbw`.

use cppc_bench::{memops, print_header, print_row};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_coherence::{CoherentSystem, SharedTraceGenerator};

fn main() {
    let ops = memops();
    let cores = 4;
    println!("Section 7 exploration: invalidate-protocol effect on CPPC RBW rate");
    println!("{cores} cores, private 32KB L1s, shared 1MB L2, {ops} total ops\n");
    print_header(
        &["sharing", "rbw/store", "dirty-inv", "inval", "L2miss%"],
        12,
    );

    for sharing_pct in [0u32, 10, 25, 50, 75] {
        let mut sys = CoherentSystem::new(
            cores,
            CacheGeometry::new(32 * 1024, 2, 32).expect("L1"),
            CacheGeometry::new(1024 * 1024, 4, 32).expect("L2"),
            ReplacementPolicy::Lru,
        );
        let trace = SharedTraceGenerator::new(
            cores,
            64 * 1024, // private region per core
            16 * 1024, // hot shared region
            f64::from(sharing_pct) / 100.0,
            0.35,
            0xC0DE ^ u64::from(sharing_pct),
        );
        sys.run(trace.take(ops));
        let rbw_rate = sys.total_stores_to_dirty() as f64 / sys.total_stores() as f64;
        print_row(
            &format!("{sharing_pct}%"),
            &[
                format!("{rbw_rate:.4}"),
                format!("{}", sys.stats().dirty_invalidations),
                format!("{}", sys.stats().invalidations),
                format!("{:.1}", sys.l2_stats().miss_rate() * 100.0),
            ],
            12,
        );
    }
    println!();
    println!("section 7 expectation: the rbw/store rate falls as sharing grows,");
    println!("because invalidations keep removing dirty blocks from the L1s.");
}
