//! Trace-pipeline throughput benchmark and regression gate.
//!
//! Measures hierarchy-drive ops/sec of one synthetic trace through the
//! three ingestion paths and writes them to `BENCH_timing.json`:
//!
//! * **sequential** — the materialize-then-replay baseline: parse the
//!   text trace into a `SharedTrace`, then step the hierarchy one op
//!   at a time (the pipeline as it existed before the binary format).
//! * **bin_materialize** — decode the whole binary trace into a
//!   `SharedTrace`, gather it into an `OpBatch` and drive the batched
//!   fast path once.
//! * **streaming** — the chunked `BinTraceReader` decoding straight
//!   out of its reusable buffer into a recycled `OpBatch`, feeding
//!   `run_batch` as it goes (O(1) memory; see `docs/TRACES.md`).
//!
//! Every leg re-reads its file from disk, so the rates compare whole
//! pipelines, not just decode loops; the final hierarchy digests are
//! asserted identical across legs on every run. The streaming leg must
//! hold ≥ [`TARGET_MIN_SPEEDUP`]x over the sequential baseline.
//!
//! Run with `cargo run -p cppc-bench --release --bin timing`.
//! `--ops N` sets the trace length (default 2000000); `--bench NAME`
//! and `--seed N` pick the workload; `--out PATH` redirects the output
//! file.
//!
//! `--gate PATH` switches to regression-gate mode: reads the committed
//! `BENCH_timing.json` at PATH, measures each leg once (default
//! `--ops 500000`) and exits non-zero if any leg fell below
//! [`cppc_bench::gate::GATE_FLOOR`]x its recorded ops/sec or the
//! streaming-vs-sequential speedup fell below the recorded target.

use std::time::Instant;

use cppc_bench::experiments::trace_digest;
use cppc_bench::gate::{self, BenchArgs, GATE_FLOOR};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::hierarchy::TwoLevelHierarchy;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::json::Json;
use cppc_workloads::{
    binfmt, spec2000_profiles, write_trace, BinTraceReader, OpBatch, SharedTrace, TraceGenerator,
};

/// The streaming leg's required advantage over the sequential
/// materialize-then-replay baseline.
const TARGET_MIN_SPEEDUP: f64 = 2.0;

/// The three pipeline legs, in baseline-first order.
const LEGS: [&str; 3] = ["sequential", "bin_materialize", "streaming"];

/// The drive target: the paper's Table 1 machine shape (32 KB 2-way L1,
/// 1 MB 4-way L2, 32-byte lines), so the rates describe the pipeline on
/// the geometry the reproduction actually evaluates.
fn bench_hierarchy() -> TwoLevelHierarchy {
    let l1 = CacheGeometry::new(32 * 1024, 2, 32).expect("L1 geometry");
    let l2 = CacheGeometry::new(1024 * 1024, 4, 32).expect("L2 geometry");
    TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru)
}

/// One leg's measurement: the final hierarchy digest (asserted
/// identical across legs and runs) and the wall-clock seconds.
fn timed_leg(leg: &str, text_path: &std::path::Path, bin_path: &std::path::Path) -> (u64, f64) {
    let start = Instant::now();
    let digest = match leg {
        "sequential" => {
            let file = std::fs::File::open(text_path).expect("open text trace");
            let ops = cppc_workloads::read_trace(std::io::BufReader::new(file))
                .expect("parse text trace");
            let trace = SharedTrace::from_ops(ops);
            let mut h = bench_hierarchy();
            h.run(trace.replay());
            trace_digest(&h)
        }
        "bin_materialize" => {
            let trace = SharedTrace::from_binary_file(bin_path).expect("read binary trace");
            let batch = trace.batch();
            let mut h = bench_hierarchy();
            h.run_batch(&batch);
            trace_digest(&h)
        }
        "streaming" => {
            let mut reader = BinTraceReader::open(bin_path).expect("open binary trace");
            let mut h = bench_hierarchy();
            let mut batch = OpBatch::new();
            binfmt::drive(&mut reader, &mut h, &mut batch).expect("stream binary trace");
            trace_digest(&h)
        }
        other => panic!("unknown leg {other}"),
    };
    (digest, start.elapsed().as_secs_f64())
}

/// Writes the benchmark's trace to both formats under a
/// process-private temp directory; returns `(dir, text_path,
/// bin_path)`. The caller removes `dir` when done.
fn write_traces(
    bench: &str,
    ops: usize,
    seed: u64,
) -> (std::path::PathBuf, std::path::PathBuf, std::path::PathBuf) {
    let profiles = spec2000_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.name == bench)
        .unwrap_or_else(|| panic!("unknown benchmark '{bench}'"));
    let generated: Vec<_> = TraceGenerator::new(profile, seed).take(ops).collect();
    let dir = std::env::temp_dir().join(format!("cppc-timing-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let text_path = dir.join("trace.txt");
    let bin_path = dir.join("trace.cppct");
    let mut text = std::io::BufWriter::new(std::fs::File::create(&text_path).expect("create"));
    write_trace(&mut text, generated.iter().copied()).expect("write text trace");
    drop(text);
    binfmt::write_bin_trace_file(&bin_path, &generated).expect("write binary trace");
    (dir, text_path, bin_path)
}

/// Regression-gate mode: measure each leg once against the recorded
/// per-leg floors, then re-check the streaming-vs-sequential speedup
/// target on the fresh measurements.
fn run_gate(path: &str, bench: &str, ops: usize, seed: u64) {
    let target = gate::read_baseline(path, "target_min_speedup");
    let (dir, text_path, bin_path) = write_traces(bench, ops, seed);

    println!("timing gate: {ops} ops of '{bench}' vs {path}");
    let mut ok = true;
    let mut rates = std::collections::HashMap::new();
    let mut digests = Vec::new();
    for leg in LEGS {
        let recorded = gate::read_baseline(path, &format!("legs.{leg}.ops_per_sec"));
        let (digest, secs) = timed_leg(leg, &text_path, &bin_path);
        let rate = ops as f64 / secs;
        ok &= gate::gate_leg(&format!("timing {leg}"), "ops", rate, recorded * GATE_FLOOR);
        rates.insert(leg, rate);
        digests.push(digest);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "hierarchy digests diverge across pipeline legs"
    );

    // The speedup is a same-host, same-run ratio, so it gates at the
    // full recorded target with no noise allowance.
    let speedup = rates["streaming"] / rates["sequential"];
    println!("  streaming vs sequential: {speedup:.2}x (target {target:.1}x)");
    if speedup < target {
        eprintln!(
            "timing REGRESSION: streaming leg is only {speedup:.2}x the sequential \
             baseline, below the {target:.1}x target in {path}"
        );
        ok = false;
    }

    std::fs::remove_dir_all(&dir).ok();
    if !ok {
        std::process::exit(1);
    }
    println!("  gate passed (per-leg floor {GATE_FLOOR}x, speedup target {target:.1}x)");
}

fn main() {
    let args = BenchArgs::parse(&["ops", "bench", "seed", "out", "gate"]);
    let bench: String = args.parsed("bench", String::from("gcc"));
    let seed: u64 = args.parsed("seed", 42);
    let out: String = args.parsed("out", String::from("BENCH_timing.json"));

    if let Some(path) = args.get("gate") {
        run_gate(path, &bench, args.parsed("ops", 500_000), seed);
        return;
    }
    let ops: usize = args.parsed("ops", 2_000_000);

    let (dir, text_path, bin_path) = write_traces(&bench, ops, seed);
    println!("trace-pipeline benchmark: {ops} ops of '{bench}' (seed {seed}), 3 runs per leg");

    let mut legs_json = Vec::new();
    let mut rates = std::collections::HashMap::new();
    let mut digests = Vec::new();
    for leg in LEGS {
        let (digest, median) = gate::median_of_three(leg, ops as u64, "ops", || {
            timed_leg(leg, &text_path, &bin_path)
        });
        let rate = ops as f64 / median;
        println!("  {leg} median: {rate:.0} ops/sec");
        rates.insert(leg, rate);
        digests.push(digest);
        legs_json.push((
            leg.to_string(),
            Json::Obj(vec![
                ("median_wall_clock_secs".into(), Json::Num(median)),
                ("ops_per_sec".into(), Json::Num(rate)),
            ]),
        ));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "hierarchy digests diverge across pipeline legs"
    );
    println!("  digest identity: all legs -> {:#018x}", digests[0]);

    let streaming_speedup = rates["streaming"] / rates["sequential"];
    let materialize_speedup = rates["bin_materialize"] / rates["sequential"];
    println!(
        "  speedup vs sequential: streaming {streaming_speedup:.2}x, \
         bin_materialize {materialize_speedup:.2}x (target {TARGET_MIN_SPEEDUP:.1}x)"
    );

    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("timing".into())),
        (
            "trace".into(),
            Json::Obj(vec![
                ("bench".into(), Json::Str(bench)),
                ("ops".into(), Json::UInt(ops as u64)),
                ("seed".into(), Json::UInt(seed)),
            ]),
        ),
        ("target_min_speedup".into(), Json::Num(TARGET_MIN_SPEEDUP)),
        ("legs".into(), Json::Obj(legs_json)),
        (
            "speedup_streaming_vs_sequential".into(),
            Json::Num(streaming_speedup),
        ),
        (
            "speedup_bin_materialize_vs_sequential".into(),
            Json::Num(materialize_speedup),
        ),
        ("digest".into(), Json::Str(format!("{:#018x}", digests[0]))),
    ]);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::write(&out, doc.to_string_compact() + "\n").expect("write timing result");
    println!("wrote {out}");
}
