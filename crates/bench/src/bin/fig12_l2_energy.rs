//! **Figure 12**: dynamic energy of L2 protection schemes, normalised
//! to the one-dimensional-parity L2 cache.
//!
//! Paper result: CPPC ≈ +7% (far fewer read-before-writes at L2),
//! SECDED ≈ +68%, two-dimensional parity ≈ +75% on average — with mcf's
//! ~80% miss rate making 2D parity several times costlier than CPPC.
//!
//! Run with `cargo run -p cppc-bench --bin fig12_l2_energy --release`.

use cppc_bench::{mean, memops, print_header, print_row, run_profile, EVAL_SEED};
use cppc_energy::scheme::{ProtectionKind, SchemeEnergy};
use cppc_energy::tech::TechnologyNode;
use cppc_timing::{counts_from_stats, MachineConfig};
use cppc_workloads::spec2000_profiles;

fn main() {
    let ops = memops();
    let machine = MachineConfig::table1();
    let (size, assoc, block) = (
        machine.l2.size_bytes,
        machine.l2.associativity,
        machine.l2.block_bytes,
    );
    let node = TechnologyNode::Nm32;
    let parity = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::OneDimParity { ways: 8 },
        node,
    );
    let cppc = SchemeEnergy::new(size, assoc, block, ProtectionKind::Cppc { ways: 8 }, node);
    let secded = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::Secded { interleaved: true },
        node,
    );
    let twodim = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::TwoDimParity { ways: 8 },
        node,
    );

    println!("Figure 12: normalised L2 dynamic energy (32nm, Table 1 L2)");
    println!("trace: {ops} memory ops per benchmark\n");
    print_header(&["bench", "CPPC", "SECDED", "2D-parity", "L2miss%"], 12);

    let wpl = (block / 8) as u32;
    let (mut nc, mut ns, mut nt) = (Vec::new(), Vec::new(), Vec::new());
    for profile in spec2000_profiles() {
        let run = run_profile(&profile, ops, EVAL_SEED);
        let counts = counts_from_stats(&run.l2, wpl);
        let base = parity.total_pj(&counts);
        let c = cppc.total_pj(&counts) / base;
        let s = secded.total_pj(&counts) / base;
        let t = twodim.total_pj(&counts) / base;
        nc.push(c);
        ns.push(s);
        nt.push(t);
        print_row(
            profile.name,
            &[
                format!("{c:.3}"),
                format!("{s:.3}"),
                format!("{t:.3}"),
                format!("{:.1}", run.l2.miss_rate() * 100.0),
            ],
            12,
        );
    }
    println!();
    print_row(
        "average",
        &[
            format!("{:.3}", mean(&nc)),
            format!("{:.3}", mean(&ns)),
            format!("{:.3}", mean(&nt)),
            String::new(),
        ],
        12,
    );
    println!();
    println!(
        "CPPC   : avg {:+.1}%   (paper: +7%)",
        (mean(&nc) - 1.0) * 100.0
    );
    println!(
        "SECDED : avg {:+.1}%   (paper: +68%)",
        (mean(&ns) - 1.0) * 100.0
    );
    println!(
        "2D par : avg {:+.1}%   (paper: +75%)",
        (mean(&nt) - 1.0) * 100.0
    );
}
