//! **Figure 10**: CPI of processors with CPPC and two-dimensional
//! parity L1 caches, normalised to the one-dimensional-parity cache.
//!
//! Paper result: CPPC ≈ +0.3% on average (at most 1%); two-dimensional
//! parity ≈ +1.7% on average (up to 6.9%).
//!
//! Run with `cargo run -p cppc-bench --bin fig10_cpi --release`.

use cppc_bench::{mean, memops, print_header, print_row, EVAL_SEED};
use cppc_timing::{L1Scheme, MachineConfig, TimingModel};
use cppc_workloads::spec2000_profiles;

fn main() {
    let ops = memops();
    let model = TimingModel::new(MachineConfig::table1());
    let machine = MachineConfig::table1();
    println!("Figure 10: normalised CPI (L1 protection schemes)");
    println!(
        "machine: {}-wide, {} GHz, L1D {}KB/{}-way/{}B {}cyc, L2 {}KB/{}-way {}cyc",
        machine.issue_width,
        machine.frequency_ghz,
        machine.l1d.size_bytes / 1024,
        machine.l1d.associativity,
        machine.l1d.block_bytes,
        machine.l1d.latency_cycles,
        machine.l2.size_bytes / 1024,
        machine.l2.associativity,
        machine.l2.latency_cycles,
    );
    println!("trace: {ops} memory ops per benchmark\n");

    print_header(&["bench", "CPI(1Dpar)", "CPPC", "2D-parity"], 12);
    let mut cppc_norm = Vec::new();
    let mut twodim_norm = Vec::new();
    for profile in spec2000_profiles() {
        // One functional run shared by all schemes: they see the same
        // access stream, exactly as the paper's methodology.
        let base_run = model.simulate(&profile, L1Scheme::OneDimParity, ops, EVAL_SEED);
        let cppc = model.breakdown_from_stats(
            &profile,
            L1Scheme::Cppc,
            ops,
            base_run.l1_stats,
            base_run.l2_stats,
        );
        let twodim = model.breakdown_from_stats(
            &profile,
            L1Scheme::TwoDimParity,
            ops,
            base_run.l1_stats,
            base_run.l2_stats,
        );
        let base_cpi = base_run.cpi();
        let nc = cppc.cpi() / base_cpi;
        let nt = twodim.cpi() / base_cpi;
        cppc_norm.push(nc);
        twodim_norm.push(nt);
        print_row(
            profile.name,
            &[
                format!("{base_cpi:.4}"),
                format!("{nc:.4}"),
                format!("{nt:.4}"),
            ],
            12,
        );
    }
    let max = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
    println!();
    print_row(
        "average",
        &[
            "1.0000".to_string(),
            format!("{:.4}", mean(&cppc_norm)),
            format!("{:.4}", mean(&twodim_norm)),
        ],
        12,
    );
    println!();
    println!(
        "CPPC overhead:      avg {:+.2}%  max {:+.2}%   (paper: +0.3% avg, <=1% max)",
        (mean(&cppc_norm) - 1.0) * 100.0,
        (max(&cppc_norm) - 1.0) * 100.0
    );
    println!(
        "2D parity overhead: avg {:+.2}%  max {:+.2}%   (paper: +1.7% avg, 6.9% max)",
        (mean(&twodim_norm) - 1.0) * 100.0,
        (max(&twodim_norm) - 1.0) * 100.0
    );

    // Cross-check with the structural (cycle-counting) pipeline model,
    // which tracks store buffers, cycle stealing and port timestamps
    // instead of the closed-form contention terms.
    use cppc_timing::PipelineModel;
    let pipeline = PipelineModel::new(machine);
    let detailed_ops = (ops / 3).max(10_000);
    let (mut pc, mut pt) = (Vec::new(), Vec::new());
    for profile in spec2000_profiles() {
        let base = pipeline
            .simulate(&profile, L1Scheme::OneDimParity, detailed_ops, EVAL_SEED)
            .cpi();
        pc.push(
            pipeline
                .simulate(&profile, L1Scheme::Cppc, detailed_ops, EVAL_SEED)
                .cpi()
                / base,
        );
        pt.push(
            pipeline
                .simulate(&profile, L1Scheme::TwoDimParity, detailed_ops, EVAL_SEED)
                .cpi()
                / base,
        );
    }
    println!();
    println!(
        "structural pipeline cross-check ({} ops): CPPC {:+.2}%, 2D parity {:+.2}%",
        detailed_ops,
        (mean(&pc) - 1.0) * 100.0,
        (mean(&pt) - 1.0) * 100.0
    );
}
