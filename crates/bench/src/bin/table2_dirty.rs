//! **Table 2**: average percentage of dirty data and average `Tavg`
//! (cycles between consecutive accesses to the same dirty word/block)
//! for L1 and L2, averaged over the 15 benchmarks.
//!
//! Paper result: dirty data 16% (L1) / 35% (L2); `Tavg` 1828 cycles
//! (L1) / 378,997 cycles (L2).
//!
//! Run with `cargo run -p cppc-bench --bin table2_dirty --release`.

use cppc_bench::{mean, memops, print_header, print_row, run_profile, EVAL_SEED};
use cppc_workloads::spec2000_profiles;

fn main() {
    let ops = memops();
    println!("Table 2: dirty-data residency and Tavg (trace: {ops} memory ops)\n");
    print_header(&["bench", "L1dirty%", "L2dirty%", "L1 Tavg", "L2 Tavg"], 12);

    let (mut d1, mut d2, mut t1, mut t2) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for profile in spec2000_profiles() {
        let run = run_profile(&profile, ops, EVAL_SEED);
        let l1d = run.l1_dirty_fraction * 100.0;
        let l2d = run.l2_dirty_fraction * 100.0;
        let l1t = run.l1_tavg.unwrap_or(f64::NAN);
        let l2t = run.l2_tavg.unwrap_or(f64::NAN);
        d1.push(l1d);
        d2.push(l2d);
        if l1t.is_finite() {
            t1.push(l1t);
        }
        if l2t.is_finite() {
            t2.push(l2t);
        }
        print_row(
            profile.name,
            &[
                format!("{l1d:.1}"),
                format!("{l2d:.1}"),
                format!("{l1t:.0}"),
                format!("{l2t:.0}"),
            ],
            12,
        );
    }
    println!();
    print_row(
        "average",
        &[
            format!("{:.1}", mean(&d1)),
            format!("{:.1}", mean(&d2)),
            format!("{:.0}", mean(&t1)),
            format!("{:.0}", mean(&t2)),
        ],
        12,
    );
    println!();
    println!("paper: L1 dirty 16%, L2 dirty 35%, L1 Tavg 1828 cyc, L2 Tavg 378997 cyc");
}
