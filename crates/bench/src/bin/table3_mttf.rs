//! **Table 3**: MTTF of the cache options against temporal multi-bit
//! errors, computed with the paper's analytical model (§6.3) and inputs
//! (SEU 0.001 FIT/bit, AVF 0.7, Table 2's dirty fractions and `Tavg`).
//!
//! Paper result (years):
//!
//! | cache | L1 | L2 |
//! |---|---|---|
//! | 1D parity | 4490 | 64 |
//! | CPPC | 8.02e21 | 8.07e15 |
//! | SECDED | 6.2e23 | 1.1e19 |
//!
//! Also reports §4.7's temporal-aliasing MTTF (paper: 4.19e20 years for
//! the L2 with one register pair).
//!
//! Run with `cargo run -p cppc-bench --bin table3_mttf --release`.
//! `--threads N` fans the Monte Carlo validation out through the
//! `cppc-campaign` engine (0 = all CPUs); the estimate is bit-identical
//! at every thread count.

use cppc_reliability::mttf::{
    aliasing_vulnerable_bits, mttf_aliasing_years, mttf_cppc_years, mttf_one_dim_parity_years,
    mttf_secded_years,
};
use cppc_reliability::ReliabilityParams;

fn main() {
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            other => panic!("unknown flag {other}; supported: --threads N"),
        }
    }

    println!("Table 3: MTTF against temporal multi-bit errors (years)");
    println!("inputs: SEU 0.001 FIT/bit, AVF 0.7, Table 2 dirty%/Tavg\n");

    let l1 = ReliabilityParams::paper_l1();
    let l2 = ReliabilityParams::paper_l2();

    println!("{:<22} {:>14} {:>14}", "cache", "L1", "L2");
    println!("{}", "-".repeat(52));
    println!(
        "{:<22} {:>14.0} {:>14.1}",
        "one-dim parity",
        mttf_one_dim_parity_years(&l1),
        mttf_one_dim_parity_years(&l2)
    );
    println!(
        "{:<22} {:>14.2e} {:>14.2e}",
        "CPPC (8-way parity)",
        mttf_cppc_years(&l1, 8),
        mttf_cppc_years(&l2, 8)
    );
    println!(
        "{:<22} {:>14.2e} {:>14.2e}",
        "SECDED",
        mttf_secded_years(&l1, 64.0),
        mttf_secded_years(&l2, 256.0)
    );
    println!();
    println!("paper:                    L1             L2");
    println!("one-dim parity          4490 y          64 y");
    println!("CPPC                 8.02e21 y     8.07e15 y");
    println!("SECDED                6.2e23 y      1.1e19 y");

    println!();
    println!("Section 4.7 — temporal aliasing MTTF (L2, by register pairs):");
    for pairs in [1usize, 2, 4, 8] {
        let bits = aliasing_vulnerable_bits(pairs);
        let years = mttf_aliasing_years(&l2, bits);
        if years.is_infinite() {
            println!("  {pairs} pair(s): eliminated (no byte shifting needed)");
        } else {
            println!("  {pairs} pair(s): {years:.2e} years");
        }
    }
    println!("  paper (1 pair): 4.19e20 years, ~5 orders above temporal-2-bit DUEs");

    // Monte Carlo validation of the analytical model at accelerated
    // rates (the closed form's 1/lambda^2 scaling carries the result to
    // real SEU rates).
    use cppc_reliability::montecarlo::{
        analytic_mttf_hours, simulate_double_fault_mttf_parallel, MonteCarloConfig,
    };
    println!();
    println!("Monte Carlo validation of the double-fault model (accelerated rates):");
    for (label, domains) in [("CPPC (8 domains)", 8usize), ("SECDED-like (1 domain)", 1)] {
        let cfg = MonteCarloConfig {
            faults_per_hour: 40.0,
            domains,
            tavg_hours: 0.0004,
            trials: 3000,
        };
        let mc = simulate_double_fault_mttf_parallel(&cfg, 0x7AB1E3, threads);
        let analytic = analytic_mttf_hours(&cfg);
        println!(
            "  {label:<24} simulated {:>9.1} h +/- {:>5.1}, analytic {:>9.1} h ({:+.1}%)",
            mc.mttf_hours,
            mc.std_error_hours,
            analytic,
            (mc.mttf_hours / analytic - 1.0) * 100.0
        );
    }
}
