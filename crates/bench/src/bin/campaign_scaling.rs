//! Campaign-engine scaling baseline.
//!
//! Runs a fixed `mbe_coverage`-style fault-injection campaign (CPPC
//! paper config, 4x4 spatial square strikes) through `cppc-campaign`
//! at 1 thread and at N threads, checks the merged tallies are
//! bit-identical, and writes wall-clock + trials/sec to
//! `BENCH_campaign.json` at the repo root.
//!
//! Run with `cargo run -p cppc-bench --bin campaign_scaling --release`.
//! `--threads N` sets the parallel leg (default: all CPUs); `--trials N`
//! sets the campaign size (default 2000); `--out PATH` redirects the
//! baseline file.

use std::time::Instant;

use cppc_bench::gate::BenchArgs;
use cppc_bench::mbe::{experiment, pool, SEED};
use cppc_campaign::json::Json;
use cppc_fault::campaign::{Campaign, OutcomeTally};

/// Warm-pool activity during one benchmark leg: how many warmup
/// captures the leg ran and how many trials reused a pooled snapshot.
struct PoolDelta {
    captures: u64,
    restores: u64,
}

fn timed_run(trials: u64, threads: usize) -> (OutcomeTally, f64, PoolDelta) {
    let (captures0, restores0) = (pool().captures(), pool().restores());
    let start = Instant::now();
    let tally = Campaign::new(SEED).run_parallel(trials, threads, experiment);
    let secs = start.elapsed().as_secs_f64();
    let delta = PoolDelta {
        captures: pool().captures() - captures0,
        restores: pool().restores() - restores0,
    };
    (tally, secs, delta)
}

fn leg_json(requested: usize, effective: usize, trials: u64, secs: f64, delta: &PoolDelta) -> Json {
    let checkouts = delta.captures + delta.restores;
    Json::Obj(vec![
        ("requested_threads".into(), Json::UInt(requested as u64)),
        ("effective_threads".into(), Json::UInt(effective as u64)),
        ("wall_clock_secs".into(), Json::Num(secs)),
        ("trials_per_sec".into(), Json::Num(trials as f64 / secs)),
        (
            "snapshot".into(),
            Json::Obj(vec![
                ("captures".into(), Json::UInt(delta.captures)),
                ("restores".into(), Json::UInt(delta.restores)),
                (
                    "restores_per_thread".into(),
                    Json::Num(delta.restores as f64 / effective.max(1) as f64),
                ),
                (
                    "hit_rate".into(),
                    Json::Num(if checkouts == 0 {
                        0.0
                    } else {
                        delta.restores as f64 / checkouts as f64
                    }),
                ),
            ]),
        ),
    ])
}

fn main() {
    let args = BenchArgs::parse(&["threads", "trials", "out"]);
    let threads: usize = args.parsed("threads", 0); // 0 = all CPUs
    let trials: u64 = args.parsed("trials", 2000);
    let out: String = args.parsed("out", String::from("BENCH_campaign.json"));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Oversubscribing a deterministic sharded campaign only adds context
    // switches: clamp the effective worker count to the host's cores but
    // record what was asked for.
    let requested_threads = if threads == 0 { cores } else { threads };
    let parallel_threads = requested_threads.min(cores);

    println!("campaign scaling baseline: {trials} trials, CPPC 4x4-square injection");
    println!("host cores: {cores}");
    if parallel_threads < requested_threads {
        println!("  ({requested_threads} threads requested, clamped to {parallel_threads})");
    }

    let (seq_tally, seq_secs, seq_pool) = timed_run(trials, 1);
    println!(
        "  1 thread:  {seq_secs:.2}s  ({:.0} trials/sec, {} snapshot captures / {} restores)",
        trials as f64 / seq_secs,
        seq_pool.captures,
        seq_pool.restores
    );
    let (par_tally, par_secs, par_pool) = timed_run(trials, parallel_threads);
    println!(
        "  {parallel_threads} threads: {par_secs:.2}s  ({:.0} trials/sec, {} snapshot captures / {} restores)",
        trials as f64 / par_secs,
        par_pool.captures,
        par_pool.restores
    );
    assert_eq!(
        seq_tally, par_tally,
        "engine determinism violated: tallies differ across thread counts"
    );
    // A parallel leg that could not actually run at the requested
    // concurrency (single-core host, or clamped request) measures
    // scheduler overhead, not scaling: publish `null` rather than a
    // number a regression gate would misread.
    let thread_limited = parallel_threads < requested_threads;
    let (speedup, note) = if cores == 1 || thread_limited {
        let why = if cores == 1 {
            "single-core host: parallel leg degenerates to sequential"
        } else {
            "thread-limited host: requested concurrency unavailable"
        };
        println!("  speedup: n/a ({why}; tallies bit-identical)");
        (Json::Null, Some(why))
    } else {
        let speedup = seq_secs / par_secs;
        println!("  speedup: {speedup:.2}x  (tallies bit-identical)");
        (Json::Num(speedup), None)
    };

    let mut doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("campaign_scaling".into())),
        (
            "campaign".into(),
            Json::Str("mbe_coverage: CPPC paper config, 4x4 solid square".into()),
        ),
        ("seed".into(), Json::UInt(SEED)),
        ("trials".into(), Json::UInt(trials)),
        ("host_cores".into(), Json::UInt(cores as u64)),
        (
            "sequential".into(),
            leg_json(1, 1, trials, seq_secs, &seq_pool),
        ),
        (
            "parallel".into(),
            leg_json(
                requested_threads,
                parallel_threads,
                trials,
                par_secs,
                &par_pool,
            ),
        ),
        ("speedup".into(), speedup),
        ("tallies_identical".into(), Json::Bool(true)),
        // True when the run asked for more workers than the host could
        // give (the clamp above) — readers of the baseline must not
        // interpret such a parallel leg as the requested concurrency.
        ("thread_limited".into(), Json::Bool(thread_limited)),
    ]);
    if let (Json::Obj(pairs), Some(why)) = (&mut doc, note) {
        pairs.push(("note".into(), Json::Str(why.into())));
    }
    std::fs::write(&out, doc.to_string_compact() + "\n").expect("write baseline");
    println!("wrote {out}");
}
