//! Observability for the vectorized hot path: which parity kernel the
//! one-time CPU probe selected, and how the cross-trial batch engine
//! is spending its lanes.

cppc_obs::metrics! {
    group KERNEL_METRICS: "kernel", "Vector parity-kernel dispatch: the implementation the one-time CPU-feature probe selected.";
    counter KERNEL_DISPATCH_SWAR: "kernel.dispatch.swar", "events", "Campaign executors that resolved the parity kernels to the scalar SWAR fallback.";
    counter KERNEL_DISPATCH_SSE2: "kernel.dispatch.sse2", "events", "Campaign executors that resolved the parity kernels to the SSE2 path.";
    counter KERNEL_DISPATCH_AVX2: "kernel.dispatch.avx2", "events", "Campaign executors that resolved the parity kernels to the AVX2 path.";
}

cppc_obs::metrics! {
    group BATCH_METRICS: "batch", "Cross-trial batched injection engine: lane occupancy and per-trial fallbacks.";
    counter BATCH_BATCHES: "batch.batches", "events", "Trial batches evaluated through the vectorized error-delta path.";
    counter BATCH_LANES_FILLED: "batch.lanes_filled", "trials", "Trials evaluated as lanes of a batch (including lanes that later fell back).";
    counter BATCH_TAIL_FALLBACKS: "batch.tail_fallbacks", "trials", "Lanes re-run through the full per-trial simulator (locator/DUE territory).";
    counter BATCH_WHOLESALE_FALLBACKS: "batch.wholesale_fallbacks", "events", "Executors that could not certify a warm baseline and ran every trial per-trial.";
}

/// Registers the kernel and batch metric groups (idempotent), and
/// bumps the dispatch counter of the kernel the probe selected.
pub fn register_metrics() {
    KERNEL_METRICS.register();
    BATCH_METRICS.register();
}

/// Records which parity kernel this executor resolved to.
pub fn record_kernel_dispatch() {
    register_metrics();
    match cppc_ecc::kernels::active().name() {
        "sse2" => KERNEL_DISPATCH_SSE2.inc(),
        "avx2" => KERNEL_DISPATCH_AVX2.inc(),
        _ => KERNEL_DISPATCH_SWAR.inc(),
    }
}
