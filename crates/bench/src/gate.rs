//! Shared machinery for the perf-regression benchmark binaries and
//! their CI gates (`hotpath`, `campaign_scaling`, `timing`): flag
//! parsing, median-of-three measurement with run-to-run identity
//! assertions, committed-baseline JSON lookup and the measured-vs-floor
//! leg check. Each benchmark binary supplies only its legs; the gate
//! loop itself lives here so every `--gate` run behaves the same way.

use cppc_campaign::json::Json;

/// A measured run may regress to this fraction of the recorded baseline
/// before a gate fails (CI noise allowance).
pub const GATE_FLOOR: f64 = 0.9;

/// `--flag value` pairs from a benchmark binary's command line, with an
/// allowlist: an unknown flag panics up front, naming the supported
/// set, so a typo'd `--trails` cannot silently run the defaults.
pub struct BenchArgs {
    pairs: Vec<(String, String)>,
}

impl BenchArgs {
    /// Parses the process arguments (without the program name).
    ///
    /// # Panics
    ///
    /// Panics on a flag outside `allowed`, a missing value or a bare
    /// positional argument.
    #[must_use]
    pub fn parse(allowed: &[&str]) -> Self {
        Self::from_iter(std::env::args().skip(1), allowed)
    }

    /// [`BenchArgs::parse`] over an explicit argument list (tests).
    ///
    /// # Panics
    ///
    /// As [`BenchArgs::parse`].
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I, allowed: &[&str]) -> Self {
        let supported = || {
            allowed
                .iter()
                .map(|a| format!("--{a}"))
                .collect::<Vec<_>>()
                .join("/")
        };
        let mut pairs = Vec::new();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let name = flag.strip_prefix("--").unwrap_or_else(|| {
                panic!("unexpected argument {flag}; supported: {}", supported())
            });
            assert!(
                allowed.contains(&name),
                "unknown flag {flag}; supported: {}",
                supported()
            );
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("{flag} needs a value"));
            pairs.push((name.to_string(), value));
        }
        BenchArgs { pairs }
    }

    /// The raw value of `--flag`, if given.
    #[must_use]
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(name, _)| name == flag)
            .map(|(_, value)| value.as_str())
    }

    /// A parsed value with a default.
    ///
    /// # Panics
    ///
    /// Panics when the flag is present but unparseable.
    #[must_use]
    pub fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.get(flag) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("cannot parse '{v}' for --{flag}")),
        }
    }
}

/// Median-of-three measurement of one benchmark leg. Each run's result
/// payload (a tally, a digest) must be identical across the three runs
/// — a leg whose answer varies with timing is broken, not noisy.
/// Returns `(payload, median_secs)`.
///
/// # Panics
///
/// Panics when the three runs disagree on the payload or a timing is
/// not finite.
pub fn median_of_three<T, F>(label: &str, units: u64, unit_name: &str, mut leg: F) -> (T, f64)
where
    T: PartialEq + Clone + std::fmt::Debug,
    F: FnMut() -> (T, f64),
{
    let mut runs: Vec<(T, f64)> = (0..3)
        .map(|i| {
            let (payload, secs) = leg();
            println!(
                "  {label} run {}: {secs:.2}s  ({:.0} {unit_name}/sec)",
                i + 1,
                units as f64 / secs
            );
            (payload, secs)
        })
        .collect();
    let payload = runs[0].0.clone();
    assert!(
        runs.iter().all(|(p, _)| *p == payload),
        "{label} results must be identical across runs"
    );
    runs.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"));
    (payload, runs[1].1)
}

/// Reads a number out of a committed baseline JSON file by dotted path
/// (`"baseline.trials_per_sec"`).
///
/// # Panics
///
/// Panics with a `gate:`-prefixed message when the file is missing,
/// not JSON, or lacks the path — a gate with no baseline must fail
/// loudly, not pass silently.
#[must_use]
pub fn read_baseline(path: &str, dotted: &str) -> f64 {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate: cannot read {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("gate: {path} is not JSON: {e}"));
    let mut node = &doc;
    for key in dotted.split('.') {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("gate: {path} lacks {dotted}"));
    }
    node.as_f64()
        .unwrap_or_else(|| panic!("gate: {path}'s {dotted} is not a number"))
}

/// One measured-vs-floor comparison inside a `--gate` run: prints the
/// measurement and returns whether it cleared the floor (the caller
/// aggregates legs and sets the exit code once, so every leg reports
/// even when an early one fails).
pub fn gate_leg(label: &str, unit_name: &str, current_per_sec: f64, floor_per_sec: f64) -> bool {
    let ratio = current_per_sec / floor_per_sec;
    println!(
        "  {label}: {current_per_sec:.0} {unit_name}/sec  ({ratio:.2}x of the {floor_per_sec:.0} {unit_name}/sec floor)"
    );
    if current_per_sec < floor_per_sec {
        eprintln!(
            "{label} REGRESSION: {current_per_sec:.0} {unit_name}/sec is below the \
             {floor_per_sec:.0} {unit_name}/sec floor"
        );
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(items: &[&str]) -> Vec<String> {
        items.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn bench_args_parse_and_lookup() {
        let a = BenchArgs::from_iter(
            words(&["--trials", "500", "--out", "x.json"]),
            &["trials", "out", "gate"],
        );
        assert_eq!(a.parsed("trials", 0u64), 500);
        assert_eq!(a.get("out"), Some("x.json"));
        assert_eq!(a.get("gate"), None);
        assert_eq!(a.parsed("gate-missing-default", 7u32), 7);
    }

    #[test]
    #[should_panic(expected = "unknown flag --trails")]
    fn bench_args_reject_unknown_flags() {
        let _ = BenchArgs::from_iter(words(&["--trails", "500"]), &["trials"]);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn bench_args_require_values() {
        let _ = BenchArgs::from_iter(words(&["--out"]), &["out"]);
    }

    #[test]
    fn median_of_three_picks_the_median_and_checks_identity() {
        let mut times = [3.0, 1.0, 2.0].into_iter();
        let (payload, median) =
            median_of_three("leg", 100, "ops", || (42u64, times.next().unwrap()));
        assert_eq!(payload, 42);
        assert!((median - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical across runs")]
    fn median_of_three_rejects_varying_payloads() {
        let mut n = 0u64;
        let _ = median_of_three("leg", 100, "ops", || {
            n += 1;
            (n, 1.0)
        });
    }

    #[test]
    fn gate_leg_reports_floor_crossings() {
        assert!(gate_leg("fast", "ops", 1000.0, 900.0));
        assert!(!gate_leg("slow", "ops", 800.0, 900.0));
    }

    #[test]
    fn read_baseline_walks_dotted_paths() {
        let dir = std::env::temp_dir().join(format!("cppc-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.json");
        std::fs::write(&path, r#"{"a":{"b":{"c":12.5}}}"#).unwrap();
        let p = path.to_str().unwrap();
        assert!((read_baseline(p, "a.b.c") - 12.5).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
