//! Campaign experiment bodies shared by the CLI and the job server.
//!
//! `cppc-cli campaign` and `cppc-cli serve` must produce **bit-identical
//! tallies** for the same campaign parameters — that is the service's
//! end-to-end determinism guarantee — so the experiment closures live
//! here, in one place, and both drivers call them. Each experiment is a
//! pure function of `(trial RNG stream, trial index)`; the campaign
//! engine derives the stream from `(campaign seed, trial)` alone, which
//! is what makes results independent of thread count, scheduling and
//! process boundaries.

use std::time::Duration;

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::hierarchy::TwoLevelHierarchy;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_core::{CppcCache, CppcConfig, SchemeKind};
use cppc_fault::campaign::Outcome;
use cppc_fault::model::{FaultGenerator, FaultModel};
use cppc_workloads::SharedTrace;

/// Parses a CPPC configuration name (`basic`, `paper`, `two-pairs`,
/// `eight-pairs`).
///
/// # Errors
///
/// Returns a message naming the unknown configuration.
pub fn parse_config(name: &str) -> Result<CppcConfig, String> {
    match name {
        "basic" => Ok(CppcConfig::basic()),
        "paper" => Ok(CppcConfig::paper()),
        "two-pairs" => Ok(CppcConfig::two_pairs()),
        "eight-pairs" => Ok(CppcConfig::eight_pairs()),
        other => Err(format!("unknown config '{other}'")),
    }
}

/// Parses a fault-model name (`single`, `2xvert`, `8xhoriz`, `4x4`,
/// `8x8`).
///
/// # Errors
///
/// Returns a message naming the unknown fault model.
pub fn parse_fault(name: &str) -> Result<FaultModel, String> {
    match name {
        "single" => Ok(FaultModel::TemporalSingleBit),
        "2xvert" => Ok(FaultModel::VerticalStripe { rows: 2 }),
        "8xhoriz" => Ok(FaultModel::HorizontalBurst { cols: 8 }),
        "4x4" => Ok(FaultModel::SpatialSquare {
            rows: 4,
            cols: 4,
            density: 1.0,
        }),
        "8x8" => Ok(FaultModel::SpatialSquare {
            rows: 8,
            cols: 8,
            density: 1.0,
        }),
        other => Err(format!("unknown fault model '{other}'")),
    }
}

/// Parses a protection-scheme selector name (`cppc`, `parity1d`,
/// `secded-interleaved`, `parity2d`, `silent-write-ecc`, `harp-odecc`).
///
/// # Errors
///
/// Returns a message naming the unknown scheme and listing the known
/// ones.
pub fn parse_scheme(name: &str) -> Result<SchemeKind, String> {
    SchemeKind::parse(name)
}

/// The campaign geometry used by the `inject` experiment (32 sets,
/// 2 ways).
///
/// # Panics
///
/// Never — the geometry is valid by construction.
#[must_use]
pub fn inject_geometry() -> CacheGeometry {
    CacheGeometry::new(2048, 2, 32).expect("valid geometry")
}

/// The fault-injection experiment shared by `cppc-cli inject`,
/// `cppc-cli campaign --kind inject` and `inject` service jobs: fill
/// way 0 of a small L1 CPPC with known values, strike it with one
/// sampled fault pattern, run recovery and classify the outcome.
pub fn inject_experiment(
    geo: CacheGeometry,
    config: CppcConfig,
    fault: FaultModel,
) -> impl Fn(&mut StdRng, u64) -> Outcome + Sync {
    move |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache =
            CppcCache::new_l1(geo, config, ReplacementPolicy::Lru).expect("validated config");
        let mut fill = StdRng::seed_from_u64(trial);
        let mut truth = Vec::new();
        for set in 0..geo.num_sets() {
            for word in 0..geo.words_per_block() {
                let addr = geo.address_of(0, set) + (word * 8) as u64;
                let v: u64 = fill.random();
                cache.store_word(addr, v, &mut mem).expect("no faults yet");
                truth.push((addr, v));
            }
        }
        let mut generator = FaultGenerator::new(cache.layout().num_rows() / 2, rng.random());
        if cache.inject(&generator.sample(fault)) == 0 {
            return Outcome::Masked;
        }
        match cache.recover_all(&mut mem) {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(_) => {
                if truth.iter().all(|&(a, v)| cache.peek_word(a) == Some(v)) {
                    Outcome::Corrected
                } else {
                    Outcome::SilentCorruption
                }
            }
        }
    }
}

/// The scheme-parameterized fault-injection experiment behind
/// `cppc-cli campaign --scheme <name>` and `scheme` service jobs: the
/// same warm-up, strike and classify protocol as [`inject_experiment`],
/// but running any member of the protection-scheme zoo behind the
/// `ProtectionScheme` trait.
///
/// For the ported schemes this is **bit-identical** to the historical
/// baked-in closures: the fill order, the RNG draws (one `u64` for the
/// strike seed — or the two-range draws of interleaved SECDED's
/// physical-strike translation) and the classification rules are
/// exactly theirs, so tallies and checkpoint bytes match the
/// pre-refactor paths (pinned by the `scheme_equivalence` suite).
/// `config` parameterizes CPPC only; the other schemes use their paper
/// configurations.
pub fn scheme_experiment(
    kind: SchemeKind,
    config: CppcConfig,
    fault: FaultModel,
) -> impl Fn(&mut StdRng, u64) -> Outcome + Sync {
    move |rng, trial| {
        let geo = inject_geometry();
        let mut mem = MainMemory::new();
        let mut scheme = kind.build(geo, config).expect("validated config");
        let mut fill = StdRng::seed_from_u64(trial);
        let mut truth = Vec::new();
        for set in 0..geo.num_sets() {
            for word in 0..geo.words_per_block() {
                let addr = geo.address_of(0, set) + (word * 8) as u64;
                let v: u64 = fill.random();
                scheme.write_word(addr, v, &mut mem).expect("no faults yet");
                truth.push((addr, v));
            }
        }
        if scheme.inject_model(fault, rng) == 0 {
            return Outcome::Masked;
        }
        scheme.classify(&truth, &mut mem)
    }
}

/// The hierarchy the `trace` experiment replays its trace through: a
/// small two-level machine (8KB/2-way L1, 32KB/4-way L2, 32B lines) so
/// short traces still generate misses and write-backs at both levels.
///
/// # Panics
///
/// Never — the geometries are valid by construction.
#[must_use]
pub fn trace_hierarchy() -> TwoLevelHierarchy {
    let l1 = CacheGeometry::new(8 * 1024, 2, 32).expect("valid geometry");
    let l2 = CacheGeometry::new(32 * 1024, 4, 32).expect("valid geometry");
    TwoLevelHierarchy::new(l1, l2, ReplacementPolicy::Lru)
}

/// Digest of a hierarchy run the `trace` experiment folds into its
/// outcome draw: a deterministic mix of both levels' counters and the
/// final cycle, so any divergence in the replayed stream (a corrupted
/// trace file, a decoder bug, a non-deterministic fast path) changes
/// the campaign tally.
#[must_use]
pub fn trace_digest(h: &TwoLevelHierarchy) -> u64 {
    let (l1, l2) = h.stats();
    let mut acc: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a offset basis
    let mut mix = |v: u64| {
        acc ^= v;
        acc = acc.wrapping_mul(0x1000_0000_01B3);
    };
    for s in [l1, l2] {
        mix(s.load_hits);
        mix(s.load_misses);
        mix(s.store_hits);
        mix(s.store_misses);
        mix(s.stores_to_dirty);
        mix(s.writebacks);
        mix(s.writeback_words);
        mix(s.fills);
        mix(s.clean_evictions);
    }
    mix(h.cycle());
    acc
}

/// Loads a trace file for the `trace` experiment, sniffing the format
/// from the leading bytes: binary (`docs/TRACES.md`) if the file opens
/// with the `CPPCT` magic, text v1 otherwise.
///
/// # Errors
///
/// Returns a human-readable message on I/O failures or malformed
/// content in either format.
pub fn load_trace(path: &str) -> Result<SharedTrace, String> {
    use std::io::Read;
    let mut probe = [0u8; cppc_workloads::binfmt::MAGIC.len()];
    let mut file = std::fs::File::open(path).map_err(|e| format!("cannot open '{path}': {e}"))?;
    let sniffed = file
        .read(&mut probe)
        .map_err(|e| format!("cannot read '{path}': {e}"))?;
    if probe[..sniffed] == cppc_workloads::binfmt::MAGIC {
        SharedTrace::from_binary_file(path).map_err(|e| format!("bad binary trace '{path}': {e}"))
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open '{path}': {e}"))?;
        let ops = cppc_workloads::read_trace(std::io::BufReader::new(file))
            .map_err(|e| format!("bad text trace '{path}': {e}"))?;
        Ok(SharedTrace::from_ops(ops))
    }
}

/// The trace-driven experiment behind `cppc-cli campaign --kind trace`
/// and `trace` service jobs: each trial replays the whole pre-decoded
/// trace through [`trace_hierarchy`] via the batched fast path, folds
/// the run's [`trace_digest`] into the trial's RNG draw and classifies
/// like [`synthetic_outcome`]. The digest term makes the tally sensitive
/// to every replayed operation while staying a pure function of
/// `(trace, trial RNG stream, trial index)` — so served results match
/// direct runs byte for byte at any thread count.
pub fn trace_experiment(trace: &SharedTrace) -> impl Fn(&mut StdRng, u64) -> Outcome + Sync {
    // Decode once; every trial replays the same immutable lanes.
    let batch = trace.batch();
    move |rng, trial| {
        let mut h = trace_hierarchy();
        h.run_batch(&batch);
        let draw =
            rng.random::<u64>() ^ trace_digest(&h) ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match draw % 4 {
            0 => Outcome::Masked,
            1 => Outcome::Corrected,
            2 => Outcome::DetectedUnrecoverable,
            _ => Outcome::SilentCorruption,
        }
    }
}

/// A deterministic outcome that depends on both the trial's RNG stream
/// and its index, so any divergence in stream derivation, shard layout
/// or merge order changes the tally. Used by the `sleep` experiment and
/// by tests that need an order-sensitive campaign without simulator
/// cost.
#[must_use]
pub fn synthetic_outcome(rng: &mut StdRng, trial: u64) -> Outcome {
    // Odd-multiplier mix so the trial index reaches the low bits the
    // `% 4` below actually samples (a plain rotate leaves them zero
    // for small indices).
    let draw = rng.random::<u64>() ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match draw % 4 {
        0 => Outcome::Masked,
        1 => Outcome::Corrected,
        2 => Outcome::DetectedUnrecoverable,
        _ => Outcome::SilentCorruption,
    }
}

/// A duration-controllable synthetic experiment: each trial sleeps
/// `millis` and classifies via [`synthetic_outcome`]. Wall time scales
/// with the trial count while the tally stays deterministic, which is
/// what service tests need to exercise backpressure, cancellation and
/// interrupt-resume at precise moments.
pub fn sleep_experiment(millis: u64) -> impl Fn(&mut StdRng, u64) -> Outcome + Sync {
    move |rng, trial| {
        if millis > 0 {
            std::thread::sleep(Duration::from_millis(millis));
        }
        synthetic_outcome(rng, trial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_fault::campaign::OutcomeTally;

    #[test]
    fn config_parsing() {
        assert_eq!(parse_config("paper"), Ok(CppcConfig::paper()));
        assert_eq!(parse_config("basic"), Ok(CppcConfig::basic()));
        assert_eq!(parse_config("two-pairs"), Ok(CppcConfig::two_pairs()));
        assert_eq!(parse_config("eight-pairs"), Ok(CppcConfig::eight_pairs()));
        assert!(parse_config("bogus").is_err());
    }

    #[test]
    fn fault_parsing() {
        for name in ["single", "2xvert", "8xhoriz", "4x4", "8x8"] {
            assert!(parse_fault(name).is_ok(), "{name}");
        }
        assert!(parse_fault("9x9").is_err());
    }

    #[test]
    fn scheme_parsing() {
        for name in [
            "cppc",
            "parity1d",
            "secded-interleaved",
            "parity2d",
            "silent-write-ecc",
            "harp-odecc",
        ] {
            assert!(parse_scheme(name).is_ok(), "{name}");
        }
        assert!(parse_scheme("hamming").is_err());
    }

    #[test]
    fn cppc_scheme_experiment_matches_inject_experiment() {
        // The trait-routed CPPC campaign must be tally-identical to the
        // historical baked-in `inject` path (same fills, same draws,
        // same classification).
        let cfg = cppc_campaign::CampaignConfig::new(0xC0DE, 48).shard_size(16);
        let fault = parse_fault("4x4").unwrap();
        let baked: OutcomeTally = cppc_campaign::run(
            &cfg,
            inject_experiment(inject_geometry(), CppcConfig::paper(), fault),
        )
        .result;
        let routed: OutcomeTally = cppc_campaign::run(
            &cfg,
            scheme_experiment(SchemeKind::Cppc, CppcConfig::paper(), fault),
        )
        .result;
        assert_eq!(baked, routed);
    }

    #[test]
    fn every_scheme_runs_a_campaign_without_sdc_on_single_bit() {
        let cfg = cppc_campaign::CampaignConfig::new(0x5EED, 24).shard_size(8);
        for kind in SchemeKind::ALL {
            let tally: OutcomeTally = cppc_campaign::run(
                &cfg,
                scheme_experiment(kind, CppcConfig::paper(), FaultModel::TemporalSingleBit),
            )
            .result;
            assert_eq!(tally.total(), 24, "{kind}");
            assert_eq!(tally.sdc, 0, "{kind}: single-bit must never go silent");
        }
    }

    #[test]
    fn synthetic_outcome_is_deterministic_and_stream_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(synthetic_outcome(&mut a, 3), synthetic_outcome(&mut b, 3));
        // The trial index matters even for identical streams.
        let mut c = StdRng::seed_from_u64(7);
        let mut d = StdRng::seed_from_u64(7);
        let outcomes: Vec<Outcome> = (0..16).map(|t| synthetic_outcome(&mut c, t)).collect();
        let shifted: Vec<Outcome> = (1..17).map(|t| synthetic_outcome(&mut d, t)).collect();
        assert_ne!(outcomes, shifted);
    }

    #[test]
    fn trace_experiment_is_thread_invariant_and_trace_sensitive() {
        let p = &cppc_workloads::spec2000_profiles()[0];
        let trace = SharedTrace::generate(p, 0x7ACE, 2_000);
        let sequential: OutcomeTally = cppc_campaign::run(
            &cppc_campaign::CampaignConfig::new(0x7ACE, 32).shard_size(8),
            trace_experiment(&trace),
        )
        .result;
        let threaded: OutcomeTally = cppc_campaign::run(
            &cppc_campaign::CampaignConfig::new(0x7ACE, 32)
                .shard_size(8)
                .threads(4),
            trace_experiment(&trace),
        )
        .result;
        assert_eq!(sequential, threaded, "tally independent of thread count");
        assert_eq!(sequential.total(), 32);
        // A different trace must change the tally: the digest really
        // feeds the outcome draw.
        let other = SharedTrace::generate(p, 0x7ACF, 2_000);
        let diverged: OutcomeTally = cppc_campaign::run(
            &cppc_campaign::CampaignConfig::new(0x7ACE, 32).shard_size(8),
            trace_experiment(&other),
        )
        .result;
        assert_ne!(sequential, diverged, "tally sensitive to the trace");
    }

    #[test]
    fn sleep_experiment_tallies_match_engine_reruns() {
        let cfg = cppc_campaign::CampaignConfig::new(0x51EE, 64).shard_size(8);
        let a: OutcomeTally = cppc_campaign::run(&cfg, sleep_experiment(0)).result;
        let b: OutcomeTally = cppc_campaign::run(&cfg, sleep_experiment(0)).result;
        assert_eq!(a, b);
        assert_eq!(a.total(), 64);
    }
}
