//! Dependency-free microbenchmark harness.
//!
//! Replaces the criterion dev-dependency with the small API subset the
//! bench targets actually use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`, element throughput), so
//! the workspace builds with zero external crates. The timing loop
//! auto-calibrates the iteration count to a fixed measurement window
//! and reports mean wall-clock per iteration.
//!
//! Bench binaries use `harness = false`, so `cargo test` may execute
//! them with no arguments; without the `--bench` flag the harness runs
//! each benchmark once as a smoke test instead of measuring.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark in full mode.
const MEASURE_WINDOW: Duration = Duration::from_millis(120);

/// Top-level harness state shared by every benchmark group.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; anything else (including
        // `cargo test` running the target) gets the quick smoke mode.
        let quick = !std::env::args().any(|a| a == "--bench");
        Criterion { quick }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            quick,
            throughput: None,
        }
    }
}

/// Throughput annotation: scales the report into elements per second.
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// Batch sizing hint, accepted for criterion compatibility; the
/// harness re-runs setup per iteration either way.
pub enum BatchSize {
    /// Inputs are cheap to hold in memory.
    SmallInput,
    /// Inputs are large; batch conservatively.
    LargeInput,
}

/// A parameterised benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Labels the benchmark with the parameter value itself.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    quick: bool,
    throughput: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        let Throughput::Elements(n) = throughput;
        self.throughput = Some(n);
        self
    }

    /// Runs one benchmark under `<group>/<name>`.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            quick: self.quick,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name), self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.0, |b| f(b, input))
    }

    /// Ends the group (line break in the report).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    quick: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to the
    /// measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut batch = 1u64;
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += batch;
            if self.quick || self.total >= MEASURE_WINDOW || self.iters >= 1 << 24 {
                return;
            }
            // Grow geometrically toward the window without overshooting
            // wildly on very fast routines.
            batch = (batch * 4).min(1 << 16);
        }
    }

    fn report(&self, label: &str, throughput: Option<u64>) {
        if self.iters == 0 {
            println!("{label:<44} (not measured)");
            return;
        }
        let ns_per_iter = self.total.as_nanos() as f64 / self.iters as f64;
        let mut line = format!(
            "{label:<44} {:>12.1} ns/iter ({} iters)",
            ns_per_iter, self.iters
        );
        if let Some(elems) = throughput {
            let elems_per_sec = elems as f64 * 1e9 / ns_per_iter;
            line.push_str(&format!("  {:.2} Melem/s", elems_per_sec / 1e6));
        }
        if self.quick {
            line.push_str("  [quick]");
        }
        println!("{line}");
    }
}

/// Criterion-compatible group declaration: bundles benchmark functions
/// into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Criterion-compatible entry point: runs the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bencher_runs_once_per_batch() {
        let mut b = Bencher {
            quick: true,
            total: Duration::ZERO,
            iters: 0,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn full_bencher_reaches_window() {
        let mut b = Bencher {
            quick: false,
            total: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| std::hint::black_box(1u64.wrapping_mul(3)));
        assert!(b.total >= MEASURE_WINDOW || b.iters >= 1 << 24);
        assert!(b.iters > 1);
    }

    #[test]
    fn iter_batched_excludes_setup_calls_from_count() {
        let mut b = Bencher {
            quick: true,
            total: Duration::ZERO,
            iters: 0,
        };
        let mut setups = 0u64;
        let mut runs = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                7u64
            },
            |v| {
                runs += 1;
                v * 2
            },
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 1);
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_renders_parameter() {
        assert_eq!(BenchmarkId::from_parameter(512).0, "512");
    }
}
