//! The coherent multiprocessor: private L1s + shared L2 + memory.

use cppc_cache_sim::cache::{Backing, Cache};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_cache_sim::stats::CacheStats;

/// One operation of a multiprocessor trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreOp {
    /// Core `core` loads `addr`.
    Load {
        /// Issuing core.
        core: usize,
        /// Byte address.
        addr: u64,
    },
    /// Core `core` stores `value` to `addr`.
    Store {
        /// Issuing core.
        core: usize,
        /// Byte address.
        addr: u64,
        /// Value stored.
        value: u64,
    },
}

/// Protocol event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Remote copies invalidated by stores.
    pub invalidations: u64,
    /// Of those, copies that were dirty (M) and had to be written back
    /// to the shared L2 first — each one *removes* dirty words from a
    /// private L1, which is what cuts CPPC's read-before-write rate
    /// (§7's hypothesis).
    pub dirty_invalidations: u64,
    /// Remote M copies downgraded to S by loads.
    pub downgrades: u64,
}

struct L2Backing<'a> {
    l2: &'a mut Cache,
    mem: &'a mut MainMemory,
}

impl Backing for L2Backing<'_> {
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]) {
        debug_assert_eq!(buf.len(), self.l2.geometry().words_per_block());
        self.l2.read_block_into(base, self.mem, buf);
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        let _ = self.l2.write_block(base, data, dirty_mask, self.mem);
    }
}

/// An `n`-core system with private L1s, one shared L2 and an MSI
/// write-invalidate protocol.
///
/// # Example
///
/// ```
/// use cppc_cache_sim::{CacheGeometry, ReplacementPolicy};
/// use cppc_coherence::{CoherentSystem, CoreOp};
///
/// let l1 = CacheGeometry::new(1024, 2, 32)?;
/// let l2 = CacheGeometry::new(8192, 4, 32)?;
/// let mut sys = CoherentSystem::new(2, l1, l2, ReplacementPolicy::Lru);
/// sys.step(CoreOp::Store { core: 0, addr: 0x40, value: 7 });
/// assert_eq!(sys.step(CoreOp::Load { core: 1, addr: 0x40 }), 7);
/// # Ok::<(), cppc_cache_sim::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoherentSystem {
    cores: Vec<Cache>,
    l2: Cache,
    mem: MainMemory,
    stats: CoherenceStats,
}

impl CoherentSystem {
    /// Builds the system with `n` private L1s.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or block sizes differ between levels.
    #[must_use]
    pub fn new(
        n: usize,
        l1_geo: CacheGeometry,
        l2_geo: CacheGeometry,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(n > 0, "need at least one core");
        assert_eq!(
            l1_geo.block_bytes(),
            l2_geo.block_bytes(),
            "L1 and L2 must share a block size"
        );
        CoherentSystem {
            cores: (0..n).map(|_| Cache::new(l1_geo, policy)).collect(),
            l2: Cache::new(l2_geo, policy),
            mem: MainMemory::new(),
            stats: CoherenceStats::default(),
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Protocol statistics.
    #[must_use]
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Core `c`'s L1 statistics.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn core_stats(&self, c: usize) -> &CacheStats {
        self.cores[c].stats()
    }

    /// The shared L2's statistics.
    #[must_use]
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Sum of per-core stores-to-dirty — the CPPC read-before-write
    /// count across the machine.
    #[must_use]
    pub fn total_stores_to_dirty(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().stores_to_dirty).sum()
    }

    /// Sum of per-core stores.
    #[must_use]
    pub fn total_stores(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().stores()).sum()
    }

    /// Invalidate (or downgrade) every remote copy of `addr`'s block.
    fn snoop(&mut self, requester: usize, addr: u64, for_store: bool) {
        for c in 0..self.cores.len() {
            if c == requester {
                continue;
            }
            let Some((set, way)) = self.cores[c].probe(addr) else {
                continue;
            };
            let dirty = self.cores[c].block(set, way).is_dirty();
            if dirty {
                let mut backing = L2Backing {
                    l2: &mut self.l2,
                    mem: &mut self.mem,
                };
                self.cores[c].writeback_block(set, way, &mut backing);
            }
            if for_store {
                self.cores[c].invalidate_way(set, way);
                self.stats.invalidations += 1;
                if dirty {
                    self.stats.dirty_invalidations += 1;
                }
            } else if dirty {
                // Load: remote copy stays resident, now S (clean).
                self.stats.downgrades += 1;
            }
        }
    }

    /// Executes one operation, returning the loaded value (0 for
    /// stores).
    ///
    /// # Panics
    ///
    /// Panics if the core index is out of range.
    pub fn step(&mut self, op: CoreOp) -> u64 {
        match op {
            CoreOp::Load { core, addr } => {
                self.snoop(core, addr, false);
                let mut backing = L2Backing {
                    l2: &mut self.l2,
                    mem: &mut self.mem,
                };
                self.cores[core].load_word(addr, &mut backing)
            }
            CoreOp::Store { core, addr, value } => {
                self.snoop(core, addr, true);
                let mut backing = L2Backing {
                    l2: &mut self.l2,
                    mem: &mut self.mem,
                };
                self.cores[core].store_word(addr, value, &mut backing);
                0
            }
        }
    }

    /// Runs a whole trace.
    pub fn run<I: IntoIterator<Item = CoreOp>>(&mut self, trace: I) {
        for op in trace {
            self.step(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};
    use std::collections::HashMap;

    fn system(cores: usize) -> CoherentSystem {
        CoherentSystem::new(
            cores,
            CacheGeometry::new(512, 2, 32).unwrap(),
            CacheGeometry::new(4096, 4, 32).unwrap(),
            ReplacementPolicy::Lru,
        )
    }

    #[test]
    fn cross_core_visibility() {
        let mut sys = system(2);
        sys.step(CoreOp::Store {
            core: 0,
            addr: 0x100,
            value: 42,
        });
        assert_eq!(
            sys.step(CoreOp::Load {
                core: 1,
                addr: 0x100
            }),
            42
        );
        assert_eq!(sys.stats().downgrades, 1);
    }

    #[test]
    fn store_invalidates_remote_copies() {
        let mut sys = system(4);
        for c in 0..4 {
            sys.step(CoreOp::Load {
                core: c,
                addr: 0x40,
            });
        }
        sys.step(CoreOp::Store {
            core: 0,
            addr: 0x40,
            value: 9,
        });
        assert_eq!(sys.stats().invalidations, 3);
        for c in 1..4 {
            assert_eq!(
                sys.step(CoreOp::Load {
                    core: c,
                    addr: 0x40
                }),
                9
            );
        }
    }

    #[test]
    fn write_ping_pong_removes_dirty_blocks() {
        // §7's mechanism: alternating writers keep invalidating each
        // other's dirty copy, so stores rarely find their word already
        // dirty locally.
        let mut sys = system(2);
        for i in 0..1_000u64 {
            sys.step(CoreOp::Store {
                core: (i % 2) as usize,
                addr: 0x80,
                value: i,
            });
        }
        assert!(sys.stats().dirty_invalidations > 900);
        let rbw_rate = sys.total_stores_to_dirty() as f64 / sys.total_stores() as f64;
        assert!(rbw_rate < 0.05, "ping-pong rbw rate {rbw_rate}");

        // Contrast: one core storing alone re-dirties its own word.
        let mut solo = system(1);
        for i in 0..1_000u64 {
            solo.step(CoreOp::Store {
                core: 0,
                addr: 0x80,
                value: i,
            });
        }
        let solo_rate = solo.total_stores_to_dirty() as f64 / solo.total_stores() as f64;
        assert!(solo_rate > 0.95, "solo rbw rate {solo_rate}");
    }

    #[test]
    fn sequentially_consistent_oracle() {
        let mut rng = StdRng::seed_from_u64(0xC0E);
        let mut sys = system(3);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            let core = rng.random_range(0..3);
            let addr = (rng.random_range(0..4096u64)) & !7;
            if rng.random_bool(0.4) {
                let v: u64 = rng.random();
                sys.step(CoreOp::Store {
                    core,
                    addr,
                    value: v,
                });
                oracle.insert(addr, v);
            } else {
                let got = sys.step(CoreOp::Load { core, addr });
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0), "addr {addr:#x}");
            }
        }
    }

    #[test]
    fn private_data_stays_unaffected() {
        let mut sys = system(2);
        sys.step(CoreOp::Store {
            core: 0,
            addr: 0x200,
            value: 5,
        });
        // Core 1 works elsewhere.
        for i in 0..50u64 {
            sys.step(CoreOp::Store {
                core: 1,
                addr: 0x4000 + i * 8,
                value: i,
            });
        }
        assert_eq!(sys.stats().invalidations, 0);
        assert_eq!(
            sys.step(CoreOp::Load {
                core: 0,
                addr: 0x200
            }),
            5
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = system(0);
    }
}
