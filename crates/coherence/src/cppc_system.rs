//! The multiprocessor CPPC (§7): private *CPPC-protected* L1s kept
//! coherent by the MSI write-invalidate protocol over a shared L2.
//!
//! This answers §7's question end-to-end: coherence actions (downgrades
//! and invalidations) parity-check outgoing dirty data and move it into
//! R2, so the register invariant survives arbitrary sharing — and
//! faults in dirty data are corrected even when it is a *remote* core's
//! access that forces the data out.

use cppc_cache_sim::cache::{Backing, Cache};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_core::{CppcCache, CppcConfig, Due};

use crate::system::{CoherenceStats, CoreOp};

struct L2Backing<'a> {
    l2: &'a mut Cache,
    mem: &'a mut MainMemory,
}

impl Backing for L2Backing<'_> {
    fn fetch_block_into(&mut self, base: u64, buf: &mut [u64]) {
        debug_assert_eq!(buf.len(), self.l2.geometry().words_per_block());
        self.l2.read_block_into(base, self.mem, buf);
    }

    fn write_back(&mut self, base: u64, data: &[u64], dirty_mask: u64) {
        let _ = self.l2.write_block(base, data, dirty_mask, self.mem);
    }
}

/// An `n`-core system whose private L1s are CPPC-protected.
#[derive(Debug, Clone)]
pub struct CppcCoherentSystem {
    cores: Vec<CppcCache>,
    l2: Cache,
    mem: MainMemory,
    stats: CoherenceStats,
}

impl CppcCoherentSystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, the CPPC configuration is invalid, or the
    /// block sizes differ between levels.
    #[must_use]
    pub fn new(
        n: usize,
        l1_geo: CacheGeometry,
        l2_geo: CacheGeometry,
        config: CppcConfig,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(n > 0, "need at least one core");
        assert_eq!(
            l1_geo.block_bytes(),
            l2_geo.block_bytes(),
            "L1 and L2 must share a block size"
        );
        CppcCoherentSystem {
            cores: (0..n)
                .map(|_| {
                    CppcCache::new_l1(l1_geo, config, policy).expect("validated configuration")
                })
                .collect(),
            l2: Cache::new(l2_geo, policy),
            mem: MainMemory::new(),
            stats: CoherenceStats::default(),
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Protocol statistics.
    #[must_use]
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Core `c`'s CPPC.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn core(&self, c: usize) -> &CppcCache {
        &self.cores[c]
    }

    /// Mutable access to core `c`'s CPPC (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn core_mut(&mut self, c: usize) -> &mut CppcCache {
        &mut self.cores[c]
    }

    /// Machine-wide read-before-write count.
    #[must_use]
    pub fn total_read_before_writes(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.stats().read_before_writes)
            .sum()
    }

    /// Every core's register invariant.
    #[must_use]
    pub fn verify_invariants(&self) -> bool {
        self.cores.iter().all(CppcCache::verify_invariant)
    }

    fn snoop(&mut self, requester: usize, addr: u64, for_store: bool) -> Result<(), Due> {
        for c in 0..self.cores.len() {
            if c == requester || self.cores[c].probe(addr).is_none() {
                continue;
            }
            let dirty = {
                let (set, way) = self.cores[c].probe(addr).expect("probed above");
                self.cores[c]
                    .tag_state_of(set, way)
                    .is_some_and(|(_, mask)| mask != 0)
            };
            let mut backing = L2Backing {
                l2: &mut self.l2,
                mem: &mut self.mem,
            };
            if for_store {
                self.cores[c].invalidate_block(addr, &mut backing)?;
                self.stats.invalidations += 1;
                if dirty {
                    self.stats.dirty_invalidations += 1;
                }
            } else if dirty {
                self.cores[c].clean_block(addr, &mut backing)?;
                self.stats.downgrades += 1;
            }
        }
        Ok(())
    }

    /// Executes one operation, returning the loaded value (0 for
    /// stores).
    ///
    /// # Errors
    ///
    /// Returns [`Due`] when a fault anywhere in the protocol path is
    /// uncorrectable.
    ///
    /// # Panics
    ///
    /// Panics if the core index is out of range.
    pub fn step(&mut self, op: CoreOp) -> Result<u64, Due> {
        match op {
            CoreOp::Load { core, addr } => {
                self.snoop(core, addr, false)?;
                let mut backing = L2Backing {
                    l2: &mut self.l2,
                    mem: &mut self.mem,
                };
                self.cores[core].load_word(addr, &mut backing)
            }
            CoreOp::Store { core, addr, value } => {
                self.snoop(core, addr, true)?;
                let mut backing = L2Backing {
                    l2: &mut self.l2,
                    mem: &mut self.mem,
                };
                self.cores[core].store_word(addr, value, &mut backing)?;
                Ok(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_campaign::rng::rngs::StdRng;
    use cppc_campaign::rng::{RngExt, SeedableRng};
    use std::collections::HashMap;

    fn system(cores: usize) -> CppcCoherentSystem {
        CppcCoherentSystem::new(
            cores,
            CacheGeometry::new(1024, 2, 32).unwrap(),
            CacheGeometry::new(8192, 4, 32).unwrap(),
            CppcConfig::paper(),
            ReplacementPolicy::Lru,
        )
    }

    #[test]
    fn cross_core_visibility_with_protection() {
        let mut sys = system(2);
        sys.step(CoreOp::Store {
            core: 0,
            addr: 0x100,
            value: 42,
        })
        .unwrap();
        assert_eq!(
            sys.step(CoreOp::Load {
                core: 1,
                addr: 0x100
            })
            .unwrap(),
            42
        );
        assert!(sys.verify_invariants());
    }

    #[test]
    fn fault_corrected_when_remote_core_forces_writeback() {
        // The §7 scenario: core 0 holds corrupted dirty data; core 1's
        // load forces the downgrade, whose parity check triggers
        // recovery — the fault never propagates.
        let mut sys = system(2);
        sys.step(CoreOp::Store {
            core: 0,
            addr: 0x200,
            value: 0xFEED,
        })
        .unwrap();
        sys.core_mut(0).flip_data_bit_at(0x200, 11);
        assert_eq!(
            sys.step(CoreOp::Load {
                core: 1,
                addr: 0x200
            })
            .unwrap(),
            0xFEED
        );
        assert!(sys.core(0).stats().corrected_dirty >= 1);
        assert!(sys.verify_invariants());
    }

    #[test]
    fn fault_corrected_when_remote_store_invalidates() {
        let mut sys = system(2);
        sys.step(CoreOp::Store {
            core: 0,
            addr: 0x300,
            value: 0xAAAA,
        })
        .unwrap();
        sys.core_mut(0).flip_data_bit_at(0x300, 50);
        // Core 1 writes the same block: core 0's copy is invalidated,
        // its corrupted dirty data recovered before the write-back.
        sys.step(CoreOp::Store {
            core: 1,
            addr: 0x308,
            value: 0xBBBB,
        })
        .unwrap();
        assert_eq!(
            sys.step(CoreOp::Load {
                core: 1,
                addr: 0x300
            })
            .unwrap(),
            0xAAAA
        );
        assert!(sys.verify_invariants());
    }

    #[test]
    fn randomized_sharing_oracle_with_invariants() {
        let mut rng = StdRng::seed_from_u64(0x77);
        let mut sys = system(3);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for i in 0..15_000 {
            let core = rng.random_range(0..3);
            let addr = (rng.random_range(0..4096u64)) & !7;
            if rng.random_bool(0.4) {
                let v: u64 = rng.random();
                sys.step(CoreOp::Store {
                    core,
                    addr,
                    value: v,
                })
                .unwrap();
                oracle.insert(addr, v);
            } else {
                let got = sys.step(CoreOp::Load { core, addr }).unwrap();
                assert_eq!(got, *oracle.get(&addr).unwrap_or(&0), "addr {addr:#x}");
            }
            if i % 1000 == 0 {
                assert!(sys.verify_invariants(), "op {i}");
            }
        }
    }

    #[test]
    fn sharing_reduces_rbw_on_protected_l1s_too() {
        // §7's efficiency hypothesis measured on the real CPPC.
        let run = |sharing: f64| {
            let mut sys = system(2);
            let gen = crate::sharing::SharedTraceGenerator::new(2, 512, 128, sharing, 0.4, 3);
            let mut stores = 0u64;
            for op in gen.take(30_000) {
                if matches!(op, CoreOp::Store { .. }) {
                    stores += 1;
                }
                sys.step(op).unwrap();
            }
            sys.total_read_before_writes() as f64 / stores as f64
        };
        let private_only = run(0.0);
        let heavy_sharing = run(0.6);
        assert!(
            heavy_sharing < private_only,
            "{heavy_sharing} vs {private_only}"
        );
    }
}
