//! Multiprocessor trace generation with a tunable sharing degree.

use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};

use crate::system::CoreOp;

/// Generates a deterministic multiprocessor trace: each core mostly
/// works in a private region, but a `sharing_fraction` of its accesses
/// (loads and stores alike) target a region shared by all cores —
/// the knob for §7's invalidation-rate experiment.
#[derive(Debug)]
pub struct SharedTraceGenerator {
    rng: StdRng,
    cores: usize,
    private_bytes: u64,
    shared_bytes: u64,
    sharing_fraction: f64,
    store_fraction: f64,
    next_core: usize,
}

impl SharedTraceGenerator {
    /// Creates a generator for `cores` cores.
    ///
    /// * `private_bytes` — per-core private region size;
    /// * `shared_bytes` — size of the region all cores contend on;
    /// * `sharing_fraction` — probability an access targets the shared
    ///   region;
    /// * `store_fraction` — probability an access is a store.
    ///
    /// # Panics
    ///
    /// Panics if any size is below one word, `cores` is zero, or a
    /// fraction is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        cores: usize,
        private_bytes: u64,
        shared_bytes: u64,
        sharing_fraction: f64,
        store_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(cores > 0, "need cores");
        assert!(private_bytes >= 8 && shared_bytes >= 8, "regions too small");
        assert!((0.0..=1.0).contains(&sharing_fraction), "fraction in [0,1]");
        assert!((0.0..=1.0).contains(&store_fraction), "fraction in [0,1]");
        SharedTraceGenerator {
            rng: StdRng::seed_from_u64(seed),
            cores,
            private_bytes,
            shared_bytes,
            sharing_fraction,
            store_fraction,
            next_core: 0,
        }
    }

    /// Generates the next operation (cores issue round-robin).
    pub fn step(&mut self) -> CoreOp {
        let core = self.next_core;
        self.next_core = (self.next_core + 1) % self.cores;

        let addr = if self.rng.random_bool(self.sharing_fraction) {
            // Shared region sits at the top of the address space.
            0x1000_0000 + (self.rng.random_range(0..self.shared_bytes) & !7)
        } else {
            // Private regions are disjoint per core.
            (core as u64 + 1) * 0x10_0000 + (self.rng.random_range(0..self.private_bytes) & !7)
        };
        if self.rng.random_bool(self.store_fraction) {
            CoreOp::Store {
                core,
                addr,
                value: self.rng.random(),
            }
        } else {
            CoreOp::Load { core, addr }
        }
    }
}

impl Iterator for SharedTraceGenerator {
    type Item = CoreOp;

    fn next(&mut self) -> Option<CoreOp> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::CoherentSystem;
    use cppc_cache_sim::geometry::CacheGeometry;
    use cppc_cache_sim::replacement::ReplacementPolicy;

    fn run(sharing: f64) -> (f64, u64) {
        let mut sys = CoherentSystem::new(
            2,
            CacheGeometry::new(4096, 2, 32).unwrap(),
            CacheGeometry::new(32 * 1024, 4, 32).unwrap(),
            ReplacementPolicy::Lru,
        );
        let trace = SharedTraceGenerator::new(2, 2048, 512, sharing, 0.4, 7);
        sys.run(trace.take(40_000));
        let rbw_rate = sys.total_stores_to_dirty() as f64 / sys.total_stores() as f64;
        (rbw_rate, sys.stats().dirty_invalidations)
    }

    #[test]
    fn determinism() {
        let a: Vec<_> = SharedTraceGenerator::new(2, 1024, 256, 0.3, 0.4, 1)
            .take(100)
            .collect();
        let b: Vec<_> = SharedTraceGenerator::new(2, 1024, 256, 0.3, 0.4, 1)
            .take(100)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn round_robin_cores() {
        let ops: Vec<_> = SharedTraceGenerator::new(3, 1024, 256, 0.5, 0.5, 2)
            .take(6)
            .collect();
        let core_of = |op: &CoreOp| match *op {
            CoreOp::Load { core, .. } | CoreOp::Store { core, .. } => core,
        };
        assert_eq!(
            ops.iter().map(core_of).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
    }

    #[test]
    fn sharing_reduces_read_before_writes() {
        // §7's hypothesis, measured: more sharing → more dirty
        // invalidations → fewer stores land on locally-dirty words.
        let (rbw_none, inv_none) = run(0.0);
        let (rbw_high, inv_high) = run(0.6);
        assert_eq!(inv_none, 0);
        assert!(inv_high > 1_000, "sharing causes dirty invalidations");
        assert!(
            rbw_high < rbw_none,
            "rbw rate with sharing {rbw_high} vs private-only {rbw_none}"
        );
    }
}
