//! MSI write-invalidate coherence substrate.
//!
//! The paper's §7 asks how CPPC behaves in multiprocessors: *"In
//! invalidate protocols, since many dirty blocks may be invalidated,
//! the number of read-before-write operations might decrease which
//! might lead to better efficiency in multiprocessor CPPCs."* This
//! crate provides the substrate to test that hypothesis: `n` cores with
//! private write-back L1s kept coherent by an MSI write-invalidate
//! protocol over a shared L2.
//!
//! States are derived from the existing cache structures: a valid block
//! with any dirty word is **M** (this simulator writes a block back and
//! downgrades rather than tracking a separate M-clean state), a valid
//! clean block is **S**, an invalid way is **I**.
//!
//! * A store needs M: every other core's copy is invalidated (written
//!   back to the shared L2 first if dirty).
//! * A load needs S or better: a remote M copy is written back to the
//!   shared L2 (downgraded to S) before the local fill.
//!
//! The interleaving is sequential (one operation completes before the
//! next starts), giving a sequentially consistent memory — sufficient
//! for the §7 read-before-write statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cppc_system;
pub mod sharing;
pub mod system;

pub use cppc_system::CppcCoherentSystem;
pub use sharing::SharedTraceGenerator;
pub use system::{CoherenceStats, CoherentSystem, CoreOp};
