//! The sweep driver: embarrassingly parallel across configurations,
//! deterministic at any thread count, resumable via per-config
//! checkpoints.
//!
//! The driver first runs the shared functional workload once per
//! distinct geometry (sequentially — it is the only stateful step),
//! then hands configurations to a worker pool. Workers claim indices
//! from an atomic counter; because [`crate::eval::evaluate`] is a pure
//! function and results are stitched back by index, the output is
//! byte-identical whether one thread or sixteen ran the sweep.
//!
//! Checkpointing: with a checkpoint directory set, each finished
//! configuration is written to `<dir>/<digest:016x>.json` (atomically,
//! via a temp file + rename) and any config whose checkpoint already
//! exists — with a matching digest — is restored instead of
//! re-evaluated. The digest covers the config label *and* the spec
//! identity (seed, trials, workload), so stale checkpoints from a
//! different sweep are ignored rather than trusted.

use crate::eval::{self, ConfigPoint, GeometryBaseline};
use crate::spec::{SweepConfig, SweepSpec};
use cppc_campaign::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Driver knobs.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads across configurations (0 = all available cores).
    pub threads: usize,
    /// Per-config checkpoint directory (`None` = no checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
}

/// What a sweep run produced.
#[derive(Debug)]
pub enum SweepOutcome {
    /// Every selected configuration was evaluated (or restored), in
    /// enumeration order.
    Complete(Vec<ConfigPoint>),
    /// The interrupt flag was raised before all configurations
    /// finished; completed ones are checkpointed if a directory was
    /// given.
    Interrupted {
        /// Configurations evaluated or restored before the interrupt.
        completed: usize,
        /// Configurations the sweep selected in total.
        total: usize,
    },
}

fn checkpoint_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("{digest:016x}.json"))
}

/// Loads a checkpointed point if it exists and matches `cfg`'s digest.
fn load_checkpoint(dir: &Path, cfg: &SweepConfig, digest: u64) -> Option<ConfigPoint> {
    let text = std::fs::read_to_string(checkpoint_path(dir, digest)).ok()?;
    let point = ConfigPoint::from_json(&Json::parse(&text).ok()?)?;
    (point.digest == digest && point.config == *cfg).then_some(point)
}

fn write_checkpoint(dir: &Path, point: &ConfigPoint) -> Result<(), String> {
    let path = checkpoint_path(dir, point.digest);
    let tmp = path.with_extension("tmp");
    let body = point.to_json().to_string_compact();
    std::fs::write(&tmp, body).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))
}

/// Evaluates one config, consulting and maintaining checkpoints.
fn point_for(
    spec: &SweepSpec,
    cfg: &SweepConfig,
    base: &GeometryBaseline,
    ckpt_dir: Option<&Path>,
) -> Result<ConfigPoint, String> {
    let digest = cfg.digest(spec);
    if let Some(dir) = ckpt_dir {
        if let Some(point) = load_checkpoint(dir, cfg, digest) {
            crate::obs::CHECKPOINT_HITS.inc();
            return Ok(point);
        }
    }
    let point = eval::evaluate(spec, cfg, base)?;
    crate::obs::CONFIGS_EVALUATED.inc();
    if let Some(dir) = ckpt_dir {
        write_checkpoint(dir, &point)?;
        crate::obs::CHECKPOINT_WRITES.inc();
    }
    Ok(point)
}

/// Runs the sweep.
///
/// `interrupt` is polled between configurations; once raised, workers
/// stop claiming new configs (in-flight ones finish and are
/// checkpointed) and the sweep returns [`SweepOutcome::Interrupted`].
/// A later run with the same spec and checkpoint directory restores
/// the finished configs and produces bytes identical to an
/// uninterrupted sweep.
///
/// # Errors
///
/// Returns a message for an invalid spec, an empty selection after
/// filtering, an unknown benchmark profile, or a checkpoint I/O
/// failure.
pub fn run_sweep(
    spec: &SweepSpec,
    opts: &SweepOptions,
    interrupt: Option<&AtomicBool>,
) -> Result<SweepOutcome, String> {
    spec.validate()?;
    let _span = crate::obs::SWEEP_LATENCY.start();
    crate::obs::SWEEPS.inc();
    let configs = spec.enumerate();
    if configs.is_empty() {
        return Err("sweep selects no configurations (filters too strict?)".to_string());
    }
    if let Some(dir) = &opts.checkpoint_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }

    // One functional run per distinct geometry, shared by every scheme
    // at that geometry.
    let mut baselines: BTreeMap<(u32, u32, u32), GeometryBaseline> = BTreeMap::new();
    for c in &configs {
        let key = (c.cache_kib, c.associativity, c.block_bytes);
        if let std::collections::btree_map::Entry::Vacant(slot) = baselines.entry(key) {
            slot.insert(eval::baseline(spec, key.0, key.1, key.2)?);
        }
    }

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        opts.threads
    }
    .min(configs.len())
    .max(1);

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<ConfigPoint>>> = Mutex::new(vec![None; configs.len()]);
    let first_error: Mutex<Option<String>> = Mutex::new(None);
    let ckpt_dir = opts.checkpoint_dir.as_deref();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let interrupted = interrupt.is_some_and(|f| f.load(Ordering::Acquire));
                if interrupted || stop.load(Ordering::Acquire) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = configs.get(i) else { return };
                let key = (cfg.cache_kib, cfg.associativity, cfg.block_bytes);
                let base = &baselines[&key];
                match point_for(spec, cfg, base, ckpt_dir) {
                    Ok(point) => {
                        slots.lock().expect("sweep mutex")[i] = Some(point);
                    }
                    Err(e) => {
                        let mut err = first_error.lock().expect("sweep mutex");
                        err.get_or_insert(e);
                        stop.store(true, Ordering::Release);
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.into_inner().expect("sweep mutex") {
        return Err(e);
    }
    let slots = slots.into_inner().expect("sweep mutex");
    let total = slots.len();
    let completed = slots.iter().filter(|s| s.is_some()).count();
    if completed < total {
        return Ok(SweepOutcome::Interrupted { completed, total });
    }
    Ok(SweepOutcome::Complete(
        slots
            .into_iter()
            .map(|s| s.expect("counted above"))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppc_core::SchemeKind;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            tier: "custom".to_string(),
            schemes: vec![SchemeKind::Cppc, SchemeKind::Parity1d],
            cache_kib: vec![8],
            associativity: vec![2],
            block_bytes: vec![32],
            interleave_k: vec![8],
            scrub_intervals: vec![None],
            trials: 4,
            campaign_seed: 0xBEEF,
            workload_ops: 2_000,
            benchmark: "gcc".to_string(),
            include: Vec::new(),
            exclude: Vec::new(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cppc-explore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn points(outcome: SweepOutcome) -> Vec<ConfigPoint> {
        match outcome {
            SweepOutcome::Complete(p) => p,
            SweepOutcome::Interrupted { completed, total } => {
                panic!("interrupted {completed}/{total}")
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = tiny_spec();
        let one = points(
            run_sweep(
                &spec,
                &SweepOptions {
                    threads: 1,
                    checkpoint_dir: None,
                },
                None,
            )
            .unwrap(),
        );
        let four = points(
            run_sweep(
                &spec,
                &SweepOptions {
                    threads: 4,
                    checkpoint_dir: None,
                },
                None,
            )
            .unwrap(),
        );
        assert_eq!(one, four);
    }

    #[test]
    fn pre_raised_interrupt_stops_before_any_work() {
        let spec = tiny_spec();
        let flag = AtomicBool::new(true);
        match run_sweep(&spec, &SweepOptions::default(), Some(&flag)).unwrap() {
            SweepOutcome::Interrupted { completed, total } => {
                assert_eq!(completed, 0);
                assert_eq!(total, 2);
            }
            SweepOutcome::Complete(_) => panic!("expected interrupt"),
        }
    }

    #[test]
    fn checkpoints_restore_to_identical_points() {
        let spec = tiny_spec();
        let dir = tmp_dir("ckpt");
        let opts = SweepOptions {
            threads: 1,
            checkpoint_dir: Some(dir.clone()),
        };
        let first = points(run_sweep(&spec, &opts, None).unwrap());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), first.len());
        // Second run restores every point from disk.
        let second = points(run_sweep(&spec, &opts, None).unwrap());
        assert_eq!(first, second);
        // And matches a checkpoint-free run bit for bit.
        let fresh = points(run_sweep(&spec, &SweepOptions::default(), None).unwrap());
        assert_eq!(first, fresh);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_checkpoints_from_another_spec_are_ignored() {
        let spec = tiny_spec();
        let dir = tmp_dir("stale");
        let opts = SweepOptions {
            threads: 1,
            checkpoint_dir: Some(dir.clone()),
        };
        let first = points(run_sweep(&spec, &opts, None).unwrap());
        // A re-seeded spec must not trust the old files (different
        // digests => different checkpoint keys).
        let mut reseeded = spec.clone();
        reseeded.campaign_seed ^= 0xFF;
        let second = points(run_sweep(&reseeded, &opts, None).unwrap());
        assert_eq!(first.len(), second.len());
        assert_ne!(first[0].digest, second[0].digest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_selection_is_an_error() {
        let mut spec = tiny_spec();
        spec.include = vec!["no-such-label".to_string()];
        let err = run_sweep(&spec, &SweepOptions::default(), None).unwrap_err();
        assert!(err.contains("no configurations"), "{err}");
    }
}
