//! `explore.*` metrics: sweep execution, checkpoint reuse, frontier
//! size.

cppc_obs::metrics! {
    group EXPLORE_METRICS: "explore", "Design-space explorer: sweep execution, checkpoint reuse and Pareto-frontier size.";
    counter SWEEPS: "explore.sweeps", "sweeps", "Design-space sweeps started.";
    counter CONFIGS_EVALUATED: "explore.configs_evaluated", "configs", "Configurations evaluated from scratch (campaign + analytical models).";
    counter CHECKPOINT_HITS: "explore.checkpoint_hits", "configs", "Configurations restored from a per-config checkpoint instead of re-evaluated.";
    counter CHECKPOINT_WRITES: "explore.checkpoint_writes", "files", "Per-config checkpoint files written.";
    gauge FRONTIER_SIZE: "explore.frontier_size", "configs", "Size of the Pareto frontier (rank-0 configs) of the last assembled sweep document.";
    timer SWEEP_LATENCY: "explore.sweep.ns", "ns", "Wall time of one full sweep (baselines + all configurations).";
}

/// Registers the `explore.*` group with the global registry
/// (idempotent).
pub fn register_metrics() {
    EXPLORE_METRICS.register();
}
