//! The sweep document (`docs/results/explore_<tier>.json`) and the
//! `docs/EXPLORER.md` renderer.
//!
//! [`sweep_doc`] serialises a finished sweep — spec echo, per-point
//! objectives with exact bit patterns, outcome tallies and dominance
//! ranks — under the `cppc-explore/1` schema. [`render`] turns the
//! *committed* documents back into `docs/EXPLORER.md`: a hand-written
//! companion guide followed by generated frontier tables, per-knob
//! sensitivity slices and dominance-rank counts. Rendering reads only
//! the documents (no simulation), so CI can regenerate the book and
//! fail on drift exactly as it does for `docs/RESULTS.md`,
//! `docs/SCHEMES.md` and `docs/METRICS.md`.

use crate::eval::ConfigPoint;
use crate::pareto;
use crate::spec::SweepSpec;
use cppc_campaign::json::Json;
use cppc_core::SchemeKind;
use std::fmt::Write as _;

/// Schema tag of explore documents.
pub const SCHEMA: &str = "cppc-explore/1";

/// Pretty-prints a document: 2-space indent, trailing newline — the
/// byte format of every committed `docs/results/*.json`.
#[must_use]
pub fn pretty(v: &Json) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out.push('\n');
    out
}

fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                indent(depth + 1, out);
                out.push_str(&Json::Str(k.clone()).to_string_compact());
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push('}');
        }
        other => out.push_str(&other.to_string_compact()),
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn scrub_json(iv: Option<u64>) -> Json {
    iv.map_or(Json::Null, Json::UInt)
}

/// Assembles the sweep document: spec echo, summary, and every point
/// annotated with its dominance rank. Deterministic — the same spec
/// and points always produce the same bytes.
#[must_use]
pub fn sweep_doc(spec: &SweepSpec, points: &[ConfigPoint]) -> Json {
    let objectives: Vec<Vec<f64>> = points.iter().map(ConfigPoint::objectives).collect();
    let ranks = pareto::ranks(&objectives, &pareto::MAXIMIZE);
    let frontier = ranks.iter().filter(|&&r| r == 0).count();
    let frontier_non_cppc = points
        .iter()
        .zip(&ranks)
        .filter(|(p, &r)| r == 0 && p.config.scheme != SchemeKind::Cppc)
        .count();
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    crate::obs::FRONTIER_SIZE.set(i64::try_from(frontier).unwrap_or(i64::MAX));

    let schemes = spec
        .schemes
        .iter()
        .map(|s| s.name())
        .collect::<Vec<_>>()
        .join(", ");
    let spec_obj = Json::Obj(vec![
        ("schemes".to_string(), Json::Str(schemes)),
        (
            "cache_kib".to_string(),
            Json::Arr(
                spec.cache_kib
                    .iter()
                    .map(|&v| Json::UInt(u64::from(v)))
                    .collect(),
            ),
        ),
        (
            "associativity".to_string(),
            Json::Arr(
                spec.associativity
                    .iter()
                    .map(|&v| Json::UInt(u64::from(v)))
                    .collect(),
            ),
        ),
        (
            "block_bytes".to_string(),
            Json::Arr(
                spec.block_bytes
                    .iter()
                    .map(|&v| Json::UInt(u64::from(v)))
                    .collect(),
            ),
        ),
        (
            "interleave_k".to_string(),
            Json::Arr(
                spec.interleave_k
                    .iter()
                    .map(|&v| Json::UInt(u64::from(v)))
                    .collect(),
            ),
        ),
        (
            "scrub_intervals".to_string(),
            Json::Arr(
                spec.scrub_intervals
                    .iter()
                    .map(|&iv| scrub_json(iv))
                    .collect(),
            ),
        ),
        ("trials_per_config".to_string(), Json::UInt(spec.trials)),
        (
            "campaign_seed".to_string(),
            Json::Str(format!("{:#x}", spec.campaign_seed)),
        ),
        ("benchmark".to_string(), Json::Str(spec.benchmark.clone())),
        (
            "workload_ops".to_string(),
            Json::UInt(spec.workload_ops as u64),
        ),
        (
            "objectives".to_string(),
            Json::Str(
                "mttf_years (maximize); energy_ratio, cpi_inflation_pct, area_overhead_pct \
                 (minimize)"
                    .to_string(),
            ),
        ),
    ]);
    let summary = Json::Obj(vec![
        ("configs".to_string(), Json::UInt(points.len() as u64)),
        ("frontier_size".to_string(), Json::UInt(frontier as u64)),
        (
            "frontier_non_cppc".to_string(),
            Json::UInt(frontier_non_cppc as u64),
        ),
        (
            "dominated".to_string(),
            Json::UInt((points.len() - frontier) as u64),
        ),
        ("max_rank".to_string(), Json::UInt(u64::from(max_rank))),
    ]);
    let points_json: Vec<Json> = points
        .iter()
        .zip(&ranks)
        .map(|(p, &r)| {
            let Json::Obj(mut fields) = p.to_json() else {
                unreachable!("ConfigPoint::to_json returns an object")
            };
            fields.push(("rank".to_string(), Json::UInt(u64::from(r))));
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(SCHEMA.to_string())),
        ("tier".to_string(), Json::Str(spec.tier.clone())),
        ("spec".to_string(), spec_obj),
        ("summary".to_string(), summary),
        ("points".to_string(), Json::Arr(points_json)),
    ])
}

// ---------------------------------------------------------------------
// docs/EXPLORER.md rendering
// ---------------------------------------------------------------------

/// The hand-written companion guide rendered above the generated
/// tables (the TRACES.md-style specification half of the book).
const GUIDE: &str = "\
# Design-space explorer

<!-- GENERATED FILE, do not edit. Regenerate with\n     \
`cargo run -p cppc-cli --bin explorer-md > docs/EXPLORER.md`. -->

The paper evaluates CPPC at a handful of hand-picked configurations;
`cppc-cli explore` (crate `cppc-explore`, ROADMAP item 4) sweeps the
knobs this repository exposes and maps each configuration onto four
objectives. The tables below are generated from the committed
[`docs/results/explore_*.json`](results/) documents — rendering runs no
simulation, and CI fails if the book or the quick-tier document drifts
from what the code produces.

## Sweep specification

A sweep is a cross product over five knob axes plus shared campaign and
workload parameters:

| knob | axis | notes |
|---|---|---|
| `scheme` | any subset of the [scheme zoo](SCHEMES.md) | `cppc`, `parity1d`, `secded-interleaved`, `parity2d`, `silent-write-ecc`, `harp-odecc` |
| `cache_kib` | L1 capacities (KiB, power of two) | rescales the MTTF bit count and the energy/timing geometry |
| `associativity` | L1 ways (power of two) | |
| `block_bytes` | L1 block size (power of two ≥ 8) | |
| `interleave_k` | CPPC parity interleave factors (divisors of 64) | multiplies **CPPC configs only**; other schemes keep their canonical 8-way codes |
| `scrub_intervals` | cycles between scrub passes, or none | caps the double-fault window `Tavg` for correcting schemes; detection-only parity gains nothing |

Shared parameters: `trials` (fault-injection trials per config),
`campaign_seed`, `benchmark` + `workload_ops` (the SPEC2000 profile and
window driving the timing/energy models), and optional
`--include`/`--exclude` label filters.

Every config has a stable label —
`<scheme>/<size>KiB/<ways>w/<block>B/k<k>/scrub-<interval|none>` — and a
stable FNV-1a digest over the label plus the spec identity (seed,
trials, workload). The digest salts the per-config campaign seed and
keys per-config checkpoint files, which is what makes a sweep
byte-identical at any `--threads` and resumable after an interrupt
(`--checkpoint-dir`). Filters are deliberately excluded from the
digest, so a filtered partial sweep warms checkpoints a later full
sweep reuses.

## Objectives and dominance

Each configuration is scored on:

1. **MTTF (years, maximize)** — closed-form models from
   `cppc-reliability`, rescaled to the config's capacity; scrubbing
   shortens the vulnerability window of double-fault-limited schemes.
2. **Energy ratio (minimize)** — dynamic energy over the workload
   window divided by a one-dimensional-parity cache of the *same
   geometry* without scrubbing (so `parity1d/scrub-none` is exactly
   1.0 by construction).
3. **CPI inflation % (minimize)** — the read-before-write
   port-contention timing model, normalised the same way; scrub
   traffic adds its amortised share.
4. **Area overhead % (minimize)** — code-bit storage overhead.

A config **dominates** another when it is at least as good on all four
objectives and strictly better on at least one. Exact ties and
duplicates do not dominate each other. **Rank 0** (the Pareto frontier)
is the set no config dominates; rank 1 is the frontier after removing
rank 0, and so on — a config's rank counts how many onion layers sit
between it and the frontier. Every fault-injection tally travels with
its point, so the frontier can be cross-checked against empirical SDC
rates.

## Reproducing and extending

```console
$ cppc-cli explore --quick              # 28-config CI tier -> docs/results/explore_quick.json
$ cppc-cli explore                      # 432-config full tier -> docs/results/explore_full.json
$ cppc-cli explore --quick --check      # CI gate: re-run, require byte-identity
$ cppc-cli explore --render             # re-render this file from committed JSONs
$ cppc-cli explore --threads 8 --checkpoint-dir /tmp/sweep.d   # parallel + resumable
$ cppc-cli explore --include cppc/ --out /tmp/cppc_only.json   # filtered side study
$ cppc-cli submit --kind explore --quick --watch               # through the daemon
```

Runs are deterministic: any `--threads`, with or without checkpoints,
produces the same bytes (pinned by `tests/explore_determinism.rs`). To
extend the space, edit the tier constructors in
`crates/explore/src/spec.rs` (or build a custom `SweepSpec`; see
`examples/design_space.rs`), then regenerate the documents and this
book. Adding a whole new knob is a four-step recipe documented in
[`docs/ARCHITECTURE.md`](ARCHITECTURE.md).
";

fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a != 0.0 && !(1e-2..1e4).contains(&a) {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

fn pt_f(p: &Json, key: &str) -> f64 {
    p.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn pt_u(p: &Json, key: &str) -> u64 {
    p.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn pt_s<'a>(p: &'a Json, key: &str) -> &'a str {
    p.get(key).and_then(Json::as_str).unwrap_or("?")
}

fn sdc_pct(p: &Json) -> f64 {
    let tally = p.get("tally");
    let field = |k: &str| {
        tally
            .and_then(|t| t.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let total = field("masked") + field("corrected") + field("due") + field("sdc");
    if total == 0 {
        return 0.0;
    }
    field("sdc") as f64 / total as f64 * 100.0
}

fn objective_cells(p: &Json) -> String {
    format!(
        "{} | {:.4} | {:+.3} | {:.2} | {:.1}",
        fnum(pt_f(p, "mttf_years")),
        pt_f(p, "energy_ratio"),
        pt_f(p, "cpi_inflation_pct"),
        pt_f(p, "area_overhead_pct"),
        sdc_pct(p),
    )
}

const OBJECTIVE_HEADER: &str = "MTTF (years) | energy ÷ parity | CPI +% | area % | SDC % |";

fn push_point_table(out: &mut String, head: &str, points: &[&Json], with_rank: bool) {
    if points.is_empty() {
        out.push_str("_No configurations in this slice._\n\n");
        return;
    }
    let rank_head = if with_rank { " rank |" } else { "" };
    let dashes = 6 + usize::from(with_rank);
    writeln!(out, "| {head} | {OBJECTIVE_HEADER}{rank_head}").unwrap();
    out.push_str(&format!("|{}\n", "---|".repeat(dashes)));
    for p in points {
        let rank_cell = if with_rank {
            format!(" {} |", pt_u(p, "rank"))
        } else {
            String::new()
        };
        writeln!(
            out,
            "| `{}` | {} |{}",
            pt_s(p, "label"),
            objective_cells(p),
            rank_cell
        )
        .unwrap();
    }
    out.push('\n');
}

fn scrub_matches(p: &Json, none_only: bool) -> bool {
    let is_none = matches!(p.get("scrub_interval"), Some(Json::Null));
    !none_only || is_none
}

/// Renders the per-tier study section from one committed document.
fn tier_section(out: &mut String, title: &str, doc: &Json) {
    let summary = |k: &str| {
        doc.get("summary")
            .and_then(|s| s.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let empty = Vec::new();
    let points: Vec<&Json> = doc
        .get("points")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
        .iter()
        .collect();
    writeln!(out, "## {title}\n").unwrap();
    let trials = doc
        .get("spec")
        .and_then(|s| s.get("trials_per_config"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let benchmark = doc
        .get("spec")
        .and_then(|s| s.get("benchmark"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    writeln!(
        out,
        "{} configurations ({} fault-injection trials each, `{}` workload): \
         **{} on the Pareto frontier** ({} from non-CPPC schemes), {} dominated, \
         deepest rank {}.\n",
        summary("configs"),
        trials,
        benchmark,
        summary("frontier_size"),
        summary("frontier_non_cppc"),
        summary("dominated"),
        summary("max_rank"),
    )
    .unwrap();

    // Frontier table.
    writeln!(out, "### Pareto frontier (rank 0)\n").unwrap();
    let frontier: Vec<&Json> = points
        .iter()
        .copied()
        .filter(|p| pt_u(p, "rank") == 0)
        .collect();
    push_point_table(out, "config", &frontier, false);

    // Reference geometry for the sensitivity slices.
    let caches: Vec<u64> = {
        let mut seen = Vec::new();
        for p in &points {
            let v = pt_u(p, "cache_kib");
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    };
    let ref_cache = if caches.contains(&32) {
        32
    } else {
        caches.first().copied().unwrap_or(0)
    };
    let ref_assoc = points.first().map_or(0, |p| pt_u(p, "associativity"));
    let ref_block = points.first().map_or(0, |p| pt_u(p, "block_bytes"));
    let ref_k = points
        .iter()
        .filter(|p| pt_s(p, "scheme") == "cppc")
        .map(|p| pt_u(p, "k"))
        .max()
        .unwrap_or(8);
    let at_ref_geometry = |p: &&Json| {
        pt_u(p, "cache_kib") == ref_cache
            && pt_u(p, "associativity") == ref_assoc
            && pt_u(p, "block_bytes") == ref_block
    };
    writeln!(
        out,
        "### Sensitivity slices\n\nReference point: {ref_cache} KiB, {ref_assoc}-way, \
         {ref_block} B blocks, k = {ref_k}, no scrubbing; one knob varies per table.\n",
    )
    .unwrap();

    writeln!(out, "#### CPPC interleave factor k\n").unwrap();
    let k_slice: Vec<&Json> = points
        .iter()
        .copied()
        .filter(|p| pt_s(p, "scheme") == "cppc" && at_ref_geometry(p) && scrub_matches(p, true))
        .collect();
    push_point_table(out, "config", &k_slice, true);

    writeln!(out, "#### Cache size\n").unwrap();
    let size_slice: Vec<&Json> = points
        .iter()
        .copied()
        .filter(|p| {
            pt_s(p, "scheme") == "cppc"
                && pt_u(p, "k") == ref_k
                && pt_u(p, "associativity") == ref_assoc
                && pt_u(p, "block_bytes") == ref_block
                && scrub_matches(p, true)
        })
        .collect();
    push_point_table(out, "config", &size_slice, true);

    writeln!(out, "#### Scrub interval\n").unwrap();
    let scrub_slice: Vec<&Json> = points
        .iter()
        .copied()
        .filter(|p| pt_s(p, "scheme") == "cppc" && pt_u(p, "k") == ref_k && at_ref_geometry(p))
        .collect();
    push_point_table(out, "config", &scrub_slice, true);

    writeln!(out, "#### Protection scheme\n").unwrap();
    let scheme_slice: Vec<&Json> = points
        .iter()
        .copied()
        .filter(|p| {
            at_ref_geometry(p)
                && scrub_matches(p, true)
                && (pt_s(p, "scheme") != "cppc" || pt_u(p, "k") == ref_k)
        })
        .collect();
    push_point_table(out, "config", &scheme_slice, true);

    // Dominance accounting.
    writeln!(out, "### Dominance ranks\n").unwrap();
    writeln!(out, "| scheme | configs | on frontier | dominated |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    let mut schemes_seen: Vec<&str> = Vec::new();
    for p in &points {
        let s = pt_s(p, "scheme");
        if !schemes_seen.contains(&s) {
            schemes_seen.push(s);
        }
    }
    for s in schemes_seen {
        let total = points.iter().filter(|p| pt_s(p, "scheme") == s).count();
        let on_front = points
            .iter()
            .filter(|p| pt_s(p, "scheme") == s && pt_u(p, "rank") == 0)
            .count();
        writeln!(
            out,
            "| `{s}` | {total} | {on_front} | {} |",
            total - on_front
        )
        .unwrap();
    }
    out.push('\n');
    let max_rank = summary("max_rank");
    writeln!(out, "| rank | configs |").unwrap();
    writeln!(out, "|---|---|").unwrap();
    for r in 0..=max_rank {
        let n = points.iter().filter(|p| pt_u(p, "rank") == r).count();
        writeln!(out, "| {r} | {n} |").unwrap();
    }
    out.push('\n');
}

fn missing_section(out: &mut String, title: &str, flag: &str, name: &str) {
    writeln!(
        out,
        "## {title}\n\n_No committed document. Generate `docs/results/{name}` with \
         `cargo run --release -p cppc-cli -- explore{flag}`._\n",
    )
    .unwrap();
}

/// Renders the whole `docs/EXPLORER.md` book from the committed quick-
/// and full-tier documents. Pure: same documents in, same bytes out.
#[must_use]
pub fn render(quick: Option<&Json>, full: Option<&Json>) -> String {
    let mut out = String::new();
    out.push_str(GUIDE);
    out.push('\n');
    match quick {
        Some(doc) => tier_section(&mut out, "Quick-tier study (the CI gate)", doc),
        None => missing_section(
            &mut out,
            "Quick-tier study (the CI gate)",
            " --quick",
            "explore_quick.json",
        ),
    }
    match full {
        Some(doc) => tier_section(&mut out, "Full-tier study", doc),
        None => missing_section(&mut out, "Full-tier study", "", "explore_full.json"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_sweep, SweepOptions, SweepOutcome};

    fn tiny_doc() -> Json {
        let mut spec = SweepSpec::quick_tier();
        spec.tier = "custom".to_string();
        spec.schemes = vec![SchemeKind::Cppc, SchemeKind::Parity1d];
        spec.cache_kib = vec![8];
        spec.interleave_k = vec![8];
        spec.scrub_intervals = vec![None];
        spec.trials = 4;
        spec.workload_ops = 2_000;
        let points = match run_sweep(&spec, &SweepOptions::default(), None).unwrap() {
            SweepOutcome::Complete(p) => p,
            SweepOutcome::Interrupted { .. } => unreachable!("no interrupt flag"),
        };
        sweep_doc(&spec, &points)
    }

    #[test]
    fn doc_shape_and_summary_are_consistent() {
        let doc = tiny_doc();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("tier").and_then(Json::as_str), Some("custom"));
        let points = doc.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 2);
        let frontier = points
            .iter()
            .filter(|p| p.get("rank").and_then(Json::as_u64) == Some(0))
            .count();
        let summary_frontier = doc
            .get("summary")
            .and_then(|s| s.get("frontier_size"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(frontier as u64, summary_frontier);
        // CPPC vs parity1d is a pure trade-off: both on the frontier.
        assert_eq!(summary_frontier, 2);
    }

    #[test]
    fn doc_bytes_are_deterministic_and_parse_back() {
        let a = pretty(&tiny_doc());
        let b = pretty(&tiny_doc());
        assert_eq!(a, b);
        let parsed = Json::parse(&a).unwrap();
        assert_eq!(pretty(&parsed), a);
    }

    #[test]
    fn render_is_a_pure_function_of_the_documents() {
        let doc = tiny_doc();
        let once = render(Some(&doc), None);
        let twice = render(Some(&doc), None);
        assert_eq!(once, twice);
        assert!(once.contains("# Design-space explorer"));
        assert!(once.contains("GENERATED FILE"));
        assert!(once.contains("### Pareto frontier (rank 0)"));
        assert!(once.contains("cppc/8KiB/2w/32B/k8/scrub-none"));
        assert!(once.contains("_No committed document._") || once.contains("explore_full.json"));
    }

    #[test]
    fn render_without_documents_points_at_the_commands() {
        let text = render(None, None);
        assert!(text.contains("explore_quick.json"));
        assert!(text.contains("explore_full.json"));
    }
}
