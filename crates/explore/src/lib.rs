//! Design-space explorer (`cppc-cli explore`, ROADMAP item 4).
//!
//! The paper evaluates CPPC at a handful of hand-picked configurations;
//! this crate sweeps the knobs the repository already exposes — the
//! [`ProtectionScheme`](cppc_core::scheme) choice, cache size /
//! associativity / block size, the CPPC parity-interleave factor *k*
//! and a scrub interval — and maps every configuration onto four
//! objectives:
//!
//! * **MTTF** (years, maximize) — the closed-form reliability models of
//!   `cppc_reliability::mttf`, cross-checked per config by a fault-
//!   injection campaign through `cppc_campaign`;
//! * **energy ratio** (minimize) — dynamic energy normalised to a
//!   one-dimensional-parity cache of the *same geometry*
//!   (`cppc_energy`);
//! * **CPI inflation %** (minimize) — port-contention timing model
//!   normalised the same way (`cppc_timing`);
//! * **area overhead %** (minimize) — the storage overhead of the
//!   scheme's code bits (`cppc_energy::area`).
//!
//! [`pareto`] computes the non-dominated frontier and annotates every
//! point with its dominance rank; [`doc`] serialises the whole study as
//! a `docs/results/explore_<tier>.json` document and renders
//! `docs/EXPLORER.md` as a pure function of the committed JSONs.
//!
//! Everything is deterministic: the sweep is embarrassingly parallel
//! across configurations, each configuration's campaign seed derives
//! from a stable FNV-1a digest of the config plus the spec identity,
//! and the output document is byte-identical at any `--threads` — the
//! same contract the campaign engine itself honours. The digest also
//! keys per-config checkpoint files, so an interrupted sweep resumes
//! without recomputation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod doc;
pub mod driver;
pub mod eval;
pub mod obs;
pub mod pareto;
pub mod spec;

pub use driver::{run_sweep, SweepOptions, SweepOutcome};
pub use eval::ConfigPoint;
pub use spec::{SweepConfig, SweepSpec};
