//! Pareto dominance and rank peeling.
//!
//! A point **dominates** another when it is at least as good on every
//! objective and strictly better on at least one ("good" per the
//! caller's `maximize` direction vector). Identical points therefore do
//! *not* dominate each other: duplicates and exact ties survive to the
//! same rank. Ranks are assigned by iterative peeling — rank 0 is the
//! non-dominated frontier of the full set, rank 1 the frontier of what
//! remains once rank 0 is removed, and so on.

/// Objective directions used by the explorer: (MTTF maximize; energy
/// ratio, CPI inflation and area overhead minimize).
pub const MAXIMIZE: [bool; 4] = [true, false, false, false];

/// Does `a` dominate `b`?
///
/// `maximize[i]` gives the direction of objective `i`; the slices must
/// all have the same length. Any comparison involving a NaN is neither
/// better nor worse, so NaN-bearing points end up mutually
/// non-dominating rather than poisoning the frontier.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[must_use]
pub fn dominates(a: &[f64], b: &[f64], maximize: &[bool]) -> bool {
    assert_eq!(a.len(), b.len(), "objective arity mismatch");
    assert_eq!(a.len(), maximize.len(), "direction arity mismatch");
    let mut strictly_better = false;
    for ((&x, &y), &max) in a.iter().zip(b).zip(maximize) {
        let (better, worse) = if max { (x > y, x < y) } else { (x < y, x > y) };
        if worse {
            return false;
        }
        if better {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Assigns a dominance rank to every point by iterative peeling.
///
/// Returns one rank per input point, in input order; an empty input
/// yields an empty vector and a single point always gets rank 0.
///
/// # Panics
///
/// Panics if any point's arity differs from `maximize.len()`.
#[must_use]
pub fn ranks(points: &[Vec<f64>], maximize: &[bool]) -> Vec<u32> {
    let mut rank = vec![0u32; points.len()];
    let mut remaining: Vec<usize> = (0..points.len()).collect();
    let mut current = 0u32;
    while !remaining.is_empty() {
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && dominates(&points[j], &points[i], maximize))
            })
            .collect();
        if front.is_empty() {
            // Unreachable for finite objectives (a finite set always
            // has a non-dominated element); guards NaN pathologies.
            for &i in &remaining {
                rank[i] = current;
            }
            break;
        }
        for &i in &front {
            rank[i] = current;
        }
        remaining.retain(|i| !front.contains(i));
        current += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN2: [bool; 2] = [false, false];

    #[test]
    fn dominance_basics() {
        // Strictly better on both minimized objectives.
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0], &MIN2));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0], &MIN2));
        // Better on one, equal on the other: still dominates.
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0], &MIN2));
        // Trade-off: neither dominates.
        assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0], &MIN2));
        assert!(!dominates(&[3.0, 1.0], &[1.0, 3.0], &MIN2));
    }

    #[test]
    fn identical_points_do_not_dominate_each_other() {
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0], &MIN2));
        let r = ranks(&[vec![1.0, 1.0], vec![1.0, 1.0]], &MIN2);
        assert_eq!(r, vec![0, 0]);
    }

    #[test]
    fn maximize_direction_flips_comparison() {
        let max2 = [true, true];
        assert!(dominates(&[2.0, 2.0], &[1.0, 1.0], &max2));
        assert!(!dominates(&[1.0, 1.0], &[2.0, 2.0], &max2));
        // Mixed directions, the explorer's shape: obj0 up, obj1 down.
        let mixed = [true, false];
        assert!(dominates(&[5.0, 1.0], &[4.0, 2.0], &mixed));
        assert!(!dominates(&[5.0, 3.0], &[4.0, 2.0], &mixed));
    }

    #[test]
    fn hand_built_frontier_ranks() {
        // Minimize both. Layer 0: (1,4), (2,2), (4,1). Layer 1: (2,5),
        // (3,3). Layer 2: (5,5).
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![2.0, 5.0],
            vec![3.0, 3.0],
            vec![5.0, 5.0],
        ];
        assert_eq!(ranks(&pts, &MIN2), vec![0, 0, 0, 1, 1, 2]);
    }

    #[test]
    fn tied_objective_values_share_a_rank() {
        // Two distinct points tied on one objective, plus a dominated
        // straggler.
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(ranks(&pts, &MIN2), vec![0, 0, 1]);
    }

    #[test]
    fn duplicates_survive_to_the_same_rank() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(ranks(&pts, &MIN2), vec![0, 0, 1]);
    }

    #[test]
    fn single_point_and_empty_frontiers() {
        assert_eq!(ranks(&[vec![7.0, 7.0]], &MIN2), vec![0]);
        assert!(ranks(&[], &MIN2).is_empty());
    }

    #[test]
    fn four_objective_explorer_shape() {
        // A CPPC-like point (high MTTF, some energy/CPI/area cost), a
        // parity-like point (low everything) and a strictly-worse one.
        let cppc = vec![5000.0, 1.1, 0.3, 7.0];
        let parity = vec![4.0, 1.0, 0.0, 1.6];
        let worse = vec![3.0, 1.2, 1.7, 7.0];
        let pts = vec![cppc, parity, worse];
        assert_eq!(ranks(&pts, &MAXIMIZE), vec![0, 0, 1]);
    }

    #[test]
    fn nan_points_do_not_poison_ranking() {
        let pts = vec![vec![f64::NAN, 1.0], vec![1.0, 1.0]];
        let r = ranks(&pts, &MIN2);
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], 0);
    }
}
