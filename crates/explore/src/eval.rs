//! Per-configuration evaluation: one [`SweepConfig`] in, one
//! [`ConfigPoint`] out.
//!
//! Each configuration is scored on the four explorer objectives:
//!
//! * **MTTF (years)** from the closed-form models of
//!   `cppc_reliability::mttf`, with the paper's L1 parameters rescaled
//!   to the config's capacity. Scrubbing caps the double-fault
//!   vulnerability window (`Tavg`) at the scrub interval for schemes
//!   whose failure mode is a second fault in the same domain; parity's
//!   first-fault-fatal MTTF is unaffected (scrubbing detects, it cannot
//!   correct).
//! * **Energy ratio** — dynamic pJ over the workload window, divided by
//!   a one-dimensional-parity cache of the same geometry running the
//!   same window without scrubbing. Scrub passes add one read per block
//!   per pass plus writebacks for the dirty fraction.
//! * **CPI inflation %** — the port-contention timing model, again
//!   normalised to same-geometry 1D parity; scrubbing inflates CPI by
//!   the scrub traffic's share of the interval.
//! * **Area overhead %** — the scheme's storage overhead from
//!   `cppc_energy::area`.
//!
//! Alongside the analytical models, every configuration runs a
//! fault-injection campaign (`scheme_experiment` over a 4x4 spatial
//! strike) whose outcome tally is carried into the document — the
//! empirical cross-check on the closed-form MTTF ordering.
//!
//! Evaluation is a pure function of (spec, config, geometry baseline):
//! no clocks, no global state, so the sweep driver can run configs on
//! any number of threads and still produce identical bytes.

use crate::spec::{SweepConfig, SweepSpec};
use cppc_bench::experiments::scheme_experiment;
use cppc_cache_sim::stats::CacheStats;
use cppc_campaign::json::Json;
use cppc_campaign::{CampaignConfig, Persist};
use cppc_core::SchemeKind;
use cppc_energy::{AreaModel, ProtectionKind, SchemeEnergy, TechnologyNode};
use cppc_fault::campaign::OutcomeTally;
use cppc_fault::model::FaultModel;
use cppc_reliability::mttf::{
    mttf_cppc_years, mttf_domain_double_fault_years, mttf_one_dim_parity_years, mttf_secded_years,
    ReliabilityParams,
};
use cppc_timing::{counts_from_stats, CacheLevelConfig, L1Scheme, MachineConfig, TimingModel};
use cppc_workloads::{spec2000_profiles, BenchmarkProfile};

/// Seed of the workload trace every configuration shares.
const WORKLOAD_SEED: u64 = 42;

/// Campaign shard size: small enough that even quick-tier configs span
/// several shards (exercising the deterministic reduction).
const CAMPAIGN_SHARD: u64 = 16;

/// The spatial strike injected by every campaign trial (the paper's
/// 4x4 worst-case footprint).
const FAULT: FaultModel = FaultModel::SpatialSquare {
    rows: 4,
    cols: 4,
    density: 1.0,
};

/// Cache statistics of the shared functional run at one geometry.
///
/// All schemes at a geometry see the same access stream, so the
/// (expensive) functional simulation runs once per distinct
/// size × associativity × block triple and its statistics feed every
/// scheme's analytical breakdown.
#[derive(Debug, Clone, Copy)]
pub struct GeometryBaseline {
    /// L1 statistics of the measured window.
    pub l1_stats: CacheStats,
    /// L2 statistics of the measured window.
    pub l2_stats: CacheStats,
}

fn profile_for(spec: &SweepSpec) -> Result<BenchmarkProfile, String> {
    spec2000_profiles()
        .into_iter()
        .find(|p| p.name == spec.benchmark)
        .ok_or_else(|| format!("unknown benchmark profile '{}'", spec.benchmark))
}

fn machine_for(cache_kib: u32, associativity: u32, block_bytes: u32) -> MachineConfig {
    let mut machine = MachineConfig::table1();
    machine.l1d = CacheLevelConfig {
        size_bytes: cache_kib as usize * 1024,
        associativity: associativity as usize,
        block_bytes: block_bytes as usize,
        latency_cycles: 2,
    };
    // The hierarchy refills whole blocks, so both levels must agree on
    // the block size; sweeping the L1 block drags the L2's along.
    machine.l2.block_bytes = block_bytes as usize;
    machine
}

/// Runs the shared functional workload at one geometry.
///
/// # Errors
///
/// Returns a message if the spec names an unknown benchmark profile.
pub fn baseline(
    spec: &SweepSpec,
    cache_kib: u32,
    associativity: u32,
    block_bytes: u32,
) -> Result<GeometryBaseline, String> {
    let profile = profile_for(spec)?;
    let model = TimingModel::new(machine_for(cache_kib, associativity, block_bytes));
    let b = model.simulate(
        &profile,
        L1Scheme::OneDimParity,
        spec.workload_ops,
        WORKLOAD_SEED,
    );
    Ok(GeometryBaseline {
        l1_stats: b.l1_stats,
        l2_stats: b.l2_stats,
    })
}

fn l1_scheme_of(kind: SchemeKind) -> L1Scheme {
    match kind {
        SchemeKind::Cppc => L1Scheme::Cppc,
        SchemeKind::Parity1d => L1Scheme::OneDimParity,
        SchemeKind::Parity2d => L1Scheme::TwoDimParity,
        // SECDED variants decode off the critical path (§6.1).
        SchemeKind::SecdedInterleaved | SchemeKind::SilentWriteEcc | SchemeKind::HarpOdecc => {
            L1Scheme::Secded
        }
    }
}

fn pricing_of(cfg: &SweepConfig) -> ProtectionKind {
    match cfg.scheme {
        // CPPC's code array scales with the swept interleave factor.
        SchemeKind::Cppc => ProtectionKind::Cppc { ways: cfg.parity_k },
        other => ProtectionKind::for_scheme(other.name()).expect("zoo scheme has a pricing kind"),
    }
}

fn area_overhead_pct(cfg: &SweepConfig) -> f64 {
    let size = cfg.size_bytes();
    let model = match cfg.scheme {
        SchemeKind::Cppc => AreaModel::cppc(size, cfg.parity_k, 1, 64),
        SchemeKind::Parity1d => AreaModel::one_dim_parity(size, 8),
        SchemeKind::Parity2d => AreaModel::two_dim_parity(size, 8, 1),
        SchemeKind::SecdedInterleaved | SchemeKind::SilentWriteEcc | SchemeKind::HarpOdecc => {
            AreaModel::secded(size)
        }
    };
    model.overhead_fraction() * 100.0
}

fn mttf_years_of(cfg: &SweepConfig) -> f64 {
    let mut p = ReliabilityParams::paper_l1();
    p.total_bits = cfg.size_bytes() as f64 * 8.0;
    // Scrubbing shortens the window in which a *second* fault can
    // accumulate in the same protection domain.
    let mut p_scrubbed = p;
    if let Some(iv) = cfg.scrub_interval {
        p_scrubbed.tavg_cycles = p.tavg_cycles.min(iv as f64);
    }
    match cfg.scheme {
        SchemeKind::Cppc => mttf_cppc_years(&p_scrubbed, cfg.parity_k),
        // Detection-only: the first dirty fault is fatal, scrubbed or
        // not.
        SchemeKind::Parity1d => mttf_one_dim_parity_years(&p),
        SchemeKind::Parity2d => mttf_domain_double_fault_years(&p_scrubbed, p.dirty_bits()),
        SchemeKind::SecdedInterleaved | SchemeKind::SilentWriteEcc | SchemeKind::HarpOdecc => {
            mttf_secded_years(&p_scrubbed, 64.0)
        }
    }
}

/// One fully evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigPoint {
    /// The grid point.
    pub config: SweepConfig,
    /// Stable digest of (config, spec identity) — the checkpoint key
    /// and campaign-seed salt.
    pub digest: u64,
    /// MTTF in years (maximize).
    pub mttf_years: f64,
    /// Dynamic energy over the window, normalised to same-geometry 1D
    /// parity without scrubbing (minimize; parity1d/scrub-none is
    /// exactly 1.0 by construction).
    pub energy_ratio: f64,
    /// CPI inflation over the same baseline, percent (minimize).
    pub cpi_inflation_pct: f64,
    /// Storage overhead of the code bits, percent (minimize).
    pub area_overhead_pct: f64,
    /// Fault-injection outcome tally (empirical cross-check).
    pub tally: OutcomeTally,
}

impl ConfigPoint {
    /// The objective vector in [`crate::pareto::MAXIMIZE`] order.
    #[must_use]
    pub fn objectives(&self) -> Vec<f64> {
        vec![
            self.mttf_years,
            self.energy_ratio,
            self.cpi_inflation_pct,
            self.area_overhead_pct,
        ]
    }

    /// Serialises the point (float fields carry both a decimal and an
    /// exact bit-pattern form, the convention of the repro documents).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let c = &self.config;
        let scrub = match c.scrub_interval {
            None => Json::Null,
            Some(iv) => Json::UInt(iv),
        };
        Json::Obj(vec![
            ("label".to_string(), Json::Str(c.label())),
            ("scheme".to_string(), Json::Str(c.scheme.name().to_string())),
            ("cache_kib".to_string(), Json::UInt(u64::from(c.cache_kib))),
            (
                "associativity".to_string(),
                Json::UInt(u64::from(c.associativity)),
            ),
            (
                "block_bytes".to_string(),
                Json::UInt(u64::from(c.block_bytes)),
            ),
            ("k".to_string(), Json::UInt(u64::from(c.parity_k))),
            ("scrub_interval".to_string(), scrub),
            (
                "digest".to_string(),
                Json::Str(format!("{:016x}", self.digest)),
            ),
            ("mttf_years".to_string(), Json::Num(self.mttf_years)),
            (
                "mttf_years_bits".to_string(),
                Json::from_f64_bits(self.mttf_years),
            ),
            ("energy_ratio".to_string(), Json::Num(self.energy_ratio)),
            (
                "energy_ratio_bits".to_string(),
                Json::from_f64_bits(self.energy_ratio),
            ),
            (
                "cpi_inflation_pct".to_string(),
                Json::Num(self.cpi_inflation_pct),
            ),
            (
                "cpi_inflation_pct_bits".to_string(),
                Json::from_f64_bits(self.cpi_inflation_pct),
            ),
            (
                "area_overhead_pct".to_string(),
                Json::Num(self.area_overhead_pct),
            ),
            (
                "area_overhead_pct_bits".to_string(),
                Json::from_f64_bits(self.area_overhead_pct),
            ),
            ("tally".to_string(), self.tally.to_json()),
        ])
    }

    /// Rebuilds a point from [`ConfigPoint::to_json`] output (the
    /// checkpoint loader). Returns `None` on any shape mismatch.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<ConfigPoint> {
        let scheme = SchemeKind::parse(v.get("scheme")?.as_str()?).ok()?;
        let scrub_interval = match v.get("scrub_interval")? {
            Json::Null => None,
            other => Some(other.as_u64()?),
        };
        let config = SweepConfig {
            scheme,
            cache_kib: u32::try_from(v.get("cache_kib")?.as_u64()?).ok()?,
            associativity: u32::try_from(v.get("associativity")?.as_u64()?).ok()?,
            block_bytes: u32::try_from(v.get("block_bytes")?.as_u64()?).ok()?,
            parity_k: u32::try_from(v.get("k")?.as_u64()?).ok()?,
            scrub_interval,
        };
        Some(ConfigPoint {
            config,
            digest: u64::from_str_radix(v.get("digest")?.as_str()?, 16).ok()?,
            mttf_years: v.get("mttf_years_bits")?.as_f64_bits()?,
            energy_ratio: v.get("energy_ratio_bits")?.as_f64_bits()?,
            cpi_inflation_pct: v.get("cpi_inflation_pct_bits")?.as_f64_bits()?,
            area_overhead_pct: v.get("area_overhead_pct_bits")?.as_f64_bits()?,
            tally: OutcomeTally::from_json(v.get("tally")?)?,
        })
    }
}

/// Evaluates one configuration against the shared geometry baseline.
///
/// # Errors
///
/// Returns a message if the spec names an unknown benchmark profile.
pub fn evaluate(
    spec: &SweepSpec,
    cfg: &SweepConfig,
    base: &GeometryBaseline,
) -> Result<ConfigPoint, String> {
    let profile = profile_for(spec)?;
    let model = TimingModel::new(machine_for(
        cfg.cache_kib,
        cfg.associativity,
        cfg.block_bytes,
    ));
    let memops = spec.workload_ops;

    // CPI, normalised to same-geometry 1D parity (no scrubbing).
    let b = model.breakdown_from_stats(
        &profile,
        l1_scheme_of(cfg.scheme),
        memops,
        base.l1_stats,
        base.l2_stats,
    );
    let parity_b = model.breakdown_from_stats(
        &profile,
        L1Scheme::OneDimParity,
        memops,
        base.l1_stats,
        base.l2_stats,
    );
    let blocks = (cfg.size_bytes() / cfg.block_bytes as usize) as f64;
    let dirty_fraction = ReliabilityParams::paper_l1().dirty_fraction;
    // One scrub pass per interval touches every block (read) and
    // rewrites the dirty ones; its CPI cost is that traffic amortised
    // over the interval.
    let scrub_overhead = cfg
        .scrub_interval
        .map_or(0.0, |iv| blocks * (1.0 + dirty_fraction) / iv as f64);
    let cpi = b.cpi() * (1.0 + scrub_overhead);
    let cpi_inflation_pct = (cpi / parity_b.cpi() - 1.0) * 100.0;

    // Energy over the measured window, normalised to same-geometry 1D
    // parity without scrubbing.
    let words_per_line = cfg.block_bytes / 8;
    let base_counts = counts_from_stats(&base.l1_stats, words_per_line);
    let mut counts = base_counts;
    if let Some(iv) = cfg.scrub_interval {
        let window_cycles = b.instructions * cpi;
        let passes = window_cycles / iv as f64;
        let scrub_reads = (passes * blocks).round() as u64;
        let scrub_writes = (passes * blocks * dirty_fraction).round() as u64;
        counts.reads += scrub_reads;
        counts.writes += scrub_writes;
    }
    let size = cfg.size_bytes();
    let assoc = cfg.associativity as usize;
    let block = cfg.block_bytes as usize;
    let pj = SchemeEnergy::new(size, assoc, block, pricing_of(cfg), TechnologyNode::Nm32)
        .total_pj(&counts);
    let base_pj = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::OneDimParity { ways: 8 },
        TechnologyNode::Nm32,
    )
    .total_pj(&base_counts);
    let energy_ratio = pj / base_pj;

    // Empirical cross-check: the fault-injection campaign, seeded from
    // the config digest so every config draws an independent but
    // reproducible trial stream.
    let digest = cfg.digest(spec);
    let campaign = CampaignConfig::new(spec.campaign_seed ^ digest, spec.trials)
        .shard_size(CAMPAIGN_SHARD)
        .threads(1);
    let tally: OutcomeTally = cppc_campaign::run(
        &campaign,
        scheme_experiment(cfg.scheme, cfg.cppc_config(), FAULT),
    )
    .result;

    Ok(ConfigPoint {
        config: *cfg,
        digest,
        mttf_years: mttf_years_of(cfg),
        energy_ratio,
        cpi_inflation_pct,
        area_overhead_pct: area_overhead_pct(cfg),
        tally,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::quick_tier();
        spec.tier = "custom".to_string();
        spec.trials = 8;
        spec.workload_ops = 4_000;
        spec
    }

    fn point_for(cfg: SweepConfig) -> ConfigPoint {
        let spec = tiny_spec();
        let base = baseline(&spec, cfg.cache_kib, cfg.associativity, cfg.block_bytes).unwrap();
        evaluate(&spec, &cfg, &base).unwrap()
    }

    #[test]
    fn parity_baseline_is_the_unit_point() {
        let p = point_for(SweepConfig {
            scheme: SchemeKind::Parity1d,
            cache_kib: 8,
            associativity: 2,
            block_bytes: 32,
            parity_k: 8,
            scrub_interval: None,
        });
        assert!((p.energy_ratio - 1.0).abs() < 1e-12, "{}", p.energy_ratio);
        assert!(p.cpi_inflation_pct.abs() < 1e-12, "{}", p.cpi_inflation_pct);
        assert_eq!(p.tally.total(), 8);
    }

    #[test]
    fn cppc_beats_parity_on_mttf_and_costs_more_area() {
        let cppc = point_for(SweepConfig {
            scheme: SchemeKind::Cppc,
            cache_kib: 8,
            associativity: 2,
            block_bytes: 32,
            parity_k: 8,
            scrub_interval: None,
        });
        let parity = point_for(SweepConfig {
            scheme: SchemeKind::Parity1d,
            cache_kib: 8,
            associativity: 2,
            block_bytes: 32,
            parity_k: 8,
            scrub_interval: None,
        });
        assert!(cppc.mttf_years > parity.mttf_years * 100.0);
        assert!(cppc.area_overhead_pct > parity.area_overhead_pct);
        assert!(cppc.energy_ratio > 1.0);
    }

    #[test]
    fn scrubbing_raises_cppc_mttf_and_energy() {
        let base_cfg = SweepConfig {
            scheme: SchemeKind::Cppc,
            cache_kib: 8,
            associativity: 2,
            block_bytes: 32,
            parity_k: 8,
            scrub_interval: None,
        };
        let plain = point_for(base_cfg);
        let scrubbed = point_for(SweepConfig {
            // Shorter than Tavg (1828 cycles), so the window shrinks.
            scrub_interval: Some(1_000),
            ..base_cfg
        });
        assert!(scrubbed.mttf_years > plain.mttf_years);
        assert!(scrubbed.energy_ratio > plain.energy_ratio);
        assert!(scrubbed.cpi_inflation_pct > plain.cpi_inflation_pct);
        // Scrubbing cannot save detection-only parity.
        let parity_scrubbed = point_for(SweepConfig {
            scheme: SchemeKind::Parity1d,
            scrub_interval: Some(1_000),
            ..base_cfg
        });
        let parity_plain = point_for(SweepConfig {
            scheme: SchemeKind::Parity1d,
            ..base_cfg
        });
        assert!((parity_scrubbed.mttf_years - parity_plain.mttf_years).abs() < 1e-12);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let cfg = SweepConfig {
            scheme: SchemeKind::Parity2d,
            cache_kib: 8,
            associativity: 2,
            block_bytes: 32,
            parity_k: 8,
            scrub_interval: Some(200_000),
        };
        let a = point_for(cfg);
        let b = point_for(cfg);
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact()
        );
    }

    #[test]
    fn point_json_roundtrips() {
        let p = point_for(SweepConfig {
            scheme: SchemeKind::SecdedInterleaved,
            cache_kib: 8,
            associativity: 2,
            block_bytes: 32,
            parity_k: 8,
            scrub_interval: Some(200_000),
        });
        let back = ConfigPoint::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }
}
