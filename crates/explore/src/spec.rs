//! Sweep specification: the knob grid a sweep enumerates.
//!
//! A [`SweepSpec`] is a cross product over protection scheme, cache
//! geometry (size × associativity × block size), the CPPC parity
//! interleave factor *k* and an optional scrub interval, plus the
//! campaign/workload parameters every configuration shares. The *k*
//! axis only multiplies CPPC configurations — the other schemes carry
//! their canonical 8-way interleave — so the grid stays honest about
//! which knobs each scheme actually has.
//!
//! Every enumerated [`SweepConfig`] has a stable human label
//! (`cppc/32KiB/2w/32B/k8/scrub-none`) and a stable FNV-1a digest mixed
//! from that label and the spec identity (campaign seed, trials,
//! workload). The digest keys per-config checkpoints and salts the
//! per-config campaign seed, which is what makes sweeps byte-identical
//! at any thread count and resumable across runs.

use cppc_core::{CppcConfig, SchemeKind};

/// Scrub intervals of the quick tier (cycles).
const QUICK_SCRUB: u64 = 200_000;

/// One point of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Protection scheme under test.
    pub scheme: SchemeKind,
    /// L1 data-cache capacity in KiB.
    pub cache_kib: u32,
    /// L1 associativity (ways).
    pub associativity: u32,
    /// L1 block size in bytes.
    pub block_bytes: u32,
    /// Parity interleave factor. Swept for CPPC; fixed at the canonical
    /// 8 for every other scheme (their codes are 8-way interleaved or
    /// word-granular regardless).
    pub parity_k: u32,
    /// Scrub interval in cycles (`None` = no scrubbing).
    pub scrub_interval: Option<u64>,
}

impl SweepConfig {
    /// Cache capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.cache_kib as usize * 1024
    }

    /// The stable human-readable label, e.g.
    /// `cppc/32KiB/2w/32B/k8/scrub-none`.
    #[must_use]
    pub fn label(&self) -> String {
        let scrub = match self.scrub_interval {
            None => "scrub-none".to_string(),
            Some(iv) => format!("scrub-{iv}"),
        };
        format!(
            "{}/{}KiB/{}w/{}B/k{}/{}",
            self.scheme.name(),
            self.cache_kib,
            self.associativity,
            self.block_bytes,
            self.parity_k,
            scrub
        )
    }

    /// The CPPC parameterisation this config implies: `parity_k`-way
    /// interleave, one register pair, byte shifting whenever the
    /// interleave supports it (k = 8). Non-CPPC schemes ignore this.
    #[must_use]
    pub fn cppc_config(&self) -> CppcConfig {
        CppcConfig {
            parity_ways: self.parity_k,
            register_pairs: 1,
            byte_shifting: self.parity_k == 8,
        }
    }

    /// Stable 64-bit FNV-1a digest of this config under `spec`: hashes
    /// the label plus everything in the spec that changes a point's
    /// value (campaign seed, trials, benchmark, workload length).
    /// Include/exclude filters deliberately do **not** participate, so
    /// a filtered partial sweep writes checkpoints a later full sweep
    /// can reuse.
    #[must_use]
    pub fn digest(&self, spec: &SweepSpec) -> u64 {
        let mut acc = fnv_str(0xCBF2_9CE4_8422_2325, &self.label());
        acc = fnv_u64(acc, spec.campaign_seed);
        acc = fnv_u64(acc, spec.trials);
        acc = fnv_u64(acc, spec.workload_ops as u64);
        fnv_str(acc, &spec.benchmark)
    }
}

fn fnv_u64(mut acc: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x1000_0000_01B3);
    }
    acc
}

fn fnv_str(mut acc: u64, s: &str) -> u64 {
    for b in s.bytes() {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x1000_0000_01B3);
    }
    acc
}

/// The full grid a sweep enumerates, plus shared campaign and workload
/// parameters and optional label filters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Tier name ("quick", "full", or "custom") — names the output
    /// document `explore_<tier>.json`.
    pub tier: String,
    /// Schemes to sweep.
    pub schemes: Vec<SchemeKind>,
    /// Cache capacities in KiB.
    pub cache_kib: Vec<u32>,
    /// Associativities.
    pub associativity: Vec<u32>,
    /// Block sizes in bytes.
    pub block_bytes: Vec<u32>,
    /// CPPC interleave factors (each must divide 64).
    pub interleave_k: Vec<u32>,
    /// Scrub intervals in cycles (`None` = no scrubbing).
    pub scrub_intervals: Vec<Option<u64>>,
    /// Fault-injection trials per configuration.
    pub trials: u64,
    /// Base campaign seed (salted per config by the digest).
    pub campaign_seed: u64,
    /// Memory operations of the timing/energy workload window.
    pub workload_ops: usize,
    /// SPEC2000 benchmark profile driving the workload.
    pub benchmark: String,
    /// Keep only configs whose label contains at least one of these
    /// substrings (empty = keep all).
    pub include: Vec<String>,
    /// Drop configs whose label contains any of these substrings.
    pub exclude: Vec<String>,
}

impl SweepSpec {
    /// The CI tier: a 28-config subsample (2 sizes × 2 k values ×
    /// 2 scrub settings across all six schemes) sized so
    /// `cppc-cli explore --quick --check` stays a smoke-test.
    #[must_use]
    pub fn quick_tier() -> Self {
        SweepSpec {
            tier: "quick".to_string(),
            schemes: SchemeKind::ALL.to_vec(),
            cache_kib: vec![8, 32],
            associativity: vec![2],
            block_bytes: vec![32],
            interleave_k: vec![1, 8],
            scrub_intervals: vec![None, Some(QUICK_SCRUB)],
            trials: 48,
            campaign_seed: 0xE87A,
            workload_ops: 40_000,
            benchmark: "gcc".to_string(),
            include: Vec::new(),
            exclude: Vec::new(),
        }
    }

    /// The full design-space grid: 432 configurations.
    #[must_use]
    pub fn full_tier() -> Self {
        SweepSpec {
            tier: "full".to_string(),
            schemes: SchemeKind::ALL.to_vec(),
            cache_kib: vec![8, 16, 32, 64],
            associativity: vec![2, 4],
            block_bytes: vec![32, 64],
            interleave_k: vec![1, 2, 4, 8],
            scrub_intervals: vec![None, Some(100_000), Some(1_000_000)],
            trials: 240,
            campaign_seed: 0xE87A,
            workload_ops: 120_000,
            benchmark: "gcc".to_string(),
            include: Vec::new(),
            exclude: Vec::new(),
        }
    }

    /// Validates the grid axes.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending axis: empty axes, zero
    /// trials, interleave factors that do not divide 64, or geometry
    /// dimensions that are not powers of two.
    pub fn validate(&self) -> Result<(), String> {
        let non_empty: &[(&str, bool)] = &[
            ("schemes", self.schemes.is_empty()),
            ("cache_kib", self.cache_kib.is_empty()),
            ("associativity", self.associativity.is_empty()),
            ("block_bytes", self.block_bytes.is_empty()),
            ("interleave_k", self.interleave_k.is_empty()),
            ("scrub_intervals", self.scrub_intervals.is_empty()),
        ];
        for (name, empty) in non_empty {
            if *empty {
                return Err(format!("sweep axis '{name}' is empty"));
            }
        }
        if self.trials == 0 {
            return Err("trials must be >= 1".to_string());
        }
        if self.workload_ops == 0 {
            return Err("workload_ops must be >= 1".to_string());
        }
        for &k in &self.interleave_k {
            if k == 0 || 64 % k != 0 {
                return Err(format!("interleave factor {k} does not divide 64"));
            }
        }
        for &iv in self.scrub_intervals.iter().flatten() {
            if iv == 0 {
                return Err("scrub interval must be >= 1 cycle".to_string());
            }
        }
        for &kib in &self.cache_kib {
            if kib == 0 || !kib.is_power_of_two() {
                return Err(format!("cache size {kib} KiB is not a power of two"));
            }
        }
        for &w in &self.associativity {
            if w == 0 || !w.is_power_of_two() {
                return Err(format!("associativity {w} is not a power of two"));
            }
        }
        for &b in &self.block_bytes {
            if b < 8 || !b.is_power_of_two() {
                return Err(format!("block size {b} B is not a power of two >= 8"));
            }
        }
        Ok(())
    }

    /// Does `label` pass the include/exclude filters?
    #[must_use]
    pub fn matches_filters(&self, label: &str) -> bool {
        let included =
            self.include.is_empty() || self.include.iter().any(|s| label.contains(s.as_str()));
        included && !self.exclude.iter().any(|s| label.contains(s.as_str()))
    }

    /// Enumerates the grid in a fixed order (scheme, size,
    /// associativity, block, k, scrub) and applies the filters. The
    /// *k* axis expands for CPPC only; every other scheme gets one
    /// config per geometry × scrub point at the canonical k = 8.
    #[must_use]
    pub fn enumerate(&self) -> Vec<SweepConfig> {
        let mut out = Vec::new();
        for &scheme in &self.schemes {
            let ks: &[u32] = if scheme == SchemeKind::Cppc {
                &self.interleave_k
            } else {
                &[8]
            };
            for &cache_kib in &self.cache_kib {
                for &associativity in &self.associativity {
                    for &block_bytes in &self.block_bytes {
                        for &parity_k in ks {
                            for &scrub_interval in &self.scrub_intervals {
                                let cfg = SweepConfig {
                                    scheme,
                                    cache_kib,
                                    associativity,
                                    block_bytes,
                                    parity_k,
                                    scrub_interval,
                                };
                                if self.matches_filters(&cfg.label()) {
                                    out.push(cfg);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn quick_tier_enumerates_28_configs() {
        let spec = SweepSpec::quick_tier();
        spec.validate().unwrap();
        let configs = spec.enumerate();
        // CPPC: 2 sizes x 2 k x 2 scrub = 8; five other schemes:
        // 2 sizes x 2 scrub = 4 each.
        assert_eq!(configs.len(), 8 + 5 * 4);
        let cppc = configs
            .iter()
            .filter(|c| c.scheme == SchemeKind::Cppc)
            .count();
        assert_eq!(cppc, 8);
    }

    #[test]
    fn full_tier_enumerates_432_configs() {
        let spec = SweepSpec::full_tier();
        spec.validate().unwrap();
        assert_eq!(spec.enumerate().len(), 192 + 240);
    }

    #[test]
    fn non_cppc_schemes_do_not_multiply_over_k() {
        let spec = SweepSpec::quick_tier();
        for c in spec.enumerate() {
            if c.scheme != SchemeKind::Cppc {
                assert_eq!(c.parity_k, 8, "{}", c.label());
            }
        }
    }

    #[test]
    fn labels_and_digests_are_unique_and_stable() {
        let spec = SweepSpec::quick_tier();
        let configs = spec.enumerate();
        let labels: HashSet<String> = configs.iter().map(SweepConfig::label).collect();
        assert_eq!(labels.len(), configs.len());
        let digests: HashSet<u64> = configs.iter().map(|c| c.digest(&spec)).collect();
        assert_eq!(digests.len(), configs.len());
        // Stability: the digest is part of the checkpoint contract.
        let first = &configs[0];
        assert_eq!(first.digest(&spec), first.digest(&spec));
        let mut reseeded = spec.clone();
        reseeded.campaign_seed ^= 1;
        assert_ne!(first.digest(&spec), first.digest(&reseeded));
    }

    #[test]
    fn digest_ignores_filters() {
        let spec = SweepSpec::quick_tier();
        let mut filtered = spec.clone();
        filtered.include = vec!["cppc/".to_string()];
        let c = spec.enumerate()[0];
        assert_eq!(c.digest(&spec), c.digest(&filtered));
    }

    #[test]
    fn label_format_is_the_documented_shape() {
        let c = SweepConfig {
            scheme: SchemeKind::Cppc,
            cache_kib: 32,
            associativity: 2,
            block_bytes: 32,
            parity_k: 8,
            scrub_interval: None,
        };
        assert_eq!(c.label(), "cppc/32KiB/2w/32B/k8/scrub-none");
        let s = SweepConfig {
            scrub_interval: Some(200_000),
            ..c
        };
        assert_eq!(s.label(), "cppc/32KiB/2w/32B/k8/scrub-200000");
    }

    #[test]
    fn include_and_exclude_filters_apply() {
        let mut spec = SweepSpec::quick_tier();
        spec.include = vec!["cppc/".to_string()];
        assert!(spec
            .enumerate()
            .iter()
            .all(|c| c.scheme == SchemeKind::Cppc));
        spec.include.clear();
        spec.exclude = vec!["scrub-none".to_string()];
        assert!(spec.enumerate().iter().all(|c| c.scrub_interval.is_some()));
        spec.include = vec!["parity1d".to_string(), "parity2d".to_string()];
        let got = spec.enumerate();
        assert!(!got.is_empty());
        assert!(got.iter().all(|c| {
            matches!(c.scheme, SchemeKind::Parity1d | SchemeKind::Parity2d)
                && c.scrub_interval.is_some()
        }));
    }

    #[test]
    fn validation_rejects_bad_axes() {
        let mut spec = SweepSpec::quick_tier();
        spec.interleave_k = vec![3];
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::quick_tier();
        spec.schemes.clear();
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::quick_tier();
        spec.trials = 0;
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::quick_tier();
        spec.cache_kib = vec![24];
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::quick_tier();
        spec.scrub_intervals = vec![Some(0)];
        assert!(spec.validate().is_err());
    }
}
