//! Exporters: snapshots of the registry rendered as a human table,
//! JSON, or the `docs/METRICS.md` reference.

use crate::registry::{registered_groups, MetricKind, MetricRef};
use crate::span::TimerStats;

/// A point-in-time copy of one metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Timer aggregate.
    Timer(TimerStats),
}

impl SnapshotValue {
    /// The kind this value belongs to.
    #[must_use]
    pub fn kind(&self) -> MetricKind {
        match self {
            SnapshotValue::Counter(_) => MetricKind::Counter,
            SnapshotValue::Gauge(_) => MetricKind::Gauge,
            SnapshotValue::Timer(_) => MetricKind::Timer,
        }
    }

    /// `true` when the metric has recorded nothing.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match self {
            SnapshotValue::Counter(v) => *v == 0,
            SnapshotValue::Gauge(v) => *v == 0,
            SnapshotValue::Timer(t) => t.count == 0,
        }
    }
}

/// A point-in-time copy of one metric (metadata + value).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Dotted metric name.
    pub name: &'static str,
    /// Unit string.
    pub unit: &'static str,
    /// Doc string.
    pub doc: &'static str,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

/// A point-in-time copy of one registered group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSnapshot {
    /// Subsystem name.
    pub subsystem: &'static str,
    /// Subsystem doc string.
    pub doc: &'static str,
    /// The group's metrics, in declaration order.
    pub metrics: Vec<MetricSnapshot>,
}

/// Snapshots every registered group (groups sorted by subsystem name,
/// metrics in declaration order). Flushes the calling thread's span
/// aggregates first.
#[must_use]
pub fn snapshot() -> Vec<GroupSnapshot> {
    crate::span::flush();
    registered_groups()
        .into_iter()
        .map(|group| GroupSnapshot {
            subsystem: group.subsystem,
            doc: group.doc,
            metrics: group
                .metrics
                .iter()
                .map(|def| MetricSnapshot {
                    name: def.name,
                    unit: def.unit,
                    doc: def.doc,
                    value: match def.metric {
                        MetricRef::Counter(c) => SnapshotValue::Counter(c.get()),
                        MetricRef::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        MetricRef::Timer(t) => SnapshotValue::Timer(t.stats()),
                    },
                })
                .collect(),
        })
        .collect()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders snapshots as an aligned human-readable table. With
/// `include_zero` false, metrics that recorded nothing are elided (a
/// group with no active metric still prints its header).
#[must_use]
pub fn render_table(groups: &[GroupSnapshot], include_zero: bool) -> String {
    let mut out = String::new();
    for group in groups {
        out.push_str(&format!("[{}] {}\n", group.subsystem, group.doc));
        let mut any = false;
        for m in &group.metrics {
            if !include_zero && m.value.is_zero() {
                continue;
            }
            any = true;
            match &m.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("  {:<36} {:>14}  {}\n", m.name, v, m.unit));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("  {:<36} {:>14}  {}\n", m.name, v, m.unit));
                }
                SnapshotValue::Timer(t) => {
                    out.push_str(&format!(
                        "  {:<36} {:>14}  spans  mean {}  max {}  total {}\n",
                        m.name,
                        t.count,
                        fmt_ns(t.mean_ns()),
                        fmt_ns(t.max_ns),
                        fmt_ns(t.total_ns),
                    ));
                }
            }
        }
        if !any {
            out.push_str("  (no events recorded)\n");
        }
        out.push('\n');
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders snapshots as one line-per-metric JSON document (stable key
/// order, no external dependencies).
#[must_use]
pub fn render_json(groups: &[GroupSnapshot]) -> String {
    let mut out = String::from("{\"groups\":[");
    for (gi, group) in groups.iter().enumerate() {
        if gi > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"subsystem\":\"{}\",\"doc\":\"{}\",\"metrics\":[",
            json_escape(group.subsystem),
            json_escape(group.doc)
        ));
        for (mi, m) in group.metrics.iter().enumerate() {
            if mi > 0 {
                out.push(',');
            }
            let head = format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\",\"doc\":\"{}\"",
                json_escape(m.name),
                m.value.kind().label(),
                json_escape(m.unit),
                json_escape(m.doc)
            );
            out.push_str(&head);
            match &m.value {
                SnapshotValue::Counter(v) => out.push_str(&format!(",\"value\":{v}}}")),
                SnapshotValue::Gauge(v) => out.push_str(&format!(",\"value\":{v}}}")),
                SnapshotValue::Timer(t) => out.push_str(&format!(
                    ",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}",
                    t.count,
                    t.total_ns,
                    t.mean_ns(),
                    t.max_ns
                )),
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders the self-documenting metrics reference (the body of
/// `docs/METRICS.md`) from the registered groups' metadata. Values are
/// not included, so the output is deterministic: it changes only when a
/// metric is added, removed or re-documented.
#[must_use]
pub fn reference_markdown() -> String {
    let mut out = String::new();
    out.push_str("# Metrics reference\n\n");
    out.push_str(
        "Generated from the `cppc-obs` registry by `cargo run -p cppc-cli --bin \
         metrics-md` — **do not edit by hand**; CI regenerates this file and fails \
         if it drifts from the code. Every metric is declared next to the code it \
         instruments via `cppc_obs::metrics!`, which makes the name, unit and doc \
         string below mandatory at compile time.\n\n",
    );
    out.push_str(
        "Inspect live values with `cppc-cli stats` (runs a workload, prints this \
         table with numbers) or `cppc-cli stats --describe` (this reference, no \
         run). Building with the `obs` feature disabled compiles every metric \
         update out of the hot paths.\n",
    );
    for group in registered_groups() {
        out.push_str(&format!("\n## `{}` — {}\n\n", group.subsystem, group.doc));
        out.push_str("| metric | kind | unit | description |\n|---|---|---|---|\n");
        for def in group.metrics {
            out.push_str(&format!(
                "| `{}` | {} | {} | {} |\n",
                def.name,
                def.metric.kind().label(),
                def.unit,
                def.doc
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::metrics! {
        group EXPORT_TEST_METRICS: "export-test", "Metrics used by exporter unit tests.";
        counter EXPORT_EVENTS: "export_test.events", "events", "Events with a \"quote\" in the doc.";
        timer EXPORT_SPAN: "export_test.span.ns", "ns", "Span recorded by the exporter test.";
    }

    fn our_group(groups: &[GroupSnapshot]) -> GroupSnapshot {
        groups
            .iter()
            .find(|g| g.subsystem == "export-test")
            .expect("group registered")
            .clone()
    }

    #[test]
    fn snapshot_carries_metadata_and_values() {
        EXPORT_TEST_METRICS.register();
        EXPORT_EVENTS.add(2);
        EXPORT_SPAN.record_ns(5000);
        let group = our_group(&snapshot());
        assert_eq!(group.metrics.len(), 2);
        let c = &group.metrics[0];
        assert_eq!(c.name, "export_test.events");
        assert_eq!(c.unit, "events");
        assert!(!c.doc.is_empty());
        #[cfg(feature = "enabled")]
        {
            assert!(matches!(c.value, SnapshotValue::Counter(v) if v >= 2));
            match &group.metrics[1].value {
                SnapshotValue::Timer(t) => assert!(t.count >= 1 && t.mean_ns() > 0),
                other => panic!("expected timer, got {other:?}"),
            }
        }
    }

    #[test]
    fn table_elides_or_includes_zeros() {
        EXPORT_TEST_METRICS.register();
        let groups = snapshot();
        let full = render_table(&groups, true);
        assert!(full.contains("export_test.events"));
        assert!(full.contains("[export-test]"));
        // A never-touched metric shows up only with include_zero.
        let zero_only: Vec<GroupSnapshot> = vec![GroupSnapshot {
            subsystem: "z",
            doc: "d",
            metrics: vec![MetricSnapshot {
                name: "z.nothing",
                unit: "events",
                doc: "never",
                value: SnapshotValue::Counter(0),
            }],
        }];
        assert!(!render_table(&zero_only, false).contains("z.nothing"));
        assert!(render_table(&zero_only, false).contains("no events recorded"));
        assert!(render_table(&zero_only, true).contains("z.nothing"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        EXPORT_TEST_METRICS.register();
        let json = render_json(&snapshot());
        assert!(json.starts_with("{\"groups\":["));
        assert!(json.contains("\\\"quote\\\""), "doc quotes escaped");
        assert!(json.contains("\"kind\":\"counter\""));
        assert!(json.contains("\"kind\":\"timer\""));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn reference_markdown_lists_registered_metrics() {
        EXPORT_TEST_METRICS.register();
        let md = reference_markdown();
        assert!(md.starts_with("# Metrics reference"));
        assert!(md.contains("## `export-test`"));
        assert!(md.contains("| `export_test.events` | counter | events |"));
        assert!(md.contains("| `export_test.span.ns` | timer | ns |"));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
