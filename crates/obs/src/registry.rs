//! The static metric registry: typed metric cells, their metadata, and
//! the global list of registered metric groups.
//!
//! Metrics are declared with the [`metrics!`](crate::metrics) macro,
//! which forces every metric to carry a name, a unit and a doc string.
//! The declaration produces `static` cells (lock-free atomics) plus a
//! [`MetricGroup`] holding the metadata; the group self-registers into
//! the process-wide registry the first time any of the crate's
//! instrumentation runs (or when [`MetricGroup::register`] is called
//! explicitly, as the exporters and the `metrics-md` generator do).

use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicI64, AtomicU64};
use std::sync::Mutex;

use crate::span::Timer;

/// What kind of value a metric holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// A signed level that can move both ways.
    Gauge,
    /// A duration histogram fed by scoped span timers.
    Timer,
}

impl MetricKind {
    /// Lower-case label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Timer => "timer",
        }
    }
}

/// A monotonically increasing event counter.
///
/// All updates are relaxed atomic adds; with the `enabled` feature off,
/// updates compile to nothing and reads return zero.
#[derive(Debug)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter (used by the declaration macro).
    #[must_use]
    pub const fn new() -> Self {
        Counter {
            #[cfg(feature = "enabled")]
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Zeroes the counter (test/reset support).
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A signed level (queue depth, resident bytes, …).
#[derive(Debug)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    value: AtomicI64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Gauge {
            #[cfg(feature = "enabled")]
            value: AtomicI64::new(0),
        }
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "enabled")]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Moves the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(delta, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = delta;
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Zeroes the gauge (test/reset support).
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// A reference to one metric's value cell.
#[derive(Debug, Clone, Copy)]
pub enum MetricRef {
    /// A [`Counter`].
    Counter(&'static Counter),
    /// A [`Gauge`].
    Gauge(&'static Gauge),
    /// A [`Timer`].
    Timer(&'static Timer),
}

impl MetricRef {
    /// The metric's kind.
    #[must_use]
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricRef::Counter(_) => MetricKind::Counter,
            MetricRef::Gauge(_) => MetricKind::Gauge,
            MetricRef::Timer(_) => MetricKind::Timer,
        }
    }
}

/// One metric's full description: identity, metadata and value cell.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Dotted metric name, e.g. `cache.l1.load_hits`.
    pub name: &'static str,
    /// Unit of the value (`events`, `cycles`, `ns`, `bytes`, …).
    pub unit: &'static str,
    /// Mandatory human description — the source of `docs/METRICS.md`.
    pub doc: &'static str,
    /// The value cell.
    pub metric: MetricRef,
}

/// A named set of metrics declared together by one subsystem.
#[derive(Debug)]
pub struct MetricGroup {
    /// Subsystem name, e.g. `cache.l1` or `campaign`.
    pub subsystem: &'static str,
    /// What the subsystem's metrics cover.
    pub doc: &'static str,
    /// The group's metrics, in declaration order.
    pub metrics: &'static [MetricDef],
    registered: AtomicBool,
}

static GROUPS: Mutex<Vec<&'static MetricGroup>> = Mutex::new(Vec::new());

impl MetricGroup {
    /// Creates a group (used by the declaration macro).
    #[must_use]
    pub const fn new(
        subsystem: &'static str,
        doc: &'static str,
        metrics: &'static [MetricDef],
    ) -> Self {
        MetricGroup {
            subsystem,
            doc,
            metrics,
            registered: AtomicBool::new(false),
        }
    }

    /// Adds the group to the process-wide registry (idempotent; the
    /// fast path is one relaxed atomic load).
    pub fn register(&'static self) {
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            GROUPS.lock().expect("metric registry lock").push(self);
        }
    }
}

/// All groups registered so far, sorted by subsystem name so the order
/// is independent of which instrumentation ran first.
#[must_use]
pub fn registered_groups() -> Vec<&'static MetricGroup> {
    let mut groups: Vec<&'static MetricGroup> =
        GROUPS.lock().expect("metric registry lock").clone();
    groups.sort_by_key(|g| g.subsystem);
    groups
}

/// Zeroes every registered metric (and nothing else). Intended for
/// tests that compare runs; concurrent writers will interleave, so call
/// it only while instrumented threads are quiescent.
pub fn reset_all() {
    crate::span::flush();
    for group in registered_groups() {
        for def in group.metrics {
            match def.metric {
                MetricRef::Counter(c) => c.reset(),
                MetricRef::Gauge(g) => g.reset(),
                MetricRef::Timer(t) => t.reset(),
            }
        }
    }
}

/// Declares a group of metrics: the typed `static` cells plus a
/// [`MetricGroup`] carrying name, unit and a **mandatory doc string**
/// for every metric — the metadata `docs/METRICS.md` is generated from.
///
/// ```
/// mod obs {
///     cppc_obs::metrics! {
///         group DEMO_METRICS: "demo", "Example subsystem.";
///         counter DEMO_OPS: "demo.ops", "events", "Operations processed.";
///         gauge DEMO_DEPTH: "demo.queue_depth", "items", "Current queue depth.";
///         timer DEMO_STEP: "demo.step.ns", "ns", "Wall time per step.";
///     }
/// }
/// obs::DEMO_METRICS.register();
/// obs::DEMO_OPS.inc();
/// assert_eq!(obs::DEMO_METRICS.metrics[0].name, "demo.ops");
/// assert_eq!(obs::DEMO_METRICS.metrics[0].unit, "events");
/// ```
#[macro_export]
macro_rules! metrics {
    (
        group $group:ident : $subsystem:literal, $gdoc:literal ;
        $( $kind:ident $name:ident : $mname:literal, $unit:literal, $doc:literal ; )+
    ) => {
        $( $crate::__metric_static!($kind $name, $doc); )+

        #[doc = $gdoc]
        pub static $group: $crate::registry::MetricGroup =
            $crate::registry::MetricGroup::new(
                $subsystem,
                $gdoc,
                &[ $( $crate::__metric_def!($kind $name, $mname, $unit, $doc) ),+ ],
            );
    };
}

/// Internal helper of [`metrics!`]: declares one metric's static cell.
#[doc(hidden)]
#[macro_export]
macro_rules! __metric_static {
    (counter $name:ident, $doc:literal) => {
        #[doc = $doc]
        pub static $name: $crate::registry::Counter = $crate::registry::Counter::new();
    };
    (gauge $name:ident, $doc:literal) => {
        #[doc = $doc]
        pub static $name: $crate::registry::Gauge = $crate::registry::Gauge::new();
    };
    (timer $name:ident, $doc:literal) => {
        #[doc = $doc]
        pub static $name: $crate::span::Timer = $crate::span::Timer::new();
    };
}

/// Internal helper of [`metrics!`]: builds one [`MetricDef`].
#[doc(hidden)]
#[macro_export]
macro_rules! __metric_def {
    (counter $name:ident, $mname:literal, $unit:literal, $doc:literal) => {
        $crate::registry::MetricDef {
            name: $mname,
            unit: $unit,
            doc: $doc,
            metric: $crate::registry::MetricRef::Counter(&$name),
        }
    };
    (gauge $name:ident, $mname:literal, $unit:literal, $doc:literal) => {
        $crate::registry::MetricDef {
            name: $mname,
            unit: $unit,
            doc: $doc,
            metric: $crate::registry::MetricRef::Gauge(&$name),
        }
    };
    (timer $name:ident, $mname:literal, $unit:literal, $doc:literal) => {
        $crate::registry::MetricDef {
            name: $mname,
            unit: $unit,
            doc: $doc,
            metric: $crate::registry::MetricRef::Timer(&$name),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::metrics! {
        group TEST_METRICS: "registry-test", "Metrics used by registry unit tests.";
        counter TEST_EVENTS: "registry_test.events", "events", "Events recorded by the test.";
        gauge TEST_LEVEL: "registry_test.level", "items", "Level set by the test.";
        timer TEST_SPAN: "registry_test.span.ns", "ns", "Span recorded by the test.";
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        TEST_METRICS.register();
        TEST_EVENTS.add(4);
        TEST_EVENTS.inc();
        TEST_LEVEL.set(7);
        TEST_LEVEL.add(-2);
        #[cfg(feature = "enabled")]
        {
            assert!(TEST_EVENTS.get() >= 5);
            assert_eq!(TEST_LEVEL.get(), 5);
        }
        #[cfg(not(feature = "enabled"))]
        {
            assert_eq!(TEST_EVENTS.get(), 0);
            assert_eq!(TEST_LEVEL.get(), 0);
        }
    }

    #[test]
    fn registration_is_idempotent() {
        TEST_METRICS.register();
        TEST_METRICS.register();
        let groups = registered_groups();
        assert_eq!(
            groups
                .iter()
                .filter(|g| g.subsystem == "registry-test")
                .count(),
            1
        );
    }

    #[test]
    fn metadata_is_mandatory_and_typed() {
        let defs = TEST_METRICS.metrics;
        assert_eq!(defs.len(), 3);
        assert!(defs.iter().all(|d| !d.doc.is_empty()));
        assert_eq!(defs[0].metric.kind(), MetricKind::Counter);
        assert_eq!(defs[1].metric.kind(), MetricKind::Gauge);
        assert_eq!(defs[2].metric.kind(), MetricKind::Timer);
        assert_eq!(defs[2].unit, "ns");
    }

    #[test]
    fn kind_labels() {
        assert_eq!(MetricKind::Counter.label(), "counter");
        assert_eq!(MetricKind::Gauge.label(), "gauge");
        assert_eq!(MetricKind::Timer.label(), "timer");
    }
}
