//! Scoped span timers with thread-local aggregation.
//!
//! [`Timer::start`] returns a guard; when the guard drops, the elapsed
//! time is folded into a **thread-local** accumulator (no shared-cache
//! traffic on the hot path) that spills into the timer's global atomics
//! every [`SPILL_EVERY`] records and when the thread exits. Reading a
//! timer therefore requires a [`flush`] of the calling thread first —
//! [`crate::snapshot`] does this automatically.
//!
//! Two switches keep the disabled cost near zero:
//!
//! * the crate's `enabled` **feature** removes every body at compile
//!   time;
//! * the runtime [`set_enabled`] flag short-circuits `start` with one
//!   relaxed atomic load, skipping the clock read entirely.

#[cfg(feature = "enabled")]
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Number of log₂ histogram buckets a [`Timer`] keeps. Bucket 0 holds
/// spans under 256 ns; each following bucket doubles the bound; the
/// last bucket absorbs everything ≥ ~2.1 ms.
pub const TIMER_BUCKETS: usize = 14;

/// Thread-local records accumulated before spilling to the global
/// atomics.
pub const SPILL_EVERY: u64 = 64;

static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// Runtime kill-switch for span timers and ring events (counters are
/// single relaxed adds and stay on). Metrics already recorded remain.
pub fn set_enabled(enabled: bool) {
    RUNTIME_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the runtime switch is on.
#[must_use]
pub fn runtime_enabled() -> bool {
    RUNTIME_ENABLED.load(Ordering::Relaxed)
}

/// Histogram bucket index for a span of `ns` nanoseconds.
#[must_use]
pub fn bucket_of(ns: u64) -> usize {
    let bits = 64 - ns.leading_zeros() as usize;
    bits.saturating_sub(8).min(TIMER_BUCKETS - 1)
}

/// Inclusive upper bound (ns) of histogram bucket `i` (the last bucket
/// is unbounded and reports `u64::MAX`).
#[must_use]
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i + 1 >= TIMER_BUCKETS {
        u64::MAX
    } else {
        (1u64 << (8 + i)) - 1
    }
}

/// A duration histogram fed by scoped spans.
#[derive(Debug)]
pub struct Timer {
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    total_ns: AtomicU64,
    #[cfg(feature = "enabled")]
    max_ns: AtomicU64,
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; TIMER_BUCKETS],
}

/// One timer's aggregate state, as read by the exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStats {
    /// Spans recorded.
    pub count: u64,
    /// Sum of span durations, ns.
    pub total_ns: u64,
    /// Longest span, ns.
    pub max_ns: u64,
    /// Log₂ duration histogram (see [`bucket_upper_ns`]).
    pub buckets: [u64; TIMER_BUCKETS],
}

impl TimerStats {
    /// Mean span duration in ns (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

impl Timer {
    /// Creates an empty timer (used by the declaration macro).
    #[must_use]
    pub const fn new() -> Self {
        Timer {
            #[cfg(feature = "enabled")]
            count: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            total_ns: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            max_ns: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            buckets: [const { AtomicU64::new(0) }; TIMER_BUCKETS],
        }
    }

    /// Starts a span; the drop of the returned guard records it. When
    /// disabled (feature or runtime switch) no clock is read.
    #[must_use]
    pub fn start(&'static self) -> Span {
        #[cfg(feature = "enabled")]
        {
            if runtime_enabled() {
                return Span::Running {
                    timer: self,
                    start: Instant::now(),
                };
            }
        }
        Span::Disabled
    }

    /// Records a span of `ns` nanoseconds through the thread-local
    /// aggregator (public so instrumentation can time things a guard
    /// cannot scope, e.g. checkpoint writes already measured).
    pub fn record_ns(&'static self, ns: u64) {
        #[cfg(feature = "enabled")]
        local::record(self, ns);
        #[cfg(not(feature = "enabled"))]
        let _ = ns;
    }

    /// Current aggregate state. Call [`flush`] first to include the
    /// calling thread's unspilled records.
    #[must_use]
    pub fn stats(&self) -> TimerStats {
        #[cfg(feature = "enabled")]
        {
            let mut buckets = [0u64; TIMER_BUCKETS];
            for (out, b) in buckets.iter_mut().zip(&self.buckets) {
                *out = b.load(Ordering::Relaxed);
            }
            TimerStats {
                count: self.count.load(Ordering::Relaxed),
                total_ns: self.total_ns.load(Ordering::Relaxed),
                max_ns: self.max_ns.load(Ordering::Relaxed),
                buckets,
            }
        }
        #[cfg(not(feature = "enabled"))]
        TimerStats::default()
    }

    /// Zeroes the timer (test/reset support).
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        {
            self.count.store(0, Ordering::Relaxed);
            self.total_ns.store(0, Ordering::Relaxed);
            self.max_ns.store(0, Ordering::Relaxed);
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }

    #[cfg(feature = "enabled")]
    fn spill(&self, count: u64, total_ns: u64, max_ns: u64, buckets: &[u64; TIMER_BUCKETS]) {
        self.count.fetch_add(count, Ordering::Relaxed);
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(max_ns, Ordering::Relaxed);
        for (global, &local) in self.buckets.iter().zip(buckets) {
            if local != 0 {
                global.fetch_add(local, Ordering::Relaxed);
            }
        }
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::new()
    }
}

/// Scope guard returned by [`Timer::start`]; records on drop.
#[derive(Debug)]
pub enum Span {
    /// Timing is off — drop does nothing.
    Disabled,
    /// A live span.
    Running {
        /// The timer the span reports to.
        timer: &'static Timer,
        /// When the span began.
        start: Instant,
    },
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Span::Running { timer, start } = self {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            timer.record_ns(ns);
        }
    }
}

/// Spills the calling thread's aggregated spans into the global timers.
/// Called automatically by [`crate::snapshot`] and at thread exit.
///
/// Worker threads that record spans should call this before their main
/// closure returns. The exit-time spill runs in the thread's TLS
/// destructor, and `std::thread::scope` (unlike [`JoinHandle::join`],
/// which waits for full thread termination) unblocks as soon as the
/// closure completes — so a snapshot taken right after a scope can race
/// a destructor-driven spill and miss those records.
///
/// [`JoinHandle::join`]: std::thread::JoinHandle::join
pub fn flush() {
    #[cfg(feature = "enabled")]
    local::flush_current_thread();
}

#[cfg(feature = "enabled")]
mod local {
    use super::{Timer, SPILL_EVERY, TIMER_BUCKETS};
    use std::cell::RefCell;

    struct LocalEntry {
        timer: &'static Timer,
        count: u64,
        total_ns: u64,
        max_ns: u64,
        buckets: [u64; TIMER_BUCKETS],
    }

    #[derive(Default)]
    struct LocalAgg {
        entries: Vec<LocalEntry>,
        pending: u64,
    }

    impl LocalAgg {
        fn spill(&mut self) {
            for e in &mut self.entries {
                if e.count != 0 {
                    e.timer.spill(e.count, e.total_ns, e.max_ns, &e.buckets);
                    e.count = 0;
                    e.total_ns = 0;
                    e.max_ns = 0;
                    e.buckets = [0; TIMER_BUCKETS];
                }
            }
            self.pending = 0;
        }
    }

    impl Drop for LocalAgg {
        fn drop(&mut self) {
            self.spill();
        }
    }

    thread_local! {
        static LOCAL: RefCell<LocalAgg> = RefCell::new(LocalAgg::default());
    }

    pub(super) fn record(timer: &'static Timer, ns: u64) {
        let landed = LOCAL
            .try_with(|local| {
                let mut local = local.borrow_mut();
                let entry = match local
                    .entries
                    .iter_mut()
                    .position(|e| std::ptr::eq(e.timer, timer))
                {
                    Some(i) => &mut local.entries[i],
                    None => {
                        local.entries.push(LocalEntry {
                            timer,
                            count: 0,
                            total_ns: 0,
                            max_ns: 0,
                            buckets: [0; TIMER_BUCKETS],
                        });
                        local.entries.last_mut().expect("just pushed")
                    }
                };
                entry.count += 1;
                entry.total_ns += ns;
                entry.max_ns = entry.max_ns.max(ns);
                entry.buckets[super::bucket_of(ns)] += 1;
                local.pending += 1;
                if local.pending >= SPILL_EVERY {
                    local.spill();
                }
            })
            .is_ok();
        if !landed {
            // TLS already torn down (thread exit path): go straight to
            // the global atomics.
            timer.spill(1, ns, ns, &{
                let mut b = [0; TIMER_BUCKETS];
                b[super::bucket_of(ns)] = 1;
                b
            });
        }
    }

    pub(super) fn flush_current_thread() {
        let _ = LOCAL.try_with(|local| local.borrow_mut().spill());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static T: Timer = Timer::new();
    #[cfg(feature = "enabled")]
    static T2: Timer = Timer::new();

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(255), 0);
        assert_eq!(bucket_of(256), 1);
        assert_eq!(bucket_of(511), 1);
        assert_eq!(bucket_of(512), 2);
        assert_eq!(bucket_of(u64::MAX), TIMER_BUCKETS - 1);
        assert_eq!(bucket_upper_ns(0), 255);
        assert_eq!(bucket_upper_ns(1), 511);
        assert_eq!(bucket_upper_ns(TIMER_BUCKETS - 1), u64::MAX);
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn spans_aggregate_through_tls() {
        let _guard = crate::test_lock::hold();
        for _ in 0..10 {
            let _span = T.start();
        }
        T.record_ns(1000);
        flush();
        let stats = T.stats();
        assert_eq!(stats.count, 11);
        assert!(stats.total_ns >= 1000);
        assert!(stats.max_ns >= 1000);
        assert_eq!(stats.buckets.iter().sum::<u64>(), stats.count);
        assert!((stats.mean_ns() as u128) <= u128::from(stats.total_ns));
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn worker_threads_spill_on_exit() {
        // `JoinHandle::join` (unlike `thread::scope`) waits for full
        // thread termination, including the TLS destructor that spills.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        T2.record_ns(300);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // No flush needed: TLS destructors spilled at thread exit.
        let stats = T2.stats();
        assert_eq!(stats.count, 400);
        assert_eq!(stats.total_ns, 400 * 300);
        assert_eq!(stats.buckets[bucket_of(300)], 400);
    }

    #[test]
    fn runtime_switch_skips_clock() {
        let _guard = crate::test_lock::hold();
        assert!(runtime_enabled());
        set_enabled(false);
        {
            let _span = T.start(); // must not record
        }
        set_enabled(true);
        // Only checkable when enabled at compile time.
        #[cfg(feature = "enabled")]
        {
            flush();
            let before = T.stats().count;
            set_enabled(false);
            drop(T.start());
            set_enabled(true);
            flush();
            assert_eq!(T.stats().count, before);
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(TimerStats::default().mean_ns(), 0);
    }
}
