//! `cppc-obs` — the workspace's unified observability layer.
//!
//! Every hot layer of the CPPC reproduction (the cache hierarchy, the
//! CPPC core's register/recovery machinery, the timing model, the
//! campaign engine) reports into one **static metric registry** defined
//! here, so that where time and events go is visible end to end with a
//! single `cppc-cli stats` call — and documented from a single source
//! of truth (`docs/METRICS.md` is generated from the registry and CI
//! rejects drift).
//!
//! Four pieces, all dependency-free:
//!
//! * [`registry`] — typed [`Counter`]/[`Gauge`]/[`Timer`] cells declared
//!   with the [`metrics!`] macro, which makes a name, a unit and a doc
//!   string mandatory for every metric;
//! * [`span`] — scoped span timers ([`Timer::start`] returns a drop
//!   guard) aggregating thread-locally and spilling to relaxed atomics;
//! * [`ring`] — a bounded event ring buffer for fault-injection and
//!   recovery traces ([`record_event`]);
//! * [`export`] — [`snapshot`] plus table / JSON / markdown renderers.
//!
//! # Cost model
//!
//! Counters are one relaxed `fetch_add`. Span timers read the clock
//! twice and touch only thread-local state. Two switches take even that
//! away: the crate's **`enabled` feature** (default on; consumer crates
//! forward it as their `obs` feature) compiles every update to nothing,
//! and the runtime [`set_enabled`] flag short-circuits timers and ring
//! events with one relaxed load.
//!
//! # Quick start
//!
//! ```
//! mod obs {
//!     cppc_obs::metrics! {
//!         group DEMO_METRICS: "demo", "Example subsystem.";
//!         counter DEMO_OPS: "demo.ops", "events", "Operations processed.";
//!         timer DEMO_STEP: "demo.step.ns", "ns", "Wall time per processing step.";
//!     }
//! }
//!
//! obs::DEMO_METRICS.register();
//! obs::DEMO_OPS.add(3);
//! {
//!     let _span = obs::DEMO_STEP.start(); // records on drop
//! }
//! cppc_obs::record_event("demo.fault", || "bit 4 flipped".to_string());
//!
//! let groups = cppc_obs::snapshot();
//! let demo = groups.iter().find(|g| g.subsystem == "demo").unwrap();
//! assert_eq!(demo.metrics[0].name, "demo.ops");
//! println!("{}", cppc_obs::render_table(&groups, false));
//! # Ok::<(), std::convert::Infallible>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod registry;
pub mod ring;
pub mod span;

pub use export::{
    reference_markdown, render_json, render_table, snapshot, GroupSnapshot, MetricSnapshot,
    SnapshotValue,
};
pub use registry::{reset_all, Counter, Gauge, MetricDef, MetricGroup, MetricKind, MetricRef};
pub use ring::{clear as clear_events, events, record_event, set_capacity, Event};
pub use span::{flush, runtime_enabled, set_enabled, Span, Timer, TimerStats};

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static GLOBAL: Mutex<()> = Mutex::new(());

    /// Tests that mutate process-global obs state (the runtime switch,
    /// the ring capacity) hold this lock so they do not race each other.
    pub(crate) fn hold() -> MutexGuard<'static, ()> {
        GLOBAL.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
