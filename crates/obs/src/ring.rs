//! A bounded in-memory event ring buffer for fault-injection and
//! recovery traces.
//!
//! Unlike the metric registry (aggregates only), the ring keeps the
//! last `capacity` individual events — enough to reconstruct *what
//! happened around* a fault: injection, detection, recovery outcome,
//! shard failure. Recording is gated by the same runtime switch as the
//! span timers and costs nothing when the `enabled` feature is off; the
//! `detail` closure only runs when the event is actually stored.

use std::sync::Mutex;

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (process-wide, never reused).
    pub seq: u64,
    /// Static label identifying the event class, e.g. `cppc.recovery`.
    pub label: &'static str,
    /// Free-form detail built at record time.
    pub detail: String,
}

struct Ring {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    next_seq: u64,
    dropped: u64,
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);

fn with_ring<R>(f: impl FnOnce(&mut Ring) -> R) -> R {
    let mut guard = RING.lock().expect("event ring lock");
    let ring = guard.get_or_insert_with(|| Ring {
        events: std::collections::VecDeque::with_capacity(DEFAULT_CAPACITY),
        capacity: DEFAULT_CAPACITY,
        next_seq: 0,
        dropped: 0,
    });
    f(ring)
}

/// Records an event. The `detail` closure is evaluated only when the
/// event will actually be stored (feature on + runtime switch on).
pub fn record_event(label: &'static str, detail: impl FnOnce() -> String) {
    #[cfg(feature = "enabled")]
    {
        if !crate::span::runtime_enabled() {
            return;
        }
        let detail = detail();
        with_ring(|ring| {
            if ring.events.len() >= ring.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            let seq = ring.next_seq;
            ring.next_seq += 1;
            ring.events.push_back(Event { seq, label, detail });
        });
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (label, detail);
    }
}

/// Changes the ring capacity, trimming the oldest events if needed.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn set_capacity(capacity: usize) {
    assert!(capacity > 0, "ring capacity must be positive");
    with_ring(|ring| {
        ring.capacity = capacity;
        while ring.events.len() > capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
    });
}

/// The buffered events, oldest first.
#[must_use]
pub fn events() -> Vec<Event> {
    with_ring(|ring| ring.events.iter().cloned().collect())
}

/// How many events have been evicted to bound the ring.
#[must_use]
pub fn dropped() -> u64 {
    with_ring(|ring| ring.dropped)
}

/// Empties the ring (sequence numbers keep increasing).
pub fn clear() {
    with_ring(|ring| {
        ring.events.clear();
        ring.dropped = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "enabled")]
    fn records_and_bounds() {
        let _guard = crate::test_lock::hold();
        clear();
        set_capacity(4);
        for i in 0..10 {
            record_event("test.ring", || format!("event {i}"));
        }
        let got = events();
        assert_eq!(got.len(), 4);
        assert_eq!(got.last().unwrap().detail, "event 9");
        assert_eq!(got[0].detail, "event 6");
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(dropped() >= 6);
        set_capacity(DEFAULT_CAPACITY);
        clear();
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn detail_closure_skipped_when_disabled() {
        let _guard = crate::test_lock::hold();
        clear();
        crate::span::set_enabled(false);
        let mut ran = false;
        record_event("test.ring", || {
            ran = true;
            String::new()
        });
        crate::span::set_enabled(true);
        assert!(!ran, "detail built despite runtime-disabled");
        assert!(events().is_empty());
    }

    #[test]
    #[cfg(not(feature = "enabled"))]
    fn disabled_feature_stores_nothing() {
        record_event("test.ring", || "x".to_string());
        assert!(events().is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _guard = crate::test_lock::hold();
        set_capacity(0);
    }
}
