//! End-to-end golden-gate behaviour on a real artifact, against a
//! throw-away results tree.
//!
//! Everything runs in quick mode against a temp-dir root, so these
//! goldens never mix with the committed ones under `docs/results/`.

use std::fs;
use std::path::PathBuf;

use cppc_repro::{
    check_artifact, find, json_path, load_doc, render_book, run_artifact, write_artifact,
    write_book, GateFailure, RunConfig,
};

/// A fresh scratch root per test (removed on drop).
struct ScratchRoot(PathBuf);

impl ScratchRoot {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cppc-repro-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        ScratchRoot(dir)
    }
}

impl Drop for ScratchRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn quick() -> RunConfig {
    RunConfig {
        threads: 1,
        quick: true,
    }
}

#[test]
fn check_passes_at_golden_and_fails_on_perturbation() {
    let root = ScratchRoot::new("gate");
    let a = find("table3_mttf").unwrap();
    let cfg = quick();
    let out = run_artifact(a, &cfg);

    // No golden yet: the gate must fail, not vacuously pass.
    assert!(matches!(
        check_artifact(a, &out, None)[0],
        GateFailure::MissingGolden { .. }
    ));

    // Bless goldens, then a re-run checks clean (the artifact is
    // deterministic, so measured == golden bit-for-bit).
    write_artifact(&root.0, a, &cfg, &out, true).unwrap();
    let doc = load_doc(&json_path(&root.0, a.name)).unwrap();
    let rerun = run_artifact(a, &cfg);
    assert!(check_artifact(a, &rerun, Some(&doc)).is_empty());

    // Perturb one committed golden_bits on disk: the gate must trip.
    let path = json_path(&root.0, a.name);
    let text = fs::read_to_string(&path).unwrap();
    let old_bits = format!("\"golden_bits\": {}", 3885.4434194055357f64.to_bits());
    let new_bits = format!("\"golden_bits\": {}", 9999.0f64.to_bits());
    assert!(text.contains(&old_bits), "expected golden in document");
    fs::write(&path, text.replace(&old_bits, &new_bits)).unwrap();

    let bad = load_doc(&path).unwrap();
    let failures = check_artifact(a, &rerun, Some(&bad));
    assert_eq!(failures.len(), 1);
    match &failures[0] {
        GateFailure::OutOfTolerance { metric, golden, .. } => {
            assert_eq!(metric, "mttf.parity.l1_years");
            assert_eq!(*golden, 9999.0);
        }
        other => panic!("expected OutOfTolerance, got {other:?}"),
    }
}

#[test]
fn update_goldens_round_trips_byte_identically() {
    let root = ScratchRoot::new("roundtrip");
    let a = find("table3_mttf").unwrap();
    let cfg = quick();

    let out = run_artifact(a, &cfg);
    write_artifact(&root.0, a, &cfg, &out, true).unwrap();
    let first = fs::read(json_path(&root.0, a.name)).unwrap();

    // Re-running and re-blessing must reproduce the file byte for byte
    // (determinism + stable pretty printer + bit-exact floats).
    let again = run_artifact(a, &cfg);
    write_artifact(&root.0, a, &cfg, &again, true).unwrap();
    let second = fs::read(json_path(&root.0, a.name)).unwrap();
    assert_eq!(first, second);

    // A plain run (no --update-goldens) carries goldens forward and is
    // also byte-identical while the code is unchanged.
    write_artifact(&root.0, a, &cfg, &again, false).unwrap();
    let third = fs::read(json_path(&root.0, a.name)).unwrap();
    assert_eq!(first, third);
}

#[test]
fn book_render_is_a_pure_function_of_the_documents() {
    let root = ScratchRoot::new("book");
    let a = find("table3_mttf").unwrap();
    let cfg = quick();
    let out = run_artifact(a, &cfg);
    write_artifact(&root.0, a, &cfg, &out, true).unwrap();

    write_book(&root.0).unwrap();
    let rendered = fs::read_to_string(cppc_repro::book_path(&root.0)).unwrap();
    // Re-rendering without re-running any artifact gives identical bytes
    // (this is what the CI freshness gate relies on).
    assert_eq!(render_book(&root.0), rendered);
    assert!(rendered.contains("table3_mttf"));
    // The other registered artifacts have no documents in this scratch
    // root and must show as placeholders, not be dropped.
    assert!(rendered.contains("no golden yet"));
}
