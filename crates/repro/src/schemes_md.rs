//! Rendering `docs/SCHEMES.md` — the protection-scheme catalog.
//!
//! The catalog is a pure function of the
//! [`SchemeDescriptor`](cppc_core::scheme::SchemeDescriptor)s every
//! zoo member carries (`cppc_core::scheme`) plus the committed
//! `scheme_comparison` artifact document, so CI can regenerate it
//! without running a single simulation and fail on drift — the same
//! contract as `docs/RESULTS.md` and `docs/METRICS.md`.

use cppc_campaign::json::Json;
use cppc_core::scheme::SchemeKind;

/// Renders the whole catalog. `comparison` is the committed
/// `docs/results/scheme_comparison.json` document (its cross-scheme
/// tables are reproduced verbatim); `None` renders a pointer to the
/// command that generates it.
#[must_use]
pub fn render(comparison: Option<&Json>) -> String {
    let mut out = String::new();
    out.push_str(
        "# Protection-scheme catalog\n\n\
         <!-- GENERATED FILE, do not edit. Regenerate with\n     \
         `cargo run -p cppc-cli --bin schemes-md > docs/SCHEMES.md`. -->\n\n\
         Every protection scheme the repository implements behind the\n\
         `ProtectionScheme` trait (`cppc_core::scheme`), generated from each\n\
         scheme's self-describing `SchemeDescriptor`. Select one anywhere a\n\
         scheme selector is accepted:\n\n\
         ```console\n\
         $ cppc-cli campaign --scheme <name> --trials 2000 --json\n\
         $ cppc-cli submit --scheme <name> --trials 2000 --watch\n\
         ```\n\n\
         The cross-scheme comparison at the end comes from the committed\n\
         [`scheme_comparison`](results/scheme_comparison.json) artifact (see\n\
         [`docs/RESULTS.md`](RESULTS.md)); the per-scheme sections below are\n\
         static metadata. To add a scheme, see the walkthrough in\n\
         [`docs/ARCHITECTURE.md`](ARCHITECTURE.md).\n\n",
    );

    // Index table.
    out.push_str("## Scheme index\n\n");
    out.push_str("| scheme | title | code bits/word | storage overhead | interleave |\n");
    out.push_str("|---|---|---|---|---|\n");
    for kind in SchemeKind::ALL {
        let d = kind.descriptor();
        out.push_str(&format!(
            "| [`{name}`](#{anchor}) | {title} | {bits} | {overhead:.1}% | {il}x |\n",
            name = d.name,
            anchor = anchor(d.name),
            title = d.title,
            bits = d.code_bits_per_word,
            overhead = d.storage_overhead_pct(),
            il = d.interleave_degree,
        ));
    }
    out.push('\n');

    for kind in SchemeKind::ALL {
        let d = kind.descriptor();
        out.push_str(&format!("## `{}`\n\n", d.name));
        out.push_str(&format!("**{}**\n\n", d.title));
        out.push_str(&format!("*Reference: {}.*\n\n", d.reference));
        out.push_str(d.summary);
        out.push_str("\n\n");
        out.push_str("| property | value |\n|---|---|\n");
        out.push_str(&format!(
            "| code bits per 64-bit word | {} |\n",
            d.code_bits_per_word
        ));
        out.push_str(&format!(
            "| storage overhead | {:.1}% |\n",
            d.storage_overhead_pct()
        ));
        out.push_str(&format!(
            "| physical interleave | {}x |\n",
            d.interleave_degree
        ));
        out.push_str(&format!("| extra state | {} |\n", d.extra_state));
        out.push_str(&format!("| detects | {} |\n", d.detection));
        out.push_str(&format!("| corrects | {} |\n", d.correction));
        out.push('\n');
    }

    out.push_str("## Cross-scheme comparison\n\n");
    match comparison {
        None => out.push_str(
            "*Not generated yet — run `cargo run --release -p cppc-cli -- repro \
             --artifact scheme_comparison --update-goldens`.*\n",
        ),
        Some(doc) => {
            out.push_str(
                "From the committed `scheme_comparison` artifact (fast tier, gated in CI \
                 by `cppc-cli repro --check`):\n\n",
            );
            if let Some(tables) = doc.get("tables").and_then(Json::as_arr) {
                for t in tables {
                    render_table(t, &mut out);
                }
            }
        }
    }
    out
}

/// GitHub-style anchor of a `## \`name\`` heading: backticks are
/// stripped, the rest of the selector name survives verbatim.
fn anchor(name: &str) -> String {
    name.to_string()
}

fn render_table(t: &Json, out: &mut String) {
    let Some(title) = t.get("title").and_then(Json::as_str) else {
        return;
    };
    let Some(columns) = t.get("columns").and_then(Json::as_arr) else {
        return;
    };
    out.push_str(&format!("**{title}**\n\n"));
    let headers: Vec<&str> = columns.iter().filter_map(Json::as_str).collect();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    if let Some(rows) = t.get("rows").and_then(Json::as_arr) {
        for row in rows {
            if let Some(cells) = row.as_arr() {
                let cells: Vec<&str> = cells.iter().filter_map(Json::as_str).collect();
                out.push_str(&format!("| {} |\n", cells.join(" | ")));
            }
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheme_gets_a_section() {
        let text = render(None);
        for kind in SchemeKind::ALL {
            let d = kind.descriptor();
            assert!(text.contains(&format!("## `{}`", d.name)), "{}", d.name);
            assert!(text.contains(d.title), "{}", d.name);
        }
        assert!(text.contains("Not generated yet"));
        assert!(text.contains("GENERATED FILE"));
    }

    #[test]
    fn comparison_tables_are_reproduced() {
        let doc = Json::parse(
            r#"{"tables":[{"title":"T1","columns":["scheme","x"],
                "rows":[["`cppc`","1.0"]]}]}"#,
        )
        .unwrap();
        let text = render(Some(&doc));
        assert!(text.contains("**T1**"));
        assert!(text.contains("| `cppc` | 1.0 |"));
        assert!(!text.contains("Not generated yet"));
    }

    #[test]
    fn index_links_match_section_anchors() {
        let text = render(None);
        for kind in SchemeKind::ALL {
            assert!(text.contains(&format!("](#{})", anchor(kind.name()))));
        }
    }
}
