//! The artifact vocabulary: what a paper artifact *is* to the harness.
//!
//! An [`Artifact`] is one regenerable deliverable of the paper — a
//! table, a figure or a claims matrix — declared with its configuration
//! (echoed verbatim into the emitted JSON so a result is never divorced
//! from the inputs that produced it), its runtime [`Tier`] and a `run`
//! function producing [`ArtifactOutput`]: a flat list of gated
//! [`MetricValue`]s plus the human-facing [`Table`]s that mirror the
//! paper's presentation.

use std::fmt;

/// How long an artifact takes to regenerate, which decides where it
/// runs: `Fast` artifacts are executed by the CI smoke gate on every
/// change; `Full` artifacts run on demand (`cppc-cli repro --all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Seconds — cheap enough for `ci.sh`'s `repro --check` smoke step.
    Fast,
    /// Tens of seconds and up — campaign-scale; run via `--all`.
    Full,
}

impl Tier {
    /// The tier's lowercase name, as stored in artifact JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::Full => "full",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The tolerance band a metric may move inside without tripping the
/// golden gate.
///
/// Every artifact run is deterministic, so a band is not measurement
/// noise headroom — it is the *contract* of how far a future code
/// change may legitimately shift the metric (floating-point
/// re-association, trial-count retuning) before a human must look and
/// either fix the regression or consciously re-bless the golden with
/// `--update-goldens`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Relative band: `|value - golden| <= frac * |golden|`.
    Rel(f64),
    /// Absolute band: `|value - golden| <= delta`, in the metric's unit.
    Abs(f64),
    /// Bit-exact: any change at all trips the gate. Used for safety
    /// properties (SDC counts must be zero) and closed-form results.
    Exact,
}

impl Tolerance {
    /// Whether `value` is within this band of `golden`.
    #[must_use]
    pub fn accepts(&self, golden: f64, value: f64) -> bool {
        match self {
            Tolerance::Rel(frac) => (value - golden).abs() <= frac * golden.abs(),
            Tolerance::Abs(delta) => (value - golden).abs() <= *delta,
            Tolerance::Exact => value.to_bits() == golden.to_bits(),
        }
    }

    /// Human-readable band, e.g. `±5%`, `±0.20 pct`, `exact`.
    #[must_use]
    pub fn describe(&self, unit: &str) -> String {
        match self {
            Tolerance::Rel(frac) => format!("±{}%", trim_float(frac * 100.0)),
            Tolerance::Abs(delta) => format!("±{} {unit}", trim_float(*delta)),
            Tolerance::Exact => "exact".to_string(),
        }
    }
}

/// Formats a float without trailing zeros (`5`, `0.2`, `1.5`).
fn trim_float(v: f64) -> String {
    let s = format!("{v:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

/// One gated measurement produced by an artifact run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricValue {
    /// Dotted metric name, unique within the artifact
    /// (e.g. `mttf.cppc.l1_years`).
    pub name: String,
    /// Unit of the value (`years`, `pct`, `ratio`, `trials`).
    pub unit: &'static str,
    /// One-line description rendered into the book.
    pub doc: String,
    /// The measured value of this run.
    pub value: f64,
    /// The paper's published value, when it publishes one.
    pub paper: Option<f64>,
    /// The gate band around the golden value.
    pub tolerance: Tolerance,
}

impl MetricValue {
    /// Convenience constructor.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        unit: &'static str,
        doc: impl Into<String>,
        value: f64,
        paper: Option<f64>,
        tolerance: Tolerance,
    ) -> Self {
        MetricValue {
            name: name.into(),
            unit,
            doc: doc.into(),
            value,
            paper,
            tolerance,
        }
    }
}

/// A rendered table mirroring one of the paper's figures or tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers; the first column is the row label.
    pub columns: Vec<String>,
    /// Data rows, already formatted as strings.
    pub rows: Vec<Vec<String>>,
}

/// Everything one artifact run produces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArtifactOutput {
    /// Gated metrics, in declaration order.
    pub metrics: Vec<MetricValue>,
    /// Presentation tables, in declaration order.
    pub tables: Vec<Table>,
}

/// Run-time knobs shared by all artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Worker threads for campaign-backed artifacts (0 = all CPUs).
    /// Results are bit-identical at every thread count — the campaign
    /// engine guarantees it — so this only affects wall time.
    pub threads: usize,
    /// Scale trials/ops down ~5x for the golden-gate *tests*. Quick
    /// runs measure different (but equally deterministic) values, so
    /// quick goldens and committed goldens never mix: the committed
    /// `docs/results/*.json` are always full-size runs.
    pub quick: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 1,
            quick: false,
        }
    }
}

impl RunConfig {
    /// `full` normally, `quick` under `quick` mode.
    #[must_use]
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// One registered paper artifact.
pub struct Artifact {
    /// Stable registry name (`table3_mttf`); doubles as the JSON file
    /// stem under `docs/results/`.
    pub name: &'static str,
    /// Human title rendered as the book section heading.
    pub title: &'static str,
    /// Where in the paper the artifact lives (`Table 3, §6.3`).
    pub paper_ref: &'static str,
    /// Runtime tier.
    pub tier: Tier,
    /// One-paragraph summary for the book: what is reproduced and what
    /// the expected shape is.
    pub summary: &'static str,
    /// The exact configuration of the run, echoed into the JSON
    /// (`key`, `value`) — the contract that makes the result
    /// regenerable.
    pub config: fn(&RunConfig) -> Vec<(&'static str, String)>,
    /// Executes the artifact and returns its metrics and tables.
    pub run: fn(&RunConfig) -> ArtifactOutput,
}

impl fmt::Debug for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Artifact")
            .field("name", &self.name)
            .field("tier", &self.tier)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_bands() {
        assert!(Tolerance::Rel(0.05).accepts(100.0, 104.9));
        assert!(!Tolerance::Rel(0.05).accepts(100.0, 105.1));
        assert!(Tolerance::Abs(0.5).accepts(1.0, 1.5));
        assert!(!Tolerance::Abs(0.5).accepts(1.0, 1.6));
        assert!(Tolerance::Exact.accepts(0.0, 0.0));
        assert!(!Tolerance::Exact.accepts(0.0, f64::EPSILON));
        // Negative goldens measure the band against the magnitude.
        assert!(Tolerance::Rel(0.1).accepts(-10.0, -10.9));
    }

    #[test]
    fn tolerance_descriptions() {
        assert_eq!(Tolerance::Rel(0.05).describe("years"), "±5%");
        assert_eq!(Tolerance::Abs(0.2).describe("pct"), "±0.2 pct");
        assert_eq!(Tolerance::Exact.describe("trials"), "exact");
    }

    #[test]
    fn run_config_pick() {
        let full = RunConfig::default();
        let quick = RunConfig {
            quick: true,
            ..full
        };
        assert_eq!(full.pick(10, 2), 10);
        assert_eq!(quick.pick(10, 2), 2);
    }
}
