//! `cppc-repro` — the paper-results reproduction harness.
//!
//! This crate turns the repository's headline numbers into **artifacts**:
//! named, registered reproductions of the paper's tables and figures
//! (Table 3 MTTF, Figure 10 CPI overhead, Figures 11–12 energy, the
//! cross-scheme `scheme_comparison` behind `docs/SCHEMES.md`, the
//! Table 2/4 MBE-coverage grid). Each artifact declares its campaign
//! configuration, a runtime tier, and a set of gated metrics with
//! per-metric tolerance bands. Running one produces:
//!
//! * a machine-readable document at `docs/results/<artifact>.json`
//!   (schema `cppc-repro/1`, documented in `docs/results/README.md`)
//!   whose **golden** values are the committed reference the gate
//!   compares against;
//! * a section of the rendered results book `docs/RESULTS.md`, with
//!   paper-mirroring tables and deviation-vs-golden columns.
//!
//! The CLI verbs map onto the [`runner`] functions:
//!
//! ```text
//! cppc-cli repro --artifact table3_mttf     # run one, refresh JSON + book
//! cppc-cli repro --all --threads 1          # run everything (incl. full tier)
//! cppc-cli repro --check                    # fast-tier golden gate (CI)
//! cppc-cli repro --update-goldens --all     # re-bless goldens after a change
//! cppc-cli repro --render                   # re-render the book, no simulation
//! ```
//!
//! Everything is deterministic: artifacts pin their own seeds, trial
//! counts and instruction budgets in code (they deliberately ignore
//! `CPPC_BENCH_OPS`), and the campaign engine guarantees bit-identical
//! results at any `--threads` value, so `--check` gates on exact bit
//! patterns carried in the JSON (`*_bits` fields) rather than printed
//! decimals.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod artifacts;
pub mod book;
pub mod jsonio;
pub mod obs;
pub mod runner;
pub mod schemes_md;

pub use artifact::{Artifact, ArtifactOutput, MetricValue, RunConfig, Table, Tier, Tolerance};
pub use artifacts::{find, registry};
pub use runner::{
    book_path, check_artifact, json_path, load_doc, render_book, results_dir, run_artifact,
    write_artifact, write_book, GateFailure,
};
