//! The artifact JSON document: construction, golden merging, pretty
//! printing and field access.
//!
//! One document per artifact lives at `docs/results/<name>.json` (the
//! schema is documented in `docs/results/README.md`). Each metric
//! carries two copies of both its measured and golden values: a
//! human-readable `value`/`golden` float and a `value_bits`/
//! `golden_bits` IEEE-754 bit pattern. The bit patterns are what the
//! gate and the byte-identity guarantees are built on; the floats are
//! for people and diff reviews.

use cppc_campaign::json::Json;

use crate::artifact::{Artifact, ArtifactOutput, RunConfig, Tolerance};

/// Schema identifier stamped into every document.
pub const SCHEMA: &str = "cppc-repro/1";

/// Serialises a tolerance band.
fn tolerance_json(t: &Tolerance) -> Json {
    match t {
        Tolerance::Rel(frac) => Json::Obj(vec![("rel".into(), Json::Num(*frac))]),
        Tolerance::Abs(delta) => Json::Obj(vec![("abs".into(), Json::Num(*delta))]),
        Tolerance::Exact => Json::Str("exact".into()),
    }
}

/// Reads a tolerance band back from a document.
#[must_use]
pub fn tolerance_from_json(v: &Json) -> Option<Tolerance> {
    if v.as_str() == Some("exact") {
        return Some(Tolerance::Exact);
    }
    if let Some(frac) = v.get("rel").and_then(Json::as_f64) {
        return Some(Tolerance::Rel(frac));
    }
    if let Some(delta) = v.get("abs").and_then(Json::as_f64) {
        return Some(Tolerance::Abs(delta));
    }
    None
}

/// The golden value of `metric` recorded in a committed document
/// (bit-exact, via `golden_bits`).
#[must_use]
pub fn golden_of(doc: &Json, metric: &str) -> Option<f64> {
    doc.get("metrics")?
        .as_arr()?
        .iter()
        .find(|m| m.get("name").and_then(Json::as_str) == Some(metric))?
        .get("golden_bits")?
        .as_f64_bits()
}

/// Builds the JSON document for one artifact run.
///
/// The golden of each metric is carried over from `prior` (the
/// committed document) unless `update_goldens` is set or the metric has
/// no prior golden, in which case the fresh value is blessed.
#[must_use]
pub fn artifact_json(
    a: &Artifact,
    cfg: &RunConfig,
    out: &ArtifactOutput,
    prior: Option<&Json>,
    update_goldens: bool,
) -> Json {
    let metrics = out
        .metrics
        .iter()
        .map(|m| {
            let golden = if update_goldens {
                m.value
            } else {
                prior
                    .and_then(|doc| golden_of(doc, &m.name))
                    .unwrap_or(m.value)
            };
            let mut obj = vec![
                ("name".into(), Json::Str(m.name.clone())),
                ("unit".into(), Json::Str(m.unit.into())),
                ("doc".into(), Json::Str(m.doc.clone())),
                ("value".into(), Json::Num(m.value)),
                ("value_bits".into(), Json::from_f64_bits(m.value)),
                ("golden".into(), Json::Num(golden)),
                ("golden_bits".into(), Json::from_f64_bits(golden)),
                ("tolerance".into(), tolerance_json(&m.tolerance)),
            ];
            if let Some(paper) = m.paper {
                obj.push(("paper".into(), Json::Num(paper)));
            }
            Json::Obj(obj)
        })
        .collect();

    let tables = out
        .tables
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("title".into(), Json::Str(t.title.clone())),
                (
                    "columns".into(),
                    Json::Arr(t.columns.iter().cloned().map(Json::Str).collect()),
                ),
                (
                    "rows".into(),
                    Json::Arr(
                        t.rows
                            .iter()
                            .map(|r| Json::Arr(r.iter().cloned().map(Json::Str).collect()))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();

    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("artifact".into(), Json::Str(a.name.into())),
        ("title".into(), Json::Str(a.title.into())),
        ("paper_ref".into(), Json::Str(a.paper_ref.into())),
        ("tier".into(), Json::Str(a.tier.as_str().into())),
        ("quick".into(), Json::Bool(cfg.quick)),
        (
            "config".into(),
            Json::Obj(
                (a.config)(cfg)
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Json::Str(v)))
                    .collect(),
            ),
        ),
        ("metrics".into(), Json::Arr(metrics)),
        ("tables".into(), Json::Arr(tables)),
    ])
}

/// Pretty-prints a document with two-space indentation (stable byte
/// output — the round-trip and freshness gates depend on it).
#[must_use]
pub fn pretty(v: &Json) -> String {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    out.push('\n');
    out
}

fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                indent(depth + 1, out);
                out.push_str(&Json::Str(k.clone()).to_string_compact());
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push('}');
        }
        other => out.push_str(&other.to_string_compact()),
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_roundtrip() {
        for t in [Tolerance::Rel(0.05), Tolerance::Abs(1.5), Tolerance::Exact] {
            assert_eq!(tolerance_from_json(&tolerance_json(&t)), Some(t));
        }
        assert_eq!(tolerance_from_json(&Json::Null), None);
    }

    #[test]
    fn pretty_output_parses_back() {
        let doc = Json::parse(r#"{"a":[1,2,{"b":"x"}],"empty_arr":[],"empty_obj":{}}"#).unwrap();
        let text = pretty(&doc);
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert!(text.ends_with('\n'));
        assert!(text.contains("  \"a\": ["));
    }

    #[test]
    fn golden_lookup() {
        let x = 1.25f64;
        let doc = Json::Obj(vec![(
            "metrics".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".into(), Json::Str("m".into())),
                ("golden_bits".into(), Json::from_f64_bits(x)),
            ])]),
        )]);
        assert_eq!(golden_of(&doc, "m"), Some(x));
        assert_eq!(golden_of(&doc, "other"), None);
    }
}
