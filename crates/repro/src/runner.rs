//! Executing artifacts, gating them against goldens and writing the
//! result documents.
//!
//! The flow mirrors the CLI verbs:
//!
//! * **run** — [`run_artifact`] executes the artifact, then
//!   [`write_artifact`] emits `docs/results/<name>.json`, carrying the
//!   committed golden values forward (or re-blessing them under
//!   `--update-goldens`);
//! * **check** — [`check_artifact`] compares a fresh run against the
//!   committed document and returns every [`GateFailure`]; the CLI
//!   exits non-zero if any survive;
//! * **render** — [`render_book`] rebuilds `docs/RESULTS.md` purely
//!   from the committed documents (no simulation), which is what the
//!   CI freshness gate runs.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cppc_campaign::json::Json;

use crate::artifact::{Artifact, ArtifactOutput, RunConfig};
use crate::artifacts::registry;
use crate::{book, jsonio, obs};

/// `docs/results` under the repo root.
#[must_use]
pub fn results_dir(root: &Path) -> PathBuf {
    root.join("docs").join("results")
}

/// The artifact's JSON document path under the repo root.
#[must_use]
pub fn json_path(root: &Path, artifact: &str) -> PathBuf {
    results_dir(root).join(format!("{artifact}.json"))
}

/// The book path under the repo root.
#[must_use]
pub fn book_path(root: &Path) -> PathBuf {
    root.join("docs").join("RESULTS.md")
}

/// Loads and parses an artifact document, `None` when absent or
/// unparseable (an unparseable golden fails the gate downstream, as a
/// [`GateFailure::MissingGolden`]).
#[must_use]
pub fn load_doc(path: &Path) -> Option<Json> {
    let text = fs::read_to_string(path).ok()?;
    Json::parse(&text).ok()
}

/// Executes one artifact (with `repro.*` instrumentation).
#[must_use]
pub fn run_artifact(a: &Artifact, cfg: &RunConfig) -> ArtifactOutput {
    obs::register_metrics();
    let _span = obs::ARTIFACT_LATENCY.start();
    let out = (a.run)(cfg);
    obs::ARTIFACTS_RUN.add(1);
    out
}

/// One golden-gate failure.
#[derive(Debug, Clone, PartialEq)]
pub enum GateFailure {
    /// No committed document (or an unreadable one) to gate against.
    MissingGolden {
        /// Artifact name.
        artifact: String,
    },
    /// The committed document lacks a golden for this metric (it was
    /// added since the last `--update-goldens`).
    MissingMetric {
        /// Artifact name.
        artifact: String,
        /// Metric name.
        metric: String,
    },
    /// The fresh value left the metric's tolerance band.
    OutOfTolerance {
        /// Artifact name.
        artifact: String,
        /// Metric name.
        metric: String,
        /// Unit of both values.
        unit: String,
        /// The committed golden value.
        golden: f64,
        /// The freshly measured value.
        value: f64,
        /// Human-readable band (e.g. `±5%`).
        band: String,
    },
}

impl fmt::Display for GateFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateFailure::MissingGolden { artifact } => write!(
                f,
                "{artifact}: no golden document (run `cppc-cli repro --artifact {artifact} \
                 --update-goldens` to bless one)"
            ),
            GateFailure::MissingMetric { artifact, metric } => write!(
                f,
                "{artifact}: metric '{metric}' has no committed golden (re-bless with \
                 --update-goldens)"
            ),
            GateFailure::OutOfTolerance {
                artifact,
                metric,
                unit,
                golden,
                value,
                band,
            } => write!(
                f,
                "{artifact}: {metric} = {value} {unit}, golden {golden} {unit} (band {band})"
            ),
        }
    }
}

/// Gates a fresh run against the committed document. Every metric is
/// compared with the *in-code* tolerance (the registry is the source of
/// truth; the JSON copy is documentation).
#[must_use]
pub fn check_artifact(a: &Artifact, out: &ArtifactOutput, doc: Option<&Json>) -> Vec<GateFailure> {
    obs::register_metrics();
    let Some(doc) = doc else {
        obs::GOLDEN_VIOLATIONS.add(1);
        return vec![GateFailure::MissingGolden {
            artifact: a.name.into(),
        }];
    };
    let mut failures = Vec::new();
    for m in &out.metrics {
        obs::METRICS_CHECKED.add(1);
        match jsonio::golden_of(doc, &m.name) {
            None => failures.push(GateFailure::MissingMetric {
                artifact: a.name.into(),
                metric: m.name.clone(),
            }),
            Some(golden) => {
                if !m.tolerance.accepts(golden, m.value) {
                    failures.push(GateFailure::OutOfTolerance {
                        artifact: a.name.into(),
                        metric: m.name.clone(),
                        unit: m.unit.into(),
                        golden,
                        value: m.value,
                        band: m.tolerance.describe(m.unit),
                    });
                }
            }
        }
    }
    obs::GOLDEN_VIOLATIONS.add(failures.len() as u64);
    failures
}

/// Writes the artifact document, carrying committed goldens forward
/// (or re-blessing them when `update_goldens`). Returns the document.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable `docs/results/`).
pub fn write_artifact(
    root: &Path,
    a: &Artifact,
    cfg: &RunConfig,
    out: &ArtifactOutput,
    update_goldens: bool,
) -> io::Result<Json> {
    obs::register_metrics();
    let path = json_path(root, a.name);
    let prior = load_doc(&path);
    let doc = jsonio::artifact_json(a, cfg, out, prior.as_ref(), update_goldens);
    if update_goldens {
        obs::GOLDENS_UPDATED.add(out.metrics.len() as u64);
    }
    fs::create_dir_all(results_dir(root))?;
    fs::write(&path, jsonio::pretty(&doc))?;
    obs::RESULT_WRITES.add(1);
    Ok(doc)
}

/// Renders the book from the committed documents of every registered
/// artifact — a pure function of `docs/results/*.json`.
#[must_use]
pub fn render_book(root: &Path) -> String {
    obs::register_metrics();
    let docs: Vec<(&Artifact, Option<Json>)> = registry()
        .iter()
        .map(|a| (a, load_doc(&json_path(root, a.name))))
        .collect();
    obs::BOOK_RENDERS.add(1);
    book::render(&docs)
}

/// Renders and writes `docs/RESULTS.md`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_book(root: &Path) -> io::Result<()> {
    fs::write(book_path(root), render_book(root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{MetricValue, Tier, Tolerance};

    fn test_artifact() -> Artifact {
        Artifact {
            name: "unit_test_artifact",
            title: "Unit-test artifact",
            paper_ref: "§0",
            tier: Tier::Fast,
            summary: "Synthetic artifact for runner unit tests.",
            config: |_| vec![("k", "v".into())],
            run: |_| ArtifactOutput {
                metrics: vec![MetricValue::new(
                    "m.x",
                    "ratio",
                    "Test metric.",
                    1.0,
                    None,
                    Tolerance::Rel(0.05),
                )],
                tables: Vec::new(),
            },
        }
    }

    #[test]
    fn check_without_golden_fails() {
        let a = test_artifact();
        let out = (a.run)(&RunConfig::default());
        let failures = check_artifact(&a, &out, None);
        assert!(matches!(failures[0], GateFailure::MissingGolden { .. }));
    }

    #[test]
    fn check_against_matching_golden_passes_and_perturbation_fails() {
        let a = test_artifact();
        let cfg = RunConfig::default();
        let out = (a.run)(&cfg);
        let doc = jsonio::artifact_json(&a, &cfg, &out, None, true);
        assert!(check_artifact(&a, &out, Some(&doc)).is_empty());

        // A golden 10% away trips the 5% band.
        let mut perturbed = out.clone();
        perturbed.metrics[0].value = 1.1;
        let bad_doc = jsonio::artifact_json(&a, &cfg, &perturbed, None, true);
        let failures = check_artifact(&a, &out, Some(&bad_doc));
        assert_eq!(failures.len(), 1);
        assert!(matches!(failures[0], GateFailure::OutOfTolerance { .. }));
        assert!(failures[0].to_string().contains("m.x"));
    }

    #[test]
    fn new_metric_without_golden_is_flagged() {
        let a = test_artifact();
        let cfg = RunConfig::default();
        let mut out = (a.run)(&cfg);
        let doc = jsonio::artifact_json(&a, &cfg, &out, None, true);
        out.metrics.push(MetricValue::new(
            "m.new",
            "ratio",
            "Added later.",
            2.0,
            None,
            Tolerance::Exact,
        ));
        let failures = check_artifact(&a, &out, Some(&doc));
        assert!(matches!(failures[0], GateFailure::MissingMetric { .. }));
    }
}
