//! Global observability for the reproduction harness.
//!
//! Every artifact execution, golden-gate comparison and book render
//! reports into the process-wide `cppc-obs` registry under the
//! `repro.*` group, so `cppc-cli stats` (and `docs/METRICS.md`) cover
//! the harness itself the same way they cover the layers it drives.

cppc_obs::metrics! {
    group REPRO_METRICS: "repro", "Paper-results reproduction harness: artifact runs, golden gates and book rendering.";
    counter ARTIFACTS_RUN: "repro.artifacts_run", "artifacts", "Artifact executions (each one regenerates a paper table/figure).";
    counter METRICS_CHECKED: "repro.metrics_checked", "metrics", "Gated metrics compared against their golden values.";
    counter GOLDEN_VIOLATIONS: "repro.golden_violations", "metrics", "Gate comparisons that left their tolerance band (each fails `repro --check`).";
    counter GOLDENS_UPDATED: "repro.goldens_updated", "metrics", "Golden values re-blessed by `repro --update-goldens`.";
    counter RESULT_WRITES: "repro.result_writes", "files", "Artifact JSON documents written under docs/results/.";
    counter BOOK_RENDERS: "repro.book_renders", "renders", "Renders of the docs/RESULTS.md book.";
    timer ARTIFACT_LATENCY: "repro.artifact.ns", "ns", "Wall time of each artifact execution (the run function only, excluding I/O).";
}

/// Registers the repro metric group (idempotent).
pub fn register_metrics() {
    REPRO_METRICS.register();
}
