//! `fig10_cpi` — Figure 10: CPI of processors with CPPC and
//! two-dimensional-parity L1 caches, normalised to one-dimensional
//! parity.
//!
//! One functional run per benchmark is shared by all three schemes —
//! they see the identical access stream, exactly as the paper's
//! methodology — and the scheme-specific read-port-contention terms are
//! layered on top.

use cppc_bench::{mean, EVAL_SEED};
use cppc_timing::{L1Scheme, MachineConfig, TimingModel};
use cppc_workloads::spec2000_profiles;

use crate::artifact::{Artifact, ArtifactOutput, MetricValue, RunConfig, Table, Tier, Tolerance};

/// Memory operations per benchmark. Pinned here (not `CPPC_BENCH_OPS`)
/// so the artifact is a closed function of the repo alone.
const OPS: usize = 120_000;
const OPS_QUICK: usize = 20_000;

/// The `fig10_cpi` artifact.
pub fn artifact() -> Artifact {
    Artifact {
        name: "fig10_cpi",
        title: "Figure 10 — normalised CPI of L1 protection schemes",
        paper_ref: "Figure 10, §5.2, §6.1",
        tier: Tier::Fast,
        summary: "CPI of the Table 1 machine with a CPPC or two-dimensional-parity L1, \
                  normalised per benchmark to the one-dimensional-parity cache. The only \
                  mechanism separating the schemes is read-port contention from \
                  read-before-write operations. Expected shape: CPPC within a fraction of a \
                  percent on average (paper: +0.3% avg, ≤1% max) because stores to dirty \
                  words steal idle read-port cycles; 2D parity pays on every store and every \
                  miss line-read (paper: +1.7% avg, 6.9% max).",
        config: |cfg| {
            vec![
                (
                    "machine",
                    "Table 1 (4-wide, 32KB/2-way L1D, 1MB/4-way L2)".into(),
                ),
                ("benchmarks", "15 synthetic SPEC2000 profiles".into()),
                ("ops_per_benchmark", cfg.pick(OPS, OPS_QUICK).to_string()),
                ("trace_seed", format!("{EVAL_SEED:#x}")),
                ("schemes", "1D parity (base), CPPC, 2D parity".into()),
            ]
        },
        run,
    }
}

fn run(cfg: &RunConfig) -> ArtifactOutput {
    let ops = cfg.pick(OPS, OPS_QUICK);
    let machine = MachineConfig::table1();
    let model = TimingModel::new(machine);

    let mut rows = Vec::new();
    let mut cppc_norm = Vec::new();
    let mut twodim_norm = Vec::new();
    for profile in spec2000_profiles() {
        let base_run = model.simulate(&profile, L1Scheme::OneDimParity, ops, EVAL_SEED);
        let cppc = model.breakdown_from_stats(
            &profile,
            L1Scheme::Cppc,
            ops,
            base_run.l1_stats,
            base_run.l2_stats,
        );
        let twodim = model.breakdown_from_stats(
            &profile,
            L1Scheme::TwoDimParity,
            ops,
            base_run.l1_stats,
            base_run.l2_stats,
        );
        let base_cpi = base_run.cpi();
        let nc = cppc.cpi() / base_cpi;
        let nt = twodim.cpi() / base_cpi;
        cppc_norm.push(nc);
        twodim_norm.push(nt);
        rows.push(vec![
            profile.name.to_string(),
            format!("{base_cpi:.4}"),
            format!("{nc:.4}"),
            format!("{nt:.4}"),
        ]);
    }
    rows.push(vec![
        "average".into(),
        "1.0000".into(),
        format!("{:.4}", mean(&cppc_norm)),
        format!("{:.4}", mean(&twodim_norm)),
    ]);

    let max = |v: &[f64]| v.iter().copied().fold(f64::MIN, f64::max);
    let overhead = |n: f64| (n - 1.0) * 100.0;

    let metrics = vec![
        MetricValue::new(
            "cpi.cppc.avg_overhead_pct",
            "pct",
            "Average CPI overhead of the CPPC L1 over 1D parity (paper: +0.3%).",
            overhead(mean(&cppc_norm)),
            Some(0.3),
            Tolerance::Abs(0.1),
        ),
        MetricValue::new(
            "cpi.cppc.max_overhead_pct",
            "pct",
            "Worst-benchmark CPI overhead of the CPPC L1 (paper: at most 1%).",
            overhead(max(&cppc_norm)),
            Some(1.0),
            Tolerance::Abs(0.25),
        ),
        MetricValue::new(
            "cpi.twodim.avg_overhead_pct",
            "pct",
            "Average CPI overhead of the two-dimensional-parity L1 (paper: +1.7%).",
            overhead(mean(&twodim_norm)),
            Some(1.7),
            Tolerance::Abs(0.5),
        ),
        MetricValue::new(
            "cpi.twodim.max_overhead_pct",
            "pct",
            "Worst-benchmark CPI overhead of the two-dimensional-parity L1 (paper: 6.9%).",
            overhead(max(&twodim_norm)),
            Some(6.9),
            Tolerance::Abs(1.5),
        ),
    ];

    ArtifactOutput {
        metrics,
        tables: vec![Table {
            title: format!("Per-benchmark CPI, normalised to the 1D-parity L1 ({ops} ops each)"),
            columns: vec![
                "bench".into(),
                "CPI (1D parity)".into(),
                "CPPC".into(),
                "2D parity".into(),
            ],
            rows,
        }],
    }
}
