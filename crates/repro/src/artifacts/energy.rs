//! `energy_comparison` — Figures 11 and 12: dynamic energy of the L1
//! and L2 protection schemes, normalised to one-dimensional parity.
//!
//! Operation counts come from one functional hierarchy run per
//! benchmark ([`cppc_bench::run_profile`]); per-operation energies come
//! from the CACTI-substitute model (`cppc-energy`) at 32 nm.

use cppc_bench::{mean, run_profile, EVAL_SEED};
use cppc_cache_sim::stats::CacheStats;
use cppc_energy::scheme::{ProtectionKind, SchemeEnergy};
use cppc_energy::tech::TechnologyNode;
use cppc_timing::{counts_from_stats, MachineConfig};
use cppc_workloads::spec2000_profiles;

use crate::artifact::{Artifact, ArtifactOutput, MetricValue, RunConfig, Table, Tier, Tolerance};

/// Memory operations per benchmark (pinned; `CPPC_BENCH_OPS` is
/// deliberately ignored so the artifact is reproducible from the repo
/// alone).
const OPS: usize = 120_000;
const OPS_QUICK: usize = 24_000;

/// Normalised ratios move only when the energy model or the hierarchy
/// changes; 2% absorbs benign refactors.
const RATIO_TOL: Tolerance = Tolerance::Rel(0.02);

/// The `energy_comparison` artifact.
pub fn artifact() -> Artifact {
    Artifact {
        name: "energy_comparison",
        title: "Figures 11 & 12 — normalised L1/L2 dynamic energy",
        paper_ref: "Figures 11–12, §6.2",
        tier: Tier::Fast,
        summary: "Dynamic energy of each protection scheme at the Table 1 L1 and L2, \
                  normalised per benchmark to the one-dimensional-parity cache and averaged. \
                  Expected shape at L1: parity < CPPC (paper +14%) < SECDED (+42%) < 2D \
                  parity (+70%). At L2 CPPC's increment falls (paper +7%) because the L1 \
                  filters the store stream, while SECDED's interleaving penalty grows with \
                  the larger array's bitline fraction (+68%) and 2D parity reaches +75%.",
        config: |cfg| {
            vec![
                ("technology_node", "32nm".into()),
                ("l1", "32KB 2-way 32B (Table 1 L1D)".into()),
                ("l2", "1MB 4-way 32B (Table 1 L2)".into()),
                ("benchmarks", "15 synthetic SPEC2000 profiles".into()),
                ("ops_per_benchmark", cfg.pick(OPS, OPS_QUICK).to_string()),
                ("trace_seed", format!("{EVAL_SEED:#x}")),
                (
                    "schemes",
                    "1D parity (base), CPPC 8-way, SECDED interleaved, 2D parity".into(),
                ),
            ]
        },
        run,
    }
}

/// Normalised per-benchmark energies of one cache level.
struct LevelRatios {
    rows: Vec<Vec<String>>,
    cppc: Vec<f64>,
    secded: Vec<f64>,
    twodim: Vec<f64>,
}

fn level_ratios(
    size: usize,
    assoc: usize,
    block: usize,
    stats: &[(String, CacheStats)],
) -> LevelRatios {
    let node = TechnologyNode::Nm32;
    let parity = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::OneDimParity { ways: 8 },
        node,
    );
    let cppc = SchemeEnergy::new(size, assoc, block, ProtectionKind::Cppc { ways: 8 }, node);
    let secded = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::Secded { interleaved: true },
        node,
    );
    let twodim = SchemeEnergy::new(
        size,
        assoc,
        block,
        ProtectionKind::TwoDimParity { ways: 8 },
        node,
    );

    let wpl = (block / 8) as u32;
    let mut out = LevelRatios {
        rows: Vec::new(),
        cppc: Vec::new(),
        secded: Vec::new(),
        twodim: Vec::new(),
    };
    for (name, level_stats) in stats {
        let counts = counts_from_stats(level_stats, wpl);
        let base = parity.total_pj(&counts);
        let c = cppc.total_pj(&counts) / base;
        let s = secded.total_pj(&counts) / base;
        let t = twodim.total_pj(&counts) / base;
        out.cppc.push(c);
        out.secded.push(s);
        out.twodim.push(t);
        out.rows.push(vec![
            name.clone(),
            format!("{c:.3}"),
            format!("{s:.3}"),
            format!("{t:.3}"),
        ]);
    }
    out.rows.push(vec![
        "average".into(),
        format!("{:.3}", mean(&out.cppc)),
        format!("{:.3}", mean(&out.secded)),
        format!("{:.3}", mean(&out.twodim)),
    ]);
    out
}

fn run(cfg: &RunConfig) -> ArtifactOutput {
    let ops = cfg.pick(OPS, OPS_QUICK);
    let machine = MachineConfig::table1();

    // One functional run per benchmark feeds both levels.
    let mut l1_stats = Vec::new();
    let mut l2_stats = Vec::new();
    for profile in spec2000_profiles() {
        let run = run_profile(&profile, ops, EVAL_SEED);
        l1_stats.push((profile.name.to_string(), run.l1));
        l2_stats.push((profile.name.to_string(), run.l2));
    }

    let l1 = level_ratios(
        machine.l1d.size_bytes,
        machine.l1d.associativity,
        machine.l1d.block_bytes,
        &l1_stats,
    );
    let l2 = level_ratios(
        machine.l2.size_bytes,
        machine.l2.associativity,
        machine.l2.block_bytes,
        &l2_stats,
    );

    let cell = |level: &str, scheme: &str, values: &[f64], paper: f64| {
        MetricValue::new(
            format!("energy.{level}.{scheme}"),
            "ratio",
            format!(
                "Average {} dynamic energy of {scheme}, normalised to 1D parity.",
                level.to_uppercase()
            ),
            mean(values),
            Some(paper),
            RATIO_TOL,
        )
    };
    let metrics = vec![
        cell("l1", "cppc", &l1.cppc, 1.14),
        cell("l1", "secded", &l1.secded, 1.42),
        cell("l1", "twodim", &l1.twodim, 1.70),
        cell("l2", "cppc", &l2.cppc, 1.07),
        cell("l2", "secded", &l2.secded, 1.68),
        cell("l2", "twodim", &l2.twodim, 1.75),
    ];

    let table = |title: String, rows| Table {
        title,
        columns: vec![
            "bench".into(),
            "CPPC".into(),
            "SECDED".into(),
            "2D parity".into(),
        ],
        rows,
    };
    ArtifactOutput {
        metrics,
        tables: vec![
            table(
                format!("Figure 11 — L1 energy normalised to 1D parity ({ops} ops each)"),
                l1.rows,
            ),
            table(
                format!("Figure 12 — L2 energy normalised to 1D parity ({ops} ops each)"),
                l2.rows,
            ),
        ],
    }
}
