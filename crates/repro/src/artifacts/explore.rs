//! `explore_frontier` — the design-space explorer's quick-tier sweep
//! as a gated artifact.
//!
//! Runs the exact sweep `cppc-cli explore --quick` runs (the 28-config
//! CI tier of `cppc-explore`) and gates the shape of its Pareto
//! frontier: the frontier exists, it is not a CPPC monoculture (1D
//! parity's unit-cost corner is non-dominated by construction), most
//! of the grid is dominated, and the frontier's best MTTF / cheapest
//! energy corners stay put. The full per-point document behind
//! `docs/EXPLORER.md` is written by the CLI verb; this artifact is the
//! repro-book cross-check that the sweep's *conclusions* are stable.

use cppc_core::SchemeKind;
use cppc_explore::doc::sweep_doc;
use cppc_explore::pareto;
use cppc_explore::{run_sweep, ConfigPoint, SweepOptions, SweepOutcome, SweepSpec};

use crate::artifact::{Artifact, ArtifactOutput, MetricValue, RunConfig, Table, Tier, Tolerance};

/// Quick-test workload window (the full artifact run uses the quick
/// tier's own 40k-op window).
const OPS_QUICK: usize = 10_000;
const TRIALS_QUICK: u64 = 16;

/// The `explore_frontier` artifact.
pub fn artifact() -> Artifact {
    Artifact {
        name: "explore_frontier",
        title: "Design-space explorer — quick-tier Pareto frontier",
        paper_ref: "ROADMAP item 4 (beyond-paper; §6 models combined)",
        tier: Tier::Fast,
        summary: "The quick-tier design-space sweep of cppc-explore: every scheme-zoo \
                  member across two cache sizes, two CPPC interleave factors and two scrub \
                  settings, scored on (MTTF, energy vs 1D parity, CPI inflation, area \
                  overhead) and rank-peeled into a Pareto frontier. Gates pin the sweep \
                  size, the frontier's size and scheme mix (at least one non-CPPC config \
                  is always non-dominated — 1D parity holds the unit-cost corner), and \
                  the frontier's extreme corners.",
        config: |cfg| {
            let spec = SweepSpec::quick_tier();
            vec![
                ("tier", spec.tier.clone()),
                (
                    "grid",
                    format!(
                        "{} schemes x {:?} KiB x {:?}-way x {:?} B x k{:?} x scrub {:?}",
                        spec.schemes.len(),
                        spec.cache_kib,
                        spec.associativity,
                        spec.block_bytes,
                        spec.interleave_k,
                        spec.scrub_intervals,
                    ),
                ),
                ("campaign_seed", format!("{:#x}", spec.campaign_seed)),
                (
                    "trials_per_config",
                    cfg.pick(spec.trials, TRIALS_QUICK).to_string(),
                ),
                (
                    "workload",
                    format!(
                        "{} x {} ops",
                        spec.benchmark,
                        cfg.pick(spec.workload_ops, OPS_QUICK)
                    ),
                ),
                (
                    "objectives",
                    "mttf_years up; energy_ratio, cpi_inflation_pct, area_overhead_pct down".into(),
                ),
            ]
        },
        run,
    }
}

fn sdc_pct(p: &ConfigPoint) -> f64 {
    let total = p.tally.total();
    if total == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let pct = p.tally.sdc as f64 / total as f64 * 100.0;
    pct
}

#[allow(clippy::cast_precision_loss)]
fn run(cfg: &RunConfig) -> ArtifactOutput {
    let mut spec = SweepSpec::quick_tier();
    spec.trials = cfg.pick(spec.trials, TRIALS_QUICK);
    spec.workload_ops = cfg.pick(spec.workload_ops, OPS_QUICK);
    let opts = SweepOptions {
        threads: cfg.threads,
        checkpoint_dir: None,
    };
    let points = match run_sweep(&spec, &opts, None).expect("quick tier sweeps cleanly") {
        SweepOutcome::Complete(points) => points,
        SweepOutcome::Interrupted { .. } => unreachable!("no interrupt flag installed"),
    };
    // Assemble the document once so the frontier accounting here is
    // the same code path the committed explore_quick.json runs.
    let _doc = sweep_doc(&spec, &points);
    let objectives: Vec<Vec<f64>> = points.iter().map(ConfigPoint::objectives).collect();
    let ranks = pareto::ranks(&objectives, &pareto::MAXIMIZE);

    let frontier: Vec<&ConfigPoint> = points
        .iter()
        .zip(&ranks)
        .filter(|(_, &r)| r == 0)
        .map(|(p, _)| p)
        .collect();
    let frontier_non_cppc = frontier
        .iter()
        .filter(|p| p.config.scheme != SchemeKind::Cppc)
        .count();
    let dominated = points.len() - frontier.len();
    let best_mttf = points.iter().map(|p| p.mttf_years).fold(0.0, f64::max);
    let min_energy = points
        .iter()
        .map(|p| p.energy_ratio)
        .fold(f64::INFINITY, f64::min);

    let metrics = vec![
        MetricValue::new(
            "explore.configs",
            "configs",
            "Configurations the quick tier enumerates (6 schemes, the k axis multiplying \
             CPPC only).",
            points.len() as f64,
            Some(28.0),
            Tolerance::Exact,
        ),
        MetricValue::new(
            "explore.frontier_size",
            "configs",
            "Rank-0 (non-dominated) configurations of the quick tier.",
            frontier.len() as f64,
            None,
            Tolerance::Exact,
        ),
        MetricValue::new(
            "explore.frontier_non_cppc",
            "configs",
            "Frontier configurations from non-CPPC schemes. Never zero: same-geometry 1D \
             parity is the energy/CPI/area unit corner, which nothing can dominate.",
            frontier_non_cppc as f64,
            None,
            Tolerance::Exact,
        ),
        MetricValue::new(
            "explore.dominated_pct",
            "pct",
            "Share of the grid strictly inside the frontier — the explorer's reason to \
             exist: most hand-pickable configs are dominated by a frontier point.",
            dominated as f64 / points.len() as f64 * 100.0,
            None,
            Tolerance::Abs(2.0),
        ),
        MetricValue::new(
            "explore.best_mttf_years",
            "years",
            "Best MTTF anywhere in the grid (a scrubbed 8-way CPPC corner).",
            best_mttf,
            None,
            Tolerance::Rel(0.05),
        ),
        MetricValue::new(
            "explore.min_energy_ratio",
            "ratio",
            "Cheapest energy ratio in the grid; exactly 1.0 because 1D parity at its own \
             geometry without scrubbing is the normalisation baseline.",
            min_energy,
            Some(1.0),
            Tolerance::Exact,
        ),
    ];

    let frontier_rows = frontier
        .iter()
        .map(|p| {
            vec![
                format!("`{}`", p.config.label()),
                format!("{:.3e}", p.mttf_years),
                format!("{:.4}", p.energy_ratio),
                format!("{:+.3}", p.cpi_inflation_pct),
                format!("{:.2}", p.area_overhead_pct),
                format!("{:.1}", sdc_pct(p)),
            ]
        })
        .collect();
    let rank_histogram = {
        let max_rank = ranks.iter().copied().max().unwrap_or(0);
        (0..=max_rank)
            .map(|r| {
                vec![
                    r.to_string(),
                    ranks.iter().filter(|&&x| x == r).count().to_string(),
                ]
            })
            .collect()
    };

    ArtifactOutput {
        metrics,
        tables: vec![
            Table {
                title: format!(
                    "Quick-tier Pareto frontier ({} of {} configs non-dominated)",
                    frontier.len(),
                    points.len()
                ),
                columns: vec![
                    "config".into(),
                    "MTTF (years)".into(),
                    "energy vs 1D parity".into(),
                    "CPI +%".into(),
                    "area %".into(),
                    "SDC %".into(),
                ],
                rows: frontier_rows,
            },
            Table {
                title: "Dominance-rank histogram".into(),
                columns: vec!["rank".into(), "configs".into()],
                rows: rank_histogram,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_gates_hold() {
        let cfg = RunConfig {
            threads: 2,
            quick: true,
        };
        let out = run(&cfg);
        let metric = |name: &str| {
            out.metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
                .value
        };
        assert_eq!(metric("explore.configs"), 28.0);
        assert!(metric("explore.frontier_size") >= 1.0);
        // The acceptance property: the frontier is never CPPC-only.
        assert!(metric("explore.frontier_non_cppc") >= 1.0);
        assert_eq!(metric("explore.min_energy_ratio"), 1.0);
        assert!(metric("explore.best_mttf_years") > 1e3);
        assert_eq!(out.tables.len(), 2);
        assert!(!out.tables[0].rows.is_empty());
    }
}
