//! `table3_mttf` — Table 3: MTTF against temporal multi-bit errors,
//! plus §4.7's temporal-aliasing model and the Monte Carlo validation
//! of the closed form at accelerated fault rates.

use cppc_reliability::montecarlo::{
    analytic_mttf_hours, simulate_double_fault_mttf_parallel, MonteCarloConfig,
};
use cppc_reliability::mttf::{
    aliasing_vulnerable_bits, mttf_aliasing_years, mttf_cppc_years, mttf_one_dim_parity_years,
    mttf_secded_years,
};
use cppc_reliability::ReliabilityParams;

use crate::artifact::{Artifact, ArtifactOutput, MetricValue, RunConfig, Table, Tier, Tolerance};

/// Master seed of the Monte Carlo validation campaign.
const MC_SEED: u64 = 0x007A_B1E3;
/// Full-size / quick Monte Carlo trial counts.
const MC_TRIALS: u32 = 3000;
const MC_TRIALS_QUICK: u32 = 500;

/// The analytical-model tolerance: the closed form is deterministic, so
/// the band only needs to absorb benign floating-point re-association.
const ANALYTIC_TOL: Tolerance = Tolerance::Rel(0.01);

/// The `table3_mttf` artifact.
pub fn artifact() -> Artifact {
    Artifact {
        name: "table3_mttf",
        title: "Table 3 — MTTF against temporal multi-bit errors",
        paper_ref: "Table 3, §6.3, §4.7",
        tier: Tier::Fast,
        summary: "Mean time to failure of the three protected caches, computed with the \
                  paper's PARMA-style closed form at the paper's inputs (SEU 0.001 FIT/bit, \
                  AVF 0.7, Table 2 dirty fractions and Tavg), plus the §4.7 temporal-aliasing \
                  MTTF and a Monte Carlo validation of the double-fault model at accelerated \
                  rates. Expected shape: parity decades, CPPC ~10^21 years at L1, SECDED \
                  ~100x above CPPC, every cell within 2x of the paper; the Monte Carlo \
                  estimate lands within a few percent of the analytic value.",
        config: |cfg| {
            vec![
                ("seu_rate_fit_per_bit", "0.001".into()),
                ("avf", "0.7".into()),
                (
                    "inputs",
                    "paper Table 2 dirty%/Tavg (paper_l1/paper_l2)".into(),
                ),
                ("mc_seed", format!("{MC_SEED:#x}")),
                (
                    "mc_trials",
                    cfg.pick(MC_TRIALS, MC_TRIALS_QUICK).to_string(),
                ),
                ("mc_faults_per_hour", "40".into()),
                ("mc_tavg_hours", "0.0004".into()),
            ]
        },
        run,
    }
}

fn run(cfg: &RunConfig) -> ArtifactOutput {
    let l1 = ReliabilityParams::paper_l1();
    let l2 = ReliabilityParams::paper_l2();

    let cells = [
        ("parity.l1_years", mttf_one_dim_parity_years(&l1), 4490.0),
        ("parity.l2_years", mttf_one_dim_parity_years(&l2), 64.0),
        ("cppc.l1_years", mttf_cppc_years(&l1, 8), 8.02e21),
        ("cppc.l2_years", mttf_cppc_years(&l2, 8), 8.07e15),
        ("secded.l1_years", mttf_secded_years(&l1, 64.0), 6.2e23),
        ("secded.l2_years", mttf_secded_years(&l2, 256.0), 1.1e19),
    ];

    let mut metrics: Vec<MetricValue> = cells
        .iter()
        .map(|&(name, value, paper)| {
            MetricValue::new(
                format!("mttf.{name}"),
                "years",
                format!(
                    "Closed-form MTTF, {} cell of Table 3.",
                    name.replace('.', " ")
                ),
                value,
                Some(paper),
                ANALYTIC_TOL,
            )
        })
        .collect();

    let mttf_table = Table {
        title: "MTTF (years) at the paper's L1 and L2 points".into(),
        columns: vec!["cache".into(), "L1".into(), "L2".into()],
        rows: vec![
            vec![
                "one-dim parity".into(),
                format!("{:.0}", cells[0].1),
                format!("{:.1}", cells[1].1),
            ],
            vec![
                "CPPC (8-way parity)".into(),
                format!("{:.2e}", cells[2].1),
                format!("{:.2e}", cells[3].1),
            ],
            vec![
                "SECDED".into(),
                format!("{:.2e}", cells[4].1),
                format!("{:.2e}", cells[5].1),
            ],
            vec!["paper: parity".into(), "4490".into(), "64".into()],
            vec!["paper: CPPC".into(), "8.02e21".into(), "8.07e15".into()],
            vec!["paper: SECDED".into(), "6.2e23".into(), "1.1e19".into()],
        ],
    };

    // §4.7 temporal aliasing, L2, by register-pair count.
    let mut alias_rows = Vec::new();
    for pairs in [1usize, 2, 4, 8] {
        let years = mttf_aliasing_years(&l2, aliasing_vulnerable_bits(pairs));
        alias_rows.push(vec![
            format!("{pairs} pair(s)"),
            if years.is_infinite() {
                "eliminated".into()
            } else {
                format!("{years:.2e}")
            },
        ]);
    }
    let alias_one_pair = mttf_aliasing_years(&l2, aliasing_vulnerable_bits(1));
    metrics.push(MetricValue::new(
        "mttf.aliasing.l2_one_pair_years",
        "years",
        "§4.7 temporal-aliasing MTTF of the L2 with one register pair (paper: 4.19e20 y).",
        alias_one_pair,
        Some(4.19e20),
        ANALYTIC_TOL,
    ));

    // Monte Carlo validation of the double-fault closed form at
    // accelerated rates, through the campaign engine (bit-identical at
    // any thread count).
    let trials = cfg.pick(MC_TRIALS, MC_TRIALS_QUICK);
    let mut mc_rows = Vec::new();
    for (label, metric, domains) in [
        ("CPPC (8 domains)", "mc.cppc_deviation_pct", 8usize),
        (
            "SECDED-like (1 domain)",
            "mc.single_domain_deviation_pct",
            1,
        ),
    ] {
        let mc_cfg = MonteCarloConfig {
            faults_per_hour: 40.0,
            domains,
            tavg_hours: 0.0004,
            trials,
        };
        let mc = simulate_double_fault_mttf_parallel(&mc_cfg, MC_SEED, cfg.threads);
        let analytic = analytic_mttf_hours(&mc_cfg);
        let deviation_pct = (mc.mttf_hours / analytic - 1.0) * 100.0;
        metrics.push(MetricValue::new(
            metric,
            "pct",
            format!(
                "Deviation of the simulated accelerated-rate MTTF from the analytic \
                 closed form, {domains}-domain configuration."
            ),
            deviation_pct,
            None,
            Tolerance::Abs(5.0),
        ));
        mc_rows.push(vec![
            label.into(),
            format!("{:.1}", mc.mttf_hours),
            format!("{:.1}", mc.std_error_hours),
            format!("{analytic:.1}"),
            format!("{deviation_pct:+.1}%"),
        ]);
    }

    ArtifactOutput {
        metrics,
        tables: vec![
            mttf_table,
            Table {
                title:
                    "§4.7 temporal-aliasing MTTF (L2, by register pairs; paper 1 pair: 4.19e20 y)"
                        .into(),
                columns: vec!["pairs".into(), "alias MTTF (y)".into()],
                rows: alias_rows,
            },
            Table {
                title: format!(
                    "Monte Carlo validation at accelerated rates ({trials} trials, 40 faults/h, \
                     Tavg 0.0004 h)"
                ),
                columns: vec![
                    "configuration".into(),
                    "simulated (h)".into(),
                    "± (h)".into(),
                    "analytic (h)".into(),
                    "deviation".into(),
                ],
                rows: mc_rows,
            },
        ],
    }
}
