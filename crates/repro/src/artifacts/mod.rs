//! The artifact registry: one module per paper artifact.
//!
//! Adding an artifact is three steps (see `docs/ARCHITECTURE.md` for
//! the walkthrough): write a module exposing an [`Artifact`] constant
//! builder, append it to [`registry`], then run
//! `cppc-cli repro --artifact <name> --update-goldens` to bless the
//! first golden and regenerate the book.

mod energy;
mod explore;
mod fig10;
mod mbe;
mod schemes;
mod table3;

use crate::artifact::Artifact;

/// Every registered artifact, in book order.
#[must_use]
pub fn registry() -> &'static [Artifact] {
    static REGISTRY: std::sync::OnceLock<Vec<Artifact>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| {
        vec![
            table3::artifact(),
            fig10::artifact(),
            energy::artifact(),
            schemes::artifact(),
            mbe::artifact(),
            explore::artifact(),
        ]
    })
}

/// Looks an artifact up by registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static Artifact> {
    registry().iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|a| a.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate artifact name");
        for name in names {
            assert!(find(name).is_some());
        }
        assert!(find("no_such_artifact").is_none());
    }

    #[test]
    fn artifact_configs_render() {
        let cfg = crate::artifact::RunConfig::default();
        for a in registry() {
            let kv = (a.config)(&cfg);
            assert!(!kv.is_empty(), "{} has an empty config block", a.name);
        }
    }
}
