//! `scheme_comparison` — the scheme-zoo cross-comparison: every member
//! of the `ProtectionScheme` zoo side by side on MTTF, dynamic energy
//! and fault response.
//!
//! This is the fast-tier artifact behind the cross-scheme table in
//! `docs/SCHEMES.md` (rendered by the `schemes-md` generator from the
//! committed document). Three lenses, one row per scheme:
//!
//! * **MTTF** — the paper's §6.3 closed-form model at the Table 1 L1
//!   parameters, each scheme mapped to its protection-domain size;
//! * **energy** — a deterministic rewrite-heavy probe trace driven
//!   through each scheme's real write path (so silent-write elisions
//!   are *measured*, not assumed), priced by the 32 nm model and
//!   normalised to 1D parity;
//! * **fault response** — an engine campaign of `scheme_experiment`
//!   under the 4x4 solid strike, the same experiment body
//!   `cppc-cli campaign --scheme <name>` runs.
//!
//! The gate pins the §4.5 safety property exactly for the four ported
//! schemes (zero SDC) and bands the two related-work schemes, whose
//! non-interleaved SECDED miscorrects wide strikes — the documented
//! trade they make for lower energy (silent-write ECC) or on-die
//! repairability (HARP).

use cppc_bench::experiments::{inject_geometry, scheme_experiment};
use cppc_cache_sim::memory::MainMemory;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_campaign::CampaignConfig;
use cppc_core::{CppcConfig, SchemeKind};
use cppc_energy::scheme::{AccessCounts, ProtectionKind, SchemeEnergy};
use cppc_energy::tech::TechnologyNode;
use cppc_fault::campaign::OutcomeTally;
use cppc_fault::model::FaultModel;
use cppc_reliability::mttf::{
    mttf_cppc_years, mttf_domain_double_fault_years, mttf_one_dim_parity_years, mttf_secded_years,
    ReliabilityParams,
};
use cppc_timing::counts_from_stats;

use crate::artifact::{Artifact, ArtifactOutput, MetricValue, RunConfig, Table, Tier, Tolerance};

/// Campaign seed (distinct from the other artifacts' seeds so the
/// tallies are independent samples).
const SEED: u64 = 0x5C4E;
/// Campaign trials per scheme.
const TRIALS: u64 = 240;
const TRIALS_QUICK: u64 = 48;

/// The strike every scheme faces: the 4x4 solid square, the smallest
/// fault that separates the zoo (CPPC and interleaved SECDED correct
/// it, 1D parity and 2D parity — one vertical row — cannot, and the
/// non-interleaved related-work codes sometimes miscorrect it).
const FAULT: FaultModel = FaultModel::SpatialSquare {
    rows: 4,
    cols: 4,
    density: 1.0,
};

/// Energy-probe trace seed and rewrite rounds.
const PROBE_SEED: u64 = 0x0DD5;
const PROBE_ROUNDS: usize = 8;

/// The `scheme_comparison` artifact.
pub fn artifact() -> Artifact {
    Artifact {
        name: "scheme_comparison",
        title: "Scheme zoo — cross-scheme MTTF, energy and fault response",
        paper_ref: "§4.5, §6.2, §6.3 + related work",
        tier: Tier::Fast,
        summary: "Every member of the protection-scheme zoo side by side: closed-form MTTF \
                  at the Table 1 L1, dynamic energy of a deterministic rewrite-heavy probe \
                  trace normalised to 1D parity (silent-write elisions measured through the \
                  scheme's real write path), and the outcome distribution of an engine \
                  campaign under the 4x4 solid strike. The four ported schemes keep the \
                  paper's zero-SDC safety property exactly; the two related-work schemes \
                  trade SDC-freedom under wide strikes for lower energy (silent-write-aware \
                  ECC) or on-die repairability (HARP-style profiling).",
        config: |cfg| {
            vec![
                (
                    "geometry",
                    "2KB, 2-way, 32B blocks (campaign cache, way 0 dirty)".into(),
                ),
                ("campaign_seed", format!("{SEED:#x}")),
                (
                    "trials_per_scheme",
                    cfg.pick(TRIALS, TRIALS_QUICK).to_string(),
                ),
                ("fault", "4x4 solid square".into()),
                (
                    "cppc_config",
                    "paper (1 register pair, byte shifting)".into(),
                ),
                ("mttf_params", "Table 1 L1 (32KB), §6.3 model".into()),
                (
                    "energy_probe",
                    format!(
                        "fill + {PROBE_ROUNDS} rewrite rounds (50% silent), seed \
                         {PROBE_SEED:#x}, 32nm"
                    ),
                ),
                ("schemes", SchemeKind::ALL.map(SchemeKind::name).join(", ")),
            ]
        },
        run,
    }
}

/// One engine campaign of the scheme under the 4x4 solid strike — the
/// exact experiment body `cppc-cli campaign --scheme <name>` runs.
fn campaign(kind: SchemeKind, trials: u64, threads: usize) -> OutcomeTally {
    let cfg = CampaignConfig::new(SEED, trials).threads(threads);
    cppc_campaign::run(&cfg, scheme_experiment(kind, CppcConfig::paper(), FAULT)).result
}

/// §6.3 closed-form MTTF of the scheme at the paper's L1 parameters,
/// mapped to each scheme's protection-domain size: 1D parity dies on
/// the first dirty fault; CPPC's domain is 1/8 of the dirty data (8-way
/// parity); the word-SECDED codes (interleaved or not — interleaving
/// changes which *spatial* strikes decompose, not the temporal
/// double-fault domain) protect 64-bit codewords; 2D parity's single
/// vertical row makes the whole dirty array one domain.
fn mttf_years(kind: SchemeKind, p: &ReliabilityParams) -> f64 {
    match kind {
        SchemeKind::Cppc => mttf_cppc_years(p, 8),
        SchemeKind::Parity1d => mttf_one_dim_parity_years(p),
        SchemeKind::SecdedInterleaved | SchemeKind::SilentWriteEcc | SchemeKind::HarpOdecc => {
            mttf_secded_years(p, 64.0)
        }
        SchemeKind::Parity2d => mttf_domain_double_fault_years(p, p.dirty_bits()),
    }
}

/// Drives the deterministic probe trace through the scheme's real write
/// path and returns the energy-model operation counts.
///
/// The trace fills way 0, then runs [`PROBE_ROUNDS`] rewrite rounds in
/// which each store repeats the currently-stored value with probability
/// 1/2 (a silent store) and writes fresh data otherwise, then reads
/// everything back. Silent-write-aware ECC elides the repeats; every
/// other scheme pays for them. `writes` counts the *issued* stores
/// (elided or not) so the schemes are priced on identical traffic and
/// the elision shows up only through the `silent_writes` discount.
fn probe_counts(kind: SchemeKind) -> AccessCounts {
    let geo = inject_geometry();
    let mut mem = MainMemory::new();
    let mut scheme = kind.build(geo, CppcConfig::paper()).expect("paper config");
    let mut rng = StdRng::seed_from_u64(PROBE_SEED);
    let mut truth = Vec::new();
    for set in 0..geo.num_sets() {
        for word in 0..geo.words_per_block() {
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            let v: u64 = rng.random();
            scheme
                .write_word(addr, v, &mut mem)
                .expect("fault-free probe");
            truth.push((addr, v));
        }
    }
    for _ in 0..PROBE_ROUNDS {
        for entry in &mut truth {
            let (addr, old) = *entry;
            let v: u64 = if rng.random::<u64>() % 2 == 0 {
                old
            } else {
                rng.random()
            };
            scheme
                .write_word(addr, v, &mut mem)
                .expect("fault-free probe");
            *entry = (addr, v);
        }
    }
    for &(addr, _) in &truth {
        scheme.read_word(addr, &mut mem).expect("fault-free probe");
    }
    let ops = scheme.ops();
    let mut counts = counts_from_stats(scheme.cache_stats(), geo.words_per_block() as u32);
    counts.writes += ops.silent_writes;
    counts.silent_writes = ops.silent_writes;
    counts
}

/// Prices the probe counts for one scheme at the campaign cache's
/// dimensions, 32 nm.
fn probe_energy_pj(kind: SchemeKind, counts: &AccessCounts) -> f64 {
    let pricing = ProtectionKind::for_scheme(kind.name()).expect("every zoo member is priced");
    SchemeEnergy::new(2048, 2, 32, pricing, TechnologyNode::Nm32).total_pj(counts)
}

#[allow(clippy::cast_precision_loss)]
fn pct(n: u64, tally: &OutcomeTally) -> f64 {
    n as f64 / tally.total() as f64 * 100.0
}

/// Metric-name stem of a scheme (`-` is not a metric-name character).
fn stem(kind: SchemeKind) -> String {
    kind.name().replace('-', "_")
}

#[allow(clippy::cast_precision_loss)]
fn run(cfg: &RunConfig) -> ArtifactOutput {
    let trials = cfg.pick(TRIALS, TRIALS_QUICK);
    let p = ReliabilityParams::paper_l1();

    // Per-scheme measurements, in catalog order.
    let tallies: Vec<(SchemeKind, OutcomeTally)> = SchemeKind::ALL
        .into_iter()
        .map(|k| (k, campaign(k, trials, cfg.threads)))
        .collect();
    let counts: Vec<(SchemeKind, AccessCounts)> = SchemeKind::ALL
        .into_iter()
        .map(|k| (k, probe_counts(k)))
        .collect();
    let counts_of = |k: SchemeKind| -> &AccessCounts {
        &counts
            .iter()
            .find(|(kind, _)| *kind == k)
            .expect("every scheme probed")
            .1
    };
    let base_pj = probe_energy_pj(SchemeKind::Parity1d, counts_of(SchemeKind::Parity1d));
    let energy_ratio = |k: SchemeKind| -> f64 { probe_energy_pj(k, counts_of(k)) / base_pj };
    let silent_counts = *counts_of(SchemeKind::SilentWriteEcc);
    let elision_pct = silent_counts.silent_writes as f64 / silent_counts.writes as f64 * 100.0;

    let comparison_rows = SchemeKind::ALL
        .into_iter()
        .map(|k| {
            let d = k.descriptor();
            vec![
                format!("`{}`", k.name()),
                format!("{:.1}", d.storage_overhead_pct()),
                format!("{:.3e}", mttf_years(k, &p)),
                format!("{:.3}", energy_ratio(k)),
            ]
        })
        .collect();
    let response_rows = tallies
        .iter()
        .map(|(k, t)| {
            vec![
                format!("`{}`", k.name()),
                format!("{:.1}", pct(t.corrected, t)),
                format!("{:.1}", pct(t.due, t)),
                format!("{:.1}", pct(t.sdc, t)),
                format!("{:.1}", pct(t.masked, t)),
            ]
        })
        .collect();

    let tally = |k: SchemeKind| -> &OutcomeTally {
        &tallies.iter().find(|(kind, _)| *kind == k).unwrap().1
    };
    let mut metrics = Vec::new();
    // The §4.5 safety property, pinned exactly for the ported schemes.
    for k in [
        SchemeKind::Cppc,
        SchemeKind::Parity1d,
        SchemeKind::SecdedInterleaved,
        SchemeKind::Parity2d,
    ] {
        metrics.push(MetricValue::new(
            format!("scheme.{}.sdc_pct", stem(k)),
            "pct",
            format!(
                "Silent-corruption share of `{}` under the 4x4 solid strike: the ported \
                 schemes keep the paper's zero-SDC property bit for bit.",
                k.name()
            ),
            pct(tally(k).sdc, tally(k)),
            Some(0.0),
            Tolerance::Exact,
        ));
    }
    for k in [SchemeKind::SilentWriteEcc, SchemeKind::HarpOdecc] {
        metrics.push(MetricValue::new(
            format!("scheme.{}.sdc_pct", stem(k)),
            "pct",
            format!(
                "Silent-corruption share of `{}` under the 4x4 solid strike: its \
                 non-interleaved SECDED miscorrects some wide strikes — the documented \
                 trade of the related-work design.",
                k.name()
            ),
            pct(tally(k).sdc, tally(k)),
            None,
            Tolerance::Abs(5.0),
        ));
    }
    metrics.push(MetricValue::new(
        "scheme.harp_odecc.corrected_pct",
        "pct",
        "Share of strikes HARP-style profiling disposes of cleanly: the profiling pass \
         repairs words the on-die code flags as uncorrectable from the write-through \
         memory copy, converting would-be DUEs into corrections.",
        pct(
            tally(SchemeKind::HarpOdecc).corrected,
            tally(SchemeKind::HarpOdecc),
        ),
        None,
        Tolerance::Abs(5.0),
    ));
    metrics.push(MetricValue::new(
        "scheme.silent_write_ecc.elision_pct",
        "pct",
        "Share of the probe trace's issued stores the silent-write-aware scheme elided \
         (incoming value matched the stored word). Deterministic trace; ~50% of rewrite \
         stores repeat by construction.",
        elision_pct,
        None,
        Tolerance::Abs(1.0),
    ));
    metrics.push(MetricValue::new(
        "scheme.silent_write_ecc.energy_ratio",
        "ratio",
        "Probe-trace dynamic energy of silent-write-aware ECC normalised to 1D parity: \
         the elided writes must price it below plain (non-interleaved) SECDED on the \
         same traffic.",
        energy_ratio(SchemeKind::SilentWriteEcc),
        None,
        Tolerance::Rel(0.02),
    ));

    ArtifactOutput {
        metrics,
        tables: vec![
            Table {
                title: "Cross-scheme comparison — storage, MTTF and normalised energy \
                        (paper L1 MTTF parameters; probe-trace energy)"
                    .into(),
                columns: vec![
                    "scheme".into(),
                    "storage overhead %".into(),
                    "MTTF (years)".into(),
                    "energy vs 1D parity".into(),
                ],
                rows: comparison_rows,
            },
            Table {
                title: format!("Fault response — 4x4 solid strike ({trials} trials per scheme)"),
                columns: vec![
                    "scheme".into(),
                    "corrected %".into(),
                    "DUE %".into(),
                    "SDC %".into(),
                    "masked %".into(),
                ],
                rows: response_rows,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_measures_elisions_only_for_the_silent_scheme() {
        let silent = probe_counts(SchemeKind::SilentWriteEcc);
        assert!(silent.silent_writes > 0, "rewrite rounds must elide");
        assert!(silent.silent_writes < silent.writes);
        let cppc = probe_counts(SchemeKind::Cppc);
        assert_eq!(cppc.silent_writes, 0);
        // Identical issued traffic across the zoo: the rounds rewrite
        // resident words only, so every scheme sees the same stores.
        assert_eq!(silent.writes, cppc.writes);
    }

    #[test]
    fn silent_elision_prices_below_plain_secded() {
        let counts = probe_counts(SchemeKind::SilentWriteEcc);
        let silent = probe_energy_pj(SchemeKind::SilentWriteEcc, &counts);
        // Plain non-interleaved SECDED on the same traffic subtracts
        // nothing for silent stores.
        let plain = SchemeEnergy::new(
            2048,
            2,
            32,
            ProtectionKind::Secded { interleaved: false },
            TechnologyNode::Nm32,
        )
        .total_pj(&counts);
        assert!(
            silent < plain,
            "elision must save energy: {silent} vs {plain}"
        );
    }

    #[test]
    fn quick_run_produces_all_rows_and_metrics() {
        let cfg = RunConfig {
            threads: 2,
            quick: true,
        };
        let out = run(&cfg);
        assert_eq!(out.tables.len(), 2);
        for t in &out.tables {
            assert_eq!(t.rows.len(), SchemeKind::ALL.len());
        }
        assert_eq!(out.metrics.len(), 9);
        // The ported schemes' exact zero-SDC gates hold even quick.
        for m in &out.metrics {
            if matches!(m.tolerance, Tolerance::Exact) {
                assert_eq!(m.value, 0.0, "{} must be zero", m.name);
            }
        }
    }
}
