//! `mbe_coverage` — the §4.6/§4.7 correction-capability matrix: how
//! each protection scheme disposes of each fault class (Corrected /
//! DUE / SDC / Masked) under sampled fault-injection campaigns.
//!
//! The golden gate pins the paper's headline claims exactly: zero
//! silent corruption anywhere, the 8x8 solid square unrecoverable with
//! one register pair but corrected with two, and SECDED+interleaving
//! correcting everything inside its 8-wide budget.

use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::memory::MainMemory;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::rng::{RngExt, SeedableRng};
use cppc_core::baselines::{OneDimParityCache, SecdedCache, TwoDimParityCache};
use cppc_core::{CppcCache, CppcConfig};
use cppc_fault::campaign::{Campaign, Outcome, OutcomeTally};
use cppc_fault::model::{FaultGenerator, FaultModel};

use crate::artifact::{Artifact, ArtifactOutput, MetricValue, RunConfig, Table, Tier, Tolerance};

/// Campaign seed (shared with the historical `mbe_coverage` binary so
/// tallies stay comparable).
const SEED: u64 = 0xC0DE;
/// Trials per (scheme, fault) cell.
const TRIALS: u64 = 200;
const TRIALS_QUICK: u64 = 40;

/// The `mbe_coverage` artifact.
pub fn artifact() -> Artifact {
    Artifact {
        name: "mbe_coverage",
        title: "§4.6 coverage matrix — MBE correction capability",
        paper_ref: "§4.6, §4.7, §4.5",
        tier: Tier::Full,
        summary: "Fault-injection campaigns measuring the outcome distribution (Corrected / \
                  DUE / SDC / Masked) of every protection scheme against every fault class, \
                  on a 2KB 2-way cache with way 0 fully dirty. Expected shape: 1D parity \
                  detects but never corrects; SECDED+interleaving corrects everything up to \
                  8-wide strikes; CPPC with one register pair corrects all spatial MBEs in \
                  an 8x8 square except the irreducible patterns (solid 8x8, distance-4 \
                  alias), which are DUE — never SDC; two pairs correct the 8x8 too. SDC is \
                  zero in every cell: when the locator cannot pin a fault down unambiguously \
                  it refuses rather than guesses.",
        config: |cfg| {
            vec![
                (
                    "geometry",
                    "2KB, 2-way, 32B blocks (32 sets, 256 rows)".into(),
                ),
                ("warm_state", "way 0 fully dirty, seeded values".into()),
                ("campaign_seed", format!("{SEED:#x}")),
                (
                    "trials_per_cell",
                    cfg.pick(TRIALS, TRIALS_QUICK).to_string(),
                ),
                (
                    "schemes",
                    "1D parity, SECDED+interleave, CPPC 1/2/8 pairs, 2D parity 1/8 rows".into(),
                ),
                (
                    "faults",
                    "single bit, 2-bit vertical, 8-bit horizontal, 4x4 solid, 8x8 sparse(0.4), \
                     8x8 solid"
                        .into(),
                ),
            ]
        },
        run,
    }
}

fn geometry() -> CacheGeometry {
    CacheGeometry::new(2048, 2, 32).unwrap()
}

/// Ground truth: addresses of way-0 rows and their stored values.
fn oracle(seed: u64) -> Vec<(u64, u64)> {
    let geo = geometry();
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = geo.num_sets() * geo.words_per_block();
    (0..rows)
        .map(|row| {
            let set = row / geo.words_per_block();
            let word = row % geo.words_per_block();
            let addr = geo.address_of(0, set) + (word * 8) as u64;
            (addr, rng.random())
        })
        .collect()
}

fn fault_models() -> Vec<(&'static str, FaultModel)> {
    vec![
        ("single bit", FaultModel::TemporalSingleBit),
        ("2-bit vertical", FaultModel::VerticalStripe { rows: 2 }),
        ("8-bit horizontal", FaultModel::HorizontalBurst { cols: 8 }),
        (
            "4x4 solid",
            FaultModel::SpatialSquare {
                rows: 4,
                cols: 4,
                density: 1.0,
            },
        ),
        (
            "8x8 sparse (40%)",
            FaultModel::SpatialSquare {
                rows: 8,
                cols: 8,
                density: 0.4,
            },
        ),
        (
            "8x8 solid",
            FaultModel::SpatialSquare {
                rows: 8,
                cols: 8,
                density: 1.0,
            },
        ),
    ]
}

fn run_cppc(config: CppcConfig, model: FaultModel, trials: u64, threads: usize) -> OutcomeTally {
    Campaign::new(SEED).run_parallel(trials, threads, move |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = CppcCache::new_l1(geometry(), config, ReplacementPolicy::Lru).unwrap();
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem).unwrap();
        }
        let rows = cache.layout().num_rows() / 2; // way-0 rows only
        let mut generator = FaultGenerator::new(rows, rng.random());
        let pattern = generator.sample(model);
        if cache.inject(&pattern) == 0 {
            return Outcome::Masked;
        }
        match cache.recover_all(&mut mem) {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(_) => {
                for &(addr, v) in &truth {
                    if cache.peek_word(addr) != Some(v) {
                        return Outcome::SilentCorruption;
                    }
                }
                Outcome::Corrected
            }
        }
    })
}

fn run_parity(model: FaultModel, trials: u64, threads: usize) -> OutcomeTally {
    Campaign::new(SEED).run_parallel(trials, threads, move |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = OneDimParityCache::new(geometry(), 8, ReplacementPolicy::Lru);
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem);
        }
        let rows = cache.layout().num_rows() / 2;
        let mut generator = FaultGenerator::new(rows, rng.random());
        let pattern = generator.sample(model);
        if cache.inject(&pattern) == 0 {
            return Outcome::Masked;
        }
        for &(addr, v) in &truth {
            match cache.load_word(addr, &mut mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        // Every flipped bit was hidden by even flips per parity group:
        // harmless this time — masked by parity blindness.
        Outcome::Masked
    })
}

fn run_secded(model: FaultModel, trials: u64, threads: usize) -> OutcomeTally {
    Campaign::new(SEED).run_parallel(trials, threads, move |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = SecdedCache::new(geometry(), true, ReplacementPolicy::Lru);
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem);
        }
        let logical_rows = cache.layout().num_rows() / 2;
        // Translate the fault model into a physical strike on the
        // interleaved array (8 logical rows per physical row).
        let (rows, cols) = match model {
            FaultModel::TemporalSingleBit | FaultModel::TemporalMultiBit { .. } => (1, 1),
            FaultModel::VerticalStripe { rows } => (rows, 1),
            FaultModel::HorizontalBurst { cols } => (1, cols),
            FaultModel::SpatialSquare { rows, cols, .. } => (rows, cols),
        };
        let physical_rows = logical_rows / 8;
        let prows = rows.div_ceil(8).max(1).min(physical_rows);
        let row0 = rng.random_range(0..=(physical_rows - prows));
        let col0 = rng.random_range(0..=(512 - cols));
        let flips = cache.inject_spatial(row0, col0, prows, cols);
        if flips.is_empty() {
            return Outcome::Masked;
        }
        for &(addr, v) in &truth {
            match cache.load_word(addr, &mut mem) {
                Err(_) => return Outcome::DetectedUnrecoverable,
                Ok(got) if got != v => return Outcome::SilentCorruption,
                Ok(_) => {}
            }
        }
        Outcome::Corrected
    })
}

fn run_twodim(
    vertical_rows: usize,
    model: FaultModel,
    trials: u64,
    threads: usize,
) -> OutcomeTally {
    Campaign::new(SEED).run_parallel(trials, threads, move |rng, trial| {
        let mut mem = MainMemory::new();
        let mut cache = TwoDimParityCache::new(geometry(), vertical_rows, ReplacementPolicy::Lru);
        let truth = oracle(trial);
        for &(addr, v) in &truth {
            cache.store_word(addr, v, &mut mem);
        }
        let rows = cache.layout().num_rows() / 2;
        let mut generator = FaultGenerator::new(rows, rng.random());
        let pattern = generator.sample(model);
        if cache.inject(&pattern) == 0 {
            return Outcome::Masked;
        }
        match cache.recover_all() {
            Err(_) => Outcome::DetectedUnrecoverable,
            Ok(()) => {
                for &(addr, v) in &truth {
                    if cache.peek_word(addr) != Some(v) {
                        return Outcome::SilentCorruption;
                    }
                }
                Outcome::Corrected
            }
        }
    })
}

fn pct(n: u64, tally: &OutcomeTally) -> f64 {
    n as f64 / tally.total() as f64 * 100.0
}

/// One protection scheme's campaign, ready to run against a fault model.
type SchemeRunner = Box<dyn Fn(FaultModel) -> OutcomeTally>;

fn run(cfg: &RunConfig) -> ArtifactOutput {
    let trials = cfg.pick(TRIALS, TRIALS_QUICK);
    let threads = cfg.threads;

    let schemes: Vec<(&str, SchemeRunner)> = vec![
        (
            "1D parity",
            Box::new(move |m| run_parity(m, trials, threads)),
        ),
        (
            "SECDED+interleave",
            Box::new(move |m| run_secded(m, trials, threads)),
        ),
        (
            "CPPC 1 pair",
            Box::new(move |m| run_cppc(CppcConfig::paper(), m, trials, threads)),
        ),
        (
            "CPPC 2 pairs",
            Box::new(move |m| run_cppc(CppcConfig::two_pairs(), m, trials, threads)),
        ),
        (
            "CPPC 8 pairs",
            Box::new(move |m| run_cppc(CppcConfig::eight_pairs(), m, trials, threads)),
        ),
        (
            "2D parity (1 row)",
            Box::new(move |m| run_twodim(1, m, trials, threads)),
        ),
        (
            "2D parity (8 rows)",
            Box::new(move |m| run_twodim(8, m, trials, threads)),
        ),
    ];

    let mut tables = Vec::new();
    let mut sdc_total = 0u64;
    // (scheme, fault) -> tally for the gated cells below.
    let mut cells: Vec<(&str, &str, OutcomeTally)> = Vec::new();
    for (fault_name, model) in fault_models() {
        let mut rows = Vec::new();
        for (scheme_name, runner) in &schemes {
            let tally = runner(model);
            sdc_total += tally.sdc;
            rows.push(vec![
                (*scheme_name).to_string(),
                format!("{:.1}", pct(tally.corrected, &tally)),
                format!("{:.1}", pct(tally.due, &tally)),
                format!("{:.1}", pct(tally.sdc, &tally)),
                format!("{:.1}", pct(tally.masked, &tally)),
            ]);
            cells.push((scheme_name, fault_name, tally));
        }
        tables.push(Table {
            title: format!("Fault: {fault_name} ({trials} trials per cell)"),
            columns: vec![
                "scheme".into(),
                "corrected %".into(),
                "DUE %".into(),
                "SDC %".into(),
                "masked %".into(),
            ],
            rows,
        });
    }

    let cell = |scheme: &str, fault: &str| -> &OutcomeTally {
        cells
            .iter()
            .find(|(s, f, _)| *s == scheme && *f == fault)
            .map(|(_, _, t)| t)
            .expect("gated cell present in matrix")
    };

    #[allow(clippy::cast_precision_loss)]
    let metrics = vec![
        MetricValue::new(
            "coverage.sdc_trials_total",
            "trials",
            "Silent-data-corruption outcomes summed over the whole scheme x fault matrix. \
             The paper's §4.5/§4.6 safety property: must be zero.",
            sdc_total as f64,
            Some(0.0),
            Tolerance::Exact,
        ),
        MetricValue::new(
            "coverage.cppc1.solid8x8_due_pct",
            "pct",
            "CPPC with one register pair on the solid 8x8 square: the §4.6 irreducible \
             pattern — detected but unrecoverable, never silently wrong.",
            pct(
                cell("CPPC 1 pair", "8x8 solid").due,
                cell("CPPC 1 pair", "8x8 solid"),
            ),
            Some(100.0),
            Tolerance::Exact,
        ),
        MetricValue::new(
            "coverage.cppc2.solid8x8_corrected_pct",
            "pct",
            "CPPC with two register pairs corrects the solid 8x8 square (classes 0-3 and \
             4-7 split across pairs).",
            pct(
                cell("CPPC 2 pairs", "8x8 solid").corrected,
                cell("CPPC 2 pairs", "8x8 solid"),
            ),
            Some(100.0),
            Tolerance::Exact,
        ),
        MetricValue::new(
            "coverage.cppc8.sparse8x8_corrected_pct",
            "pct",
            "CPPC with eight register pairs (no byte shifting needed) corrects everything \
             in the 8x8 square.",
            pct(
                cell("CPPC 8 pairs", "8x8 sparse (40%)").corrected,
                cell("CPPC 8 pairs", "8x8 sparse (40%)"),
            ),
            Some(100.0),
            Tolerance::Exact,
        ),
        MetricValue::new(
            "coverage.secded.solid8x8_corrected_pct",
            "pct",
            "SECDED with 8-way physical interleaving corrects the solid 8x8 square.",
            pct(
                cell("SECDED+interleave", "8x8 solid").corrected,
                cell("SECDED+interleave", "8x8 solid"),
            ),
            Some(100.0),
            Tolerance::Exact,
        ),
        MetricValue::new(
            "coverage.parity.solid4x4_corrected_pct",
            "pct",
            "1D parity never corrects a dirty-data fault (detection only).",
            pct(
                cell("1D parity", "4x4 solid").corrected,
                cell("1D parity", "4x4 solid"),
            ),
            Some(0.0),
            Tolerance::Exact,
        ),
        MetricValue::new(
            "coverage.cppc1.sparse8x8_corrected_pct",
            "pct",
            "CPPC with one register pair on the sparse 8x8 square: faults spanning all 8 \
             rows frequently alias across the distance-4 pairs (the published special-case \
             mechanism), so only a minority of samples correct.",
            pct(
                cell("CPPC 1 pair", "8x8 sparse (40%)").corrected,
                cell("CPPC 1 pair", "8x8 sparse (40%)"),
            ),
            None,
            Tolerance::Abs(5.0),
        ),
    ];

    ArtifactOutput { metrics, tables }
}
