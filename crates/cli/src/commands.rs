//! The CLI subcommands.

use std::error::Error;
use std::path::PathBuf;

use cppc_bench::experiments::{
    inject_experiment, inject_geometry, parse_config, parse_fault, parse_scheme, scheme_experiment,
    sleep_experiment,
};
use cppc_cache_sim::geometry::CacheGeometry;
use cppc_cache_sim::replacement::ReplacementPolicy;
use cppc_campaign::rng::rngs::StdRng;
use cppc_campaign::{
    Accumulator, CampaignConfig, CampaignReport, CheckpointPolicy, Persist, Progress,
};
use cppc_core::CppcConfig;
use cppc_energy::scheme::{AccessCounts, ProtectionKind, SchemeEnergy};
use cppc_energy::tech::TechnologyNode;
use cppc_energy::AreaModel;
use cppc_fault::campaign::{Campaign, OutcomeTally};
use cppc_fault::model::FaultModel;
use cppc_reliability::mttf::{
    aliasing_vulnerable_bits, mttf_aliasing_years, mttf_cppc_years, mttf_one_dim_parity_years,
    mttf_secded_years,
};
use cppc_reliability::{ReliabilityParams, SeuRate};
use cppc_timing::{L1Scheme, MachineConfig, TimingModel};
use cppc_workloads::spec2000_profiles;

use crate::args::ParsedArgs;

type CliResult = Result<(), Box<dyn Error>>;

/// Prints usage.
pub fn print_help() {
    println!(
        "cppc-cli — Correctable Parity Protected Cache (ISCA 2011) tools

USAGE: cppc-cli <COMMAND> [--key value ...]

COMMANDS:
  benchmarks   list the synthetic SPEC2000-like workloads
  simulate     run one benchmark through the Table 1 machine
                 --bench <name>   benchmark (default gcc)
                 --ops <n>        memory operations (default 200000)
                 --seed <n>       trace seed (default 42)
  inject       run a fault-injection campaign on an L1 CPPC
                 --config basic|paper|two-pairs|eight-pairs (default paper)
                 --fault single|2xvert|8xhoriz|4x4|8x8 (default 4x4)
                 --trials <n>     campaign size (default 400)
  campaign     run a campaign through the parallel deterministic engine
               (bit-identical results at any thread count; live metrics
               on stderr)
                 --kind inject|scheme|montecarlo|mbe|sleep|trace
                                  (default inject)
                 --scheme cppc|parity1d|secded-interleaved|parity2d|
                          silent-write-ecc|harp-odecc
                                  protection scheme to campaign (implies
                                  --kind scheme; see docs/SCHEMES.md)
                 --trials <n>     campaign size (default 2000)
                 --seed <n>       master seed (default 0xC11)
                 --threads <n>    workers; 0 resolves to every CPU via
                                  available_parallelism (default 0)
                 --shard-size <n> trials per shard (campaign identity)
                 --batch <n>      mbe kind: trials per vectorized
                                  syndrome batch (default 1; tallies
                                  and checkpoints are bit-identical at
                                  any batch size)
                 --checkpoint <path>  periodic checkpoint file
                 --checkpoint-every <n>  shards between checkpoint
                                  writes (default 16)
                 --resume true|false  resume from checkpoint (default true)
                 --json           print only the result document on
                                  stdout (matches a serve job's result)
                 inject and scheme kinds also take --config/--fault;
                 montecarlo --rate/--domains/--tavg; sleep --sleep-ms;
                 trace --trace <file> (text or binary trace to replay
                 per trial; see docs/TRACES.md)
  mttf         print the analytical MTTF table
                 --level l1|l2    evaluation point (default l1)
                 --fit <f>        SEU rate, FIT/bit (default 0.001)
                 --avf <f>        AVF (default 0.7)
  sweep        design-space sweep
                 --what pairs|ways (default pairs)
  trace        trace-file tools (see docs/TRACES.md); bare `trace` is
               `trace record`
    trace record   record a synthetic trace to a file
                 --bench <name>   benchmark (default gcc)
                 --ops <n>        operations (default 100000)
                 --format text|bin (default text)
                 --out <path>     output file (default trace.txt, or
                                  trace.cppct with --format bin)
                 --seed <n>       trace seed (default 42)
    trace convert  convert between trace formats
                 --in <path>      input (format sniffed, or --from
                                  text|bin|din to pin it)
                 --out <path>     output file
                 --to text|bin    output format (default bin)
    trace info     format, op counts and load/store mix of a file
                 --in <path>      trace file
    trace bench    ops/sec probe: materialize-then-replay vs the
                   streaming binary reader (binary traces)
                 --in <path>      trace file
                 --reps <n>       best-of repetitions (default 3)
  montecarlo   validate the MTTF model at accelerated rates
                 --rate <f>       faults/hour over dirty bits (default 40)
                 --domains <n>    protection domains (default 8)
                 --tavg <f>       window, hours (default 0.0004)
                 --trials <n>     trials (default 3000)
  coherence    multiprocessor CPPC read-before-write sweep
                 --cores <n>      cores (default 4)
                 --ops <n>        total ops (default 100000)
  repro        reproduce the paper's tables/figures with golden gates
               (see docs/RESULTS.md)
                 --artifact <name> one artifact (default: fast tier)
                 --all            every artifact, incl. the full tier
                 --check          gate against committed goldens, write
                                  nothing; non-zero exit on violation
                 --update-goldens re-bless goldens with fresh values
                 --render         re-render docs/RESULTS.md from the
                                  committed JSON, no simulation
                 --threads <n>    workers, 0 = all CPUs (default 1)
                 --quick          scaled-down trial counts (tests only;
                                  never mix with committed goldens)
                 --root <path>    repo root (default .)
  explore      design-space sweep over scheme x geometry x interleave-k
               x scrub interval; Pareto frontier over (MTTF, energy,
               CPI, area) feeding docs/EXPLORER.md
                 --quick          28-config CI tier (default: the
                                  432-config full tier)
                 --check          re-run the tier and require byte
                                  identity with the committed
                                  docs/results/explore_<tier>.json
                 --render         re-render docs/EXPLORER.md from the
                                  committed JSONs, no simulation
                 --threads <n>    workers across configs, 0 = all CPUs
                                  (default 0); bytes identical at any
                                  thread count
                 --checkpoint-dir <dir>  per-config checkpoints keyed
                                  by config digest (resume)
                 --include <s,..> keep only config labels containing a
                                  substring (side study; needs --out)
                 --exclude <s,..> drop config labels containing a
                                  substring (side study; needs --out)
                 --out <path>     write the document here instead of
                                  docs/results/explore_<tier>.json
                 --root <path>    repo root (default .)
  stats        run a workload + mini campaign, then print the live
               metrics registry (see docs/METRICS.md)
                 --bench <name>   benchmark (default gcc)
                 --ops <n>        memory operations (default 200000)
                 --seed <n>       seed (default 42)
                 --trials <n>     injection trials (default 200)
                 --format table|json (default table)
                 --all true|false include zero metrics (default false)
                 --events <n>     ring events to tail (default 10)
                 --describe true  print the metrics reference, no run
  serve        run the campaign job daemon (see docs/ARCHITECTURE.md)
                 --data-dir <dir> journal + checkpoints (default
                                  cppc-serve-data)
                 --socket <path>  unix socket (default /tmp/cppc-serve.sock)
                 --tcp <addr>     extra loopback listener, e.g.
                                  127.0.0.1:7070
                 --queue-cap <n>  admission bound (default 64)
                 --max-threads <n> worker-thread governor (default: CPUs)
                 --checkpoint-every <n> shards between checkpoints
                                  (default 4)
  submit       submit a job to a daemon; prints the job id
                 --kind/--trials/--seed/--threads/--shard-size/--batch
                 and the kind-specific flags, exactly as `campaign`
                 (--threads 0 resolves on the daemon's host)
                 --tenant <name>  fair-share key (default 'default')
                 --priority high|normal (default normal)
                 --watch          stream progress until the job ends
  status       one job's status document    --id <job>
  result       a finished job's result JSON --id <job>
  cancel       cancel a queued/running job  --id <job>
  list         job summaries                [--tenant <name>]
  watch        stream progress; prints the result JSON when done
                 --id <job>
  metrics      the daemon's live metrics snapshot (JSON)
  shutdown     graceful daemon shutdown (running jobs are checkpointed
               and resume on restart)
               every client command takes --socket <path> or --tcp <addr>
  help         this text"
    );
}

/// `benchmarks`
pub fn benchmarks() -> CliResult {
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>10}",
        "name", "ld/ki", "st/ki", "footprint", "base CPI"
    );
    for p in spec2000_profiles() {
        println!(
            "{:<10} {:>8} {:>8} {:>9} KB {:>10.2}",
            p.name,
            p.loads_per_kinst,
            p.stores_per_kinst,
            p.working_set_bytes / 1024,
            p.base_cpi
        );
    }
    Ok(())
}

/// `simulate`
pub fn simulate(args: &ParsedArgs) -> CliResult {
    let bench = args.get_or("bench", "gcc");
    let ops: usize = args.get_parsed("ops", 200_000)?;
    let seed: u64 = args.get_parsed("seed", 42)?;

    let profiles = spec2000_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.name == bench)
        .ok_or_else(|| format!("unknown benchmark '{bench}' (see `benchmarks`)"))?;

    let machine = MachineConfig::table1();
    let model = TimingModel::new(machine);
    let base = model.simulate(profile, L1Scheme::OneDimParity, ops, seed);

    println!("benchmark {bench}: {ops} memory ops on the Table 1 machine\n");
    println!(
        "L1: miss rate {:5.2}%   stores-to-dirty {:6}   write-backs {:6}",
        base.l1_stats.miss_rate() * 100.0,
        base.l1_stats.stores_to_dirty,
        base.l1_stats.writebacks
    );
    println!(
        "L2: miss rate {:5.2}%   accesses {:9}",
        base.l2_stats.miss_rate() * 100.0,
        base.l2_stats.accesses()
    );
    println!();
    for (name, scheme) in [
        ("1D parity", L1Scheme::OneDimParity),
        ("CPPC", L1Scheme::Cppc),
        ("2D parity", L1Scheme::TwoDimParity),
    ] {
        let b = model.breakdown_from_stats(profile, scheme, ops, base.l1_stats, base.l2_stats);
        println!(
            "CPI {name:<10} {:.4}  ({:+.3}% vs parity)",
            b.cpi(),
            (b.cpi() / base.cpi() - 1.0) * 100.0
        );
    }

    let node = TechnologyNode::Nm32;
    let counts = AccessCounts {
        reads: base.l1_stats.load_hits,
        writes: base.l1_stats.store_hits + base.l1_stats.fills,
        stores_to_dirty: base.l1_stats.stores_to_dirty,
        miss_fills: base.l1_stats.fills,
        words_per_line: 4,
        silent_writes: 0,
    };
    let parity = SchemeEnergy::new(
        32 * 1024,
        2,
        32,
        ProtectionKind::OneDimParity { ways: 8 },
        node,
    );
    println!();
    for (name, kind) in [
        ("CPPC", ProtectionKind::Cppc { ways: 8 }),
        ("SECDED", ProtectionKind::Secded { interleaved: true }),
        ("2D parity", ProtectionKind::TwoDimParity { ways: 8 }),
    ] {
        let e = SchemeEnergy::new(32 * 1024, 2, 32, kind, node);
        println!(
            "L1 energy {name:<10} {:.3}x parity",
            e.total_pj(&counts) / parity.total_pj(&counts)
        );
    }
    Ok(())
}

/// `inject`
pub fn inject(args: &ParsedArgs) -> CliResult {
    let config = parse_config(args.get_or("config", "paper"))?;
    let fault = parse_fault(args.get_or("fault", "4x4"))?;
    let trials: u64 = args.get_parsed("trials", 400)?;

    let tally: OutcomeTally =
        Campaign::new(0xC11).run(trials, inject_experiment(inject_geometry(), config, fault));

    println!("campaign: {trials} trials");
    println!(
        "corrected: {:>6}  ({:.1}%)",
        tally.corrected,
        pct(tally.corrected, &tally)
    );
    println!(
        "DUE:       {:>6}  ({:.1}%)",
        tally.due,
        pct(tally.due, &tally)
    );
    println!(
        "SDC:       {:>6}  ({:.1}%)",
        tally.sdc,
        pct(tally.sdc, &tally)
    );
    println!(
        "masked:    {:>6}  ({:.1}%)",
        tally.masked,
        pct(tally.masked, &tally)
    );
    Ok(())
}

fn pct(n: u64, t: &OutcomeTally) -> f64 {
    n as f64 / t.total() as f64 * 100.0
}

/// How an engine campaign checkpoints: where, how often (in shards),
/// and whether an existing file is resumed from.
struct CheckpointArgs<'a> {
    path: Option<&'a str>,
    every_shards: u64,
    resume: bool,
}

impl<'a> CheckpointArgs<'a> {
    fn from_args(args: &'a ParsedArgs) -> Result<Self, Box<dyn Error>> {
        Ok(CheckpointArgs {
            path: args.get("checkpoint"),
            every_shards: args.get_parsed("checkpoint-every", 16)?,
            resume: args.get_parsed("resume", true)?,
        })
    }
}

/// Runs one engine campaign, printing throttled live metrics to stderr
/// and checkpointing/resuming when `--checkpoint` is given.
fn run_engine_campaign<A, F>(
    cfg: &CampaignConfig,
    ckpt: &CheckpointArgs,
    experiment: F,
) -> Result<CampaignReport<A>, Box<dyn Error>>
where
    A: Accumulator + Persist,
    F: Fn(&mut StdRng, u64) -> A::Item + Sync,
{
    run_engine_campaign_exec(cfg, ckpt, cppc_campaign::PerTrial(experiment))
}

/// [`run_engine_campaign`] over an explicit range executor (the batched
/// mbe path goes through here directly).
fn run_engine_campaign_exec<A, E>(
    cfg: &CampaignConfig,
    ckpt: &CheckpointArgs,
    exec: E,
) -> Result<CampaignReport<A>, Box<dyn Error>>
where
    A: Accumulator + Persist,
    E: cppc_campaign::TrialExec<A>,
{
    let mut last_print: Option<std::time::Instant> = None;
    let on_progress = move |p: &Progress| {
        let done = p.shards_done == p.shards_total;
        let due = last_print.is_none_or(|t| t.elapsed().as_millis() >= 500);
        if done || due {
            eprintln!("  {}", p.summary_line());
            last_print = Some(std::time::Instant::now());
        }
    };
    let report = match ckpt.path {
        Some(path) => {
            let mut policy = CheckpointPolicy::new(path);
            policy.resume = ckpt.resume;
            policy.every_shards = ckpt.every_shards.max(1);
            cppc_campaign::run_resumable_exec(cfg, &policy, exec, on_progress)?
        }
        None => cppc_campaign::run_with_progress_exec(cfg, exec, on_progress),
    };
    for failed in &report.failed {
        eprintln!(
            "  shard {} FAILED (trials {}..{}, first seed {:#x}): {}",
            failed.shard, failed.trial_lo, failed.trial_hi, failed.first_trial_seed, failed.message
        );
    }
    Ok(report)
}

/// Prints the post-run shard summary (stderr in `--json` mode, where
/// stdout carries only the result document).
fn shard_summary<A: Accumulator>(report: &CampaignReport<A>, json: bool) {
    let line = format!(
        "{} shards ({} resumed, {} failed) in {:.2}s",
        report.completed_shards,
        report.resumed_shards,
        report.failed.len(),
        report.elapsed_secs
    );
    if json {
        eprintln!("{line}");
    } else {
        println!("{line}");
    }
}

fn print_tally(report: &CampaignReport<OutcomeTally>, json: bool) {
    shard_summary(report, json);
    let tally = &report.result;
    if json {
        // Exactly the service's result document for the same spec —
        // the CI smoke gate diffs the two byte for byte.
        println!(
            "{}",
            cppc_serve::runner::tally_result_json(tally).to_string_compact()
        );
        return;
    }
    println!(
        "corrected: {:>6}  ({:.1}%)",
        tally.corrected,
        pct(tally.corrected, tally)
    );
    println!(
        "DUE:       {:>6}  ({:.1}%)",
        tally.due,
        pct(tally.due, tally)
    );
    println!(
        "SDC:       {:>6}  ({:.1}%)",
        tally.sdc,
        pct(tally.sdc, tally)
    );
    println!(
        "masked:    {:>6}  ({:.1}%)",
        tally.masked,
        pct(tally.masked, tally)
    );
}

/// `campaign`
pub fn campaign(args: &ParsedArgs) -> CliResult {
    // `--scheme <name>` alone selects the scheme-zoo campaign.
    let default_kind = if args.get("scheme").is_some() {
        "scheme"
    } else {
        "inject"
    };
    let kind = args.get_or("kind", default_kind);
    let threads: usize = args.get_parsed("threads", 0)?; // 0 = all CPUs
    let trials: u64 = args.get_parsed("trials", 2000)?;
    let seed: u64 = args.get_parsed("seed", 0xC11)?;
    let shard_size: u64 = args.get_parsed("shard-size", cppc_campaign::DEFAULT_SHARD_SIZE)?;
    let batch: usize = args.get_parsed("batch", 1)?;
    let json = args.get_flag("json");
    let ckpt = CheckpointArgs::from_args(args)?;

    let cfg = CampaignConfig::new(seed, trials)
        .threads(threads)
        .shard_size(shard_size);
    let banner = format!(
        "campaign: kind={kind}  trials={trials}  seed={seed:#x}  threads={}  checkpoint={}",
        cfg.resolved_threads(),
        ckpt.path.unwrap_or("none"),
    );
    if json {
        eprintln!("{banner}");
    } else {
        println!("{banner}");
    }

    match kind {
        "inject" => {
            let config = parse_config(args.get_or("config", "paper"))?;
            let fault = parse_fault(args.get_or("fault", "4x4"))?;
            let report: CampaignReport<OutcomeTally> = run_engine_campaign(
                &cfg,
                &ckpt,
                inject_experiment(inject_geometry(), config, fault),
            )?;
            print_tally(&report, json);
        }
        "scheme" => {
            let scheme = parse_scheme(args.get_or("scheme", "cppc"))?;
            let config = parse_config(args.get_or("config", "paper"))?;
            let fault = parse_fault(args.get_or("fault", "4x4"))?;
            let report: CampaignReport<OutcomeTally> =
                run_engine_campaign(&cfg, &ckpt, scheme_experiment(scheme, config, fault))?;
            print_tally(&report, json);
        }
        "mbe" => {
            // `--batch > 1` routes through the cross-trial batched
            // executor; results are bit-identical to `--batch 1`.
            let report: CampaignReport<OutcomeTally> =
                run_engine_campaign_exec(&cfg, &ckpt, cppc_bench::mbe::MbeBatchExec::solid(batch))?;
            print_tally(&report, json);
        }
        "sleep" => {
            let millis: u64 = args.get_parsed("sleep-ms", 0)?;
            let report: CampaignReport<OutcomeTally> =
                run_engine_campaign(&cfg, &ckpt, sleep_experiment(millis))?;
            print_tally(&report, json);
        }
        "trace" => {
            use cppc_bench::experiments::{load_trace, trace_experiment};
            let path = args
                .get("trace")
                .ok_or("--kind trace requires --trace <file>")?;
            let trace = load_trace(path)?;
            let report: CampaignReport<OutcomeTally> =
                run_engine_campaign(&cfg, &ckpt, trace_experiment(&trace))?;
            print_tally(&report, json);
        }
        "montecarlo" => {
            use cppc_reliability::montecarlo::{
                analytic_mttf_hours, simulate_trial_into, MonteCarloAccumulator, MonteCarloConfig,
            };
            let mc_cfg = MonteCarloConfig {
                faults_per_hour: args.get_parsed("rate", 40.0)?,
                domains: args.get_parsed("domains", 8)?,
                tavg_hours: args.get_parsed("tavg", 0.0004)?,
                trials: u32::try_from(trials).map_err(|_| "too many trials for montecarlo")?,
            };
            // Same closure shape as the service runner (scratch reuse),
            // so a job's exact result document matches `--json` here.
            std::thread_local! {
                static LAST_FAULT: std::cell::RefCell<Vec<f64>> =
                    const { std::cell::RefCell::new(Vec::new()) };
            }
            let report: CampaignReport<MonteCarloAccumulator> =
                run_engine_campaign(&cfg, &ckpt, |rng: &mut StdRng, _trial| {
                    LAST_FAULT.with(|s| simulate_trial_into(&mc_cfg, rng, &mut s.borrow_mut()))
                })?;
            shard_summary(&report, json);
            if json {
                println!(
                    "{}",
                    cppc_serve::runner::montecarlo_result_json(&report.result).to_string_compact()
                );
            } else {
                let mc = report.result.finish();
                println!(
                    "  simulated: {:.2} h  (+/- {:.2})",
                    mc.mttf_hours, mc.std_error_hours
                );
                println!("  analytic:  {:.2} h", analytic_mttf_hours(&mc_cfg));
            }
        }
        other => {
            return Err(format!(
                "unknown kind '{other}' (use inject|scheme|montecarlo|mbe|sleep|trace)"
            )
            .into())
        }
    }
    Ok(())
}

/// `mttf`
pub fn mttf(args: &ParsedArgs) -> CliResult {
    let level = args.get_or("level", "l1");
    let fit: f64 = args.get_parsed("fit", 0.001)?;
    let avf: f64 = args.get_parsed("avf", 0.7)?;
    let mut params = match level {
        "l1" => ReliabilityParams::paper_l1(),
        "l2" => ReliabilityParams::paper_l2(),
        other => return Err(format!("unknown level '{other}' (use l1|l2)").into()),
    };
    params.rate = SeuRate::from_fit_per_bit(fit);
    params.avf = avf;

    println!("MTTF at the paper's {level} point ({fit} FIT/bit, AVF {avf}):");
    println!(
        "  1D parity: {:>12.3e} years",
        mttf_one_dim_parity_years(&params)
    );
    println!("  CPPC:      {:>12.3e} years", mttf_cppc_years(&params, 8));
    let secded_bits = if level == "l1" { 64.0 } else { 256.0 };
    println!(
        "  SECDED:    {:>12.3e} years",
        mttf_secded_years(&params, secded_bits)
    );
    Ok(())
}

/// Which on-disk trace format a file holds, judged from its first
/// bytes: the binary magic, the text header, or (failing both) the
/// Dinero `din` layout, which has no signature of its own.
fn sniff_trace_format(path: &str) -> Result<&'static str, Box<dyn Error>> {
    use std::io::Read;
    let mut head = [0u8; 64];
    let mut f = std::fs::File::open(path).map_err(|e| format!("cannot open '{path}': {e}"))?;
    let n = f.read(&mut head)?;
    let head = &head[..n];
    if head.starts_with(&cppc_workloads::binfmt::MAGIC) {
        return Ok("bin");
    }
    if head.starts_with(cppc_workloads::trace_io::HEADER.as_bytes()) {
        return Ok("text");
    }
    Ok("din")
}

/// Loads a whole trace file into memory as ops, in any of the three
/// supported formats.
fn load_trace_ops(
    path: &str,
    format: &str,
) -> Result<Vec<cppc_cache_sim::hierarchy::MemOp>, Box<dyn Error>> {
    use std::io::BufReader;
    let open = || -> Result<std::fs::File, Box<dyn Error>> {
        Ok(std::fs::File::open(path).map_err(|e| format!("cannot open '{path}': {e}"))?)
    };
    Ok(match format {
        "text" => cppc_workloads::read_trace(BufReader::new(open()?))?,
        // No BufReader: the binary reader does its own chunked buffering.
        "bin" => cppc_workloads::read_bin_trace(open()?)?,
        "din" => cppc_workloads::read_din_trace(BufReader::new(open()?))?,
        other => return Err(format!("unknown trace format '{other}' (use text|bin|din)").into()),
    })
}

/// `trace` / `trace record`
pub fn trace(args: &ParsedArgs) -> CliResult {
    use cppc_workloads::{write_trace, BinTraceWriter, TraceGenerator};
    let bench = args.get_or("bench", "gcc");
    let ops: usize = args.get_parsed("ops", 100_000)?;
    let format = args.get_or("format", "text");
    let default_out = if format == "bin" {
        "trace.cppct"
    } else {
        "trace.txt"
    };
    let out_path = args.get_or("out", default_out).to_string();
    let seed: u64 = args.get_parsed("seed", 42)?;
    let profiles = spec2000_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.name == bench)
        .ok_or_else(|| format!("unknown benchmark '{bench}' (see `benchmarks`)"))?;
    let generated = TraceGenerator::new(profile, seed).take(ops);
    let n = match format {
        "text" => {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&out_path)?);
            write_trace(&mut file, generated)?
        }
        "bin" => {
            let file = std::io::BufWriter::new(std::fs::File::create(&out_path)?);
            let mut writer = BinTraceWriter::new(file)?;
            for op in generated {
                writer.push(op)?;
            }
            usize::try_from(writer.finish()?).unwrap_or(usize::MAX)
        }
        other => return Err(format!("unknown format '{other}' (use text|bin)").into()),
    };
    println!("wrote {n} operations of '{bench}' (seed {seed}, {format}) to {out_path}");
    Ok(())
}

/// `trace convert` — whole-file conversion between the text v1, binary
/// v1 and Dinero `din` formats. The input format is sniffed unless
/// `--from` pins it (a `din` file has no signature, so sniffing falls
/// back to it only when neither magic matches).
pub fn trace_convert(args: &ParsedArgs) -> CliResult {
    use std::io::Write;
    let in_path = args.get("in").ok_or("missing --in <path>")?;
    let out_path = args.get("out").ok_or("missing --out <path>")?;
    let from = match args.get("from") {
        Some(f) => f.to_string(),
        None => sniff_trace_format(in_path)?.to_string(),
    };
    let to = args.get_or("to", "bin");
    let _span = cppc_workloads::obs::TRACE_CONVERT.start();
    let ops = load_trace_ops(in_path, &from)?;
    match to {
        "text" => {
            let mut out = std::io::BufWriter::new(std::fs::File::create(out_path)?);
            cppc_workloads::write_trace(&mut out, ops.iter().copied())?;
            out.flush()?;
        }
        "bin" => {
            cppc_workloads::binfmt::write_bin_trace_file(out_path, &ops)?;
        }
        other => return Err(format!("unknown output format '{other}' (use text|bin)").into()),
    }
    cppc_workloads::obs::TRACE_OPS_CONVERTED.add(ops.len() as u64);
    println!(
        "converted {} operations: {in_path} ({from}) -> {out_path} ({to})",
        ops.len()
    );
    Ok(())
}

/// `trace info` — format, declared and actual op counts, and the
/// load/store mix of a trace file.
pub fn trace_info(args: &ParsedArgs) -> CliResult {
    use cppc_cache_sim::hierarchy::MemOp;
    let path = args.get("in").ok_or("missing --in <path>")?;
    let format = sniff_trace_format(path)?;
    let file_bytes = std::fs::metadata(path)?.len();
    let declared: Option<u64> = if format == "bin" {
        cppc_workloads::BinTraceReader::open(path)?.declared_ops()
    } else {
        None
    };
    let ops = load_trace_ops(path, format)?;
    let (mut loads, mut stores, mut byte_stores) = (0u64, 0u64, 0u64);
    for op in &ops {
        match op {
            MemOp::Load(_) => loads += 1,
            MemOp::Store(..) => stores += 1,
            MemOp::StoreByte(..) => byte_stores += 1,
        }
    }
    println!("{path}: {format} trace, {file_bytes} bytes");
    match declared {
        Some(n) => println!("  declared ops: {n}"),
        None if format == "bin" => println!("  declared ops: unknown (unfinished writer)"),
        None => {}
    }
    println!("  ops:          {}", ops.len());
    println!("  loads:        {loads}");
    println!("  stores:       {stores}");
    println!("  byte stores:  {byte_stores}");
    Ok(())
}

/// `trace bench` — quick ops/sec probe of a trace file: the
/// materialize-then-replay leg (full decode into a `SharedTrace`, then
/// one batched drive) against the streaming leg (chunked
/// `BinTraceReader` decode feeding the hierarchy as it goes; binary
/// traces only). Both legs include the file I/O, and the hierarchy
/// digests are asserted identical.
pub fn trace_bench(args: &ParsedArgs) -> CliResult {
    use cppc_bench::experiments::{load_trace, trace_digest, trace_hierarchy};
    let path = args.get("in").ok_or("missing --in <path>")?;
    let reps: usize = args.get_parsed("reps", 3)?;
    let reps = reps.max(1);
    let format = sniff_trace_format(path)?;

    let mut materialize_best = f64::INFINITY;
    let mut ops_count = 0usize;
    let mut digest = 0u64;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let trace = load_trace(path)?;
        let batch = trace.batch();
        let mut h = trace_hierarchy();
        h.run_batch(&batch);
        let dt = t0.elapsed().as_secs_f64();
        ops_count = batch.len();
        digest = trace_digest(&h);
        materialize_best = materialize_best.min(dt);
    }
    let materialize_rate = ops_count as f64 / materialize_best;
    println!("{path}: {ops_count} ops ({format}), best of {reps}");
    println!("  materialize: {materialize_rate:>12.0} ops/s");

    if format == "bin" {
        let mut streaming_best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let mut reader = cppc_workloads::BinTraceReader::open(path)?;
            let mut h = trace_hierarchy();
            let mut batch = cppc_workloads::OpBatch::new();
            cppc_workloads::binfmt::drive(&mut reader, &mut h, &mut batch)?;
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(
                trace_digest(&h),
                digest,
                "streaming drive diverged from materialized drive"
            );
            streaming_best = streaming_best.min(dt);
        }
        let streaming_rate = ops_count as f64 / streaming_best;
        println!("  streaming:   {streaming_rate:>12.0} ops/s");
        println!(
            "  speedup:     {:>12.2}x",
            streaming_rate / materialize_rate
        );
    }
    Ok(())
}

/// `montecarlo`
pub fn montecarlo(args: &ParsedArgs) -> CliResult {
    use cppc_reliability::montecarlo::{
        analytic_mttf_hours, simulate_double_fault_mttf, MonteCarloConfig,
    };
    let cfg = MonteCarloConfig {
        faults_per_hour: args.get_parsed("rate", 40.0)?,
        domains: args.get_parsed("domains", 8)?,
        tavg_hours: args.get_parsed("tavg", 0.0004)?,
        trials: args.get_parsed("trials", 3000)?,
    };
    let mc = simulate_double_fault_mttf(&cfg, 0xCA7);
    let analytic = analytic_mttf_hours(&cfg);
    println!("accelerated double-fault MTTF ({} trials):", cfg.trials);
    println!(
        "  simulated: {:.2} h  (+/- {:.2})",
        mc.mttf_hours, mc.std_error_hours
    );
    println!("  analytic:  {analytic:.2} h");
    println!(
        "  deviation: {:+.1}%   mean faults absorbed per failure: {:.1}",
        (mc.mttf_hours / analytic - 1.0) * 100.0,
        mc.mean_faults_to_failure
    );
    Ok(())
}

/// `coherence`
pub fn coherence(args: &ParsedArgs) -> CliResult {
    use cppc_coherence::{CppcCoherentSystem, SharedTraceGenerator};
    let cores: usize = args.get_parsed("cores", 4)?;
    let ops: usize = args.get_parsed("ops", 100_000)?;
    println!("multiprocessor CPPC: {cores} cores, MSI write-invalidate, {ops} ops\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "sharing", "rbw/store", "dirty-inv", "invariants"
    );
    for sharing_pct in [0u32, 10, 25, 50, 75] {
        let mut sys = CppcCoherentSystem::new(
            cores,
            CacheGeometry::new(32 * 1024, 2, 32)?,
            CacheGeometry::new(1024 * 1024, 4, 32)?,
            CppcConfig::paper(),
            ReplacementPolicy::Lru,
        );
        let generator = SharedTraceGenerator::new(
            cores,
            64 * 1024,
            16 * 1024,
            f64::from(sharing_pct) / 100.0,
            0.35,
            0xC0DE ^ u64::from(sharing_pct),
        );
        let mut stores = 0u64;
        for op in generator.take(ops) {
            if matches!(op, cppc_coherence::CoreOp::Store { .. }) {
                stores += 1;
            }
            sys.step(op).map_err(|e| format!("unexpected DUE: {e}"))?;
        }
        println!(
            "{:>9}% {:>12.4} {:>12} {:>12}",
            sharing_pct,
            sys.total_read_before_writes() as f64 / stores as f64,
            sys.stats().dirty_invalidations,
            if sys.verify_invariants() {
                "ok"
            } else {
                "VIOLATED"
            }
        );
    }
    Ok(())
}

/// `sweep`
pub fn sweep(args: &ParsedArgs) -> CliResult {
    let what = args.get_or("what", "pairs");
    let params = ReliabilityParams::paper_l1();
    match what {
        "pairs" => {
            println!("{:<8} {:>16} {:>12}", "pairs", "alias MTTF (y)", "area ovh");
            for pairs in [1usize, 2, 4, 8] {
                let alias = mttf_aliasing_years(&params, aliasing_vulnerable_bits(pairs));
                let area = AreaModel::cppc(32 * 1024, 8, pairs, 64).overhead_fraction();
                let alias_str = if alias.is_infinite() {
                    "eliminated".to_string()
                } else {
                    format!("{alias:.2e}")
                };
                println!("{pairs:<8} {alias_str:>16} {:>11.2}%", area * 100.0);
            }
        }
        "ways" => {
            println!("{:<8} {:>16} {:>12}", "ways", "MTTF (y)", "area ovh");
            for ways in [1u32, 2, 4, 8] {
                let m = mttf_cppc_years(&params, ways);
                let area = AreaModel::cppc(32 * 1024, ways, 1, 64).overhead_fraction();
                println!("{ways:<8} {m:>16.2e} {:>11.2}%", area * 100.0);
            }
        }
        other => return Err(format!("unknown sweep '{other}' (use pairs|ways)").into()),
    }
    Ok(())
}

/// `repro` — the paper-results reproduction harness (`crates/repro`).
pub fn repro(args: &ParsedArgs) -> CliResult {
    use cppc_repro::{Artifact, RunConfig, Tier};

    let root = PathBuf::from(args.get_or("root", "."));
    let check = args.get_flag("check");
    let update_goldens = args.get_flag("update-goldens");
    let render = args.get_flag("render");
    if check && update_goldens {
        return Err("--check and --update-goldens are mutually exclusive".into());
    }

    if render {
        cppc_repro::write_book(&root)?;
        println!("rendered {}", cppc_repro::book_path(&root).display());
        return Ok(());
    }

    let cfg = RunConfig {
        threads: args.get_parsed("threads", 1)?,
        quick: args.get_flag("quick"),
    };
    let registry = cppc_repro::registry();
    let selection: Vec<&Artifact> = match args.get("artifact") {
        Some(name) => vec![cppc_repro::find(name).ok_or_else(|| {
            let known: Vec<&str> = registry.iter().map(|a| a.name).collect();
            format!("unknown artifact '{name}' (known: {})", known.join(", "))
        })?],
        None if args.get_flag("all") => registry.iter().collect(),
        // Default scope is the fast tier: the CI smoke set.
        None => registry.iter().filter(|a| a.tier == Tier::Fast).collect(),
    };

    let mut failures = Vec::new();
    for a in &selection {
        eprintln!(
            "repro: running {} ({}, tier {}) ...",
            a.name, a.title, a.tier
        );
        let out = cppc_repro::run_artifact(a, &cfg);
        if check {
            let doc = cppc_repro::load_doc(&cppc_repro::json_path(&root, a.name));
            let mut fails = cppc_repro::check_artifact(a, &out, doc.as_ref());
            for f in &fails {
                eprintln!("  FAIL {f}");
            }
            if fails.is_empty() {
                eprintln!("  ok: {} metrics within tolerance", out.metrics.len());
            }
            failures.append(&mut fails);
        } else {
            cppc_repro::write_artifact(&root, a, &cfg, &out, update_goldens)?;
            println!("wrote {}", cppc_repro::json_path(&root, a.name).display());
        }
    }

    if check {
        if failures.is_empty() {
            println!(
                "repro check: {} artifact(s) within golden tolerances",
                selection.len()
            );
            return Ok(());
        }
        return Err(format!("{} golden-gate violation(s)", failures.len()).into());
    }

    cppc_repro::write_book(&root)?;
    println!("wrote {}", cppc_repro::book_path(&root).display());
    Ok(())
}

/// Path of a tier's committed sweep document.
fn explore_json_path(root: &std::path::Path, tier: &str) -> PathBuf {
    root.join("docs")
        .join("results")
        .join(format!("explore_{tier}.json"))
}

/// Loads a committed sweep document, if present and well-formed.
fn explore_doc(root: &std::path::Path, tier: &str) -> Option<cppc_campaign::json::Json> {
    let text = std::fs::read_to_string(explore_json_path(root, tier)).ok()?;
    cppc_campaign::json::Json::parse(&text).ok()
}

/// Re-renders `docs/EXPLORER.md` from the committed tier documents.
fn write_explorer_book(root: &std::path::Path) -> Result<PathBuf, Box<dyn Error>> {
    let quick = explore_doc(root, "quick");
    let full = explore_doc(root, "full");
    let path = root.join("docs").join("EXPLORER.md");
    std::fs::write(
        &path,
        cppc_explore::doc::render(quick.as_ref(), full.as_ref()),
    )
    .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Splits a comma-separated filter list.
fn split_filters(raw: Option<&str>) -> Vec<String> {
    raw.map_or_else(Vec::new, |s| {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(ToString::to_string)
            .collect()
    })
}

/// `explore` — the design-space explorer (`crates/explore`, see
/// docs/EXPLORER.md).
pub fn explore(args: &ParsedArgs) -> CliResult {
    use cppc_explore::{doc, run_sweep, SweepOptions, SweepOutcome, SweepSpec};

    let root = PathBuf::from(args.get_or("root", "."));
    let quick = args.get_flag("quick");
    let check = args.get_flag("check");
    if args.get_flag("render") {
        let path = write_explorer_book(&root)?;
        println!("rendered {}", path.display());
        return Ok(());
    }

    let mut spec = if quick {
        SweepSpec::quick_tier()
    } else {
        SweepSpec::full_tier()
    };
    spec.include = split_filters(args.get("include"));
    spec.exclude = split_filters(args.get("exclude"));
    let filtered = !spec.include.is_empty() || !spec.exclude.is_empty();
    let out_override = args.get("out").map(PathBuf::from);
    if check && (filtered || out_override.is_some()) {
        return Err("--check verifies the canonical tier; drop --include/--exclude/--out".into());
    }
    if filtered {
        if out_override.is_none() {
            return Err(
                "filtered sweeps are side studies; give them a home with --out <path>".into(),
            );
        }
        spec.tier = "custom".to_string();
    }

    let opts = SweepOptions {
        threads: args.get_parsed("threads", 0)?,
        checkpoint_dir: args.get("checkpoint-dir").map(PathBuf::from),
    };
    eprintln!(
        "explore: {} tier, {} configs x {} trials ({} workload ops) ...",
        spec.tier,
        spec.enumerate().len(),
        spec.trials,
        spec.workload_ops
    );
    let points = match run_sweep(&spec, &opts, None)? {
        SweepOutcome::Complete(points) => points,
        SweepOutcome::Interrupted { completed, total } => {
            return Err(format!("sweep interrupted at {completed}/{total} configs").into())
        }
    };
    let document = doc::sweep_doc(&spec, &points);
    let body = doc::pretty(&document);
    let summary = |key: &str| {
        document
            .get("summary")
            .and_then(|s| s.get(key))
            .and_then(cppc_campaign::json::Json::as_u64)
            .unwrap_or(0)
    };

    if check {
        let path = explore_json_path(&root, &spec.tier);
        let regen = format!(
            "cargo run --release -p cppc-cli -- explore{} --root {}",
            if quick { " --quick" } else { "" },
            root.display()
        );
        let committed = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e} (generate it with `{regen}`)", path.display()))?;
        if committed != body {
            return Err(format!(
                "{} is stale: re-running the {} tier produced different bytes; \
                 regenerate with `{regen}`",
                path.display(),
                spec.tier
            )
            .into());
        }
        if summary("frontier_non_cppc") == 0 {
            return Err("frontier degenerated to a CPPC monoculture".into());
        }
        println!(
            "explore check: {} matches ({} configs, frontier {} incl. {} non-CPPC)",
            path.display(),
            summary("configs"),
            summary("frontier_size"),
            summary("frontier_non_cppc"),
        );
        return Ok(());
    }

    let path = out_override.unwrap_or_else(|| explore_json_path(&root, &spec.tier));
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    std::fs::write(&path, &body).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "wrote {} ({} configs, frontier {} incl. {} non-CPPC, {} dominated)",
        path.display(),
        summary("configs"),
        summary("frontier_size"),
        summary("frontier_non_cppc"),
        summary("dominated"),
    );
    // A canonical tier write refreshes the book; side studies (--out)
    // leave the committed documents alone.
    if args.get("out").is_none() {
        let book = write_explorer_book(&root)?;
        println!("rendered {}", book.display());
    }
    Ok(())
}

/// Registers every instrumented subsystem's metric groups, so describe
/// mode and snapshots list them even before any activity. Kept in sync
/// with the `metrics-md` generator binary.
pub fn register_all_metrics() {
    cppc_cache_sim::obs::register_metrics();
    cppc_workloads::obs::register_metrics();
    cppc_core::obs::register_metrics();
    cppc_timing::obs::register_metrics();
    cppc_campaign::obs::register_metrics();
    cppc_repro::obs::register_metrics();
    cppc_serve::obs::register_metrics();
    cppc_bench::obs::register_metrics();
    cppc_explore::obs::register_metrics();
}

/// `stats`
pub fn stats(args: &ParsedArgs) -> CliResult {
    register_all_metrics();
    if args.get_parsed("describe", false)? {
        print!("{}", cppc_obs::reference_markdown());
        return Ok(());
    }

    let bench = args.get_or("bench", "gcc");
    let ops: usize = args.get_parsed("ops", 200_000)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let trials: u64 = args.get_parsed("trials", 200)?;
    let format = args.get_or("format", "table");
    let include_zero: bool = args.get_parsed("all", false)?;
    let tail: usize = args.get_parsed("events", 10)?;

    let profiles = spec2000_profiles();
    let profile = profiles
        .iter()
        .find(|p| p.name == bench)
        .ok_or_else(|| format!("unknown benchmark '{bench}' (see `benchmarks`)"))?;

    // A Figure 10-style run: one functional pass shared by the three
    // protection schemes, so the timing group accumulates a stall-cause
    // breakdown covering each scheme's port-conflict term.
    eprintln!("running {bench} ({ops} ops) across 1D-parity / CPPC / 2D-parity ...");
    let model = TimingModel::new(MachineConfig::table1());
    let base = model.simulate(profile, L1Scheme::OneDimParity, ops, seed);
    for scheme in [L1Scheme::Cppc, L1Scheme::TwoDimParity] {
        let _ = model.breakdown_from_stats(profile, scheme, ops, base.l1_stats, base.l2_stats);
    }

    // A small fault-injection campaign so the recovery engine, register
    // file, campaign scheduler and event ring have something to show.
    eprintln!("running {trials}-trial fault-injection campaign ...");
    let geo = inject_geometry();
    let cfg = CampaignConfig::new(seed, trials);
    let fault = FaultModel::SpatialSquare {
        rows: 4,
        cols: 4,
        density: 1.0,
    };
    let _report: CampaignReport<OutcomeTally> =
        cppc_campaign::run(&cfg, inject_experiment(geo, CppcConfig::paper(), fault));
    eprintln!();

    let groups = cppc_obs::snapshot();
    match format {
        "table" => print!("{}", cppc_obs::render_table(&groups, include_zero)),
        "json" => println!("{}", cppc_obs::render_json(&groups)),
        other => return Err(format!("unknown format '{other}' (use table|json)").into()),
    }

    if tail > 0 && format == "table" {
        let events = cppc_obs::events();
        if !events.is_empty() {
            println!(
                "last {} of {} buffered events:",
                tail.min(events.len()),
                events.len()
            );
            for e in events.iter().rev().take(tail).rev() {
                println!("  #{:<6} {:<22} {}", e.seq, e.label, e.detail);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_command_runs() {
        benchmarks().unwrap();
    }

    #[test]
    fn sweep_commands_run() {
        let pairs = crate::args::ParsedArgs::parse(["sweep".into()]).unwrap();
        sweep(&pairs).unwrap();
        let ways = crate::args::ParsedArgs::parse(["sweep".into(), "--what".into(), "ways".into()])
            .unwrap();
        sweep(&ways).unwrap();
        let bad = crate::args::ParsedArgs::parse(["sweep".into(), "--what".into(), "nope".into()])
            .unwrap();
        assert!(sweep(&bad).is_err());
    }

    #[test]
    fn mttf_command_runs() {
        let a = crate::args::ParsedArgs::parse(["mttf".into()]).unwrap();
        mttf(&a).unwrap();
        let l2 =
            crate::args::ParsedArgs::parse(["mttf".into(), "--level".into(), "l2".into()]).unwrap();
        mttf(&l2).unwrap();
        let bad =
            crate::args::ParsedArgs::parse(["mttf".into(), "--level".into(), "l9".into()]).unwrap();
        assert!(mttf(&bad).is_err());
    }
}
