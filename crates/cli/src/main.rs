//! `cppc-cli` — command-line driver for the CPPC reproduction.
//!
//! ```console
//! $ cppc-cli help
//! $ cppc-cli simulate --bench mcf --ops 200000
//! $ cppc-cli inject --config paper --fault 4x4 --trials 500
//! $ cppc-cli mttf --level l1
//! $ cppc-cli sweep --what pairs
//! $ cppc-cli benchmarks
//! $ cppc-cli repro --all --threads 1
//! ```

mod args;
mod commands;

use args::ParsedArgs;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_help();
            std::process::exit(2);
        }
    };
    let result = match parsed.command() {
        "help" | "-h" | "--help" => {
            commands::print_help();
            Ok(())
        }
        "benchmarks" => commands::benchmarks(),
        "simulate" => commands::simulate(&parsed),
        "inject" => commands::inject(&parsed),
        "campaign" => commands::campaign(&parsed),
        "mttf" => commands::mttf(&parsed),
        "sweep" => commands::sweep(&parsed),
        "trace" => commands::trace(&parsed),
        "montecarlo" => commands::montecarlo(&parsed),
        "coherence" => commands::coherence(&parsed),
        "repro" => commands::repro(&parsed),
        "stats" => commands::stats(&parsed),
        other => {
            eprintln!("error: unknown subcommand '{other}'");
            commands::print_help();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
