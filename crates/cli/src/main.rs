//! `cppc-cli` — command-line driver for the CPPC reproduction.
//!
//! ```console
//! $ cppc-cli help
//! $ cppc-cli simulate --bench mcf --ops 200000
//! $ cppc-cli inject --config paper --fault 4x4 --trials 500
//! $ cppc-cli mttf --level l1
//! $ cppc-cli sweep --what pairs
//! $ cppc-cli benchmarks
//! $ cppc-cli repro --all --threads 1
//! $ cppc-cli serve --data-dir /var/lib/cppc --socket /tmp/cppc.sock
//! $ cppc-cli submit --kind mbe --trials 2000 --watch
//! ```

mod args;
mod commands;
mod serve_cmd;

use args::ParsedArgs;

/// The options each subcommand accepts. Anything else is rejected up
/// front with an error naming the flag, so a typo'd `--trails` cannot
/// silently run a default campaign.
const COMMAND_OPTIONS: &[(&str, &[&str])] = &[
    ("benchmarks", &[]),
    ("simulate", &["bench", "ops", "seed"]),
    ("inject", &["config", "fault", "trials"]),
    (
        "campaign",
        &[
            "kind",
            "scheme",
            "trials",
            "seed",
            "threads",
            "shard-size",
            "batch",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "json",
            "config",
            "fault",
            "rate",
            "domains",
            "tavg",
            "sleep-ms",
            "trace",
        ],
    ),
    ("mttf", &["level", "fit", "avf"]),
    ("sweep", &["what"]),
    // Bare `trace` stays a `trace record` alias, so existing scripts
    // keep working.
    ("trace", &["bench", "ops", "out", "seed", "format"]),
    ("trace record", &["bench", "ops", "out", "seed", "format"]),
    ("trace convert", &["in", "out", "from", "to"]),
    ("trace info", &["in"]),
    ("trace bench", &["in", "reps"]),
    ("montecarlo", &["rate", "domains", "tavg", "trials"]),
    ("coherence", &["cores", "ops"]),
    (
        "repro",
        &[
            "artifact",
            "all",
            "check",
            "update-goldens",
            "render",
            "threads",
            "quick",
            "root",
        ],
    ),
    (
        "explore",
        &[
            "quick",
            "check",
            "render",
            "threads",
            "checkpoint-dir",
            "include",
            "exclude",
            "out",
            "root",
        ],
    ),
    (
        "stats",
        &[
            "bench", "ops", "seed", "trials", "format", "all", "events", "describe",
        ],
    ),
    (
        "serve",
        &[
            "data-dir",
            "socket",
            "tcp",
            "queue-cap",
            "max-threads",
            "checkpoint-every",
        ],
    ),
    (
        "submit",
        &[
            "socket",
            "tcp",
            "tenant",
            "priority",
            "watch",
            "kind",
            "scheme",
            "trials",
            "seed",
            "threads",
            "shard-size",
            "batch",
            "config",
            "fault",
            "rate",
            "domains",
            "tavg",
            "sleep-ms",
            "trace",
            "quick",
        ],
    ),
    ("status", &["socket", "tcp", "id"]),
    ("result", &["socket", "tcp", "id"]),
    ("cancel", &["socket", "tcp", "id"]),
    ("list", &["socket", "tcp", "tenant"]),
    ("watch", &["socket", "tcp", "id"]),
    ("metrics", &["socket", "tcp"]),
    ("shutdown", &["socket", "tcp"]),
];

/// Folds a `trace <subcommand>` pair into the single composite command
/// token the parser expects (`["trace", "convert", ...]` becomes
/// `["trace convert", ...]`). A bare `trace` — or `trace` followed by
/// an option — is left alone and keeps its historical record meaning.
fn merge_composite(mut argv: Vec<String>) -> Vec<String> {
    const TRACE_SUBCOMMANDS: &[&str] = &["record", "convert", "info", "bench"];
    if argv.first().is_some_and(|c| c == "trace")
        && argv
            .get(1)
            .is_some_and(|s| TRACE_SUBCOMMANDS.contains(&s.as_str()))
    {
        let sub = argv.remove(1);
        argv[0] = format!("trace {sub}");
    }
    argv
}

fn main() {
    let argv = merge_composite(std::env::args().skip(1).collect());
    let parsed = match ParsedArgs::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_help();
            std::process::exit(2);
        }
    };
    if let Some((_, allowed)) = COMMAND_OPTIONS
        .iter()
        .find(|(name, _)| *name == parsed.command())
    {
        if let Err(e) = parsed.reject_unknown(allowed) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let result = match parsed.command() {
        "help" | "-h" | "--help" => {
            commands::print_help();
            Ok(())
        }
        "benchmarks" => commands::benchmarks(),
        "simulate" => commands::simulate(&parsed),
        "inject" => commands::inject(&parsed),
        "campaign" => commands::campaign(&parsed),
        "mttf" => commands::mttf(&parsed),
        "sweep" => commands::sweep(&parsed),
        "trace" | "trace record" => commands::trace(&parsed),
        "trace convert" => commands::trace_convert(&parsed),
        "trace info" => commands::trace_info(&parsed),
        "trace bench" => commands::trace_bench(&parsed),
        "montecarlo" => commands::montecarlo(&parsed),
        "coherence" => commands::coherence(&parsed),
        "repro" => commands::repro(&parsed),
        "explore" => commands::explore(&parsed),
        "stats" => commands::stats(&parsed),
        "serve" => serve_cmd::serve_daemon(&parsed),
        "submit" => serve_cmd::submit(&parsed),
        "status" => serve_cmd::status(&parsed),
        "result" => serve_cmd::result(&parsed),
        "cancel" => serve_cmd::cancel(&parsed),
        "list" => serve_cmd::list(&parsed),
        "watch" => serve_cmd::watch(&parsed),
        "metrics" => serve_cmd::metrics(&parsed),
        "shutdown" => serve_cmd::shutdown(&parsed),
        other => {
            eprintln!("error: unknown subcommand '{other}'");
            commands::print_help();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(items: &[&str]) -> Vec<String> {
        items.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn composite_trace_commands_merge() {
        for sub in ["record", "convert", "info", "bench"] {
            let merged = merge_composite(words(&["trace", sub, "--in", "t.cppct"]));
            assert_eq!(merged[0], format!("trace {sub}"));
            assert_eq!(&merged[1..], &words(&["--in", "t.cppct"])[..]);
        }
    }

    #[test]
    fn bare_trace_and_other_commands_pass_through() {
        // Historical form: `trace --bench gcc` still means record.
        let bare = merge_composite(words(&["trace", "--bench", "gcc"]));
        assert_eq!(bare, words(&["trace", "--bench", "gcc"]));
        let other = merge_composite(words(&["campaign", "--kind", "trace"]));
        assert_eq!(other, words(&["campaign", "--kind", "trace"]));
        assert!(merge_composite(Vec::new()).is_empty());
    }

    #[test]
    fn trace_subcommands_have_option_allowlists() {
        for cmd in [
            "trace",
            "trace record",
            "trace convert",
            "trace info",
            "trace bench",
        ] {
            assert!(
                COMMAND_OPTIONS.iter().any(|(name, _)| *name == cmd),
                "missing COMMAND_OPTIONS entry for '{cmd}'"
            );
        }
    }

    #[test]
    fn trace_subcommands_reject_unknown_options() {
        let argv = merge_composite(words(&["trace", "convert", "--input", "t.txt"]));
        let parsed = ParsedArgs::parse(argv).unwrap();
        assert_eq!(parsed.command(), "trace convert");
        let (_, allowed) = COMMAND_OPTIONS
            .iter()
            .find(|(name, _)| *name == "trace convert")
            .unwrap();
        let err = parsed.reject_unknown(allowed).unwrap_err();
        assert!(err.to_string().contains("--input"), "{err}");

        let ok = ParsedArgs::parse(merge_composite(words(&[
            "trace", "convert", "--in", "a", "--out", "b", "--from", "din", "--to", "bin",
        ])))
        .unwrap();
        assert!(ok.reject_unknown(allowed).is_ok());
    }

    #[test]
    fn campaign_and_submit_accept_trace_kind_flags() {
        for cmd in ["campaign", "submit"] {
            let (_, allowed) = COMMAND_OPTIONS
                .iter()
                .find(|(name, _)| *name == cmd)
                .unwrap();
            assert!(allowed.contains(&"trace"), "'{cmd}' lacks --trace");
        }
    }
}
