//! `cppc-cli` — command-line driver for the CPPC reproduction.
//!
//! ```console
//! $ cppc-cli help
//! $ cppc-cli simulate --bench mcf --ops 200000
//! $ cppc-cli inject --config paper --fault 4x4 --trials 500
//! $ cppc-cli mttf --level l1
//! $ cppc-cli sweep --what pairs
//! $ cppc-cli benchmarks
//! $ cppc-cli repro --all --threads 1
//! $ cppc-cli serve --data-dir /var/lib/cppc --socket /tmp/cppc.sock
//! $ cppc-cli submit --kind mbe --trials 2000 --watch
//! ```

mod args;
mod commands;
mod serve_cmd;

use args::ParsedArgs;

/// The options each subcommand accepts. Anything else is rejected up
/// front with an error naming the flag, so a typo'd `--trails` cannot
/// silently run a default campaign.
const COMMAND_OPTIONS: &[(&str, &[&str])] = &[
    ("benchmarks", &[]),
    ("simulate", &["bench", "ops", "seed"]),
    ("inject", &["config", "fault", "trials"]),
    (
        "campaign",
        &[
            "kind",
            "scheme",
            "trials",
            "seed",
            "threads",
            "shard-size",
            "batch",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "json",
            "config",
            "fault",
            "rate",
            "domains",
            "tavg",
            "sleep-ms",
        ],
    ),
    ("mttf", &["level", "fit", "avf"]),
    ("sweep", &["what"]),
    ("trace", &["bench", "ops", "out", "seed"]),
    ("montecarlo", &["rate", "domains", "tavg", "trials"]),
    ("coherence", &["cores", "ops"]),
    (
        "repro",
        &[
            "artifact",
            "all",
            "check",
            "update-goldens",
            "render",
            "threads",
            "quick",
            "root",
        ],
    ),
    (
        "stats",
        &[
            "bench", "ops", "seed", "trials", "format", "all", "events", "describe",
        ],
    ),
    (
        "serve",
        &[
            "data-dir",
            "socket",
            "tcp",
            "queue-cap",
            "max-threads",
            "checkpoint-every",
        ],
    ),
    (
        "submit",
        &[
            "socket",
            "tcp",
            "tenant",
            "priority",
            "watch",
            "kind",
            "scheme",
            "trials",
            "seed",
            "threads",
            "shard-size",
            "batch",
            "config",
            "fault",
            "rate",
            "domains",
            "tavg",
            "sleep-ms",
        ],
    ),
    ("status", &["socket", "tcp", "id"]),
    ("result", &["socket", "tcp", "id"]),
    ("cancel", &["socket", "tcp", "id"]),
    ("list", &["socket", "tcp", "tenant"]),
    ("watch", &["socket", "tcp", "id"]),
    ("metrics", &["socket", "tcp"]),
    ("shutdown", &["socket", "tcp"]),
];

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_help();
            std::process::exit(2);
        }
    };
    if let Some((_, allowed)) = COMMAND_OPTIONS
        .iter()
        .find(|(name, _)| *name == parsed.command())
    {
        if let Err(e) = parsed.reject_unknown(allowed) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    let result = match parsed.command() {
        "help" | "-h" | "--help" => {
            commands::print_help();
            Ok(())
        }
        "benchmarks" => commands::benchmarks(),
        "simulate" => commands::simulate(&parsed),
        "inject" => commands::inject(&parsed),
        "campaign" => commands::campaign(&parsed),
        "mttf" => commands::mttf(&parsed),
        "sweep" => commands::sweep(&parsed),
        "trace" => commands::trace(&parsed),
        "montecarlo" => commands::montecarlo(&parsed),
        "coherence" => commands::coherence(&parsed),
        "repro" => commands::repro(&parsed),
        "stats" => commands::stats(&parsed),
        "serve" => serve_cmd::serve_daemon(&parsed),
        "submit" => serve_cmd::submit(&parsed),
        "status" => serve_cmd::status(&parsed),
        "result" => serve_cmd::result(&parsed),
        "cancel" => serve_cmd::cancel(&parsed),
        "list" => serve_cmd::list(&parsed),
        "watch" => serve_cmd::watch(&parsed),
        "metrics" => serve_cmd::metrics(&parsed),
        "shutdown" => serve_cmd::shutdown(&parsed),
        other => {
            eprintln!("error: unknown subcommand '{other}'");
            commands::print_help();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
