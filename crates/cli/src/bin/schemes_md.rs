//! Generates `docs/SCHEMES.md` from the protection-scheme descriptors.
//!
//! Prints the catalog to stdout; the checked-in file is produced with
//!
//! ```console
//! $ cargo run -p cppc-cli --bin schemes-md > docs/SCHEMES.md
//! ```
//!
//! and `ci.sh` regenerates it and fails on drift, so the catalog can
//! never fall out of sync with the `SchemeDescriptor`s declared in code
//! or with the committed `scheme_comparison` artifact document.
//!
//! An optional first argument overrides the repository root (default
//! `.`) used to locate `docs/results/scheme_comparison.json`.

use std::path::Path;

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let doc = cppc_repro::load_doc(&cppc_repro::json_path(
        Path::new(&root),
        "scheme_comparison",
    ));
    print!("{}", cppc_repro::schemes_md::render(doc.as_ref()));
}
