//! Generates `docs/EXPLORER.md` from the committed sweep documents.
//!
//! Prints the book to stdout; the checked-in file is produced with
//!
//! ```console
//! $ cargo run -p cppc-cli --bin explorer-md > docs/EXPLORER.md
//! ```
//!
//! and `ci.sh` regenerates it and fails on drift, so the book can
//! never fall out of sync with the committed
//! `docs/results/explore_*.json` documents (which `cppc-cli explore
//! --quick --check` in turn pins to the code). Rendering reads only
//! the documents — no simulation.
//!
//! An optional first argument overrides the repository root (default
//! `.`) used to locate `docs/results/explore_{quick,full}.json`.

use cppc_campaign::json::Json;
use std::path::Path;

fn load(root: &Path, tier: &str) -> Option<Json> {
    let path = root
        .join("docs")
        .join("results")
        .join(format!("explore_{tier}.json"));
    Json::parse(&std::fs::read_to_string(path).ok()?).ok()
}

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = Path::new(&root);
    let quick = load(root, "quick");
    let full = load(root, "full");
    print!(
        "{}",
        cppc_explore::doc::render(quick.as_ref(), full.as_ref())
    );
}
