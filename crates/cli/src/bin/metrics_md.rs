//! Generates `docs/METRICS.md` from the `cppc-obs` metric registry.
//!
//! Prints the reference to stdout; the checked-in file is produced with
//!
//! ```console
//! $ cargo run -p cppc-cli --bin metrics-md > docs/METRICS.md
//! ```
//!
//! and `ci.sh` regenerates it and fails on drift, so the document can
//! never fall out of sync with the metrics declared in code.

fn main() {
    // Touch every instrumented crate so its groups self-register; the
    // reference lists metadata only and works with `obs` off too.
    cppc_cache_sim::obs::register_metrics();
    cppc_workloads::obs::register_metrics();
    cppc_core::obs::register_metrics();
    cppc_timing::obs::register_metrics();
    cppc_campaign::obs::register_metrics();
    cppc_campaign::snapshot::register_metrics();
    cppc_repro::obs::register_metrics();
    cppc_serve::obs::register_metrics();
    cppc_bench::obs::register_metrics();
    cppc_explore::obs::register_metrics();
    print!("{}", cppc_obs::reference_markdown());
}
