//! Tiny dependency-free argument parsing: `--key value` pairs, bare
//! `--flag` switches and positional subcommands.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: one subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    command: String,
    options: HashMap<String, String>,
}

/// Error produced by parsing or option lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// A stray positional argument appeared after the subcommand.
    UnexpectedPositional(String),
    /// An option's value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// The offending value.
        value: String,
    },
    /// An option the subcommand does not define (typo protection: a
    /// misspelled `--trails` must not silently fall back to defaults).
    UnknownOption {
        /// The rejected option name (without the `--`).
        option: String,
        /// The subcommand it was given to.
        command: String,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "no subcommand given (try `help`)"),
            ArgsError::UnexpectedPositional(p) => {
                write!(f, "unexpected positional argument '{p}'")
            }
            ArgsError::BadValue { option, value } => {
                write!(f, "cannot parse '{value}' for --{option}")
            }
            ArgsError::UnknownOption { option, command } => {
                write!(
                    f,
                    "unknown option '--{option}' for '{command}' (see `help`)"
                )
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl ParsedArgs {
    /// Parses `args` (without the program name).
    ///
    /// A `--key` followed by a non-`--` token takes that token as its
    /// value; a `--key` followed by another option or the end of the
    /// line is a bare switch and gets the value `"true"` (see
    /// [`ParsedArgs::get_flag`]).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgsError> {
        let mut iter = args.into_iter().peekable();
        let command = iter.next().ok_or(ArgsError::MissingCommand)?;
        let mut options = HashMap::new();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                options.insert(key.to_string(), value);
            } else {
                return Err(ArgsError::UnexpectedPositional(arg));
            }
        }
        Ok(ParsedArgs { command, options })
    }

    /// The subcommand.
    #[must_use]
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A string option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Whether a bare switch (`--check`) or explicit `--check true` was
    /// given.
    #[must_use]
    pub fn get_flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }

    /// Rejects any option outside `allowed`, naming the first offender
    /// (alphabetically, so the error is deterministic). Every
    /// subcommand calls this with its declared option list before
    /// doing work.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::UnknownOption`] for the first option not in
    /// `allowed`.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        let mut unknown: Vec<&str> = self
            .options
            .keys()
            .map(String::as_str)
            .filter(|k| !allowed.contains(k))
            .collect();
        unknown.sort_unstable();
        match unknown.first() {
            None => Ok(()),
            Some(option) => Err(ArgsError::UnknownOption {
                option: (*option).to_string(),
                command: self.command.clone(),
            }),
        }
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when present but unparseable.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                option: key.to_string(),
                value: v.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ParsedArgs, ArgsError> {
        ParsedArgs::parse(words.iter().map(ToString::to_string))
    }

    #[test]
    fn basic_parse() {
        let a = parse(&["simulate", "--bench", "gcc", "--ops", "1000"]).unwrap();
        assert_eq!(a.command(), "simulate");
        assert_eq!(a.get("bench"), Some("gcc"));
        assert_eq!(a.get_parsed("ops", 0usize).unwrap(), 1000);
        assert_eq!(a.get_parsed("missing", 7usize).unwrap(), 7);
        assert_eq!(a.get_or("scheme", "paper"), "paper");
    }

    #[test]
    fn bare_flags() {
        let a = parse(&["repro", "--check", "--artifact", "table3_mttf", "--all"]).unwrap();
        assert!(a.get_flag("check"));
        assert!(a.get_flag("all"));
        assert!(!a.get_flag("render"));
        assert_eq!(a.get("artifact"), Some("table3_mttf"));

        // Explicit values still work for switches.
        let b = parse(&["repro", "--check", "true"]).unwrap();
        assert!(b.get_flag("check"));
    }

    #[test]
    fn errors() {
        assert_eq!(parse(&[]), Err(ArgsError::MissingCommand));
        assert_eq!(
            parse(&["x", "stray"]),
            Err(ArgsError::UnexpectedPositional("stray".into()))
        );
        let a = parse(&["x", "--n", "abc"]).unwrap();
        assert!(matches!(
            a.get_parsed("n", 1usize),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn reject_unknown_accepts_declared_options() {
        // Bare switches and value options mixed in one line.
        let a = parse(&["repro", "--check", "--threads", "2", "--quick"]).unwrap();
        assert_eq!(
            a.reject_unknown(&["check", "threads", "quick", "all"]),
            Ok(())
        );
    }

    #[test]
    fn reject_unknown_names_the_flag_and_command() {
        let a = parse(&["campaign", "--trails", "100"]).unwrap();
        let err = a.reject_unknown(&["trials", "seed"]).unwrap_err();
        assert_eq!(
            err,
            ArgsError::UnknownOption {
                option: "trails".into(),
                command: "campaign".into(),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("--trails"), "{msg}");
        assert!(msg.contains("campaign"), "{msg}");
    }

    #[test]
    fn reject_unknown_bare_flag_mixes() {
        // A typo'd bare switch between valid value options.
        let a = parse(&[
            "serve",
            "--socket",
            "/tmp/s.sock",
            "--verbos",
            "--queue-cap",
            "4",
        ])
        .unwrap();
        let err = a.reject_unknown(&["socket", "queue-cap"]).unwrap_err();
        assert!(matches!(
            &err,
            ArgsError::UnknownOption { option, .. } if option == "verbos"
        ));
        // A bare switch swallowing nothing: the next --option stays an
        // option, so it is validated too.
        let b = parse(&["watch", "--json", "--id", "3"]).unwrap();
        assert_eq!(b.get("id"), Some("3"));
        assert!(b.get_flag("json"));
        assert!(b.reject_unknown(&["id"]).is_err());
        assert_eq!(b.reject_unknown(&["id", "json"]), Ok(()));
    }

    #[test]
    fn reject_unknown_reports_first_alphabetically() {
        let a = parse(&["x", "--zeta", "--alpha", "1"]).unwrap();
        let err = a.reject_unknown(&[]).unwrap_err();
        assert!(matches!(
            &err,
            ArgsError::UnknownOption { option, .. } if option == "alpha"
        ));
    }

    #[test]
    fn error_display() {
        assert!(ArgsError::MissingCommand.to_string().contains("help"));
        assert!(ArgsError::UnexpectedPositional("x".into())
            .to_string()
            .contains("'x'"));
    }
}
