//! The `serve` daemon subcommand and the thin client subcommands
//! (`submit`, `status`, `result`, `cancel`, `list`, `watch`,
//! `metrics`, `shutdown`) that talk to it.
//!
//! Every client subcommand takes `--socket <path>` (default
//! [`DEFAULT_SOCKET`]) or `--tcp 127.0.0.1:<port>` and speaks the
//! newline-delimited JSON protocol from `cppc_serve::protocol`.
//! Machine-readable output (job ids, result documents) goes to stdout;
//! everything informational goes to stderr, so the outputs compose in
//! shell pipelines and the CI smoke gate can diff them.

use std::error::Error;
use std::path::Path;

use cppc_campaign::json::Json;
use cppc_serve::{Client, JobId, JobKind, JobSpec, Priority, ServerConfig};

use crate::args::ParsedArgs;

type CliResult = Result<(), Box<dyn Error>>;

/// Default unix socket shared by the daemon and the clients.
pub const DEFAULT_SOCKET: &str = "/tmp/cppc-serve.sock";

/// Default journal/checkpoint root of the daemon.
pub const DEFAULT_DATA_DIR: &str = "cppc-serve-data";

/// `serve` — run the daemon in the foreground until a `shutdown`
/// request (or fatal listener error).
pub fn serve_daemon(args: &ParsedArgs) -> CliResult {
    let mut cfg = ServerConfig::new(
        args.get_or("data-dir", DEFAULT_DATA_DIR),
        args.get_or("socket", DEFAULT_SOCKET),
    );
    cfg.tcp_addr = args.get("tcp").map(ToString::to_string);
    cfg.queue_cap = args.get_parsed("queue-cap", cfg.queue_cap)?;
    cfg.max_threads = args.get_parsed("max-threads", cfg.max_threads)?;
    cfg.checkpoint_every_shards =
        args.get_parsed("checkpoint-every", cfg.checkpoint_every_shards)?;
    if cfg.queue_cap == 0 || cfg.max_threads == 0 {
        return Err("--queue-cap and --max-threads must be positive".into());
    }
    crate::commands::register_all_metrics();
    eprintln!(
        "cppc-serve: data dir {}  socket {}  tcp {}  queue {}  max threads {}",
        cfg.data_dir.display(),
        cfg.socket_path.display(),
        cfg.tcp_addr.as_deref().unwrap_or("off"),
        cfg.queue_cap,
        cfg.max_threads,
    );
    cppc_serve::serve(cfg)?;
    eprintln!("cppc-serve: stopped");
    Ok(())
}

/// Connects to the daemon named by `--socket`/`--tcp`.
fn connect(args: &ParsedArgs) -> Result<Client, Box<dyn Error>> {
    if let Some(addr) = args.get("tcp") {
        return Ok(Client::connect_tcp(addr)
            .map_err(|e| format!("cannot connect to daemon at {addr}: {e}"))?);
    }
    let path = args.get_or("socket", DEFAULT_SOCKET);
    Ok(Client::connect_unix(Path::new(path))
        .map_err(|e| format!("cannot connect to daemon at {path}: {e}"))?)
}

/// The mandatory `--id` of the status/result/cancel/watch commands.
fn job_id(args: &ParsedArgs) -> Result<JobId, Box<dyn Error>> {
    if args.get("id").is_none() {
        return Err("missing --id <job>".into());
    }
    Ok(args.get_parsed("id", 0)?)
}

/// Builds a [`JobSpec`] from the same `--kind`-keyed flags that
/// `cppc-cli campaign` takes, validating before anything hits the wire.
fn spec_from_args(args: &ParsedArgs) -> Result<JobSpec, Box<dyn Error>> {
    // `--scheme <name>` alone selects the scheme-zoo campaign, exactly
    // as `cppc-cli campaign` does.
    let default_kind = if args.get("scheme").is_some() {
        "scheme"
    } else {
        "inject"
    };
    let kind = match args.get_or("kind", default_kind) {
        "inject" => JobKind::Inject {
            config: args.get_or("config", "paper").to_string(),
            fault: args.get_or("fault", "4x4").to_string(),
        },
        "scheme" => JobKind::Scheme {
            scheme: args.get_or("scheme", "cppc").to_string(),
            config: args.get_or("config", "paper").to_string(),
            fault: args.get_or("fault", "4x4").to_string(),
        },
        "montecarlo" => JobKind::MonteCarlo {
            rate: args.get_parsed("rate", 40.0)?,
            domains: args.get_parsed("domains", 8u32)?,
            tavg: args.get_parsed("tavg", 0.0004)?,
        },
        "mbe" => JobKind::Mbe,
        "sleep" => JobKind::Sleep {
            millis: args.get_parsed("sleep-ms", 0)?,
        },
        "trace" => JobKind::Trace {
            // The path is resolved on the daemon's host, not the
            // submitting one; absolute paths travel best.
            path: args
                .get("trace")
                .ok_or("--kind trace requires --trace <file>")?
                .to_string(),
        },
        // `--trials`/`--seed` override the tier's per-config campaign
        // parameters, so small smoke sweeps can run through the daemon.
        "explore" => JobKind::Explore {
            quick: args.get_flag("quick"),
        },
        other => {
            return Err(format!(
                "unknown kind '{other}' (use inject|scheme|montecarlo|mbe|sleep|trace|explore)"
            )
            .into())
        }
    };
    let mut spec = JobSpec::new(
        kind,
        args.get_parsed("trials", 2000)?,
        args.get_parsed("seed", 0xC11)?,
    );
    // `--threads 0` resolves to every CPU on the daemon's host, not
    // the submitting one.
    spec.threads = args.get_parsed("threads", 1)?;
    spec.shard_size = args.get_parsed("shard-size", spec.shard_size)?;
    spec.batch = args.get_parsed("batch", spec.batch)?;
    spec.validate()?;
    Ok(spec)
}

/// `submit` — prints the new job id to stdout (`--watch` then streams
/// it like `watch` does).
pub fn submit(args: &ParsedArgs) -> CliResult {
    let spec = spec_from_args(args)?;
    let tenant = args.get_or("tenant", "default");
    let priority = Priority::parse(args.get_or("priority", "normal"))?;
    let mut client = connect(args)?;
    let id = client.submit(tenant, priority, spec)?;
    if args.get_flag("watch") {
        eprintln!("submitted job {id}");
        return watch_stream(&mut client, id);
    }
    println!("{id}");
    Ok(())
}

/// `status` — one compact JSON document on stdout.
pub fn status(args: &ParsedArgs) -> CliResult {
    let doc = connect(args)?.status(job_id(args)?)?;
    println!("{}", doc.to_string_compact());
    Ok(())
}

/// `result` — the finished job's result document on stdout (error exit
/// while the job is still queued/running or when it failed).
pub fn result(args: &ParsedArgs) -> CliResult {
    let doc = connect(args)?.result(job_id(args)?)?;
    println!("{}", doc.to_string_compact());
    Ok(())
}

/// `cancel` — acknowledgement on stdout (`cancelled` or `cancelling`).
pub fn cancel(args: &ParsedArgs) -> CliResult {
    let id = job_id(args)?;
    let doc = connect(args)?.cancel(id)?;
    let state = doc.get("state").and_then(Json::as_str).unwrap_or("?");
    println!("job {id}: {state}");
    Ok(())
}

/// `list` — one summary row per job, oldest first.
pub fn list(args: &ParsedArgs) -> CliResult {
    let rows = connect(args)?.list(args.get("tenant"))?;
    println!(
        "{:>6}  {:<10} {:<8} {:<10} {:>8}  state",
        "id", "tenant", "priority", "kind", "trials"
    );
    for row in rows {
        let s = |k: &str| row.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
        let u = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "{:>6}  {:<10} {:<8} {:<10} {:>8}  {}",
            u("id"),
            s("tenant"),
            s("priority"),
            s("kind"),
            u("trials"),
            s("state"),
        );
    }
    Ok(())
}

/// `watch` — live progress on stderr; on completion the result
/// document on stdout (non-zero exit when the job fails, is cancelled
/// or is suspended by a daemon shutdown).
pub fn watch(args: &ParsedArgs) -> CliResult {
    let id = job_id(args)?;
    let mut client = connect(args)?;
    watch_stream(&mut client, id)
}

fn watch_stream(client: &mut Client, id: JobId) -> CliResult {
    let end = client.watch(id, |event| {
        let state = event.get("state").and_then(Json::as_str).unwrap_or("?");
        match (
            event.get("trials_done").and_then(Json::as_u64),
            event.get("trials_total").and_then(Json::as_u64),
        ) {
            (Some(done), Some(total)) => {
                let eta = event.get("eta_secs").and_then(Json::as_f64).unwrap_or(0.0);
                eprintln!("job {id}: {state}  {done}/{total} trials  eta {eta:.1}s");
            }
            _ => eprintln!("job {id}: {state}"),
        }
    })?;
    match end.get("state").and_then(Json::as_str) {
        Some("done") => {
            let result = end.get("result").cloned().unwrap_or(Json::Null);
            println!("{}", result.to_string_compact());
            Ok(())
        }
        Some(state) => {
            let detail = end
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("no diagnostic");
            Err(format!("job {id} ended {state}: {detail}").into())
        }
        None => Err(format!("job {id}: watch stream ended without a state").into()),
    }
}

/// `metrics` — the daemon's live metrics snapshot as JSON on stdout.
pub fn metrics(args: &ParsedArgs) -> CliResult {
    let doc = connect(args)?.metrics()?;
    println!("{}", doc.to_string_compact());
    Ok(())
}

/// `shutdown` — asks the daemon to checkpoint running jobs and exit.
pub fn shutdown(args: &ParsedArgs) -> CliResult {
    connect(args)?.shutdown()?;
    eprintln!("shutdown requested");
    Ok(())
}
